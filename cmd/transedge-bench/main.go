// transedge-bench reproduces the paper's evaluation (Sec. 5): every
// figure and table has an experiment ID, and the tool prints the same
// rows/series the paper reports.
//
//	go run ./cmd/transedge-bench -experiment fig4
//	go run ./cmd/transedge-bench -experiment all
//	go run ./cmd/transedge-bench -experiment fig12 -scale paper
//
// The default "quick" scale shrinks the workload and scales injected
// wide-area latencies (1 paper-ms -> 50µs) so the full suite runs in
// minutes; "paper" restores the published parameters (1M keys, real
// latencies) and takes on the order of an hour.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"transedge/internal/harness"
	"transedge/internal/store"
	_ "transedge/internal/store/lsm" // registers the "lsm" engine for -engine
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (fig4..fig15, table1, pipeline, hotpath) or 'all'")
		scaleName  = flag.String("scale", "quick", "quick | paper")
		duration   = flag.Duration("duration", 0, "override measurement window per point")
		keys       = flag.Int("keys", 0, "override keyspace size")
		jsonPath   = flag.String("json", "", "also write all measured points as JSON to this file")
		engine     = flag.String("engine", "", "storage backend per replica (default: sharded); see internal/store engine registry")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *engine != "" {
		// Fail fast with the valid names instead of silently measuring
		// the default backend under a typo'd label.
		probe, err := store.NewEngine(*engine, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if c, ok := probe.(interface{ Close() }); ok {
			c.Close()
		}
	}

	if *list {
		ids := make([]string, 0, len(harness.Experiments))
		for id := range harness.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	scale := harness.Quick
	if *scaleName == "paper" {
		scale = harness.PaperScale
	}
	if *duration > 0 {
		scale.Duration = *duration
	}
	if *keys > 0 {
		scale.Keys = *keys
	}
	scale.Engine = *engine

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = harness.Order
	}
	var all []harness.Point
	for _, id := range ids {
		run, ok := harness.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("== %s (%s scale) ==\n", id, *scaleName)
		start := time.Now()
		points := run(scale)
		printTable(points)
		fmt.Printf("-- %s done in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
		all = append(all, points...)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(all, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d points to %s\n", len(all), *jsonPath)
	}
}

func printTable(points []harness.Point) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "series\tx\tlatency(ms)\tp99(ms)\ttps\tabort%\tround1(ms)\tround2eff(ms)\tround2%")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			p.Series, p.X,
			num(p.LatencyMS), num(p.P99MS), num(p.ThroughputTPS),
			num(p.AbortPct), num(p.Round1MS), num(p.Round2EffMS), num(p.Round2Pct))
	}
	w.Flush()
}

func num(v float64) string {
	if v == 0 {
		return "-"
	}
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
