// transedge-demo walks through the protocol mechanics of the paper's
// Figures 1–3 on a live two-partition deployment: it shows prepare and
// commit batches, the CD vectors and LCE numbers they carry, and then
// stages the Fig. 1 race (a reader catching one partition ahead of the
// other) to show the dependency check detecting it and the second round
// repairing it.
//
//	go run ./cmd/transedge-demo
//
// With -datadir the replicas also write a WAL and checkpoints there, and
// a final act stops every replica and cold-restarts the deployment from
// disk alone:
//
//	go run ./cmd/transedge-demo -datadir /tmp/transedge-demo
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/store"
	"transedge/internal/transport"
)

func main() {
	datadir := flag.String("datadir", "", "persist WAL+checkpoints here and demo a cold restart")
	engine := flag.String("engine", "", "storage backend per replica (default: sharded)")
	flag.Parse()

	if *engine != "" {
		probe, err := store.NewEngine(*engine, 1)
		if err != nil {
			log.Fatal(err)
		}
		if c, ok := probe.(interface{ Close() }); ok {
			c.Close()
		}
	}

	data := map[string][]byte{}
	for i := 0; i < 100; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte("v0")
	}
	cfg := core.SystemConfig{
		Clusters: 2, F: 1, Seed: 5,
		BatchInterval: time.Millisecond,
		InitialData:   data,
		DataDir:       *datadir,
		Engine:        *engine,
	}
	sys := core.NewSystem(cfg)
	sys.Start()
	defer sys.Stop()
	fmt.Println("deployment:", sys)
	fmt.Println()

	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 2, Timeout: 10 * time.Second,
	})

	// Find one key per partition.
	var kx, ky string
	for i := 0; i < 100 && (kx == "" || ky == ""); i++ {
		k := fmt.Sprintf("key-%03d", i)
		if sys.Part.Of(k) == 0 && kx == "" {
			kx = k
		}
		if sys.Part.Of(k) == 1 && ky == "" {
			ky = k
		}
	}
	fmt.Printf("x = %s (partition X), y = %s (partition Y)\n\n", kx, ky)

	show := func(label string) {
		snap, err := c.ReadOnly([]string{kx, ky})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", label)
		for cl := int32(0); cl < 2; cl++ {
			h := snap.Headers[cl]
			fmt.Printf("  partition %c: batch b%d  CD=%v  LCE=%d  root=%x...\n",
				'X'+cl, h.ID, h.CD, h.LCE, h.MerkleRoot[:4])
		}
		fmt.Printf("  snapshot: x=%s y=%s (rounds=%d)\n\n",
			snap.Values[kx], snap.Values[ky], snap.Rounds)
	}

	show("initial state (genesis batches, no dependencies: CD entries are -1)")

	fmt.Println("committing distributed transaction t1 {x=x1, y=y1} (2PC over BFT, Fig. 3)...")
	txn := c.Begin()
	if _, err := txn.Read(kx); err != nil {
		log.Fatal(err)
	}
	if _, err := txn.Read(ky); err != nil {
		log.Fatal(err)
	}
	txn.Write(kx, []byte("x1"))
	txn.Write(ky, []byte("y1"))
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let both partitions commit the group
	show("after t1: each commit batch records a CD entry pointing at the\n" +
		"other partition's PREPARE batch; LCE advanced to the local prepare batch")

	// Stage the Fig. 1 race: slow down the inter-leader links so the
	// coordinator commits while the participant's decision is in flight,
	// then read immediately.
	fmt.Println("staging the Fig. 1 race: delaying inter-leader links by 60ms and")
	fmt.Println("committing t2 {x=x2, y=y2}...")
	leader0 := core.NodeID{Cluster: 0, Replica: 0}
	leader1 := core.NodeID{Cluster: 1, Replica: 0}
	var mu sync.Mutex
	slow := true
	sys.Net.SetLatency(func(from, to transport.NodeID) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		if slow && (from == leader0 || from == leader1) &&
			from.Cluster != to.Cluster && to.Cluster != transport.ClientCluster {
			return 60 * time.Millisecond
		}
		return 0
	})
	txn2 := c.Begin()
	if _, err := txn2.Read(kx); err != nil {
		log.Fatal(err)
	}
	if _, err := txn2.Read(ky); err != nil {
		log.Fatal(err)
	}
	txn2.Write(kx, []byte("x2"))
	txn2.Write(ky, []byte("y2"))
	if err := txn2.Commit(); err != nil {
		log.Fatal(err)
	}

	// One partition has committed t2; the other's commit decision is
	// still crossing the slow link. Read right now.
	sawRepair := false
	for i := 0; i < 10 && !sawRepair; i++ {
		snap, err := c.ReadOnly([]string{kx, ky})
		if err != nil {
			log.Fatal(err)
		}
		x, y := string(snap.Values[kx]), string(snap.Values[ky])
		if (x == "x2") != (y == "y2") {
			log.Fatalf("INCONSISTENT snapshot x=%s y=%s — the protocol failed", x, y)
		}
		if snap.Rounds > 1 {
			sawRepair = true
			fmt.Printf("read-only txn detected an unsatisfied dependency (CD > LCE)\n")
			fmt.Printf("and repaired it in round %d: x=%s y=%s — consistent.\n\n", snap.Rounds, x, y)
		}
	}
	mu.Lock()
	slow = false
	mu.Unlock()
	if !sawRepair {
		fmt.Println("(race window missed this run — both partitions were already in sync;")
		fmt.Println(" every snapshot was nevertheless consistent)")
	}

	time.Sleep(80 * time.Millisecond)
	show("steady state after t2")
	fmt.Println("demo complete: every answer above was verified against Merkle")
	fmt.Println("proofs and f+1 batch certificates from untrusted nodes.")

	if *datadir == "" {
		return
	}

	// Final act: durability. Every certified batch above was fsynced to
	// the per-replica WAL before it was applied. Kill the whole
	// deployment — all 8 replicas at once, no survivors to copy state
	// from — and restart it from the data dir alone.
	appended := sys.NodeMetrics(func(m *core.Metrics) int64 { return m.WALAppended })
	fmt.Printf("\nstopping all replicas (%d batch appends in WALs under %s)...\n",
		appended, *datadir)
	sys.Stop()

	sys2 := core.NewSystem(cfg)
	sys2.Start()
	defer sys2.Stop()
	c2 := client.New(client.Config{
		ID: 2, Net: sys2.Net, Ring: sys2.Ring, Part: sys2.Part,
		Clusters: 2, Timeout: 10 * time.Second,
	})
	snap, err := c2.ReadOnly([]string{kx, ky})
	if err != nil {
		log.Fatal("read after cold restart:", err)
	}
	cold := sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.ColdRestarts })
	replayed := sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.WALReplayed })
	fmt.Printf("cold restart: %d replicas recovered from disk (%d WAL batches replayed)\n",
		cold, replayed)
	fmt.Printf("verified read after restart: x=%s y=%s — t2's writes survived the crash.\n",
		snap.Values[kx], snap.Values[ky])
}
