// Benchmarks reproducing every table and figure of the paper's
// evaluation (Sec. 5). Each benchmark runs the corresponding experiment
// at a CI-friendly scale and reports the headline metrics via
// b.ReportMetric; cmd/transedge-bench prints the full row-by-row tables
// (and -scale paper restores the published parameters).
//
// Absolute numbers differ from the paper (simulated network, scaled
// latencies); the reported shape metrics — who wins, by what factor,
// and how trends move across the sweeps — are the reproduction targets
// recorded in EXPERIMENTS.md.
package bench_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/harness"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
	"transedge/internal/store"
)

// benchScale trims the Quick scale further so the whole suite finishes in
// a couple of minutes under `go test -bench=.`.
var benchScale = harness.Scale{
	Keys:        2000,
	Duration:    250 * time.Millisecond,
	LatencyUnit: 50 * time.Microsecond,
	ROWorkers:   4,
	RWWorkers:   4,
	BatchSizes:  []int{900, 2500},
	ScanSizes:   []int{250, 1000, 2000},
	LatenciesMS: []int{0, 20, 70, 150},
}

// pick returns the first point matching series and x ("" matches any).
func pick(points []harness.Point, series, x string) *harness.Point {
	for i := range points {
		if points[i].Series == series && (x == "" || points[i].X == x) {
			return &points[i]
		}
	}
	return nil
}

// BenchmarkFig4ReadOnlyLatencyVs2PCBFT — the headline result: snapshot
// read-only latency vs the coordination-based baseline, 1–5 clusters.
// The paper reports 9–24x; the speedup at 2 and 5 clusters is reported
// as speedup2x_x and speedup5c_x.
func BenchmarkFig4ReadOnlyLatencyVs2PCBFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig4(benchScale)
		te2 := pick(pts, "TransEdge", "clusters=2")
		bl2 := pick(pts, "2PC/BFT", "clusters=2")
		te5 := pick(pts, "TransEdge", "clusters=5")
		bl5 := pick(pts, "2PC/BFT", "clusters=5")
		if te2 == nil || bl2 == nil || te5 == nil || bl5 == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(te5.LatencyMS, "te_ms_5c")
		b.ReportMetric(bl5.LatencyMS, "2pcbft_ms_5c")
		b.ReportMetric(bl2.LatencyMS/te2.LatencyMS, "speedup2c_x")
		b.ReportMetric(bl5.LatencyMS/te5.LatencyMS, "speedup5c_x")
	}
}

// BenchmarkFig5ReadOnlyRounds — round-1 latency plus the effective cost
// of repair rounds, against Augustus.
func BenchmarkFig5ReadOnlyRounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig5(benchScale)
		te := pick(pts, "TransEdge", "clusters=5")
		aug := pick(pts, "Augustus", "clusters=5")
		if te == nil || aug == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(te.Round1MS, "round1_ms_5c")
		b.ReportMetric(te.Round2EffMS, "round2eff_ms_5c")
		b.ReportMetric(te.Round2Pct, "round2_pct_5c")
		b.ReportMetric(aug.LatencyMS, "augustus_ms_5c")
	}
}

// BenchmarkFig6ReadOnlyThroughput — closed-loop read-only throughput vs
// Augustus across accessed-cluster counts.
func BenchmarkFig6ReadOnlyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig6(benchScale)
		te := pick(pts, "TransEdge", "clusters=5")
		aug := pick(pts, "Augustus", "clusters=5")
		if te == nil || aug == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(te.ThroughputTPS, "te_tps_5c")
		b.ReportMetric(aug.ThroughputTPS, "augustus_tps_5c")
		b.ReportMetric(te.ThroughputTPS/aug.ThroughputTPS, "ratio_x")
	}
}

// BenchmarkFig7LongRunningReadOnly — scan latency growth with scan size,
// vs Augustus whose shared locks also stall writers.
func BenchmarkFig7LongRunningReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig7(benchScale)
		teS := pick(pts, "TransEdge", "readops=250")
		teL := pick(pts, "TransEdge", "readops=2000")
		augL := pick(pts, "Augustus", "readops=2000")
		if teS == nil || teL == nil || augL == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(teS.LatencyMS, "te_ms_250")
		b.ReportMetric(teL.LatencyMS, "te_ms_2000")
		b.ReportMetric(augL.LatencyMS, "augustus_ms_2000")
	}
}

// BenchmarkFig8ReadOnlyLatencySweep — read-only throughput as
// inter-cluster latency rises (0–150 paper-ms).
func BenchmarkFig8ReadOnlyLatencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig8(benchScale)
		at0 := pick(pts, "TransEdge", "latency=0ms")
		at150 := pick(pts, "TransEdge", "latency=150ms")
		if at0 == nil || at150 == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(at0.ThroughputTPS, "tps_0ms")
		b.ReportMetric(at150.ThroughputTPS, "tps_150ms")
	}
}

// BenchmarkFig9LocalThroughput — write-only vs local read-write
// throughput across batch sizes, on TransEdge and 2PC/BFT.
func BenchmarkFig9LocalThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig9(benchScale)
		wo := pick(pts, "Write-only-RW TransEdge", "batch=2500")
		lrw := pick(pts, "Local-RW TransEdge", "batch=2500")
		bl := pick(pts, "Local-RW 2PC/BFT", "batch=2500")
		if wo == nil || lrw == nil || bl == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(wo.ThroughputTPS, "writeonly_tps")
		b.ReportMetric(lrw.ThroughputTPS, "localrw_tps")
		b.ReportMetric(bl.ThroughputTPS, "2pcbft_tps")
	}
}

// BenchmarkFig10DistributedLatencySkew — distributed read-write latency
// across the R/W skew.
func BenchmarkFig10DistributedLatencySkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig10and11(benchScale)
		readHeavy := pick(pts, "batch=2500", "R=5,W=1")
		writeHeavy := pick(pts, "batch=2500", "R=1,W=5")
		if readHeavy == nil || writeHeavy == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(readHeavy.LatencyMS, "lat_ms_R5W1")
		b.ReportMetric(writeHeavy.LatencyMS, "lat_ms_R1W5")
	}
}

// BenchmarkFig11DistributedThroughputSkew — the same sweep's throughput.
func BenchmarkFig11DistributedThroughputSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig10and11(benchScale)
		readHeavy := pick(pts, "batch=2500", "R=5,W=1")
		writeHeavy := pick(pts, "batch=2500", "R=1,W=5")
		if readHeavy == nil || writeHeavy == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(readHeavy.ThroughputTPS, "tps_R5W1")
		b.ReportMetric(writeHeavy.ThroughputTPS, "tps_R1W5")
	}
}

// BenchmarkFig12DistributedLatencySweep — distributed read-write
// throughput under injected wide-area latency.
func BenchmarkFig12DistributedLatencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig12(benchScale)
		at0 := pick(pts, "batch=2500", "latency=0ms")
		at150 := pick(pts, "batch=2500", "latency=150ms")
		if at0 == nil || at150 == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(at0.ThroughputTPS, "tps_0ms")
		b.ReportMetric(at150.ThroughputTPS, "tps_150ms")
		b.ReportMetric(at0.ThroughputTPS/at150.ThroughputTPS, "drop_x")
	}
}

// BenchmarkFig13AbortRate — read-write abort percentage under latency.
func BenchmarkFig13AbortRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig13(benchScale)
		at0 := pick(pts, "latency=0ms", "")
		at70 := pick(pts, "latency=70ms", "")
		if at0 == nil || at70 == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(at0.AbortPct, "abort_pct_0ms")
		b.ReportMetric(at70.AbortPct, "abort_pct_70ms")
	}
}

// BenchmarkFig14MixedWorkload — throughput across the local/distributed
// transaction mix.
func BenchmarkFig14MixedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig14(benchScale)
		allLocal := pick(pts, "batch=2500", "LRWT=100%")
		allDist := pick(pts, "batch=2500", "LRWT=0%")
		if allLocal == nil || allDist == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(allLocal.ThroughputTPS, "tps_local100")
		b.ReportMetric(allDist.ThroughputTPS, "tps_dist100")
		b.ReportMetric(allLocal.ThroughputTPS/allDist.ThroughputTPS, "ratio_x")
	}
}

// BenchmarkFig15FaultToleranceSweep — cost of f=1 vs f=3 clusters.
func BenchmarkFig15FaultToleranceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Fig15(benchScale)
		f1 := pick(pts, "f=1", "batch=900")
		f3 := pick(pts, "f=3", "batch=900")
		if f1 == nil || f3 == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(f1.LatencyMS, "lat_ms_f1")
		b.ReportMetric(f3.LatencyMS, "lat_ms_f3")
		b.ReportMetric(f1.ThroughputTPS, "tps_f1")
		b.ReportMetric(f3.ThroughputTPS, "tps_f3")
	}
}

// --- Hot-path microbenchmarks (standalone regression numbers for the
// per-slot CPU work every pipelined consensus step pays; the hotpath
// harness experiment measures their end-to-end effect). ---

// benchBatch builds a batch shaped like a busy leader's: n local
// write-only transactions of 3 writes each.
func benchBatch(n int) *protocol.Batch {
	b := &protocol.Batch{Cluster: 0, ID: 1, Timestamp: 1, CD: protocol.NewCDVector(2)}
	for i := 0; i < n; i++ {
		txn := protocol.Transaction{ID: protocol.MakeTxnID(1, uint32(i)), Partitions: []int32{0}}
		for w := 0; w < 3; w++ {
			txn.Writes = append(txn.Writes, protocol.WriteOp{
				Key:   fmt.Sprintf("key-%d-%d", i, w),
				Value: make([]byte, 64),
			})
		}
		b.Local = append(b.Local, txn)
	}
	return b
}

// BenchmarkBatchDigest — the cost of the four digest reads every batch
// pays across its consensus lifetime (leader sign, follower pre-prepare,
// validation, delivery): recompute re-derives the header each time (the
// pre-memoization behavior), memoized computes once per sealed batch.
func BenchmarkBatchDigest(b *testing.B) {
	const digestReadsPerBatch = 4
	batch := benchBatch(200)
	b.Run("recompute", func(b *testing.B) {
		protocol.SetDigestMemo(false)
		defer protocol.SetDigestMemo(true)
		sealed := batch.MutableCopy().Seal()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < digestReadsPerBatch; r++ {
				_ = sealed.Digest()
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sealed := batch.MutableCopy().Seal()
			for r := 0; r < digestReadsPerBatch; r++ {
				_ = sealed.Digest()
			}
		}
	})
}

// BenchmarkVerifyCertificate — an f=3 cluster's certificate carrying all
// 10 commit signatures, verified at threshold f+1=4: legacy checks every
// signature serially, fast stops at the threshold and fans out across
// the worker pool.
func BenchmarkVerifyCertificate(b *testing.B) {
	ring := cryptoutil.NewKeyRing()
	msg := []byte("benchmark-digest-benchmark-digest")
	cert := cryptoutil.Certificate{Cluster: 0}
	for i := int32(0); i < 10; i++ {
		id := cryptoutil.NodeID{Cluster: 0, Replica: i}
		kp := cryptoutil.DeriveKeyPair(id, 7)
		ring.Add(id, kp.Public)
		cert.Signatures = append(cert.Signatures, cryptoutil.SignCertificate(kp, id, msg))
	}
	const threshold = 4
	b.Run("legacy", func(b *testing.B) {
		cryptoutil.SetFastVerify(false)
		defer cryptoutil.SetFastVerify(true)
		for i := 0; i < b.N; i++ {
			if err := cryptoutil.VerifyCertificate(ring, cert, msg, threshold); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := cryptoutil.VerifyCertificate(ring, cert, msg, threshold); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMerkleApply — applying a 100-key batch to a 5000-key tree:
// old inserts keys one at a time (re-hashing the root path per key),
// bulk merges the sorted batch in one pass. hashes/op reports the node
// hashes per apply, the quantity the optimization shrinks.
func BenchmarkMerkleApply(b *testing.B) {
	base := merkle.New()
	for i := 0; i < 5000; i++ {
		base = base.Insert([]byte(fmt.Sprintf("base-%d", i)), merkle.HashValue([]byte("v")))
	}
	updates := make(map[string]merkle.Digest, 100)
	for i := 0; i < 100; i++ {
		updates[fmt.Sprintf("update-%d", i)] = merkle.HashValue([]byte("w"))
	}
	run := func(b *testing.B) {
		start := merkle.HashOps()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = base.Apply(updates)
		}
		b.StopTimer()
		b.ReportMetric(float64(merkle.HashOps()-start)/float64(b.N), "hashes/op")
	}
	b.Run("old", func(b *testing.B) {
		merkle.SetBulkApply(false)
		defer merkle.SetBulkApply(true)
		run(b)
	})
	b.Run("bulk", run)
}

// --- Sharded storage microbenchmarks (the readscale experiment
// measures their end-to-end effect; shards=1 restores a single-lock
// store, the seed's behavior). ---

// benchStore builds a store preloaded with `keys` keys and `versions`
// committed batches of 200-key writes each.
func benchStore(shards, keys, versions int) (*store.Store, []string) {
	s := store.NewSharded(shards)
	all := make([]string, keys)
	init := make(map[string][]byte, keys)
	for i := range all {
		all[i] = fmt.Sprintf("bench-key-%06d", i)
		init[all[i]] = make([]byte, 64)
	}
	s.Load(init)
	val := make([]byte, 64)
	for b := 1; b <= versions; b++ {
		writes := make(map[string][]byte, 200)
		for i := 0; i < 200; i++ {
			writes[all[(b*200+i)%keys]] = val
		}
		s.ApplyAll(int64(b), writes)
	}
	return s, all
}

// BenchmarkStoreApplyAll — writing one 200-key batch: grouped per-shard
// locking (one acquisition per shard) vs a single global lock.
func BenchmarkStoreApplyAll(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, all := benchStore(shards, 5000, 20)
			val := make([]byte, 64)
			writes := make(map[string][]byte, 200)
			for i := 0; i < 200; i++ {
				writes[all[i*7%len(all)]] = val
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ApplyAll(int64(100+i), writes)
			}
		})
	}
}

// BenchmarkStoreMultiGetAsOf — a read-only transaction's 16-key snapshot
// fan-out under concurrent readers, the off-loop executors' hot call.
func BenchmarkStoreMultiGetAsOf(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, all := benchStore(shards, 5000, 20)
			asOf := s.StableBatch()
			b.RunParallel(func(pb *testing.PB) {
				probe := make([]string, 16)
				i := 0
				for pb.Next() {
					for j := range probe {
						probe[j] = all[(i*31+j*257)%len(all)]
					}
					i++
					if got := s.MultiGetAsOf(probe, asOf); !got[0].Found {
						// b.Fatal must not run on a RunParallel worker.
						b.Error("preloaded key missing")
						return
					}
				}
			})
		})
	}
}

// BenchmarkReadScale — the readscale experiment (sharded store +
// off-loop read executors vs the single-shard, single-executor
// baseline) at a read-heavy mix; also keeps the experiment exercised by
// the CI bench smoke so BENCH_readscale.json cannot silently rot.
func BenchmarkReadScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.ReadScale(benchScale)
		base := pick(pts, "shards=1", "ro=90%")
		sharded := pick(pts, "shards=16", "ro=90%")
		if base == nil || sharded == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(base.ThroughputTPS, "ro_tps_1shard")
		b.ReportMetric(sharded.ThroughputTPS, "ro_tps_16shard")
		if base.ThroughputTPS > 0 {
			b.ReportMetric(sharded.ThroughputTPS/base.ThroughputTPS, "scale_x")
		}
	}
}

// BenchmarkRecovery — the crash/recovery experiment: commit throughput
// with all replicas up, with a follower crashed, and after its restart,
// plus the restarted replica's state-transfer catch-up time. Run by the
// CI bench smoke so BENCH_recovery.json cannot silently rot.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Recovery(benchScale)
		base := pick(pts, "TransEdge", "baseline")
		down := pick(pts, "TransEdge", "follower-down")
		rec := pick(pts, "TransEdge", "recovered")
		catch := pick(pts, "TransEdge", "catchup")
		if base == nil || down == nil || rec == nil || catch == nil {
			b.Fatal("missing series")
		}
		if catch.LatencyMS < 0 {
			b.Fatal("restarted replica never caught up")
		}
		b.ReportMetric(base.ThroughputTPS, "tps_baseline")
		b.ReportMetric(down.ThroughputTPS, "tps_follower_down")
		b.ReportMetric(rec.ThroughputTPS, "tps_recovered")
		b.ReportMetric(catch.LatencyMS, "catchup_ms")
		b.ReportMetric(float64(base.LogLen), "log_window")
		b.ReportMetric(base.HeapMB, "heap_mb")
	}
}

// BenchmarkViewChange — the leader-failover experiment: commit
// throughput before the leader is killed, through the view-change dip,
// and under the new leader, plus the failover latency itself. Run by the
// CI bench smoke so BENCH_viewchange.json cannot silently rot.
func BenchmarkViewChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.ViewChange(benchScale)
		base := pick(pts, "TransEdge", "baseline")
		down := pick(pts, "TransEdge", "leader-down")
		rec := pick(pts, "TransEdge", "recovered")
		fail := pick(pts, "TransEdge", "failover")
		if base == nil || down == nil || rec == nil || fail == nil {
			b.Fatal("missing series")
		}
		if fail.LatencyMS < 0 {
			b.Fatal("cluster never failed over to a new leader")
		}
		b.ReportMetric(base.ThroughputTPS, "tps_baseline")
		b.ReportMetric(down.ThroughputTPS, "tps_leader_down")
		b.ReportMetric(rec.ThroughputTPS, "tps_recovered")
		b.ReportMetric(fail.LatencyMS, "failover_ms")
	}
}

// BenchmarkDurability — the durability experiment: commit throughput
// with the group-commit WAL fsyncing, with fsync disabled, and with
// durability off entirely, plus the cold-restart latency of a whole
// cluster rebuilt from its checkpoints and WAL suffix. Run by the CI
// bench smoke so BENCH_durability.json cannot silently rot.
func BenchmarkDurability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Durability(benchScale)
		on := pick(pts, "TransEdge", "fsync-on")
		off := pick(pts, "TransEdge", "fsync-off")
		none := pick(pts, "TransEdge", "no-wal")
		cold := pick(pts, "TransEdge", "cold-restart")
		if on == nil || off == nil || none == nil || cold == nil {
			b.Fatal("missing series")
		}
		if cold.LatencyMS < 0 {
			b.Fatal("cold restart failed to recover or verify reads")
		}
		b.ReportMetric(on.ThroughputTPS, "tps_fsync_on")
		b.ReportMetric(off.ThroughputTPS, "tps_fsync_off")
		b.ReportMetric(none.ThroughputTPS, "tps_no_wal")
		b.ReportMetric(cold.LatencyMS, "cold_restart_ms")
	}
}

// BenchmarkEngines — the engines experiment: both storage backends
// (sharded in-memory MVCC vs LSM memtable+runs) under the write-heavy
// pipeline workload and the 90%-read-only readscale workload. The
// reproduction target is that the sharded default is unregressed and
// the LSM backend stays in the same ballpark on both shapes.
func BenchmarkEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Engines(benchScale)
		for _, series := range []string{"sharded", "lsm"} {
			wr := pick(pts, series, "pipeline")
			ro := pick(pts, series, "readscale-ro90")
			if wr == nil || ro == nil {
				b.Fatalf("missing %s rows", series)
			}
			if wr.ThroughputTPS == 0 || ro.ThroughputTPS == 0 {
				b.Fatalf("engine %s committed nothing", series)
			}
			b.ReportMetric(wr.ThroughputTPS, "tps_write_"+series)
			b.ReportMetric(ro.ThroughputTPS, "tps_ro_"+series)
			b.ReportMetric(ro.HeapMB, "heapmb_ro_"+series)
		}
	}
}

// BenchmarkTable1ReadOnlyInterference — read-write aborts caused by
// read-only transactions: ~0 for TransEdge, growing with cluster count
// for Augustus.
func BenchmarkTable1ReadOnlyInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.Table1(benchScale)
		te := pick(pts, "TransEdge", "clusters=5")
		aug := pick(pts, "Augustus", "clusters=5")
		if te == nil || aug == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(te.AbortPct, "te_ro_abort_pct")
		b.ReportMetric(aug.AbortPct, "augustus_ro_abort_pct")
	}
}

// --- Multi-proof microbenchmarks: one pruned-subtree proof per request
// vs N independent proofs, at 1/10/100 keys. proofbytes/op and hashes/op
// quantify the wire and verify-CPU savings the clientscale experiment
// sees end to end. ---

// benchMultiTree builds a 10k-key tree plus a query of n keys (about one
// in eight absent, as in the RO workload's partition misses).
func benchMultiTree(n int) (*merkle.Tree, [][]byte, []merkle.KeyAnswer) {
	tr := merkle.New()
	vals := make(map[string][]byte, 10000)
	var pool [][]byte
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("mp-key-%06d", i))
		v := []byte(fmt.Sprintf("mp-val-%d", i))
		tr = tr.Insert(k, merkle.HashValue(v))
		vals[string(k)] = v
		pool = append(pool, k)
	}
	keys := make([][]byte, 0, n)
	answers := make([]merkle.KeyAnswer, 0, n)
	for i := 0; i < n; i++ {
		var k []byte
		if i%8 == 7 {
			k = []byte(fmt.Sprintf("mp-absent-%06d", i))
		} else {
			k = pool[(i*977)%len(pool)]
		}
		keys = append(keys, k)
		if v, ok := vals[string(k)]; ok {
			answers = append(answers, merkle.KeyAnswer{Key: k, Value: v, Found: true})
		} else {
			answers = append(answers, merkle.KeyAnswer{Key: k, Found: false})
		}
	}
	return tr, keys, answers
}

// singleProofCost returns the canonical bytes of the N independent
// proofs replaced by one multi-proof over keys.
func singleProofCost(tr *merkle.Tree, keys [][]byte) int {
	total := 0
	for _, k := range keys {
		if p, _, err := tr.Prove(k); err == nil {
			total += len(protocol.EncodeProof(&p))
		} else if ap, err := tr.ProveAbsent(k); err == nil {
			total += len(protocol.EncodeAbsenceProof(&ap))
		}
	}
	return total
}

func BenchmarkMultiProve(b *testing.B) {
	for _, n := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			tr, keys, _ := benchMultiTree(n)
			mp, err := tr.ProveMulti(keys)
			if err != nil {
				b.Fatal(err)
			}
			multiBytes := len(protocol.EncodeMultiProof(&mp))
			singleBytes := singleProofCost(tr, keys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.ProveMulti(keys); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(multiBytes), "proofbytes/op")
			b.ReportMetric(float64(singleBytes), "singlebytes/op")
			b.ReportMetric(float64(singleBytes)/float64(multiBytes), "shrink_x")
		})
	}
}

func BenchmarkVerifyMulti(b *testing.B) {
	for _, n := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			tr, keys, answers := benchMultiTree(n)
			root := tr.Root()
			mp, err := tr.ProveMulti(keys)
			if err != nil {
				b.Fatal(err)
			}
			// Hash count of verifying the N independent proofs instead.
			var singleHashes uint64
			for _, a := range answers {
				var p merkle.Proof
				var ap merkle.AbsenceProof
				found := a.Found
				if found {
					p, _, err = tr.Prove(a.Key)
				} else {
					ap, err = tr.ProveAbsent(a.Key)
				}
				if err != nil {
					b.Fatal(err)
				}
				hs := merkle.HashOps()
				if found {
					err = merkle.VerifyProof(root, a.Key, a.Value, p)
				} else {
					err = merkle.VerifyAbsence(root, a.Key, ap)
				}
				if err != nil {
					b.Fatal(err)
				}
				singleHashes += merkle.HashOps() - hs
			}
			start := merkle.HashOps()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := merkle.VerifyMulti(root, answers, mp); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(merkle.HashOps()-start)/float64(b.N), "hashes/op")
			b.ReportMetric(float64(singleHashes), "singlehashes/op")
		})
	}
}

// BenchmarkClientScale — open-loop session clients driving verified
// reads: throughput and p99 at the largest fleet, with the multi-proof
// and root-cache savings reported against the toggled-off series.
func BenchmarkClientScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.ClientScale(benchScale)
		x := fmt.Sprintf("clients=%d", benchScale.ROWorkers*16)
		fast := pick(pts, "fastpath", x)
		noMulti := pick(pts, "no-multiproof", x)
		noCache := pick(pts, "no-rootcache", x)
		if fast == nil || noMulti == nil || noCache == nil {
			b.Fatal("missing series")
		}
		b.ReportMetric(fast.ThroughputTPS, "ro_tps")
		b.ReportMetric(fast.P99MS, "p99_ms")
		b.ReportMetric(fast.P999MS, "p999_ms")
		b.ReportMetric(fast.ProofBytesPerReq, "proofbytes_req")
		b.ReportMetric(noMulti.ProofBytesPerReq, "proofbytes_req_nomulti")
		b.ReportMetric(float64(fast.CertVerifications), "certverifies")
		b.ReportMetric(float64(noCache.CertVerifications), "certverifies_nocache")
	}
}
