package wal_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"transedge/internal/wal"
)

// FuzzOpenSegment feeds arbitrary bytes to Open as a segment file's
// contents. The crash-safety contract: Open never panics and never
// errors on corruption — it recovers the longest intact prefix (whose
// records must replay strictly monotonically) and leaves a usable log.
func FuzzOpenSegment(f *testing.F) {
	// Seeds: a valid two-record segment, its truncations, a bit-flipped
	// variant, and structured garbage (static seeds live in testdata/fuzz/).
	dir := f.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		f.Fatal(err)
	}
	w.Append(1, []byte("first-payload"))
	w.Append(2, []byte("second-payload"))
	w.Close()
	valid, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%016d.wal", 1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:7])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%016d.wal", 1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		lastID := int64(-1 << 62)
		w, err := wal.Open(wal.Options{Dir: dir}, func(id int64, payload []byte) bool {
			if id <= lastID {
				t.Fatalf("replay not monotonic: %d after %d", id, lastID)
			}
			lastID = id
			return true
		})
		if err != nil {
			// Corruption is recovered, never surfaced; only real I/O
			// failures may error, and a fresh tempdir has none.
			t.Fatalf("Open errored on corrupt input: %v", err)
		}
		// The recovered log must accept appends above the survivors.
		if err := w.Append(w.LastID()+1, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		w.Close()
	})
}
