// Package wal implements the group-commit write-ahead log of the
// durability layer (DESIGN.md §8): certified batches are appended —
// length-prefixed, CRC'd, ID-tagged — before delivery applies them, and
// fsyncs are batched so one disk flush covers a group of commits.
//
// The log is a directory of sequentially numbered segment files. Open
// replays every intact record through a caller-supplied callback and
// truncates the log at the first sign of damage — a torn frame, a CRC
// mismatch, a non-monotonic record ID, or a record the callback rejects —
// exactly the "keep the longest verifiable prefix" rule a crashed append
// requires. Everything after the damage point (including later segments)
// is discarded: records are applied in order, so nothing beyond the first
// bad record can be trusted to chain.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// SyncNever disables fsync entirely (the benchmarking mode: the OS page
// cache is the only durability, so a process crash loses nothing but a
// machine crash may lose the tail).
const SyncNever = -1

// DefaultSyncEvery is the group-commit width when Options.SyncEvery is
// unset: one fsync covers up to this many appended batches.
const DefaultSyncEvery = 8

// DefaultSyncInterval bounds how stale a partial group may get before
// MaybeSync flushes it anyway.
const DefaultSyncInterval = 2 * time.Millisecond

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 8 << 20

// maxRecordBytes bounds a single record frame; a length prefix beyond it
// is treated as corruption rather than honored with a giant allocation.
const maxRecordBytes = 64 << 20

// ErrCrashed is returned by every operation after an injected crash (see
// CrashAfter/CrashBeforeSync/CrashAfterSync) or a real write error: the
// log is dead and the caller must degrade or restart.
var ErrCrashed = errors.New("wal: log crashed")

// Options configures a log.
type Options struct {
	// Dir is the log directory (created if absent).
	Dir string
	// SyncEvery is the group-commit width: fsync after this many appends
	// (0 = DefaultSyncEvery, SyncNever = no fsync ever).
	SyncEvery int
	// SyncInterval bounds the staleness of a partial group: MaybeSync
	// flushes once this much time passed since the group's first append
	// (0 = DefaultSyncInterval). Ignored under SyncNever.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// segment is one closed or active log file and the record-ID range it
// holds (first > last means empty).
type segment struct {
	seq   int64
	first int64
	last  int64
}

func (s segment) empty() bool { return s.first > s.last }

// Log is a group-commit write-ahead log. It is not internally locked:
// the owning replica's event loop is the only appender (crash-injection
// hooks must be armed before the loop runs or between operations).
type Log struct {
	opts Options

	f      *os.File // active segment
	active segment
	closed []segment // earlier segments still on disk
	nextID int64     // next expected record ID (monotonicity check)

	written int64 // bytes in the active segment
	synced  int64 // bytes of the active segment known flushed

	pending      int // appends since the last sync
	firstPending time.Time

	// Crash injection (tests): crashAfter is the remaining byte budget
	// before a torn write (negative = disarmed); the sync hooks fire on
	// the next Sync, before or after the actual flush. Atomic so a test
	// can arm a hook while the owning event loop appends.
	crashAfter      atomic.Int64
	crashBeforeSync atomic.Bool
	crashAfterSync  atomic.Bool
	crashed         atomic.Bool

	// syncs counts fsync calls issued, for tests and metrics.
	syncs atomic.Int64
}

func segName(seq int64) string { return fmt.Sprintf("%016d.wal", seq) }

func (l *Log) segPath(s segment) string {
	return filepath.Join(l.opts.Dir, segName(s.seq))
}

// Open opens (or creates) the log in opts.Dir and replays every intact
// record, in order, through replay. The payload slice passed to replay is
// only valid during the call. A replay returning false rejects the record
// — it and everything after it are truncated from disk, the same
// treatment a torn or corrupt record gets. Open never returns an error
// for corruption (that is the expected after-crash state); only real I/O
// or filesystem failures surface.
func Open(opts Options, replay func(id int64, payload []byte) bool) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	names, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opts: opts, nextID: -1 << 62}
	l.crashAfter.Store(-1)

	damaged := false
	var maxSeq int64
	for i, seq := range names {
		if seq > maxSeq {
			maxSeq = seq
		}
		path := filepath.Join(opts.Dir, segName(seq))
		if damaged {
			// Everything after the damage point is untrusted; remove it.
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		seg := segment{seq: seq, first: 1, last: 0}
		keep, size, err := l.scanSegment(path, &seg, replay)
		if err != nil {
			return nil, err
		}
		if !keep {
			damaged = true
			if size == 0 && seg.empty() {
				// Nothing salvageable in this file at all.
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				continue
			}
			if err := truncateFile(path, size); err != nil {
				return nil, err
			}
		}
		if i == len(names)-1 || damaged {
			// Reopen the survivor as the active segment.
			f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			if _, err := f.Seek(size, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			l.f, l.active, l.written, l.synced = f, seg, size, size
		} else {
			l.closed = append(l.closed, seg)
		}
	}
	if l.f == nil {
		if err := l.newSegment(maxSeq + 1); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range ents {
		var seq int64
		if _, err := fmt.Sscanf(e.Name(), "%016d.wal", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanSegment replays one file. It returns keep=false when the file holds
// damage (or a rejected record) at offset size — the caller truncates
// there and discards later segments.
func (l *Log) scanSegment(path string, seg *segment, replay func(int64, []byte) bool) (keep bool, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, err
	}
	defer f.Close()

	var off int64
	hdr := make([]byte, 16)
	var body []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return true, off, nil // clean end
			}
			return false, off, nil // torn header
		}
		length := be32(hdr[0:4])
		crc := be32(hdr[4:8])
		id := int64(be64(hdr[8:16]))
		if length > maxRecordBytes {
			return false, off, nil
		}
		if int64(len(body)) < int64(length) {
			body = make([]byte, length)
		}
		payload := body[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return false, off, nil // torn body
		}
		if crc32.ChecksumIEEE(append(hdr[8:16:16], payload...)) != crc {
			return false, off, nil
		}
		if id <= l.nextID {
			return false, off, nil // IDs must be strictly increasing
		}
		if replay != nil && !replay(id, payload) {
			return false, off, nil
		}
		l.nextID = id
		if seg.empty() {
			seg.first = id
		}
		seg.last = id
		off += 16 + int64(length)
	}
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Truncate(size)
}

func (l *Log) newSegment(seq int64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.active = segment{seq: seq, first: 1, last: 0}
	l.written, l.synced = 0, 0
	return nil
}

// rotate closes the active segment and starts the next one. The closed
// file keeps its unsynced tail: rotation is not a durability point (the
// group-commit policy is), but closed files are never written again.
func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	l.closed = append(l.closed, l.active)
	return l.newSegment(l.active.seq + 1)
}

// Append writes one record. Durability follows the group-commit policy:
// the record is on disk in the page cache immediately, fsynced once the
// group fills (SyncEvery) or ages out (SyncInterval, via MaybeSync).
func (l *Log) Append(id int64, payload []byte) error {
	if l.crashed.Load() {
		return ErrCrashed
	}
	if id <= l.nextID {
		return fmt.Errorf("wal: append %d not above last record %d", id, l.nextID)
	}
	frame := make([]byte, 16+len(payload))
	be32put(frame[0:4], uint32(len(payload)))
	be64put(frame[8:16], uint64(id))
	copy(frame[16:], payload)
	be32put(frame[4:8], crc32.ChecksumIEEE(frame[8:]))

	if l.written > 0 && l.written+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.crashed.Store(true)
			return err
		}
	}
	if ca := l.crashAfter.Load(); ca >= 0 {
		if int64(len(frame)) > ca {
			// Injected torn write: part of the frame lands, then the
			// "process" dies. Every later operation fails.
			l.f.Write(frame[:ca])
			l.f.Sync()
			l.crashed.Store(true)
			return ErrCrashed
		}
		l.crashAfter.Store(ca - int64(len(frame)))
	}
	if _, err := l.f.Write(frame); err != nil {
		l.crashed.Store(true)
		return err
	}
	l.written += int64(len(frame))
	l.nextID = id
	if l.active.empty() {
		l.active.first = id
	}
	l.active.last = id
	if l.pending == 0 {
		l.firstPending = time.Now()
	}
	l.pending++
	if l.opts.SyncEvery > 0 && l.pending >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Sync flushes the pending group to stable storage (no-op when nothing is
// pending or fsync is disabled).
func (l *Log) Sync() error {
	if l.crashed.Load() {
		return ErrCrashed
	}
	if l.crashBeforeSync.Load() {
		// Injected crash before the flush: the unsynced tail is exactly
		// what a power cut would lose — drop it from disk so a restart
		// observes the loss.
		l.f.Truncate(l.synced)
		l.crashed.Store(true)
		return ErrCrashed
	}
	if l.pending == 0 || l.opts.SyncEvery == SyncNever {
		l.pending = 0
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.crashed.Store(true)
		return err
	}
	l.syncs.Add(1)
	l.synced = l.written
	l.pending = 0
	if l.crashAfterSync.Load() {
		l.crashed.Store(true)
		return ErrCrashed
	}
	return nil
}

// MaybeSync flushes a partial group whose first append is older than
// SyncInterval; the replica calls it from its periodic tick so a quiet
// stretch cannot leave a tail unsynced forever.
func (l *Log) MaybeSync() error {
	if l.crashed.Load() {
		return ErrCrashed
	}
	if l.pending == 0 || l.opts.SyncEvery == SyncNever {
		return nil
	}
	if time.Since(l.firstPending) < l.opts.SyncInterval {
		return nil
	}
	return l.Sync()
}

// Truncate drops every record with ID < below — called when a stable
// checkpoint at below-1 is persisted, making the prefix redundant. Only
// whole segments are deleted (record-level holes would break the
// monotonic scan); the active segment rotates first if it is entirely
// below the boundary.
func (l *Log) Truncate(below int64) error {
	if l.crashed.Load() {
		return ErrCrashed
	}
	if !l.active.empty() && l.active.last < below {
		if err := l.rotate(); err != nil {
			l.crashed.Store(true)
			return err
		}
	}
	kept := l.closed[:0]
	for _, s := range l.closed {
		if !s.empty() && s.last >= below {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(l.segPath(s)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	l.closed = append([]segment(nil), kept...)
	return nil
}

// Close flushes and closes the log. A crashed log closes without
// flushing.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if !l.crashed.Load() {
		err = l.Sync()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int { return len(l.closed) + 1 }

// LastID returns the newest record ID (or a very negative sentinel when
// the log never held a record).
func (l *Log) LastID() int64 { return l.nextID }

// Syncs returns how many fsyncs the log has issued.
func (l *Log) SyncCount() int64 { return l.syncs.Load() }

// Crashed reports whether the log is dead (injected crash or I/O error).
// Safe to poll from other goroutines.
func (l *Log) Crashed() bool { return l.crashed.Load() }

// CrashAfter arms an injected torn-write crash: the log dies mid-frame
// once n more bytes (frames included) have been written. Safe to arm
// while the owning loop appends. Tests only.
func (l *Log) CrashAfter(n int64) { l.crashAfter.Store(n) }

// CrashBeforeSync makes the next Sync die before flushing, dropping the
// unsynced tail from disk — the group-commit loss window. Tests only.
func (l *Log) CrashBeforeSync() { l.crashBeforeSync.Store(true) }

// CrashAfterSync makes the next Sync die right after a successful flush:
// everything appended so far survives. Tests only.
func (l *Log) CrashAfterSync() { l.crashAfterSync.Store(true) }

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func be64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func be32put(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func be64put(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
