package wal_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"transedge/internal/wal"
)

// collect reopens the log at dir and returns the replayed records.
func collect(t *testing.T, dir string) (map[int64][]byte, *wal.Log) {
	t.Helper()
	got := make(map[int64][]byte)
	w, err := wal.Open(wal.Options{Dir: dir}, func(id int64, payload []byte) bool {
		got[id] = append([]byte(nil), payload...)
		return true
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return got, w
}

func appendN(t *testing.T, w *wal.Log, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := int64(start + i)
		if err := w.Append(id, []byte(fmt.Sprintf("payload-%d", id))); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 20)
	if w.LastID() != 20 {
		t.Fatalf("LastID = %d, want 20", w.LastID())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
	for id := int64(1); id <= 20; id++ {
		if want := fmt.Sprintf("payload-%d", id); string(got[id]) != want {
			t.Fatalf("record %d = %q, want %q", id, got[id], want)
		}
	}
	// The reopened log appends where the old one left off.
	if err := w2.Append(21, []byte("next")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(21, []byte("dup")); err == nil {
		t.Fatal("non-monotonic append accepted")
	}
}

func TestGroupCommitSyncPolicy(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 4, SyncInterval: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 3)
	if w.SyncCount() != 0 {
		t.Fatalf("synced %d times before the group filled", w.SyncCount())
	}
	// MaybeSync must not flush a young partial group.
	if err := w.MaybeSync(); err != nil {
		t.Fatal(err)
	}
	if w.SyncCount() != 0 {
		t.Fatal("MaybeSync flushed before SyncInterval elapsed")
	}
	appendN(t, w, 4, 1) // fills the group of 4
	if w.SyncCount() != 1 {
		t.Fatalf("SyncCount = %d after a full group, want 1", w.SyncCount())
	}
}

func TestMaybeSyncFlushesAgedGroup(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 100, SyncInterval: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 2)
	time.Sleep(3 * time.Millisecond)
	if err := w.MaybeSync(); err != nil {
		t.Fatal(err)
	}
	if w.SyncCount() != 1 {
		t.Fatalf("SyncCount = %d after the group aged out, want 1", w.SyncCount())
	}
}

func TestSyncNeverIssuesNoFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SyncEvery: wal.SyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 50)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.MaybeSync(); err != nil {
		t.Fatal(err)
	}
	if w.SyncCount() != 0 {
		t.Fatalf("SyncCount = %d under SyncNever, want 0", w.SyncCount())
	}
	w.Close()
	// The records still replay: page-cache writes survive a graceful close.
	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) != 50 {
		t.Fatalf("replayed %d records, want 50", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5)
	w.Close()

	// Tear the last record: chop bytes off the single segment file.
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	got, w2 := collect(t, dir)
	if len(got) != 4 {
		t.Fatalf("replayed %d records after a torn tail, want 4", len(got))
	}
	// The truncated log accepts new appends above the surviving prefix.
	if err := w2.Append(5, []byte("rewritten")); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	w2.Close()
	got, w3 := collect(t, dir)
	defer w3.Close()
	if string(got[5]) != "rewritten" {
		t.Fatalf("record 5 = %q after rewrite, want %q", got[5], "rewritten")
	}
}

func TestBitFlipTruncatesFromDamage(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 6)
	w.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40 // flip one bit mid-log
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) >= 6 {
		t.Fatalf("replayed %d records despite a bit flip", len(got))
	}
	// Whatever survived is a strict prefix: IDs 1..len with intact bodies.
	for id := int64(1); id <= int64(len(got)); id++ {
		if want := fmt.Sprintf("payload-%d", id); string(got[id]) != want {
			t.Fatalf("record %d = %q, want %q", id, got[id], want)
		}
	}
}

func TestRejectedRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5)
	w.Close()

	// The callback rejecting record 4 truncates it and record 5.
	var ids []int64
	w2, err := wal.Open(wal.Options{Dir: dir}, func(id int64, _ []byte) bool {
		if id == 4 {
			return false
		}
		ids = append(ids, id)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()

	got, w3 := collect(t, dir)
	defer w3.Close()
	if len(got) != 3 {
		t.Fatalf("%d records survived a rejection at 4, want 3", len(got))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 10)
	if w.Segments() < 5 {
		t.Fatalf("Segments = %d with 32-byte segments and 10 records", w.Segments())
	}

	// Checkpoint at 7: records below it are redundant. Only whole
	// segments go; everything >= 7 must survive.
	if err := w.Truncate(7); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got, w2 := collect(t, dir)
	if len(got) == 0 {
		t.Fatal("truncation removed the live suffix")
	}
	for id := int64(7); id <= 10; id++ {
		if want := fmt.Sprintf("payload-%d", id); string(got[id]) != want {
			t.Fatalf("record %d = %q after Truncate(7), want %q", id, got[id], want)
		}
	}
	for id := range got {
		if id < 6 { // id 6 may share a segment with 7; earlier ones must be gone
			t.Fatalf("record %d survived Truncate(7) in a fully-dead segment", id)
		}
	}
	// Appends continue above the old tip after reopen.
	if err := w2.Append(11, []byte("payload-11")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
}

func TestTruncateEverythingRotatesActive(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5)
	// Everything below 100: the active segment itself is fully redundant
	// and must rotate away rather than keep dead records.
	if err := w.Truncate(100); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 100, 1)
	w.Close()

	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) != 1 || string(got[100]) != "payload-100" {
		t.Fatalf("got %v records after full truncation, want only record 100", len(got))
	}
}

func TestCrashAfterTearsFrameAndRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 3)
	w.Sync()
	w.CrashAfter(10) // the next frame dies 10 bytes in
	if err := w.Append(4, bytes.Repeat([]byte("x"), 100)); err == nil {
		t.Fatal("append survived an injected torn write")
	}
	if !w.Crashed() {
		t.Fatal("log not marked crashed")
	}
	// Every later operation fails.
	if err := w.Append(5, []byte("y")); err == nil {
		t.Fatal("append accepted on a crashed log")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync accepted on a crashed log")
	}
	w.Close()

	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d records after a torn-frame crash, want 3", len(got))
	}
}

func TestCrashBeforeSyncLosesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 4) // full group: synced
	appendN(t, w, 5, 2) // partial group: page cache only
	w.CrashBeforeSync()
	if err := w.Sync(); err == nil {
		t.Fatal("sync survived the injected pre-flush crash")
	}
	w.Close()

	// The power cut loses exactly the unsynced tail: 1–4 survive, 5–6 die.
	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) != 4 {
		t.Fatalf("%d records survived a pre-sync crash, want the 4 synced ones", len(got))
	}
	if _, exists := got[5]; exists {
		t.Fatal("unsynced record 5 survived a pre-sync power cut")
	}
}

func TestCrashAfterSyncKeepsEverything(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SyncEvery: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 6)
	w.CrashAfterSync()
	if err := w.Sync(); err == nil {
		t.Fatal("sync survived the injected post-flush crash")
	}
	w.Close()

	got, w2 := collect(t, dir)
	defer w2.Close()
	if len(got) != 6 {
		t.Fatalf("%d records survived a post-sync crash, want all 6", len(got))
	}
}

func TestOpenOnGarbageFileRecoversCleanly(t *testing.T) {
	dir := t.TempDir()
	// A segment-named file full of noise: Open must not error and must
	// leave a usable (empty) log.
	if err := os.WriteFile(filepath.Join(dir, "0000000000000001.wal"),
		bytes.Repeat([]byte{0xde, 0xad}, 300), 0o644); err != nil {
		t.Fatal(err)
	}
	got, w := collect(t, dir)
	defer w.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records from garbage", len(got))
	}
	if err := w.Append(1, []byte("fresh")); err != nil {
		t.Fatalf("append after garbage recovery: %v", err)
	}
}

func TestDamagedMiddleSegmentDropsLaterOnes(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 9)
	if w.Segments() < 3 {
		t.Fatalf("Segments = %d, want >= 3", w.Segments())
	}
	w.Close()

	// Corrupt the second segment: its suffix AND every later segment are
	// untrusted (records apply in order; nothing after the damage chains).
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err := os.Truncate(segs[1], 4); err != nil {
		t.Fatal(err)
	}

	got, w2 := collect(t, dir)
	defer w2.Close()
	var maxID int64
	for id := range got {
		if id > maxID {
			maxID = id
		}
	}
	if int64(len(got)) != maxID {
		t.Fatalf("surviving records not a prefix: %d records, max ID %d", len(got), maxID)
	}
	remaining, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(remaining) >= len(segs) {
		t.Fatal("segments after the damage point were not removed")
	}
}
