package workload

import (
	"testing"
	"time"

	"transedge/internal/protocol"
)

func TestInitialDataCoversKeyspace(t *testing.T) {
	g := New(Config{Keys: 500, Clusters: 3, Seed: 1, ValueSize: 16})
	data := g.InitialData()
	if len(data) != 500 {
		t.Fatalf("InitialData has %d keys, want 500", len(data))
	}
	for k, v := range data {
		if len(v) != 16 {
			t.Fatalf("value for %q has %d bytes, want 16", k, len(v))
		}
	}
}

func TestKeysPartitionedUniformly(t *testing.T) {
	g := New(Config{Keys: 9000, Clusters: 3, Seed: 1})
	for c := int32(0); c < 3; c++ {
		n := len(g.KeysOf(c))
		if n < 2000 || n > 4000 {
			t.Fatalf("cluster %d owns %d of 9000 keys; distribution too skewed", c, n)
		}
	}
}

func TestNextRWLocalStaysLocal(t *testing.T) {
	g := New(Config{Keys: 3000, Clusters: 3, Seed: 2, LocalFraction: 1.0, ReadOps: 3, WriteOps: 2})
	part := protocol.Partitioner{N: 3}
	for i := 0; i < 50; i++ {
		txn := g.NextRW()
		if !txn.Local {
			t.Fatal("LocalFraction=1 produced a distributed txn")
		}
		owner := part.Of(txn.ReadKeys[0])
		for _, k := range append(txn.ReadKeys, txn.WriteKeys...) {
			if part.Of(k) != owner {
				t.Fatalf("local txn spans clusters: %v %v", txn.ReadKeys, txn.WriteKeys)
			}
		}
	}
}

func TestNextRWDistributedSpansClusters(t *testing.T) {
	g := New(Config{Keys: 3000, Clusters: 3, Seed: 3, LocalFraction: 0, ReadOps: 5, WriteOps: 3})
	part := protocol.Partitioner{N: 3}
	for i := 0; i < 50; i++ {
		txn := g.NextRW()
		if txn.Local {
			t.Fatal("LocalFraction=0 produced a local txn")
		}
		clusters := map[int32]bool{}
		for _, k := range append(txn.ReadKeys, txn.WriteKeys...) {
			clusters[part.Of(k)] = true
		}
		if len(clusters) < 2 {
			t.Fatalf("distributed txn touches %d clusters", len(clusters))
		}
		if len(txn.ReadKeys) != 5 || len(txn.WriteKeys) != 3 {
			t.Fatalf("op counts: %d reads %d writes", len(txn.ReadKeys), len(txn.WriteKeys))
		}
	}
}

func TestNextROShape(t *testing.T) {
	g := New(Config{Keys: 5000, Clusters: 5, Seed: 4, ROClusters: 3, ROPerCluster: 2})
	part := protocol.Partitioner{N: 5}
	keys := g.NextRO()
	if len(keys) != 6 {
		t.Fatalf("RO txn has %d keys, want 6", len(keys))
	}
	perCluster := map[int32]int{}
	for _, k := range keys {
		perCluster[part.Of(k)]++
	}
	if len(perCluster) != 3 {
		t.Fatalf("RO txn spans %d clusters, want 3", len(perCluster))
	}
}

func TestNextROScanSize(t *testing.T) {
	g := New(Config{Keys: 5000, Clusters: 5, Seed: 5})
	keys := g.NextROScan(250)
	if len(keys) != 250 {
		t.Fatalf("scan has %d keys, want 250", len(keys))
	}
	dedup := map[string]bool{}
	for _, k := range keys {
		dedup[k] = true
	}
	if len(dedup) != len(keys) {
		t.Fatal("scan contains duplicate keys")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(Config{Keys: 1000, Clusters: 3, Seed: 9})
	b := New(Config{Keys: 1000, Clusters: 3, Seed: 9})
	for i := 0; i < 20; i++ {
		ta, tb := a.NextRW(), b.NextRW()
		if len(ta.ReadKeys) != len(tb.ReadKeys) {
			t.Fatal("generators diverged")
		}
		for j := range ta.ReadKeys {
			if ta.ReadKeys[j] != tb.ReadKeys[j] {
				t.Fatal("generators diverged on keys")
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := New(Config{})
	if g.cfg.Keys != 10000 || g.cfg.ValueSize != 256 || g.cfg.ReadOps != 5 {
		t.Fatalf("defaults not applied: %+v", g.cfg)
	}
	txn := g.NextRW()
	if len(txn.ReadKeys) == 0 {
		t.Fatal("default generator produced empty txn")
	}
}

func TestROFractionMix(t *testing.T) {
	// Deterministic for a seed, and the realized mix tracks the knob.
	a := New(Config{Clusters: 2, Seed: 7, ROFraction: 0.9})
	b := New(Config{Clusters: 2, Seed: 7, ROFraction: 0.9})
	ro := 0
	for i := 0; i < 2000; i++ {
		ra, rb := a.NextIsRO(), b.NextIsRO()
		if ra != rb {
			t.Fatal("NextIsRO diverged between same-seed generators")
		}
		if ra {
			ro++
		}
	}
	if ro < 1700 || ro > 1990 {
		t.Fatalf("ROFraction 0.9 realized %d/2000 read-only draws", ro)
	}
	// Zero fraction (the dedicated-worker default) never draws read-only.
	c := New(Config{Clusters: 2, Seed: 7})
	for i := 0; i < 100; i++ {
		if c.NextIsRO() {
			t.Fatal("zero ROFraction drew a read-only op")
		}
	}
}

// TestROFractionEdges pins the boundary semantics: an explicit 0.0 is
// all read-write, and 1.0 is all read-only (rand.Float64 lives in
// [0, 1), so `< 1.0` must hold for every draw — a `<=` regression or a
// rounding change would break a pure-read workload sweep silently).
func TestROFractionEdges(t *testing.T) {
	zero := New(Config{Clusters: 3, Seed: 11, ROFraction: 0.0})
	one := New(Config{Clusters: 3, Seed: 11, ROFraction: 1.0})
	for i := 0; i < 5000; i++ {
		if zero.NextIsRO() {
			t.Fatalf("draw %d: ROFraction 0.0 produced a read-only op", i)
		}
		if !one.NextIsRO() {
			t.Fatalf("draw %d: ROFraction 1.0 produced a read-write op", i)
		}
	}
}

// TestNextIsROCrossSeedDeterminism: for any seed, the NextIsRO stream —
// including one interleaved with NextRW/NextRO draws, as mixed workers
// interleave them — is a pure function of the seed, so every harness run
// is reproducible; and distinct seeds actually decorrelate the streams.
func TestNextIsROCrossSeedDeterminism(t *testing.T) {
	draw := func(seed int64) []bool {
		g := New(Config{Clusters: 2, Keys: 200, Seed: seed, ROFraction: 0.5})
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			ro := g.NextIsRO()
			out = append(out, ro)
			// Interleave the class draw with the op generators exactly
			// like a mixed worker does.
			if ro {
				g.NextRO()
			} else {
				g.NextRW()
			}
		}
		return out
	}
	distinct := false
	base := draw(0)
	for seed := int64(0); seed < 20; seed++ {
		a, b := draw(seed), draw(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: NextIsRO stream not deterministic at draw %d", seed, i)
			}
		}
		if seed > 0 {
			for i := range a {
				if a[i] != base[i] {
					distinct = true
					break
				}
			}
		}
	}
	if !distinct {
		t.Fatal("every seed produced the identical NextIsRO stream")
	}
}

// TestZipfSkewConcentrates: with ZipfS set, a large sample of single-key
// RO draws concentrates on a small head of each cluster's keyspace, while
// the uniform generator spreads out; both remain deterministic per seed.
func TestZipfSkewConcentrates(t *testing.T) {
	sample := func(zipfS float64, seed int64) map[string]int {
		g := New(Config{Keys: 2000, Clusters: 2, Seed: seed, ZipfS: zipfS, ROClusters: 1, ROPerCluster: 1})
		counts := make(map[string]int)
		for i := 0; i < 5000; i++ {
			for _, k := range g.NextRO() {
				counts[k]++
			}
		}
		return counts
	}
	top := func(counts map[string]int) int {
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	skewed, uniform := sample(1.3, 7), sample(0, 7)
	if ts, tu := top(skewed), top(uniform); ts < 10*tu {
		t.Fatalf("zipf hottest key drawn %d times vs uniform %d — no meaningful skew", ts, tu)
	}
	if len(skewed) >= len(uniform) {
		t.Fatalf("zipf touched %d distinct keys, uniform %d — expected concentration", len(skewed), len(uniform))
	}
	again := sample(1.3, 7)
	for k, c := range skewed {
		if again[k] != c {
			t.Fatalf("skewed draw stream not deterministic for seed: key %q %d vs %d", k, c, again[k])
		}
	}
}

// TestZipfDrawsStayDistinct: skewed multi-key picks still return n
// distinct keys, even from a pool barely larger than the request.
func TestZipfDrawsStayDistinct(t *testing.T) {
	g := New(Config{Keys: 24, Clusters: 2, Seed: 3, ZipfS: 1.5, ROClusters: 2, ROPerCluster: 8})
	for trial := 0; trial < 50; trial++ {
		keys := g.NextRO()
		seen := make(map[string]bool, len(keys))
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate key %q in skewed draw", k)
			}
			seen[k] = true
		}
		if len(keys) != 16 {
			t.Fatalf("drew %d keys, want 16", len(keys))
		}
	}
}

// TestNextArrivalMeanMatchesRate: the Poisson gaps average 1/rate.
func TestNextArrivalMeanMatchesRate(t *testing.T) {
	g := New(Config{Keys: 10, Clusters: 1, Seed: 9})
	const rate = 200.0
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += g.NextArrival(rate)
	}
	mean := total / n
	want := time.Duration(float64(time.Second) / rate)
	if mean < want*8/10 || mean > want*12/10 {
		t.Fatalf("mean inter-arrival %v, want about %v", mean, want)
	}
	if g.NextArrival(0) != 0 {
		t.Fatal("zero rate must not sleep")
	}
}
