// Package workload generates the transactional YCSB-style load of the
// paper's evaluation (Sec. 5.1): keys hashed uniformly across clusters,
// fixed-size values, operations bundled into transactions with
// configurable read/write counts and local/distributed mixes, read-only
// transactions reading one key from each of m clusters.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"transedge/internal/protocol"
)

// Config shapes the generated load.
type Config struct {
	Keys      int // total key count (the paper uses 1M)
	ValueSize int // value payload bytes (the paper uses 256)
	Clusters  int
	Seed      int64

	// RW transaction shape (the paper's default: 5 reads, 3 writes
	// across 5 clusters). Zero selects the default; NoOps (-1) means
	// explicitly none.
	ReadOps  int
	WriteOps int
	// LocalFraction is the probability that a generated RW transaction
	// stays within one cluster (the LRWT share of Fig. 14).
	LocalFraction float64

	// RO transaction shape: ROClusters clusters, ROPerCluster keys read
	// from each (the paper's default: 1 key from each of 5 clusters).
	ROClusters   int
	ROPerCluster int

	// ROFraction is the read mix of a blended workload: the probability
	// that the next operation drawn via NextIsRO is a snapshot read-only
	// transaction rather than a read-write one. Zero means a worker
	// never mixes (the harness's dedicated RO/RW worker pools ignore it).
	ROFraction float64

	// ZipfS, when > 1, skews key choice within each cluster by a zipfian
	// of that exponent (s=1.1 is a typical YCSB hot-spot); 0 keeps the
	// uniform draws. Each cluster ranks its own keys, so skew does not
	// concentrate load on one cluster, only on hot keys within each.
	ZipfS float64
}

func (c Config) withDefaults() Config {
	if c.Keys <= 0 {
		c.Keys = 10000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 256
	}
	if c.Clusters <= 0 {
		c.Clusters = 1
	}
	if c.ReadOps == 0 {
		c.ReadOps = 5
	} else if c.ReadOps < 0 {
		c.ReadOps = 0
	}
	if c.WriteOps == 0 {
		c.WriteOps = 3
	} else if c.WriteOps < 0 {
		c.WriteOps = 0
	}
	if c.ROClusters <= 0 || c.ROClusters > c.Clusters {
		c.ROClusters = c.Clusters
	}
	if c.ROPerCluster <= 0 {
		c.ROPerCluster = 1
	}
	return c
}

// RWTxn is one generated read-write transaction: keys to read and keys to
// write with fresh payloads.
type RWTxn struct {
	ReadKeys  []string
	WriteKeys []string
	Value     []byte
	// Local reports whether all keys share one cluster.
	Local bool
}

// Generator produces transactions deterministically from its seed. A
// Generator is not safe for concurrent use: give each worker its own
// (same config, distinct seed).
type Generator struct {
	cfg       Config
	part      protocol.Partitioner
	rng       *rand.Rand
	byCluster [][]string
	zipf      []*rand.Zipf // per-cluster rank skew, nil when uniform
	value     []byte
}

// New builds a generator.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:  cfg,
		part: protocol.Partitioner{N: int32(cfg.Clusters)},
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	g.byCluster = make([][]string, cfg.Clusters)
	for i := 0; i < cfg.Keys; i++ {
		k := Key(i)
		c := g.part.Of(k)
		g.byCluster[c] = append(g.byCluster[c], k)
	}
	g.value = make([]byte, cfg.ValueSize)
	for i := range g.value {
		g.value[i] = byte('a' + i%26)
	}
	if cfg.ZipfS > 1 {
		g.zipf = make([]*rand.Zipf, cfg.Clusters)
		for c := range g.zipf {
			if n := len(g.byCluster[c]); n > 0 {
				g.zipf[c] = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(n-1))
			}
		}
	}
	return g
}

// NoOps marks an operation count as explicitly zero.
const NoOps = -1

// Key returns the i-th keyspace key.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

// InitialData materializes the whole keyspace with initial payloads.
func (g *Generator) InitialData() map[string][]byte {
	data := make(map[string][]byte, g.cfg.Keys)
	for i := 0; i < g.cfg.Keys; i++ {
		data[Key(i)] = g.value
	}
	return data
}

// KeysOf returns the keys owned by one cluster.
func (g *Generator) KeysOf(cluster int32) []string { return g.byCluster[cluster] }

// Value returns the fixed write payload.
func (g *Generator) Value() []byte { return g.value }

// pickFrom draws n distinct keys from one cluster's keyspace — uniformly,
// or zipfian-by-rank when ZipfS is set. A skewed draw that keeps hitting
// already-chosen hot keys falls back to a uniform draw after a bounded
// number of rejections, so distinctness never livelocks on a tiny pool.
func (g *Generator) pickFrom(cluster int, n int) []string {
	pool := g.byCluster[cluster]
	if n > len(pool) {
		n = len(pool)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	rejections := 0
	for len(out) < n {
		var i int
		if z := g.zipfOf(cluster); z != nil && rejections < 8*n {
			i = int(z.Uint64())
		} else {
			i = g.rng.Intn(len(pool))
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, pool[i])
		} else {
			rejections++
		}
	}
	return out
}

// zipfOf returns the cluster's skew source, nil for uniform draws.
func (g *Generator) zipfOf(cluster int) *rand.Zipf {
	if g.zipf == nil || cluster >= len(g.zipf) {
		return nil
	}
	return g.zipf[cluster]
}

// NextArrival draws the next inter-arrival gap of an open-loop Poisson
// request process with the given mean rate (requests/second). Open-loop
// clients sleep this long between issuing requests regardless of how long
// each request takes, which is what exposes queueing delay in tail
// latencies — a closed loop self-clocks and hides it.
func (g *Generator) NextArrival(ratePerSec float64) time.Duration {
	if ratePerSec <= 0 {
		return 0
	}
	return time.Duration(g.rng.ExpFloat64() / ratePerSec * float64(time.Second))
}

// NextRW generates a read-write transaction. Local transactions confine
// all operations to one random cluster; distributed transactions spread
// operations over every cluster so each participates (the paper's "each
// transaction reads or writes some data on each participating cluster").
func (g *Generator) NextRW() RWTxn {
	local := g.rng.Float64() < g.cfg.LocalFraction
	var reads, writes []string
	if local || g.cfg.Clusters == 1 {
		c := g.rng.Intn(g.cfg.Clusters)
		keys := g.pickFrom(c, g.cfg.ReadOps+g.cfg.WriteOps)
		if len(keys) < g.cfg.ReadOps {
			reads = keys
		} else {
			reads = keys[:g.cfg.ReadOps]
			writes = keys[g.cfg.ReadOps:]
		}
		return RWTxn{ReadKeys: reads, WriteKeys: writes, Value: g.value, Local: true}
	}
	// Distributed: round-robin operations over the clusters.
	for i := 0; i < g.cfg.ReadOps; i++ {
		c := i % g.cfg.Clusters
		reads = append(reads, g.pickFrom(c, 1)...)
	}
	for i := 0; i < g.cfg.WriteOps; i++ {
		c := (g.cfg.ReadOps + i) % g.cfg.Clusters
		writes = append(writes, g.pickFrom(c, 1)...)
	}
	return RWTxn{ReadKeys: reads, WriteKeys: writes, Value: g.value, Local: false}
}

// NextIsRO draws the class of a blended workload's next operation:
// read-only with probability ROFraction, read-write otherwise. The draw
// comes from the generator's deterministic stream, so a mixed worker's
// operation sequence is reproducible from its seed.
func (g *Generator) NextIsRO() bool {
	return g.rng.Float64() < g.cfg.ROFraction
}

// NextRO generates a read-only transaction's key set: ROPerCluster keys
// from each of ROClusters clusters.
func (g *Generator) NextRO() []string {
	var out []string
	for c := 0; c < g.cfg.ROClusters; c++ {
		out = append(out, g.pickFrom(c, g.cfg.ROPerCluster)...)
	}
	return out
}

// NextROScan generates a long-running read-only scan of total keys spread
// evenly over the configured ROClusters (Fig. 7's 250–2000 read
// operations).
func (g *Generator) NextROScan(total int) []string {
	per := total / g.cfg.ROClusters
	if per == 0 {
		per = 1
	}
	var out []string
	for c := 0; c < g.cfg.ROClusters && len(out) < total; c++ {
		out = append(out, g.pickFrom(c, per)...)
	}
	return out
}
