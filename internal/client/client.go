// Package client implements the TransEdge client protocol: the
// transaction object of Sec. 2 ("Interface"), the commit path of
// Sec. 3.3.1, and the verified snapshot read-only transaction protocol of
// Sec. 4 (Algorithm 2), including the second round that repairs
// unsatisfied cross-partition dependencies.
//
// The client trusts no single node. Every read-only answer is checked
// against a Merkle membership proof and an f+1-signature batch
// certificate, so a byzantine replica can neither forge values nor lie
// about the dependency metadata (CD vector, LCE) attached to them.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// NodeID aliases the system-wide identity.
type NodeID = cryptoutil.NodeID

// Errors surfaced by the client.
var (
	ErrTimeout      = errors.New("client: request timed out")
	ErrAborted      = errors.New("client: transaction aborted")
	ErrVerification = errors.New("client: response failed verification")
	ErrStale        = errors.New("client: response older than the staleness bound")
	ErrInconsistent = errors.New("client: read-only snapshot inconsistent after second round")
	ErrServer       = errors.New("client: server error")
)

// Config assembles a client.
type Config struct {
	ID       uint32
	Net      *transport.Network
	Ring     *cryptoutil.KeyRing
	Part     protocol.Partitioner
	Clusters int
	// Timeout bounds each RPC (default 10s).
	Timeout time.Duration
	// MaxStaleness, when positive, makes read-only transactions reject
	// batches older than this bound (freshness, Sec. 4.4.2).
	MaxStaleness time.Duration
	// ReadTarget picks the replica serving read-set reads for a cluster
	// (default: the leader). Reads may go to any replica.
	ReadTarget func(cluster int32) NodeID
	// ROTarget picks the single node per partition answering read-only
	// transactions (default: the leader).
	ROTarget func(cluster int32) NodeID
	// Seed drives the coordinator choice for distributed commits.
	Seed int64
	// DisableRootCache turns off the verified-root cache: every read-only
	// reply re-verifies its certificate even when the header digest was
	// already verified, and no per-cluster checkpoint is kept. The zero
	// value caches — repeat reads at an unchanged root cost zero
	// certificate verifications.
	DisableRootCache bool
	// MeasureProofBytes makes the client canonically encode every verified
	// proof and account its size (see ProofStats). Off by default: the
	// encoding pass exists only for measurement.
	MeasureProofBytes bool
}

// Client issues transactions against a TransEdge deployment.
type Client struct {
	cfg  Config
	self NodeID
	seq  atomic.Uint32
	rng  *rand.Rand

	// certSeen memoizes batch-header digests whose certificates already
	// verified: read-only transactions under load repeatedly fetch the
	// same head batch per partition, and each certificate check costs
	// threshold Ed25519 verifications. Certificate validity for a given
	// header digest never changes, so a hit skips the whole check (the
	// freshness bound is still enforced per reply).
	certMu   sync.Mutex
	certSeen map[cryptoutil.Digest]struct{}
	// roots holds the newest verified checkpoint per cluster — the batch
	// ID and full header (Merkle root, CD, LCE) of the freshest reply this
	// client has authenticated. Sessions pin reads to it; tests and tools
	// inspect it via VerifiedCheckpoint.
	roots map[int32]Checkpoint

	// certChecks counts full certificate verifications (threshold Ed25519
	// checks actually performed, cache hits excluded).
	certChecks atomic.Int64
	// proofReqs/proofBytes account verified read-only replies and their
	// canonical proof encoding sizes when MeasureProofBytes is set.
	proofReqs  atomic.Int64
	proofBytes atomic.Int64

	// prefMu/pref remember, per cluster, the replica that last answered a
	// commit: after a leader failover the view-0 replica may be dead, and
	// starting each commit's contact rotation from the last responsive
	// replica skips the dead ones without the client ever tracking views.
	prefMu sync.Mutex
	pref   map[int32]int32
}

// certCacheLimit bounds certSeen; long-lived clients reset rather than
// grow without bound.
const certCacheLimit = 4096

// certVerified reports whether the header digest's certificate was
// already verified by this client.
func (c *Client) certVerified(d cryptoutil.Digest) bool {
	c.certMu.Lock()
	defer c.certMu.Unlock()
	_, ok := c.certSeen[d]
	return ok
}

// rememberCert records a verified certificate's header digest.
func (c *Client) rememberCert(d cryptoutil.Digest) {
	c.certMu.Lock()
	defer c.certMu.Unlock()
	if len(c.certSeen) >= certCacheLimit {
		c.certSeen = make(map[cryptoutil.Digest]struct{}, certCacheLimit)
	}
	c.certSeen[d] = struct{}{}
}

// Checkpoint is a client-verified snapshot identity for one cluster: the
// newest batch whose certificate this client checked, with its full
// header (Merkle root, CD vector, LCE, timestamp).
type Checkpoint struct {
	BatchID int64
	Header  protocol.BatchHeader
}

// VerifiedCheckpoint returns the newest verified checkpoint for a
// cluster, if any. Always empty when DisableRootCache is set.
func (c *Client) VerifiedCheckpoint(cluster int32) (Checkpoint, bool) {
	c.certMu.Lock()
	defer c.certMu.Unlock()
	cp, ok := c.roots[cluster]
	return cp, ok
}

// advanceCheckpoint records a verified header if it is newer than the
// cached checkpoint for its cluster (advance-only: a stale-but-valid
// reply never regresses the cache).
func (c *Client) advanceCheckpoint(cluster int32, h protocol.BatchHeader) {
	c.certMu.Lock()
	defer c.certMu.Unlock()
	if cur, ok := c.roots[cluster]; !ok || h.ID > cur.BatchID {
		c.roots[cluster] = Checkpoint{BatchID: h.ID, Header: h}
	}
}

// CertVerifications reports how many full certificate verifications this
// client has performed (root-cache hits excluded).
func (c *Client) CertVerifications() int64 { return c.certChecks.Load() }

// ProofStats reports the verified read-only replies counted and their
// total canonical proof bytes. Both stay zero unless MeasureProofBytes.
func (c *Client) ProofStats() (requests, bytes int64) {
	return c.proofReqs.Load(), c.proofBytes.Load()
}

// New creates a client. The client registers no mailbox: replies arrive on
// per-request channels.
func New(cfg Config) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.ReadTarget == nil {
		cfg.ReadTarget = func(c int32) NodeID { return NodeID{Cluster: c, Replica: 0} }
	}
	if cfg.ROTarget == nil {
		cfg.ROTarget = func(c int32) NodeID { return NodeID{Cluster: c, Replica: 0} }
	}
	return &Client{
		cfg:      cfg,
		self:     NodeID{Cluster: transport.ClientCluster, Replica: int32(cfg.ID)},
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID))),
		certSeen: make(map[cryptoutil.Digest]struct{}),
		roots:    make(map[int32]Checkpoint),
		pref:     make(map[int32]int32),
	}
}

// preferred returns the rotation start replica for a cluster.
func (c *Client) preferred(cluster int32) int32 {
	c.prefMu.Lock()
	defer c.prefMu.Unlock()
	return c.pref[cluster]
}

// remember records the replica whose contact produced an answer.
func (c *Client) remember(cluster, replica int32) {
	c.prefMu.Lock()
	c.pref[cluster] = replica
	c.prefMu.Unlock()
}

// threshold returns the certificate threshold (f+1) for a cluster.
func (c *Client) threshold(cluster int32) int {
	n := c.cfg.Ring.ClusterSize(cluster)
	return (n-1)/3 + 1
}

// Txn is a client-side transaction object: reads record observed versions
// for OCC validation; writes are buffered until commit (Sec. 2).
type Txn struct {
	c        *Client
	id       protocol.TxnID
	reads    []protocol.ReadEntry
	writes   []protocol.WriteOp
	buffered map[string][]byte // read-your-own-writes
	done     bool
	// onCommit observes a successful commit: the coordinator cluster, the
	// batch it committed in there, and whether the transaction spanned
	// multiple partitions. Sessions hook it to advance their floors.
	onCommit func(coord int32, batch int64, distributed bool)
}

// Begin opens a transaction.
func (c *Client) Begin() *Txn {
	return &Txn{
		c:        c,
		id:       protocol.MakeTxnID(c.cfg.ID, c.seq.Add(1)),
		buffered: make(map[string][]byte),
	}
}

// ID returns the transaction's identity.
func (t *Txn) ID() protocol.TxnID { return t.id }

// Read fetches a key's committed value and records it in the read set.
// Buffered writes of this transaction are read back directly.
func (t *Txn) Read(key string) ([]byte, error) {
	if v, ok := t.buffered[key]; ok {
		return v, nil
	}
	cluster := t.c.cfg.Part.Of(key)
	// Rotate away from an unresponsive target: any replica serves reads
	// from committed state, so a crashed ReadTarget only costs one
	// sub-timeout before the next replica answers.
	attempts := t.c.cfg.Ring.ClusterSize(cluster)
	if attempts <= 0 {
		attempts = 1
	}
	per := t.c.cfg.Timeout / time.Duration(attempts)
	if per <= 0 {
		per = t.c.cfg.Timeout
	}
	base := t.c.cfg.ReadTarget(cluster)
	replyTo := make(chan protocol.ReadReply, attempts)
	for a := 0; a < attempts; a++ {
		to := NodeID{Cluster: cluster, Replica: (base.Replica + int32(a)) % int32(attempts)}
		t.c.cfg.Net.Send(t.c.self, to, &protocol.ReadRequest{Key: key, ReplyTo: replyTo})
		select {
		case r := <-replyTo:
			version := int64(-1)
			var value []byte
			if r.Found {
				version = r.Version
				value = r.Value
			}
			t.reads = append(t.reads, protocol.ReadEntry{Key: key, Version: version})
			return value, nil
		case <-time.After(per):
		}
	}
	return nil, fmt.Errorf("%w: read %q", ErrTimeout, key)
}

// Write buffers a write; nothing reaches the system until Commit.
func (t *Txn) Write(key string, value []byte) {
	t.writes = append(t.writes, protocol.WriteOp{Key: key, Value: value})
	t.buffered[key] = value
}

// Commit submits the transaction. The coordinator cluster is chosen among
// the accessed partitions (Sec. 3.3.1). Returns ErrAborted (with the
// conflict reason wrapped) when conflict detection rejects it.
func (t *Txn) Commit() error {
	if t.done {
		return errors.New("client: transaction already finished")
	}
	t.done = true
	if len(t.reads) == 0 && len(t.writes) == 0 {
		return nil
	}
	txn := protocol.Transaction{
		ID:         t.id,
		Reads:      t.reads,
		Writes:     t.writes,
		Partitions: t.c.cfg.Part.PartitionsOf(t.reads, t.writes),
	}
	coord := txn.Partitions[t.c.rng.Intn(len(txn.Partitions))]
	// Contact rotation: a silent contact (crashed replica, or a deposed
	// leader that dropped the request) costs one sub-timeout, then the
	// next replica is tried with the SAME transaction and reply channel —
	// replicas forward to their current leader and the leader dedups
	// resubmissions, so retries can never double-commit. The rotation
	// starts at the replica that last answered for this cluster.
	attempts := t.c.cfg.Ring.ClusterSize(coord)
	if attempts <= 0 {
		attempts = 1
	}
	per := t.c.cfg.Timeout / time.Duration(attempts)
	if per <= 0 {
		per = t.c.cfg.Timeout
	}
	start := t.c.preferred(coord)
	replyTo := make(chan protocol.CommitReply, attempts)
	for a := 0; a < attempts; a++ {
		target := NodeID{Cluster: coord, Replica: (start + int32(a)) % int32(attempts)}
		t.c.cfg.Net.Send(t.c.self, target, &protocol.CommitRequest{Txn: txn, ReplyTo: replyTo})
		select {
		case r := <-replyTo:
			t.c.remember(coord, target.Replica)
			if r.Status != protocol.StatusCommitted {
				return fmt.Errorf("%w: %s", ErrAborted, r.Reason)
			}
			if t.onCommit != nil {
				t.onCommit(coord, r.CommitBatch, len(txn.Partitions) > 1)
			}
			return nil
		case <-time.After(per):
		}
	}
	return fmt.Errorf("%w: commit %v", ErrTimeout, t.id)
}
