package client_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

func newClientCfg(sys *core.System, id uint32, mut func(*client.Config)) *client.Client {
	cfg := client.Config{
		ID: id, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 10 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	return client.New(cfg)
}

// keyOn finds a fresh (not preloaded) key owned by the given cluster.
func keyOn(sys *core.System, cluster int32, tag string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("session-%s-%d", tag, i)
		if sys.Part.Of(k) == cluster {
			return k
		}
	}
}

// TestSessionReadYourWrites: a session read immediately after the
// session's own single-partition commit sees the write, first try — the
// commit batch is the session floor, so no luck with snapshot timing is
// involved.
func TestSessionReadYourWrites(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClientCfg(sys, 1, nil)
	s := c.NewSession()
	key := keyOn(sys, 0, "ryw")

	txn := s.Begin()
	txn.Write(key, []byte("mine"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if s.Floor(0) <= 0 {
		t.Fatalf("commit did not raise the session floor: %d", s.Floor(0))
	}
	res, err := s.ReadOnly([]string{key})
	if err != nil {
		t.Fatalf("session read: %v", err)
	}
	if string(res.Values[key]) != "mine" {
		t.Fatalf("session read missed own write: %q", res.Values[key])
	}
	if res.Batches[0] < s.Floor(0) {
		t.Fatalf("served batch %d below floor %d", res.Batches[0], s.Floor(0))
	}
}

// TestSessionReadYourWritesDistributed: after a multi-partition commit, a
// session read of only ONE participant's key still sees the write — even
// when that participant is not the coordinator, via the header-only
// closure contact that drags the participant's LCE over the transaction's
// prepare batch. Several rounds so the random coordinator choice covers
// both sides.
func TestSessionReadYourWritesDistributed(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClientCfg(sys, 2, nil)
	s := c.NewSession()
	for round := 0; round < 6; round++ {
		k0 := keyOn(sys, 0, fmt.Sprintf("d0-%d", round))
		k1 := keyOn(sys, 1, fmt.Sprintf("d1-%d", round))
		want := fmt.Sprintf("v-%d", round)
		txn := s.Begin()
		txn.Write(k0, []byte(want))
		txn.Write(k1, []byte(want))
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d commit: %v", round, err)
		}
		for _, k := range []string{k0, k1} {
			res, err := s.ReadOnly([]string{k})
			if err != nil {
				t.Fatalf("round %d read %q: %v", round, k, err)
			}
			if string(res.Values[k]) != want {
				t.Fatalf("round %d: session read of %q = %q, want %q", round, k, res.Values[k], want)
			}
		}
	}
}

// TestSessionClosureRetiredOnceCovered: the closure contact registered by
// a distributed commit is dropped once a session read verifies every
// dependency of the commit batch covered by the owning cluster's LCE —
// so one distributed commit does not tax every later session read with a
// coordinator round-trip forever. Read-your-writes still holds after the
// drop: the verifying read floored each participant at a batch whose LCE
// covers the prepare, and LCE is monotone over the log.
func TestSessionClosureRetiredOnceCovered(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClientCfg(sys, 9, nil)
	s := c.NewSession()
	k0 := keyOn(sys, 0, "ret0")
	k1 := keyOn(sys, 1, "ret1")

	txn := s.Begin()
	txn.Write(k0, []byte("r0"))
	txn.Write(k1, []byte("r1"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := s.ClosureClusters(); got != 1 {
		t.Fatalf("distributed commit registered %d closure clusters, want 1", got)
	}

	// A read covering both participants observes, post repair, every
	// contacted cluster's LCE at or past the coordinator CD vector — full
	// coverage evidence in one read.
	if _, err := s.ReadOnly([]string{k0, k1}); err != nil {
		t.Fatalf("covering read: %v", err)
	}
	if got := s.ClosureClusters(); got != 0 {
		t.Fatalf("closure not retired after covering read: %d clusters still contacted", got)
	}

	// Single-key session reads of each participant still see the write.
	for _, kv := range []struct{ k, want string }{{k0, "r0"}, {k1, "r1"}} {
		res, err := s.ReadOnly([]string{kv.k})
		if err != nil {
			t.Fatalf("post-retirement read %q: %v", kv.k, err)
		}
		if string(res.Values[kv.k]) != kv.want {
			t.Fatalf("post-retirement read %q = %q, want %q", kv.k, res.Values[kv.k], kv.want)
		}
	}

	// A fresh distributed commit re-registers the closure contact.
	txn = s.Begin()
	txn.Write(keyOn(sys, 0, "ret2"), []byte("x"))
	txn.Write(keyOn(sys, 1, "ret3"), []byte("y"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("second commit: %v", err)
	}
	if got := s.ClosureClusters(); got != 1 {
		t.Fatalf("second distributed commit registered %d closure clusters, want 1", got)
	}
}

// TestSessionMonotonicReads: batches served to a session never regress.
func TestSessionMonotonicReads(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClientCfg(sys, 3, nil)
	s := c.NewSession()
	keys := []string{"key-001", "key-002", "key-003"}
	last := make(map[int32]int64)
	w := newClientCfg(sys, 4, nil)
	for i := 0; i < 5; i++ {
		res, err := s.ReadOnly(keys)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		for cl, b := range res.Batches {
			if b < last[cl] {
				t.Fatalf("read %d: cluster %d batch regressed %d -> %d", i, cl, last[cl], b)
			}
			last[cl] = b
			if b < s.Floor(cl) {
				t.Fatalf("read %d: batch %d below floor %d", i, b, s.Floor(cl))
			}
		}
		// Advance the system between session reads with another client.
		txn := w.Begin()
		txn.Write(fmt.Sprintf("key-%03d", i+10), []byte(fmt.Sprintf("w%d", i)))
		if err := txn.Commit(); err != nil {
			t.Fatalf("advance %d: %v", i, err)
		}
	}
}

// TestSessionReadsZeroCertVerificationsAtUnchangedRoot: with the system
// quiescent, the first read verifies each cluster's certificate once;
// repeat session reads at the unchanged root verify none.
func TestSessionReadsZeroCertVerificationsAtUnchangedRoot(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClientCfg(sys, 5, nil)
	s := c.NewSession()
	keys := []string{"key-010", "key-011", "key-012"}
	if _, err := s.ReadOnly(keys); err != nil {
		t.Fatal(err)
	}
	before := c.CertVerifications()
	if before == 0 {
		t.Fatal("first read performed no certificate verification")
	}
	for i := 0; i < 5; i++ {
		if _, err := s.ReadOnly(keys); err != nil {
			t.Fatalf("repeat read %d: %v", i, err)
		}
	}
	if got := c.CertVerifications(); got != before {
		t.Fatalf("repeat reads at unchanged root performed %d extra certificate verifications", got-before)
	}
	for _, k := range keys {
		if cp, ok := c.VerifiedCheckpoint(sys.Part.Of(k)); !ok || cp.BatchID < 0 {
			t.Fatalf("no verified checkpoint for cluster %d", sys.Part.Of(k))
		}
	}
}

// TestDisableRootCachePaysPerRead: with the cache off, every read of
// every contacted cluster re-verifies, and no checkpoint is kept.
func TestDisableRootCachePaysPerRead(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClientCfg(sys, 6, func(cfg *client.Config) { cfg.DisableRootCache = true })
	keys := []string{"key-020", "key-021"}
	const reads = 4
	for i := 0; i < reads; i++ {
		if _, err := c.ReadOnly(keys); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	clusters := map[int32]bool{}
	for _, k := range keys {
		clusters[sys.Part.Of(k)] = true
	}
	if got, want := c.CertVerifications(), int64(reads*len(clusters)); got < want {
		t.Fatalf("cache-off client verified %d certificates, want at least %d", got, want)
	}
	for cl := range clusters {
		if _, ok := c.VerifiedCheckpoint(cl); ok {
			t.Fatalf("cache-off client kept a checkpoint for cluster %d", cl)
		}
	}
}

// TestMultiProofShrinksWireProofs: end to end, the multi-proof reply for
// a 10-key read costs fewer canonical proof bytes than the per-key path
// serving the same read.
func TestMultiProofShrinksWireProofs(t *testing.T) {
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i*7)
	}
	keys[9] = "absent-on-purpose"

	bytesFor := func(disableMulti bool) int64 {
		data := make(map[string][]byte)
		for i := 0; i < 100; i++ {
			data[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("init-%d", i))
		}
		sys := core.NewSystem(core.SystemConfig{
			Clusters: 1, F: 1, Seed: 21, BatchInterval: time.Millisecond,
			InitialData: data, DisableMultiProofRO: disableMulti,
		})
		sys.Start()
		defer sys.Stop()
		c := newClientCfg(sys, 7, func(cfg *client.Config) { cfg.MeasureProofBytes = true })
		if _, err := c.ReadOnly(keys); err != nil {
			t.Fatalf("read (disableMulti=%v): %v", disableMulti, err)
		}
		reqs, bytes := c.ProofStats()
		if reqs == 0 || bytes == 0 {
			t.Fatalf("no proof bytes measured (disableMulti=%v)", disableMulti)
		}
		return bytes
	}

	multi := bytesFor(false)
	single := bytesFor(true)
	if multi >= single {
		t.Fatalf("multi-proof read shipped %dB of proofs, per-key path %dB — expected a reduction", multi, single)
	}
	t.Logf("10-key read: multi-proof %dB vs per-key %dB (%.1f%%)", multi, single, 100*float64(multi)/float64(single))
}
