package client

import "sync"

// Session layers monotonic session guarantees over a client's verified
// reads. Plain Client.ReadOnly already gives each read a consistent,
// dependency-closed snapshot, but consecutive reads may regress (a later
// read served by a lagging snapshot) and a session's own commits may not
// be visible yet. A Session pins both:
//
//   - Monotonic reads: every verified read raises a per-cluster floor
//     (the served batch); later reads of that cluster carry the floor as
//     RORequest.MinBatch, so the server answers from a snapshot at least
//     that new, parking briefly if the batch has not committed there yet.
//
//   - Read-your-writes: a committed transaction raises the coordinator's
//     floor to its commit batch. For a single-partition transaction that
//     is the whole story — the write is only visible at that cluster. A
//     distributed commit additionally registers the coordinator as a
//     closure cluster: every session read consults it (header-only when
//     no requested key lives there), and the commit batch's CD vector
//     drags each participant's LCE over the transaction's prepare batch
//     through the ordinary dependency-repair loop. The closure read at a
//     cached verified root costs zero certificate verifications.
//
// Floors only ever rise, and the client only pins batches it has direct
// evidence of (its own verified replies and commit acknowledgments), so
// an honest cluster always serves a pinned read. Staleness stays bounded
// by the client's MaxStaleness: pinning sets a lower bound on the
// snapshot, never an upper one.
type Session struct {
	c  *Client
	mu sync.Mutex
	// floors is the per-cluster minimum acceptable batch, applied whenever
	// the cluster is consulted by a session read.
	floors map[int32]int64
	// closure marks coordinator clusters of distributed commits whose
	// participants must be dependency-closed on every read; the value is
	// the newest such commit batch.
	closure map[int32]int64
}

// NewSession opens a session over the client. Sessions are independent:
// each tracks only its own reads and commits.
func (c *Client) NewSession() *Session {
	return &Session{
		c:       c,
		floors:  make(map[int32]int64),
		closure: make(map[int32]int64),
	}
}

// Client returns the underlying client.
func (s *Session) Client() *Client { return s.c }

// Floor reports the session's current batch floor for a cluster (0 if
// the session has not observed it yet).
func (s *Session) Floor(cluster int32) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[cluster]
}

// ReadOnly executes a verified snapshot read with the session's
// guarantees, then advances the session floors to the batches served.
func (s *Session) ReadOnly(keys []string) (*ROResult, error) {
	s.mu.Lock()
	floors := make(map[int32]int64, len(s.floors))
	for cl, b := range s.floors {
		floors[cl] = b
	}
	contact := make([]int32, 0, len(s.closure))
	for cl := range s.closure {
		contact = append(contact, cl)
	}
	s.mu.Unlock()
	res, err := s.c.readOnly(keys, floors, contact)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	for cl, b := range res.Batches {
		if b > s.floors[cl] {
			s.floors[cl] = b
		}
	}
	s.mu.Unlock()
	return res, nil
}

// Begin opens a read-write transaction whose commit advances the
// session's floors, making the write visible to subsequent session reads.
func (s *Session) Begin() *Txn {
	t := s.c.Begin()
	t.onCommit = func(coord int32, batch int64, distributed bool) {
		s.mu.Lock()
		if batch > s.floors[coord] {
			s.floors[coord] = batch
		}
		if distributed && batch > s.closure[coord] {
			s.closure[coord] = batch
		}
		s.mu.Unlock()
	}
	return t
}
