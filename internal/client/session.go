package client

import "sync"

// Session layers monotonic session guarantees over a client's verified
// reads. Plain Client.ReadOnly already gives each read a consistent,
// dependency-closed snapshot, but consecutive reads may regress (a later
// read served by a lagging snapshot) and a session's own commits may not
// be visible yet. A Session pins both:
//
//   - Monotonic reads: every verified read raises a per-cluster floor
//     (the served batch); later reads of that cluster carry the floor as
//     RORequest.MinBatch, so the server answers from a snapshot at least
//     that new, parking briefly if the batch has not committed there yet.
//
//   - Read-your-writes: a committed transaction raises the coordinator's
//     floor to its commit batch. For a single-partition transaction that
//     is the whole story — the write is only visible at that cluster. A
//     distributed commit additionally registers the coordinator as a
//     closure cluster: every session read consults it (header-only when
//     no requested key lives there), and the commit batch's CD vector
//     drags each participant's LCE over the transaction's prepare batch
//     through the ordinary dependency-repair loop. The closure read at a
//     cached verified root costs zero certificate verifications.
//
//     Closure contacts are dropped once obsolete, so one distributed
//     commit does not tax every later session read forever: the first
//     closure read at a coordinator batch covering the commit records
//     the header's CD vector (CD entries are monotone over the log —
//     audited — so it dominates the commit batch's own dependencies),
//     and once the session has verified every such dependency covered by
//     the owning cluster's LCE, the contact is removed. Coverage is
//     durable within the session: the verifying read raised that
//     cluster's floor, LCE is monotone over the log, so every later
//     floored read serves an LCE at least as high.
//
// Floors only ever rise, and the client only pins batches it has direct
// evidence of (its own verified replies and commit acknowledgments), so
// an honest cluster always serves a pinned read. Staleness stays bounded
// by the client's MaxStaleness: pinning sets a lower bound on the
// snapshot, never an upper one.
type Session struct {
	c  *Client
	mu sync.Mutex
	// floors is the per-cluster minimum acceptable batch, applied whenever
	// the cluster is consulted by a session read.
	floors map[int32]int64
	// closure marks coordinator clusters of distributed commits whose
	// participants must be dependency-closed on every read, until every
	// dependency of the commit batch is verified covered.
	closure map[int32]*closureEntry
}

// closureEntry tracks one coordinator cluster's read-your-writes closure
// obligation and the evidence collected toward retiring it.
type closureEntry struct {
	// batch is the newest distributed commit batch at this coordinator.
	batch int64
	// pending maps each cluster to the LCE it must reach before the
	// closure contact can be dropped. nil until the first session read
	// serves the coordinator at a batch >= batch; entries are deleted as
	// verified headers cover them.
	pending map[int32]int64
}

// NewSession opens a session over the client. Sessions are independent:
// each tracks only its own reads and commits.
func (c *Client) NewSession() *Session {
	return &Session{
		c:       c,
		floors:  make(map[int32]int64),
		closure: make(map[int32]*closureEntry),
	}
}

// Client returns the underlying client.
func (s *Session) Client() *Client { return s.c }

// Floor reports the session's current batch floor for a cluster (0 if
// the session has not observed it yet).
func (s *Session) Floor(cluster int32) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[cluster]
}

// ClosureClusters reports how many coordinator clusters session reads
// still consult for read-your-writes closure (tests and tools; 0 once
// every distributed commit's dependencies are verified covered).
func (s *Session) ClosureClusters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.closure)
}

// ReadOnly executes a verified snapshot read with the session's
// guarantees, then advances the session floors to the batches served.
func (s *Session) ReadOnly(keys []string) (*ROResult, error) {
	s.mu.Lock()
	floors := make(map[int32]int64, len(s.floors))
	for cl, b := range s.floors {
		floors[cl] = b
	}
	contact := make([]int32, 0, len(s.closure))
	for cl := range s.closure {
		contact = append(contact, cl)
	}
	s.mu.Unlock()
	res, err := s.c.readOnly(keys, floors, contact)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	for cl, b := range res.Batches {
		if b > s.floors[cl] {
			s.floors[cl] = b
		}
	}
	s.pruneClosure(res)
	s.mu.Unlock()
	return res, nil
}

// pruneClosure retires closure contacts whose commit dependencies the
// session has verified covered. Called with s.mu held, on a verified,
// dependency-closed read result.
func (s *Session) pruneClosure(res *ROResult) {
	for cl, e := range s.closure {
		hdr, ok := res.Headers[cl]
		if !ok || hdr.ID < e.batch {
			continue
		}
		if e.pending == nil {
			// First verified look at a coordinator batch covering the
			// commit. CD entries never regress over the log (the audit
			// rejects exactly that), so this header's CD dominates the
			// commit batch's dependency vector entrywise; it may also
			// carry other transactions' dependencies, which only delays
			// retirement, never makes it unsound. The coordinator itself
			// needs no entry: the floor is already at hdr.ID >= e.batch.
			e.pending = make(map[int32]int64)
			for j, dep := range hdr.CD {
				if int32(j) != cl && dep > 0 {
					e.pending[int32(j)] = dep
				}
			}
		}
		for j, dep := range e.pending {
			// A verified header at j with LCE >= dep covers the
			// dependency for the rest of the session: this read raised
			// floors[j] to the served batch, and LCE is monotone over the
			// log, so every later floored read of j serves at least this
			// LCE.
			if h, ok := res.Headers[j]; ok && h.LCE >= dep {
				delete(e.pending, j)
			}
		}
		if len(e.pending) == 0 {
			delete(s.closure, cl)
		}
	}
}

// Begin opens a read-write transaction whose commit advances the
// session's floors, making the write visible to subsequent session reads.
func (s *Session) Begin() *Txn {
	t := s.c.Begin()
	t.onCommit = func(coord int32, batch int64, distributed bool) {
		s.mu.Lock()
		if batch > s.floors[coord] {
			s.floors[coord] = batch
		}
		if distributed {
			if e, ok := s.closure[coord]; !ok {
				s.closure[coord] = &closureEntry{batch: batch}
			} else if batch > e.batch {
				// A newer commit may carry new dependencies; restart the
				// coverage evidence from a header at or past it.
				e.batch, e.pending = batch, nil
			}
		}
		s.mu.Unlock()
	}
	return t
}
