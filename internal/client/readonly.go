package client

import (
	"fmt"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
)

// ROResult is a verified snapshot read-only transaction outcome.
type ROResult struct {
	// Values maps each requested key to its snapshot value (nil if the
	// key does not exist).
	Values map[string][]byte
	// Rounds is 1 when the first responses were already consistent and 2
	// when unsatisfied dependencies forced a repair round. The paper's
	// Theorem 4.6 claims two rounds always suffice; our reproduction
	// found that with three or more partitions and interleaved prepare
	// groups a repaired batch can surface a dependency (acquired at
	// commit time from a different group member's vote) that prepare-time
	// CD piggybacks could not carry, so the client iterates the repair
	// round to a fixpoint. Empirically almost every transaction finishes
	// in <=2 rounds; see DESIGN.md ("Deviations").
	Rounds int
	// Batches records the batch served per accessed cluster.
	Batches map[int32]int64
	// Headers exposes the verified batch headers per cluster (CD vector,
	// LCE, Merkle root, timestamp) for inspection and tests.
	Headers map[int32]protocol.BatchHeader
}

// maxRORounds bounds the dependency-repair loop. Honest systems converge
// in two rounds almost always (three under heavy cross-group interleaving)
// — the bound only guards against byzantine servers.
const maxRORounds = 8

// roundReply is one cluster's verified answer.
type roundReply struct {
	header protocol.BatchHeader
	values []protocol.ROValue
}

// ReadOnly executes a snapshot read-only transaction (commit-rot) across
// all partitions owning the requested keys, implementing Algorithm 2:
//
//  1. ask one node per partition for values + proofs + certified header,
//  2. verify authenticity (certificate, Merkle proofs, freshness),
//  3. check every cross-partition dependency V_i[j] <= LCE_j,
//  4. if violated, ask partition j for the state covering the dependency
//     and re-verify; no third round is ever needed.
func (c *Client) ReadOnly(keys []string) (*ROResult, error) {
	return c.readOnly(keys, nil, nil)
}

// readOnly is ReadOnly with session pinning: floors gives, per cluster, a
// minimum batch the served snapshot must reach (monotonic reads /
// read-your-writes), and contact lists clusters that must be consulted
// even when no requested key lives there — a header-only read whose CD
// vector pulls a distributed commit's participants into the dependency
// repair loop (the session read-your-writes closure).
func (c *Client) readOnly(keys []string, floors map[int32]int64, contact []int32) (*ROResult, error) {
	// Group keys per owning partition, deduplicating. Unique request sets
	// are what make verifyRO's exactly-once coverage check sound: the
	// server answers each requested key exactly once, so a reply that
	// repeats one key to hide the omission of another cannot pass both
	// the length check and the one-use key-set check.
	byCluster := make(map[int32][]string)
	requested := make(map[string]bool, len(keys))
	for _, k := range keys {
		if requested[k] {
			continue
		}
		requested[k] = true
		cl := c.cfg.Part.Of(k)
		byCluster[cl] = append(byCluster[cl], k)
	}
	for _, cl := range contact {
		if _, ok := byCluster[cl]; !ok {
			byCluster[cl] = nil
		}
	}
	if len(byCluster) == 0 {
		return &ROResult{
			Values:  map[string][]byte{},
			Rounds:  1,
			Batches: map[int32]int64{},
			Headers: map[int32]protocol.BatchHeader{},
		}, nil
	}
	clusters := make([]int32, 0, len(byCluster))
	for cl := range byCluster {
		clusters = append(clusters, cl)
	}
	floor := func(cl int32) int64 { return floors[cl] }

	// ---- Round 1: fan out, one node per partition (commit-free). ----
	pending := make(map[int32]chan protocol.ROReply, len(clusters))
	for _, cl := range clusters {
		pending[cl] = c.sendRO(cl, byCluster[cl], -1, floor(cl))
	}
	replies := make(map[int32]*roundReply, len(clusters))
	for _, cl := range clusters {
		r, err := c.awaitRO(cl, byCluster[cl], pending[cl], floor(cl))
		if err != nil {
			return nil, err
		}
		replies[cl] = r
	}

	// ---- Dependency verification and repair (Algorithm 2). ----
	// Iterate until the snapshot is dependency-closed. Termination: every
	// repair strictly raises some partition's served LCE toward its
	// current head, so the loop reaches a fixpoint quickly; maxRORounds
	// is a defensive bound against byzantine servers feeding junk.
	rounds := 1
	for {
		needed := c.unsatisfied(clusters, replies)
		if len(needed) == 0 {
			break
		}
		if rounds >= maxRORounds {
			return nil, fmt.Errorf("%w: dependencies %v after %d rounds", ErrInconsistent, needed, rounds)
		}
		rounds++
		pending = make(map[int32]chan protocol.ROReply, len(needed))
		for cl, minLCE := range needed {
			pending[cl] = c.sendRO(cl, byCluster[cl], minLCE, floor(cl))
		}
		for cl := range needed {
			r, err := c.awaitRO(cl, byCluster[cl], pending[cl], floor(cl))
			if err != nil {
				return nil, fmt.Errorf("repair round %d: %w", rounds, err)
			}
			replies[cl] = r
		}
	}

	out := &ROResult{
		Values:  make(map[string][]byte, len(keys)),
		Rounds:  rounds,
		Batches: make(map[int32]int64, len(clusters)),
		Headers: make(map[int32]protocol.BatchHeader, len(clusters)),
	}
	for cl, r := range replies {
		out.Batches[cl] = r.header.ID
		out.Headers[cl] = r.header
		for _, v := range r.values {
			if v.Found {
				out.Values[v.Key] = v.Value
			} else {
				out.Values[v.Key] = nil
			}
		}
	}
	return out, nil
}

// sendRO issues one partition's read-only request.
func (c *Client) sendRO(cluster int32, keys []string, asOfLCE, minBatch int64) chan protocol.ROReply {
	replyTo := make(chan protocol.ROReply, 1)
	c.cfg.Net.Send(c.self, c.cfg.ROTarget(cluster), &protocol.RORequest{
		Keys: keys, AsOfLCE: asOfLCE, MinBatch: minBatch, ReplyTo: replyTo,
	})
	return replyTo
}

// awaitRO waits for and fully verifies one partition's answer.
func (c *Client) awaitRO(cluster int32, keys []string, ch chan protocol.ROReply, minBatch int64) (*roundReply, error) {
	select {
	case r := <-ch:
		return c.verifyRO(cluster, keys, &r, minBatch)
	case <-time.After(c.cfg.Timeout):
		return nil, fmt.Errorf("%w: read-only request to cluster %d", ErrTimeout, cluster)
	}
}

// verifyRO authenticates a read-only reply: the f+1 certificate over the
// batch header, the Merkle membership proof of every value against the
// certified root, and optionally the freshness bound. A reply failing any
// check is rejected — this is what makes a single untrusted node a
// sufficient read quorum.
//
// Coverage is exactly-once: keys is duplicate-free (readOnly dedups), the
// reply must carry len(keys) values, and each requested key may be used
// at most once — so a byzantine server cannot repeat one validly-proven
// answer to mask the omission of another key (which would otherwise read
// back as a silent, unproven absence).
func (c *Client) verifyRO(cluster int32, keys []string, r *protocol.ROReply, minBatch int64) (*roundReply, error) {
	if r.Err != "" {
		return nil, fmt.Errorf("%w: cluster %d: %s", ErrServer, cluster, r.Err)
	}
	if r.Header.Cluster != cluster {
		return nil, fmt.Errorf("%w: reply from wrong cluster %d", ErrVerification, r.Header.Cluster)
	}
	if len(r.Header.CD) != c.cfg.Clusters {
		return nil, fmt.Errorf("%w: malformed CD vector", ErrVerification)
	}
	if minBatch > 0 && r.Header.ID < minBatch {
		return nil, fmt.Errorf("%w: batch %d below session floor %d", ErrVerification, r.Header.ID, minBatch)
	}
	d := r.Header.Digest()
	if c.cfg.DisableRootCache || !c.certVerified(d) {
		c.certChecks.Add(1)
		if err := cryptoutil.VerifyCertificate(c.cfg.Ring, r.Cert, d[:], c.threshold(cluster)); err != nil {
			return nil, fmt.Errorf("%w: certificate: %v", ErrVerification, err)
		}
		if !c.cfg.DisableRootCache {
			c.rememberCert(d)
		}
	}
	if c.cfg.MaxStaleness > 0 {
		age := time.Duration(time.Now().UnixNano() - r.Header.Timestamp)
		if age > c.cfg.MaxStaleness {
			return nil, fmt.Errorf("%w: batch is %v old", ErrStale, age)
		}
	}
	if len(r.Values) != len(keys) {
		return nil, fmt.Errorf("%w: %d values for %d keys", ErrVerification, len(r.Values), len(keys))
	}
	// unused starts as the requested set; matching an answer consumes its
	// key, so a duplicate (or unrequested) reply key is rejected, and with
	// the length check above every requested key is answered and proven.
	unused := make(map[string]bool, len(keys))
	for _, k := range keys {
		unused[k] = true
	}
	if r.Multi != nil {
		// Multi-proof path: one pruned-subtree proof co-proves every key's
		// membership or absence against the certified root.
		answers := make([]merkle.KeyAnswer, len(r.Values))
		for i := range r.Values {
			v := &r.Values[i]
			if !unused[v.Key] {
				return nil, fmt.Errorf("%w: unrequested or duplicate key %q in reply", ErrVerification, v.Key)
			}
			delete(unused, v.Key)
			answers[i] = merkle.KeyAnswer{Key: []byte(v.Key), Value: v.Value, Found: v.Found}
		}
		if err := merkle.VerifyMulti(r.Header.MerkleRoot, answers, *r.Multi); err != nil {
			return nil, fmt.Errorf("%w: multi-proof: %v", ErrVerification, err)
		}
	} else {
		for i := range r.Values {
			v := &r.Values[i]
			if !unused[v.Key] {
				return nil, fmt.Errorf("%w: unrequested or duplicate key %q in reply", ErrVerification, v.Key)
			}
			delete(unused, v.Key)
			if !v.Found {
				// "Not found" must be proven too, or a byzantine server
				// could hide keys.
				if v.Absence == nil {
					return nil, fmt.Errorf("%w: unproven absence of %q", ErrVerification, v.Key)
				}
				if err := merkle.VerifyAbsence(r.Header.MerkleRoot, []byte(v.Key), *v.Absence); err != nil {
					return nil, fmt.Errorf("%w: absence proof for %q: %v", ErrVerification, v.Key, err)
				}
				continue
			}
			if err := merkle.VerifyProof(r.Header.MerkleRoot, []byte(v.Key), v.Value, v.Proof); err != nil {
				return nil, fmt.Errorf("%w: proof for %q: %v", ErrVerification, v.Key, err)
			}
		}
	}
	if c.cfg.MeasureProofBytes {
		n := 0
		if r.Multi != nil {
			n = len(protocol.EncodeMultiProof(r.Multi))
		} else {
			for i := range r.Values {
				v := &r.Values[i]
				switch {
				case v.Absence != nil:
					n += len(protocol.EncodeAbsenceProof(v.Absence))
				case v.Found:
					n += len(protocol.EncodeProof(&v.Proof))
				}
			}
		}
		c.proofReqs.Add(1)
		c.proofBytes.Add(int64(n))
	}
	if !c.cfg.DisableRootCache {
		c.advanceCheckpoint(cluster, r.Header)
	}
	return &roundReply{header: r.Header, values: r.Values}, nil
}

// unsatisfied returns, per cluster, the highest dependency entry not yet
// covered by that cluster's LCE: V_i[j] > LCE_j means partition i's batch
// depends on transactions prepared at j in batch V_i[j] that partition j's
// served snapshot has not committed (lines 3–7 of Algorithm 2).
func (c *Client) unsatisfied(clusters []int32, replies map[int32]*roundReply) map[int32]int64 {
	needed := make(map[int32]int64)
	for _, i := range clusters {
		for _, j := range clusters {
			if i == j {
				continue
			}
			dep := replies[i].header.CD[j]
			if dep > replies[j].header.LCE {
				if cur, ok := needed[j]; !ok || dep > cur {
					needed[j] = dep
				}
			}
		}
	}
	return needed
}
