package client_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/transport"
)

func startSystem(t *testing.T, clusters int) *core.System {
	t.Helper()
	data := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("init-%d", i))
	}
	sys := core.NewSystem(core.SystemConfig{
		Clusters: clusters, F: 1, Seed: 21,
		BatchInterval: time.Millisecond, InitialData: data,
	})
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func newClient(sys *core.System, id uint32, timeout time.Duration) *client.Client {
	return client.New(client.Config{
		ID: id, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: timeout,
	})
}

func TestReadYourOwnWrites(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 1, 5*time.Second)
	txn := c.Begin()
	txn.Write("key-001", []byte("buffered"))
	v, err := txn.Read("key-001")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "buffered" {
		t.Fatalf("read %q, want the buffered write", v)
	}
}

func TestEmptyTransactionCommitsTrivially(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 1, 5*time.Second)
	if err := c.Begin().Commit(); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
}

func TestDoubleCommitRejected(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 1, 5*time.Second)
	txn := c.Begin()
	txn.Write("key-002", []byte("v"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err == nil {
		t.Fatal("second Commit on the same txn succeeded")
	}
}

func TestReadOfAbsentKey(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 1, 5*time.Second)
	txn := c.Begin()
	v, err := txn.Read("never-loaded")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("absent key returned %q", v)
	}
	// Writing it afterwards must commit (version -1 matches "never
	// written").
	txn.Write("never-loaded", []byte("first"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("create-after-miss commit: %v", err)
	}
}

func TestReadOnlyEmptyKeys(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 1, 5*time.Second)
	res, err := c.ReadOnly(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 || res.Rounds != 1 {
		t.Fatalf("empty RO: %+v", res)
	}
}

func TestReadOnlyDuplicateKeys(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 1, 5*time.Second)
	res, err := c.ReadOnly([]string{"key-001", "key-001", "key-002"})
	if err != nil {
		t.Fatalf("duplicate keys: %v", err)
	}
	if res.Values["key-001"] == nil {
		t.Fatal("missing value for duplicated key")
	}
}

func TestTimeoutAgainstDeadCluster(t *testing.T) {
	// A network with no registered nodes: every request times out.
	net := transport.NewNetwork()
	t.Cleanup(net.Stop)
	sys := startSystem(t, 2) // only for ring/part
	c := client.New(client.Config{
		ID: 9, Net: net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 2, Timeout: 50 * time.Millisecond,
	})
	txn := c.Begin()
	if _, err := txn.Read("key-001"); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("read err = %v, want ErrTimeout", err)
	}
	txn2 := c.Begin()
	txn2.Write("key-001", []byte("v"))
	if err := txn2.Commit(); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("commit err = %v, want ErrTimeout", err)
	}
	if _, err := c.ReadOnly([]string{"key-001"}); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("read-only err = %v, want ErrTimeout", err)
	}
}

// TestCommitFreeMessageComplexity verifies the paper's commit-freedom
// property at the transport level: a single-round read-only transaction
// over m partitions sends exactly one request per partition (replies
// travel on per-request channels) — no replication, no quorum, no 2PC
// traffic, and no other replica ever hears about the read.
func TestCommitFreeMessageComplexity(t *testing.T) {
	sys := startSystem(t, 3)
	c := newClient(sys, 1, 5*time.Second)

	// One key per cluster.
	keys := make([]string, 0, 3)
	for cl := int32(0); cl < 3; cl++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key-%03d", i)
			if sys.Part.Of(k) == cl {
				keys = append(keys, k)
				break
			}
		}
	}

	// Quiesce: wait for any startup traffic to drain.
	time.Sleep(20 * time.Millisecond)
	before := sys.Net.Stats.Sent.Load()
	res, err := c.ReadOnly(keys)
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Net.Stats.Sent.Load()
	if res.Rounds != 1 {
		t.Skipf("round 2 triggered (%d rounds); message count not comparable", res.Rounds)
	}
	sent := after - before
	if want := int64(len(keys)); sent != want {
		t.Fatalf("read-only txn over %d partitions sent %d messages, want %d (commit-freedom)",
			len(keys), sent, want)
	}
}

// TestReadTargetsFollowers: reads for read-write transactions can be
// served by any replica, not just the leader.
func TestReadTargetsFollowers(t *testing.T) {
	sys := startSystem(t, 2)
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 2, Timeout: 5 * time.Second,
		ReadTarget: func(cl int32) client.NodeID { return client.NodeID{Cluster: cl, Replica: 2} },
	})
	txn := c.Begin()
	v, err := txn.Read("key-001")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("follower returned no value")
	}
}

// TestROFromFollower: read-only transactions can be answered by a
// follower replica — commit-freedom means any single node suffices.
func TestROFromFollower(t *testing.T) {
	sys := startSystem(t, 2)
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 2, Timeout: 5 * time.Second,
		ROTarget: func(cl int32) client.NodeID { return client.NodeID{Cluster: cl, Replica: 3} },
	})
	res, err := c.ReadOnly([]string{"key-001", "key-002", "key-003"})
	if err != nil {
		t.Fatalf("follower-served read-only: %v", err)
	}
	for k, v := range res.Values {
		if v == nil {
			t.Fatalf("missing %q", k)
		}
	}
}

func TestTxnIDsMonotonePerClient(t *testing.T) {
	sys := startSystem(t, 2)
	c := newClient(sys, 7, time.Second)
	prev := c.Begin().ID()
	for i := 0; i < 5; i++ {
		next := c.Begin().ID()
		if next <= prev {
			t.Fatalf("txn IDs not increasing: %v then %v", prev, next)
		}
		prev = next
	}
}
