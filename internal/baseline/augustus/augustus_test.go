package augustus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transedge/internal/protocol"
)

func testSystem(t testing.TB, clusters int) *System {
	t.Helper()
	data := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("init-%d", i))
	}
	sys := NewSystem(SystemConfig{Clusters: clusters, F: 1, InitialData: data})
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func keysOn(sys *System, cluster int32, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 1000; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if sys.Part.Of(k) == cluster {
			out = append(out, k)
		}
	}
	return out
}

func TestReadOnlyQuorumRead(t *testing.T) {
	sys := testSystem(t, 2)
	c := sys.NewClient(1)
	ks := keysOn(sys, 0, 3)
	vals, err := c.ReadOnly(ks)
	if err != nil {
		t.Fatalf("read-only: %v", err)
	}
	for _, k := range ks {
		if vals[k] == nil {
			t.Fatalf("missing value for %q", k)
		}
	}
}

func TestExecuteWritesVisible(t *testing.T) {
	sys := testSystem(t, 2)
	c := sys.NewClient(1)
	k := keysOn(sys, 0, 1)[0]
	if err := c.Execute(nil, []protocol.WriteOp{{Key: k, Value: []byte("new")}}); err != nil {
		t.Fatalf("execute: %v", err)
	}
	// Quorum reads may need a beat for all replicas to converge.
	deadline := time.Now().Add(2 * time.Second)
	for {
		vals, err := c.ReadOnly([]string{k})
		if err == nil && string(vals[k]) == "new" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never visible: vals=%v err=%v", vals, err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCrossPartitionExecute(t *testing.T) {
	sys := testSystem(t, 3)
	c := sys.NewClient(1)
	k0 := keysOn(sys, 0, 1)[0]
	k1 := keysOn(sys, 1, 1)[0]
	err := c.Execute(nil, []protocol.WriteOp{
		{Key: k0, Value: []byte("a")},
		{Key: k1, Value: []byte("b")},
	})
	if err != nil {
		t.Fatalf("cross-partition execute: %v", err)
	}
}

// TestReadLocksAbortWriters is the Table 1 mechanism: a reader holding
// shared locks forces a concurrent writer to abort.
func TestReadLocksAbortWriters(t *testing.T) {
	sys := testSystem(t, 1)
	k := keysOn(sys, 0, 1)[0]

	// Acquire shared locks manually on every replica and hold them.
	reader := sys.NewClient(1)
	txn := reader.txnSeq.Add(1)
	n := 3*sys.Cfg.F + 1
	replyTo := make(chan ROVote, n)
	for r := 0; r < n; r++ {
		sys.Net.Send(reader.self, NodeID{Cluster: 0, Replica: int32(r)},
			&ROLockRead{Txn: txn, Keys: []string{k}, ReplyTo: replyTo})
	}
	for i := 0; i < n; i++ {
		select {
		case v := <-replyTo:
			if !v.Granted {
				t.Fatal("shared lock not granted on idle system")
			}
		case <-time.After(time.Second):
			t.Fatal("lock round timed out")
		}
	}

	writer := sys.NewClient(2)
	err := writer.Execute(nil, []protocol.WriteOp{{Key: k, Value: []byte("w")}})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("writer err = %v, want ErrAborted (reader interference)", err)
	}
	if sys.RWLockAborts() == 0 {
		t.Fatal("lock-abort metric not recorded")
	}

	// After release the writer succeeds.
	reader.release(txn, 0, []string{k}, n)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := writer.Execute(nil, []protocol.WriteOp{{Key: k, Value: []byte("w")}}); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("writer still blocked after release")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWriteLocksMakeReadersRetry: a writer holding exclusive locks defers
// readers (they conflict and retry), unlike TransEdge's non-interference.
func TestWriteLocksMakeReadersRetry(t *testing.T) {
	sys := testSystem(t, 1)
	k := keysOn(sys, 0, 1)[0]

	// Hold an exclusive lock directly on the leader's lock table via a
	// stream of writes, and measure that reads still eventually succeed
	// (retry loop) — i.e., conflicts are transient, not wedging.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := sys.NewClient(2)
		for !stop.Load() {
			_ = w.Execute(nil, []protocol.WriteOp{{Key: k, Value: []byte("w")}})
		}
	}()
	r := sys.NewClient(1)
	for i := 0; i < 10; i++ {
		if _, err := r.ReadOnly([]string{k}); err != nil {
			t.Fatalf("reader failed under write load: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestSharedLockTTLExpiry(t *testing.T) {
	sys := NewSystem(SystemConfig{Clusters: 1, F: 1, LockTTL: 30 * time.Millisecond,
		InitialData: map[string][]byte{"k": []byte("v")}})
	sys.Start()
	defer sys.Stop()
	k := "k"

	// A reader that never releases (crashed client).
	reader := sys.NewClient(1)
	txn := reader.txnSeq.Add(1)
	replyTo := make(chan ROVote, 4)
	for r := 0; r < 4; r++ {
		sys.Net.Send(reader.self, NodeID{Cluster: 0, Replica: int32(r)},
			&ROLockRead{Txn: txn, Keys: []string{k}, ReplyTo: replyTo})
	}
	for i := 0; i < 4; i++ {
		<-replyTo
	}

	// After the TTL the abandoned locks expire and writes proceed.
	time.Sleep(60 * time.Millisecond)
	writer := sys.NewClient(2)
	if err := writer.Execute(nil, []protocol.WriteOp{{Key: k, Value: []byte("w")}}); err != nil {
		t.Fatalf("write after TTL expiry: %v", err)
	}
}

func TestLockTableUnit(t *testing.T) {
	lt := newLockTable(time.Minute)
	now := time.Now()
	if !lt.tryShared(1, "k", now) || !lt.tryShared(2, "k", now) {
		t.Fatal("concurrent shared locks must coexist")
	}
	if lt.tryExclusive(3, "k", now) {
		t.Fatal("exclusive granted over shared locks")
	}
	lt.releaseShared(1, "k")
	lt.releaseShared(2, "k")
	if !lt.tryExclusive(3, "k", now) {
		t.Fatal("exclusive refused on free key")
	}
	if lt.tryShared(4, "k", now) {
		t.Fatal("shared granted over exclusive")
	}
	if !lt.tryExclusive(3, "k", now) {
		t.Fatal("exclusive must be reentrant for the owner")
	}
	lt.releaseExclusive(3, "k")
	if !lt.tryShared(4, "k", now) {
		t.Fatal("shared refused after exclusive release")
	}
}
