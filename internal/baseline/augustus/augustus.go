// Package augustus reimplements the read path of Augustus (Padilha &
// Pedone, EuroSys'13 [43]) — the lock-based BFT storage baseline the
// paper compares against in Figures 5, 6, 7 and Table 1.
//
// The two mechanisms the evaluation contrasts with TransEdge are
// reproduced faithfully:
//
//   - Read-only transactions acquire SHARED LOCKS and require a VOTE of
//     2f+1 matching answers from every accessed partition's replicas
//     (vs. TransEdge's single-node, lock-free answer). A second round
//     releases the locks.
//   - Read-write transactions abort when their footprint overlaps a held
//     shared lock — read-only transactions therefore interfere with
//     writers (Table 1's non-zero abort column), and long scans holding
//     locks across partitions stall and abort writers (Fig. 7).
//
// Write replication inside a cluster uses quorum acknowledgement (2f+1)
// rather than full PBFT; the baseline's benchmark-relevant costs — lock
// conflicts and read-quorum voting — are unaffected (see DESIGN.md).
package augustus

import (
	"sync"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/store"
	"transedge/internal/transport"
)

// NodeID aliases the system-wide identity.
type NodeID = cryptoutil.NodeID

// lockState tracks one key's lock word on one replica.
type lockState struct {
	sharedBy  map[uint64]time.Time // read-txn ID -> expiry
	exclusive uint64               // write-txn ID holding it (0 = free)
}

// lockTable is a per-replica lock manager with lazy TTL expiry (shared
// locks abandoned by a crashed client drain automatically).
type lockTable struct {
	locks map[string]*lockState
	ttl   time.Duration
}

func newLockTable(ttl time.Duration) *lockTable {
	return &lockTable{locks: make(map[string]*lockState), ttl: ttl}
}

func (lt *lockTable) state(key string) *lockState {
	ls, ok := lt.locks[key]
	if !ok {
		ls = &lockState{sharedBy: make(map[uint64]time.Time)}
		lt.locks[key] = ls
	}
	return ls
}

func (lt *lockTable) expire(ls *lockState, now time.Time) {
	for id, dl := range ls.sharedBy {
		if now.After(dl) {
			delete(ls.sharedBy, id)
		}
	}
}

// tryShared grants txn a shared lock unless an exclusive lock is held.
func (lt *lockTable) tryShared(txn uint64, key string, now time.Time) bool {
	ls := lt.state(key)
	lt.expire(ls, now)
	if ls.exclusive != 0 {
		return false
	}
	ls.sharedBy[txn] = now.Add(lt.ttl)
	return true
}

// releaseShared drops txn's shared lock on key.
func (lt *lockTable) releaseShared(txn uint64, key string) {
	if ls, ok := lt.locks[key]; ok {
		delete(ls.sharedBy, txn)
	}
}

// tryExclusive grants txn an exclusive lock if the key is entirely free.
func (lt *lockTable) tryExclusive(txn uint64, key string, now time.Time) bool {
	ls := lt.state(key)
	lt.expire(ls, now)
	if ls.exclusive != 0 && ls.exclusive != txn {
		return false
	}
	if len(ls.sharedBy) > 0 {
		return false // a reader holds it: the interference the paper measures
	}
	ls.exclusive = txn
	return true
}

// releaseExclusive drops txn's exclusive lock.
func (lt *lockTable) releaseExclusive(txn uint64, key string) {
	if ls, ok := lt.locks[key]; ok && ls.exclusive == txn {
		ls.exclusive = 0
	}
}

// sharedHeld reports whether any live shared lock covers key.
func (lt *lockTable) sharedHeld(key string, now time.Time) bool {
	ls, ok := lt.locks[key]
	if !ok {
		return false
	}
	lt.expire(ls, now)
	return len(ls.sharedBy) > 0
}

// ---- Messages ----

// ROLockRead asks a replica to grant shared locks on keys and return the
// values (round 1 of the Augustus read protocol).
type ROLockRead struct {
	Txn     uint64
	Keys    []string
	ReplyTo chan ROVote
}

// ROVote is one replica's answer: granted + values, or a conflict.
type ROVote struct {
	From     NodeID
	Granted  bool
	Values   [][]byte // aligned with request keys; nil for missing
	Versions []int64
}

// RORelease releases the shared locks (round 2).
type RORelease struct {
	Txn  uint64
	Keys []string
}

// RWExecute asks a partition leader to execute a read-write transaction
// shard: acquire exclusive locks, replicate, apply.
type RWExecute struct {
	Txn     uint64
	Reads   []string
	Writes  []protocol.WriteOp
	ReplyTo chan RWReply
}

// RWReply reports a shard execution outcome.
type RWReply struct {
	From      NodeID
	Committed bool
}

// replicate is the leader's intra-cluster write replication message.
type replicate struct {
	Txn    uint64
	Writes []protocol.WriteOp
	Seq    int64
	AckTo  chan NodeID
}

// ---- Node ----

// Config assembles one Augustus replica.
type Config struct {
	Cluster int32
	Replica int32
	N, F    int
	Net     *transport.Network
	Part    protocol.Partitioner
	LockTTL time.Duration

	InitialData map[string][]byte
}

// Node is one Augustus replica: a store plus a lock table.
type Node struct {
	cfg   Config
	self  NodeID
	st    *store.Store
	locks *lockTable
	seq   int64

	inbox <-chan transport.Envelope
	stop  chan struct{}
	done  chan struct{}

	// metrics
	mu           sync.Mutex
	roConflicts  int64
	rwLockAborts int64
	rwCommits    int64
	sharedGrants int64
}

// NewNode builds a replica.
func NewNode(cfg Config) *Node {
	if cfg.LockTTL <= 0 {
		cfg.LockTTL = 5 * time.Second
	}
	n := &Node{
		cfg:   cfg,
		self:  NodeID{Cluster: cfg.Cluster, Replica: cfg.Replica},
		st:    store.New(),
		locks: newLockTable(cfg.LockTTL),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	n.st.Load(cfg.InitialData)
	return n
}

// Start launches the event loop.
func (n *Node) Start() {
	n.inbox = n.cfg.Net.Register(n.self)
	go n.run()
}

// Stop terminates the event loop.
func (n *Node) Stop() {
	close(n.stop)
	<-n.done
}

// RWLockAborts reports how many read-write executions this replica
// aborted because of a held (read) lock — the Table 1 metric.
func (n *Node) RWLockAborts() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rwLockAborts
}

func (n *Node) run() {
	defer close(n.done)
	for {
		select {
		case <-n.stop:
			return
		case env, ok := <-n.inbox:
			if !ok {
				return
			}
			n.dispatch(env)
		}
	}
}

func (n *Node) dispatch(env transport.Envelope) {
	switch m := env.Payload.(type) {
	case *ROLockRead:
		n.onROLockRead(m)
	case *RORelease:
		n.onRORelease(m)
	case *RWExecute:
		n.onRWExecute(m)
	case *replicate:
		n.onReplicate(m)
	}
}

func (n *Node) onROLockRead(m *ROLockRead) {
	now := time.Now()
	vote := ROVote{From: n.self}
	values := make([][]byte, len(m.Keys))
	versions := make([]int64, len(m.Keys))
	granted := true
	for i, k := range m.Keys {
		if !n.locks.tryShared(m.Txn, k, now) {
			granted = false
			break
		}
		v, ver, ok := n.st.Get(k)
		if ok {
			values[i] = v
			versions[i] = ver
		} else {
			versions[i] = -1
		}
	}
	if granted {
		vote.Granted = true
		vote.Values = values
		vote.Versions = versions
		n.mu.Lock()
		n.sharedGrants++
		n.mu.Unlock()
	} else {
		// Roll back partial grants.
		for _, k := range m.Keys {
			n.locks.releaseShared(m.Txn, k)
		}
		n.mu.Lock()
		n.roConflicts++
		n.mu.Unlock()
	}
	select {
	case m.ReplyTo <- vote:
	default:
	}
}

func (n *Node) onRORelease(m *RORelease) {
	for _, k := range m.Keys {
		n.locks.releaseShared(m.Txn, k)
	}
}

// onRWExecute runs a read-write shard at the leader: exclusive locks
// (aborting on any reader-held key), quorum replication, apply, release.
func (n *Node) onRWExecute(m *RWExecute) {
	if n.cfg.Replica != 0 {
		return // leader-only entry point
	}
	now := time.Now()
	acquired := make([]string, 0, len(m.Writes))
	ok := true
	for _, w := range m.Writes {
		if !n.locks.tryExclusive(m.Txn, w.Key, now) {
			ok = false
			break
		}
		acquired = append(acquired, w.Key)
	}
	if !ok {
		for _, k := range acquired {
			n.locks.releaseExclusive(m.Txn, k)
		}
		n.mu.Lock()
		n.rwLockAborts++
		n.mu.Unlock()
		select {
		case m.ReplyTo <- RWReply{From: n.self, Committed: false}:
		default:
		}
		return
	}

	// Quorum replication: 2f+1 replicas (incl. self) must hold the write.
	n.seq++
	ackTo := make(chan NodeID, n.cfg.N)
	rep := &replicate{Txn: m.Txn, Writes: m.Writes, Seq: n.seq, AckTo: ackTo}
	for r := 1; r < n.cfg.N; r++ {
		n.cfg.Net.Send(n.self, NodeID{Cluster: n.cfg.Cluster, Replica: int32(r)}, rep)
	}
	writes := make(map[string][]byte, len(m.Writes))
	for _, w := range m.Writes {
		writes[w.Key] = w.Value
	}
	n.st.Apply(n.seq, writes)

	// Wait for 2f acknowledgements (self is the +1). The leader's event
	// loop pauses here; Augustus's actual execution also serializes
	// conflicting work per partition, so this is within the model.
	need := 2 * n.cfg.F
	timeout := time.After(5 * time.Second)
	for got := 0; got < need; {
		select {
		case <-ackTo:
			got++
		case <-timeout:
			got = need // degrade rather than wedge; benchmarks never hit this
		case <-n.stop:
			return
		}
	}
	for _, k := range acquired {
		n.locks.releaseExclusive(m.Txn, k)
	}
	n.mu.Lock()
	n.rwCommits++
	n.mu.Unlock()
	select {
	case m.ReplyTo <- RWReply{From: n.self, Committed: true}:
	default:
	}
}

func (n *Node) onReplicate(m *replicate) {
	writes := make(map[string][]byte, len(m.Writes))
	for _, w := range m.Writes {
		writes[w.Key] = w.Value
	}
	n.st.Apply(m.Seq, writes)
	select {
	case m.AckTo <- n.self:
	default:
	}
}
