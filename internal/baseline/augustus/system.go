package augustus

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// SystemConfig describes an Augustus deployment mirroring the TransEdge
// topology: one cluster of 3f+1 replicas per partition.
type SystemConfig struct {
	Clusters     int
	F            int
	IntraLatency time.Duration
	InterLatency time.Duration
	LockTTL      time.Duration
	InitialData  map[string][]byte
}

// System is a running Augustus deployment.
type System struct {
	Cfg  SystemConfig
	Net  *transport.Network
	Part protocol.Partitioner

	nodes map[NodeID]*Node
}

// NewSystem builds all partitions.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	if cfg.F <= 0 {
		cfg.F = 1
	}
	n := 3*cfg.F + 1
	part := protocol.Partitioner{N: int32(cfg.Clusters)}
	net := transport.NewNetwork()
	net.SetLatency(transport.ClusterLatency(cfg.IntraLatency, cfg.InterLatency))

	perCluster := make([]map[string][]byte, cfg.Clusters)
	for c := range perCluster {
		perCluster[c] = make(map[string][]byte)
	}
	for k, v := range cfg.InitialData {
		perCluster[part.Of(k)][k] = v
	}

	sys := &System{Cfg: cfg, Net: net, Part: part, nodes: make(map[NodeID]*Node)}
	for c := 0; c < cfg.Clusters; c++ {
		for r := 0; r < n; r++ {
			id := NodeID{Cluster: int32(c), Replica: int32(r)}
			sys.nodes[id] = NewNode(Config{
				Cluster: int32(c), Replica: int32(r), N: n, F: cfg.F,
				Net: net, Part: part, LockTTL: cfg.LockTTL,
				InitialData: perCluster[c],
			})
		}
	}
	return sys
}

// Start launches all replicas.
func (s *System) Start() {
	for _, node := range s.nodes {
		node.Start()
	}
}

// Stop terminates all replicas and the network.
func (s *System) Stop() {
	for _, node := range s.nodes {
		node.Stop()
	}
	s.Net.Stop()
}

// RWLockAborts sums writer aborts caused by held read locks across all
// leaders (Table 1).
func (s *System) RWLockAborts() int64 {
	var total int64
	for id, node := range s.nodes {
		if id.Replica == 0 {
			total += node.RWLockAborts()
		}
	}
	return total
}

// ---- Client ----

// Client drives the Augustus protocols.
type Client struct {
	sys     *System
	self    NodeID
	txnSeq  atomic.Uint64
	Timeout time.Duration
	// Retries bounds lock-conflict retry attempts for read-only
	// transactions.
	Retries int
}

// NewClient creates a client.
func (s *System) NewClient(id uint32) *Client {
	return &Client{
		sys:     s,
		self:    NodeID{Cluster: transport.ClientCluster, Replica: int32(1000 + id)},
		Timeout: 10 * time.Second,
		Retries: 50,
	}
}

// Errors.
var (
	ErrTimeout  = errors.New("augustus: request timed out")
	ErrConflict = errors.New("augustus: lock conflict, retries exhausted")
	ErrQuorum   = errors.New("augustus: replicas disagree beyond quorum")
	ErrAborted  = errors.New("augustus: transaction aborted by lock conflict")
)

// ReadOnly executes a read-only transaction the Augustus way: for every
// accessed partition, lock-and-read at ALL replicas, wait for 2f+1
// matching votes, then release. Lock conflicts back off and retry.
func (c *Client) ReadOnly(keys []string) (map[string][]byte, error) {
	txn := c.txnSeq.Add(1)
	byCluster := make(map[int32][]string)
	for _, k := range keys {
		cl := c.sys.Part.Of(k)
		byCluster[cl] = append(byCluster[cl], k)
	}
	values := make(map[string][]byte, len(keys))
	n := 3*c.sys.Cfg.F + 1
	quorum := 2*c.sys.Cfg.F + 1

	for cl, ks := range byCluster {
		ok := false
		for attempt := 0; attempt <= c.Retries; attempt++ {
			votes, err := c.lockReadRound(txn, cl, ks, n)
			if err != nil {
				return nil, err
			}
			vals, agreed := tallyVotes(votes, ks, quorum)
			if agreed {
				for i, k := range ks {
					values[k] = vals[i]
				}
				ok = true
				break
			}
			// Conflict or replica disagreement: release and back off.
			c.release(txn, cl, ks, n)
			time.Sleep(time.Duration(attempt+1) * 500 * time.Microsecond)
		}
		// Release the shared locks (second round of the protocol).
		c.release(txn, cl, ks, n)
		if !ok {
			return nil, fmt.Errorf("%w: cluster %d", ErrConflict, cl)
		}
	}
	return values, nil
}

// lockReadRound sends the lock+read to all replicas of one partition and
// collects their votes.
func (c *Client) lockReadRound(txn uint64, cluster int32, keys []string, n int) ([]ROVote, error) {
	replyTo := make(chan ROVote, n)
	for r := 0; r < n; r++ {
		c.sys.Net.Send(c.self, NodeID{Cluster: cluster, Replica: int32(r)},
			&ROLockRead{Txn: txn, Keys: keys, ReplyTo: replyTo})
	}
	votes := make([]ROVote, 0, n)
	deadline := time.After(c.Timeout)
	for len(votes) < n {
		select {
		case v := <-replyTo:
			votes = append(votes, v)
		case <-deadline:
			if len(votes) >= 2*c.sys.Cfg.F+1 {
				return votes, nil
			}
			return nil, fmt.Errorf("%w: cluster %d read quorum", ErrTimeout, cluster)
		}
	}
	return votes, nil
}

// tallyVotes finds 2f+1 granted votes with identical values.
func tallyVotes(votes []ROVote, keys []string, quorum int) ([][]byte, bool) {
	for i := range votes {
		if !votes[i].Granted {
			continue
		}
		matching := 0
		for j := range votes {
			if votes[j].Granted && sameValues(votes[i].Values, votes[j].Values) {
				matching++
			}
		}
		if matching >= quorum {
			return votes[i].Values, true
		}
	}
	return nil, false
}

func sameValues(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func (c *Client) release(txn uint64, cluster int32, keys []string, n int) {
	for r := 0; r < n; r++ {
		c.sys.Net.Send(c.self, NodeID{Cluster: cluster, Replica: int32(r)},
			&RORelease{Txn: txn, Keys: keys})
	}
}

// Execute runs a read-write transaction: every accessed partition's
// leader acquires exclusive locks (aborting on held read locks — the
// interference Table 1 measures), replicates, and applies. A single
// negative shard vote aborts the whole transaction.
func (c *Client) Execute(reads []string, writes []protocol.WriteOp) error {
	txn := c.txnSeq.Add(1)
	type shard struct {
		cluster int32
		reads   []string
		writes  []protocol.WriteOp
	}
	shards := make(map[int32]*shard)
	at := func(cl int32) *shard {
		s, ok := shards[cl]
		if !ok {
			s = &shard{cluster: cl}
			shards[cl] = s
		}
		return s
	}
	for _, k := range reads {
		s := at(c.sys.Part.Of(k))
		s.reads = append(s.reads, k)
	}
	for _, w := range writes {
		s := at(c.sys.Part.Of(w.Key))
		s.writes = append(s.writes, w)
	}

	replyTo := make(chan RWReply, len(shards))
	for _, s := range shards {
		c.sys.Net.Send(c.self, NodeID{Cluster: s.cluster, Replica: 0},
			&RWExecute{Txn: txn, Reads: s.reads, Writes: s.writes, ReplyTo: replyTo})
	}
	deadline := time.After(c.Timeout)
	committed := true
	for i := 0; i < len(shards); i++ {
		select {
		case r := <-replyTo:
			if !r.Committed {
				committed = false
			}
		case <-deadline:
			return ErrTimeout
		}
	}
	if !committed {
		return ErrAborted
	}
	return nil
}
