package twopcbft_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/baseline/twopcbft"
	"transedge/internal/client"
	"transedge/internal/core"
)

func startSystem(t *testing.T) (*core.System, *client.Client) {
	t.Helper()
	data := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("init-%d", i))
	}
	sys := core.NewSystem(core.SystemConfig{
		Clusters: 3, F: 1, Seed: 13,
		BatchInterval: time.Millisecond, InitialData: data,
	})
	sys.Start()
	t.Cleanup(sys.Stop)
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 3, Timeout: 10 * time.Second,
	})
	return sys, c
}

func TestReadOnlyAsRegularTransaction(t *testing.T) {
	sys, c := startSystem(t)
	ro := twopcbft.New(c)

	// Pick one key per cluster so the read-only transaction is a real
	// distributed 2PC transaction.
	var keys []string
	for cl := int32(0); cl < 3; cl++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key-%03d", i)
			if sys.Part.Of(k) == cl {
				keys = append(keys, k)
				break
			}
		}
	}
	res, err := ro.ReadOnly(keys)
	if err != nil {
		t.Fatalf("2PC/BFT read-only: %v", err)
	}
	if res.Aborted {
		t.Fatal("read-only transaction aborted on an idle system")
	}
	for _, k := range keys {
		if res.Values[k] == nil {
			t.Fatalf("missing value for %q", k)
		}
	}
}

// TestReadOnlyGoesThroughCommitPipeline: unlike TransEdge snapshot reads,
// the baseline's reads consume batch slots — observable as distributed
// commits in the node metrics.
func TestReadOnlyGoesThroughCommitPipeline(t *testing.T) {
	sys, c := startSystem(t)
	ro := twopcbft.New(c)
	var keys []string
	for cl := int32(0); cl < 2; cl++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("key-%03d", i)
			if sys.Part.Of(k) == cl {
				keys = append(keys, k)
				break
			}
		}
	}
	if _, err := ro.ReadOnly(keys); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	sys.Stop()
	if got := sys.NodeMetrics(func(m *core.Metrics) int64 { return m.DistCommitted }); got == 0 {
		t.Fatal("baseline read-only did not pass through the 2PC commit pipeline")
	}
}

// TestConflictingReadOnlyAborts: baseline read-only transactions can
// abort under write contention — the non-interference property TransEdge
// adds is absent here.
func TestConflictingReadOnlyAborts(t *testing.T) {
	sys, c := startSystem(t)
	ro := twopcbft.New(c)
	writer := client.New(client.Config{
		ID: 2, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 3, Timeout: 10 * time.Second,
	})
	var keys []string
	for i := 0; i < 100 && len(keys) < 4; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if sys.Part.Of(k) == 0 {
			keys = append(keys, k)
		}
	}

	aborted := false
	for trial := 0; trial < 50 && !aborted; trial++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			txn := writer.Begin()
			for _, k := range keys {
				txn.Write(k, []byte(fmt.Sprintf("w%d", trial)))
			}
			_ = txn.Commit()
		}()
		res, err := ro.ReadOnly(keys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborted {
			aborted = true
		}
		<-done
	}
	if !aborted {
		t.Fatal("baseline read-only never aborted under direct write contention")
	}
}
