// Package twopcbft implements the 2PC/BFT baseline of the paper
// (Secs. 3.5 and 5): a hierarchical BFT system with the same structure as
// TransEdge — clusters as 2PC participants, every step validated by the
// intra-cluster BFT protocol — but with no special read-only machinery.
//
// Read-only transactions are executed as ordinary coordinated
// transactions: they acquire a position in a batch, pass conflict
// detection, and (when they span partitions) pay the full 2PC
// prepare/commit cycle across clusters. This is exactly the cost the
// paper's Figure 4 contrasts against TransEdge's commit-free reads.
//
// The implementation deliberately reuses the TransEdge substrate: the
// paper's 2PC/BFT system "has the same structure as TransEdge", so the
// only difference is the client-side read path, which makes the
// comparison exact — same batching, same consensus, same network.
package twopcbft

import (
	"errors"

	"transedge/internal/client"
)

// Client executes read-only transactions the 2PC/BFT way.
type Client struct {
	*client.Client
}

// New wraps a TransEdge client.
func New(c *client.Client) *Client { return &Client{Client: c} }

// ROResult reports a coordination-based read-only transaction outcome.
type ROResult struct {
	Values map[string][]byte
	// Aborted reports that the transaction lost conflict detection and
	// must be retried by the caller (regular transactions, unlike
	// TransEdge snapshot reads, can abort).
	Aborted bool
}

// ReadOnly reads the keys as a regular transaction: every read joins the
// read set, and Commit drives the batch + BFT (+ 2PC when the keys span
// clusters) machinery with an empty write set.
func (c *Client) ReadOnly(keys []string) (*ROResult, error) {
	txn := c.Begin()
	values := make(map[string][]byte, len(keys))
	for _, k := range keys {
		v, err := txn.Read(k)
		if err != nil {
			return nil, err
		}
		values[k] = v
	}
	if err := txn.Commit(); err != nil {
		if errors.Is(err, client.ErrAborted) {
			return &ROResult{Aborted: true}, nil
		}
		return nil, err
	}
	return &ROResult{Values: values}, nil
}
