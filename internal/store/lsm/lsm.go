// Package lsm is a log-structured store.Engine: writes land in a
// mutable memtable of versioned values, which freezes into immutable
// key-sorted runs once it crosses a size threshold; a background
// compactor k-way-merges the frozen runs and drops versions below the
// prune floor. Point and snapshot lookups search the memtable first,
// then the runs newest-first (each run carries a key-range filter), so
// the per-key version invariant — everything in the memtable is newer
// than everything in any run, and everything in run i is newer than
// everything in run i+1 — makes the first hit at or below the snapshot
// the correct answer.
//
// Concurrency model: one RWMutex guards the memtable and the runs
// *list*; the runs themselves are immutable after construction, so the
// compactor merges outside the lock from a snapshot of the list and
// installs the result only if no prune rewrote a source run meanwhile
// (identity check; freezes only prepend and never invalidate a merge).
// StableBatch is an atomically published watermark advanced after the
// batch's writes are installed, exactly like the sharded store, so
// snapshot reads at or below it are torn-free.
//
// The engine passes the same storetest conformance suite as the sharded
// store and is differential-fuzzed against it (FuzzEngineDifferential);
// that equivalence, not this comment, is what lets the replica core
// trust it (DESIGN.md §9).
package lsm

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"transedge/internal/store"
)

func init() {
	store.RegisterEngine("lsm", func(shards int) store.Engine { return New() })
}

// DefaultMemtableBytes is the default freeze threshold: small enough
// that long runs exercise the run/compaction machinery, large enough
// that a batch's write set never spans a freeze boundary mid-apply
// (freezes happen between ApplyAll calls' effects, never inside one).
const DefaultMemtableBytes = 1 << 20

// DefaultCompactRuns is how many frozen runs accumulate before the
// background compactor merges them into one.
const DefaultCompactRuns = 4

// pruneStripes is ShardCount for the Engine contract's incremental
// pruning: PruneShard(i) prunes the keys hashing to stripe i. A power
// of two, like the sharded store's shard count.
const pruneStripes = 4

// version is one historical value of a key, identical in shape to the
// sharded store's.
type version struct {
	batch int64
	value []byte
}

// Options tunes an LSM instance. The zero value selects the defaults;
// tests shrink both knobs so small workloads still freeze and compact.
type Options struct {
	// MemtableBytes freezes the memtable into a run once its
	// approximate footprint (keys + values + per-version overhead)
	// reaches this many bytes (0 = DefaultMemtableBytes).
	MemtableBytes int
	// CompactRuns triggers a background merge once at least this many
	// frozen runs exist (0 = DefaultCompactRuns).
	CompactRuns int
}

// LSM implements store.Engine.
type LSM struct {
	opts Options

	// mu guards mem, memBytes, runs (the list — runs are immutable),
	// and stripeFloor.
	mu       sync.RWMutex
	mem      map[string][]version
	memBytes int
	// runs is newest-first: runs[0] is the most recent freeze (or the
	// most recent compaction output if nothing froze since).
	runs []*run
	// stripeFloor[i] is the keepFrom every version of stripe i has been
	// pruned to; the compactor prunes at the minimum across stripes.
	stripeFloor [pruneStripes]int64

	stable atomic.Int64

	// Compactor lifecycle: compactC is a level-triggered signal
	// (buffered, non-blocking sends), stop/done bound the goroutine.
	compactC  chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	freezes     atomic.Int64
	compactions atomic.Int64
}

var _ store.Engine = (*LSM)(nil)

// New returns an LSM engine with default options and starts its
// compactor goroutine. Callers that own the engine's lifecycle should
// Close it; the replica core closes engines it constructed when the
// node stops.
func New() *LSM { return NewWithOptions(Options{}) }

// NewWithOptions returns an LSM engine with explicit thresholds.
func NewWithOptions(opts Options) *LSM {
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = DefaultMemtableBytes
	}
	if opts.CompactRuns <= 0 {
		opts.CompactRuns = DefaultCompactRuns
	}
	l := &LSM{
		opts:     opts,
		mem:      make(map[string][]version),
		compactC: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.stable.Store(-1)
	go l.compactLoop()
	return l
}

// Close shuts the compactor down and waits for it to exit. Safe to
// call more than once; the engine remains readable afterwards (only
// background merging stops).
func (l *LSM) Close() {
	l.closeOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Freezes returns how many memtable freezes have happened (test
// introspection).
func (l *LSM) Freezes() int64 { return l.freezes.Load() }

// Compactions returns how many background merges have been installed
// (test introspection).
func (l *LSM) Compactions() int64 { return l.compactions.Load() }

// RunCount returns the current number of frozen runs (test
// introspection).
func (l *LSM) RunCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.runs)
}

// stripeOf maps a key to its prune stripe with inline FNV-1a, the same
// hash the sharded store shards by.
func stripeOf(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h & (pruneStripes - 1))
}

// StableBatch returns the newest batch whose writes are fully visible.
func (l *LSM) StableBatch() int64 { return l.stable.Load() }

func (l *LSM) advanceStable(batch int64) {
	for {
		cur := l.stable.Load()
		if batch <= cur || l.stable.CompareAndSwap(cur, batch) {
			return
		}
	}
}

// ShardCount reports the prune-stripe count for incremental pruning.
func (l *LSM) ShardCount() int { return pruneStripes }

// newestAtOrBelow resolves the newest version with batch <= asOf in an
// ascending version slice.
func newestAtOrBelow(vs []version, asOf int64) (store.Versioned, bool) {
	i := sort.Search(len(vs), func(i int) bool { return vs[i].batch > asOf })
	if i == 0 {
		// All versions are newer than asOf (or there are none): the
		// caller must keep searching older structures.
		return store.Versioned{}, false
	}
	v := vs[i-1]
	return store.Versioned{Value: v.value, Writer: v.batch, Found: true}, true
}

// lookupLocked resolves a snapshot read; the caller holds at least the
// read lock. The first structure (memtable, then runs newest-first)
// holding any version at or below asOf holds the newest such version,
// by the per-key ordering invariant.
func (l *LSM) lookupLocked(key string, asOf int64) store.Versioned {
	if vs := l.mem[key]; len(vs) > 0 {
		if v, ok := newestAtOrBelow(vs, asOf); ok {
			return v
		}
	}
	for _, r := range l.runs {
		if key < r.minKey || key > r.maxKey {
			continue
		}
		e := r.find(key)
		if e == nil {
			continue
		}
		if v, ok := newestAtOrBelow(e.versions, asOf); ok {
			return v
		}
		// This run's versions are all newer than asOf; an older run may
		// still hold the answer.
	}
	return store.Versioned{}
}

// Load installs the genesis data as batch 0 writes. Intended for the
// initial data placement before the system starts, like the sharded
// store's Load: each key's history becomes exactly the genesis version.
func (l *LSM) Load(kv map[string][]byte) {
	l.mu.Lock()
	for k, v := range kv {
		l.mem[k] = []version{{batch: store.GenesisBatch, value: v}}
		l.memBytes += memCost(k, v)
	}
	froze := l.maybeFreezeLocked()
	l.mu.Unlock()
	l.advanceStable(store.GenesisBatch)
	if froze {
		l.signalCompact()
	}
}

// ApplyAll applies one batch's write set under a single lock hold and
// then advances the stable watermark to batch (also for empty write
// sets). A freeze, if the memtable crossed its threshold, happens in
// the same critical section, so a batch's writes never straddle the
// memtable/run boundary mid-install.
func (l *LSM) ApplyAll(batch int64, writes map[string][]byte) {
	froze := false
	if len(writes) > 0 {
		l.mu.Lock()
		for k, v := range writes {
			vs := l.mem[k]
			if n := len(vs); n > 0 && vs[n-1].batch == batch {
				vs[n-1].value = v
			} else {
				vs = append(vs, version{batch: batch, value: v})
				l.memBytes += memCost(k, v)
			}
			l.mem[k] = vs
		}
		froze = l.maybeFreezeLocked()
		l.mu.Unlock()
	}
	l.advanceStable(batch)
	if froze {
		l.signalCompact()
	}
}

// memCost approximates one version's footprint for the freeze
// threshold.
func memCost(k string, v []byte) int { return len(k) + len(v) + 24 }

// maybeFreezeLocked freezes the memtable into a new front run when it
// crossed the threshold; the caller holds the write lock and signals
// the compactor after releasing it.
func (l *LSM) maybeFreezeLocked() bool {
	if l.memBytes < l.opts.MemtableBytes || len(l.mem) == 0 {
		return false
	}
	entries := make([]entry, 0, len(l.mem))
	for k, vs := range l.mem {
		entries = append(entries, entry{key: k, versions: vs})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	l.runs = append([]*run{newRun(entries)}, l.runs...)
	l.mem = make(map[string][]version)
	l.memBytes = 0
	l.freezes.Add(1)
	return true
}

// Get returns the newest version of key.
func (l *LSM) Get(key string) (value []byte, writer int64, ok bool) {
	l.mu.RLock()
	v := l.lookupLocked(key, math.MaxInt64)
	l.mu.RUnlock()
	return v.Value, v.Writer, v.Found
}

// GetAsOf returns the newest version of key visible at asOf.
func (l *LSM) GetAsOf(key string, asOf int64) (value []byte, writer int64, ok bool) {
	l.mu.RLock()
	v := l.lookupLocked(key, asOf)
	l.mu.RUnlock()
	return v.Value, v.Writer, v.Found
}

// MultiGetAsOf resolves a snapshot read of many keys under one lock
// hold, in input order.
func (l *LSM) MultiGetAsOf(keys []string, asOf int64) []store.Versioned {
	out := make([]store.Versioned, len(keys))
	l.mu.RLock()
	for i, k := range keys {
		out[i] = l.lookupLocked(k, asOf)
	}
	l.mu.RUnlock()
	return out
}

// LastWriter returns the newest batch that wrote key (-1 if never).
func (l *LSM) LastWriter(key string) int64 {
	l.mu.RLock()
	v := l.lookupLocked(key, math.MaxInt64)
	l.mu.RUnlock()
	if !v.Found {
		return -1
	}
	return v.Writer
}

// LastWriters batches LastWriter over many keys under one lock hold.
func (l *LSM) LastWriters(keys []string) []int64 {
	out := make([]int64, len(keys))
	l.mu.RLock()
	for i, k := range keys {
		if v := l.lookupLocked(k, math.MaxInt64); v.Found {
			out[i] = v.Writer
		} else {
			out[i] = -1
		}
	}
	l.mu.RUnlock()
	return out
}

// Keys returns the number of live keys (the union of memtable and run
// keys).
func (l *LSM) Keys() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := make(map[string]struct{}, len(l.mem))
	for k, vs := range l.mem {
		if len(vs) > 0 {
			seen[k] = struct{}{}
		}
	}
	for _, r := range l.runs {
		for i := range r.entries {
			seen[r.entries[i].key] = struct{}{}
		}
	}
	return len(seen)
}

// VersionCount returns how many versions of key are retained. Version
// ranges of the memtable and each run are disjoint, so the counts sum.
func (l *LSM) VersionCount(key string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := len(l.mem[key])
	for _, r := range l.runs {
		if key < r.minKey || key > r.maxKey {
			continue
		}
		if e := r.find(key); e != nil {
			n += len(e.versions)
		}
	}
	return n
}

// ExportAsOf captures the snapshot at asOf, key-sorted: for every key,
// the newest version with writer <= asOf.
func (l *LSM) ExportAsOf(asOf int64) []store.KV {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := make(map[string]struct{}, len(l.mem))
	var out []store.KV
	add := func(k string) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		if v := l.lookupLocked(k, asOf); v.Found {
			out = append(out, store.KV{Key: k, Value: v.Value, Writer: v.Writer})
		}
	}
	for k := range l.mem {
		add(k)
	}
	for _, r := range l.runs {
		for i := range r.entries {
			add(r.entries[i].key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ImportAsOf replaces all content with a snapshot captured at asOf:
// the memtable resets and the snapshot becomes the single run, each key
// carrying exactly one version tagged with its original writer batch.
func (l *LSM) ImportAsOf(asOf int64, entries []store.KV) {
	sorted := entries
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key }) {
		sorted = append([]store.KV(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	}
	es := make([]entry, 0, len(sorted))
	for _, e := range sorted {
		es = append(es, entry{key: e.Key, versions: []version{{batch: e.Writer, value: e.Value}}})
	}
	l.mu.Lock()
	l.mem = make(map[string][]version)
	l.memBytes = 0
	if len(es) > 0 {
		l.runs = []*run{newRun(es)}
	} else {
		l.runs = nil
	}
	l.mu.Unlock()
	l.advanceStable(asOf)
}

// Prune drops versions below keepFrom across all stripes.
func (l *LSM) Prune(keepFrom int64) {
	for i := 0; i < pruneStripes; i++ {
		l.PruneShard(i, keepFrom)
	}
}

// PruneShard prunes one stripe synchronously: for every key hashing to
// stripe i it keeps the newest version at or below keepFrom plus
// everything newer, and drops the rest — scanning the memtable first
// and then the runs newest-first, so once a newer structure is known to
// retain the key's floor version every older version of that key can go
// outright. Runs are immutable, so affected ones are rebuilt and
// swapped in place (which also tells an in-flight background merge its
// inputs are stale). The background compactor reclaims the remaining
// slack by merging runs at the already-applied floor.
func (l *LSM) PruneShard(i int, keepFrom int64) {
	if i < 0 || i >= pruneStripes {
		return
	}
	l.mu.Lock()
	if keepFrom <= l.stripeFloor[i] {
		l.mu.Unlock()
		return
	}
	l.stripeFloor[i] = keepFrom
	// kept marks keys whose floor version is retained by a structure
	// newer than the one currently being scanned.
	kept := make(map[string]bool)
	for k, vs := range l.mem {
		if stripeOf(k) != i {
			continue
		}
		j := sort.Search(len(vs), func(j int) bool { return vs[j].batch > keepFrom })
		if j > 1 {
			l.mem[k] = append(vs[:0:0], vs[j-1:]...)
		}
		if j > 0 {
			kept[k] = true
		}
	}
	var changed bool
	var newRuns []*run
	for _, r := range l.runs {
		nr, mod := r.pruneStripe(i, keepFrom, kept)
		changed = changed || mod
		if nr != nil {
			newRuns = append(newRuns, nr)
		}
	}
	if changed {
		l.runs = newRuns
	}
	l.mu.Unlock()
	if changed {
		l.signalCompact()
	}
}

// floorLocked is the prune boundary every stripe has been pruned to —
// the floor the compactor may drop versions below. The caller holds at
// least the read lock.
func (l *LSM) floorLocked() int64 {
	floor := l.stripeFloor[0]
	for _, f := range l.stripeFloor[1:] {
		if f < floor {
			floor = f
		}
	}
	return floor
}
