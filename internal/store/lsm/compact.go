package lsm

import "sort"

// entry is one key's version history within a run, batches ascending.
type entry struct {
	key      string
	versions []version
}

// run is an immutable key-sorted batch of frozen version histories.
// minKey/maxKey let lookups skip runs whose key range can't contain the
// probe. Runs are never mutated after construction: pruning and
// compaction build replacement runs and swap the list under the write
// lock, which is what makes lock-free sharing with the background
// compactor sound.
type run struct {
	entries []entry
	minKey  string
	maxKey  string
}

func newRun(entries []entry) *run {
	return &run{
		entries: entries,
		minKey:  entries[0].key,
		maxKey:  entries[len(entries)-1].key,
	}
}

// find binary-searches the run for key; nil if absent.
func (r *run) find(key string) *entry {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].key >= key })
	if i < len(r.entries) && r.entries[i].key == key {
		return &r.entries[i]
	}
	return nil
}

// pruneStripe returns a copy of the run with stripe-i keys pruned to
// keepFrom, or (r, false) if nothing changed. kept carries which keys
// already have their floor version retained by a newer structure (the
// memtable or a newer run): those keys' versions here are all older
// than a retained version <= keepFrom and drop entirely. It is updated
// for keys whose floor version this run retains, so older runs can
// shed them.
func (r *run) pruneStripe(stripe int, keepFrom int64, kept map[string]bool) (*run, bool) {
	entries := make([]entry, 0, len(r.entries))
	changed := false
	for _, e := range r.entries {
		if stripeOf(e.key) != stripe {
			entries = append(entries, e)
			continue
		}
		if kept[e.key] {
			changed = true
			continue
		}
		vs := e.versions
		j := sort.Search(len(vs), func(j int) bool { return vs[j].batch > keepFrom })
		if j > 0 {
			kept[e.key] = true
		}
		if j > 1 {
			vs = append(vs[:0:0], vs[j-1:]...)
			changed = true
		}
		entries = append(entries, entry{key: e.key, versions: vs})
	}
	if !changed {
		return r, false
	}
	if len(entries) == 0 {
		return nil, true
	}
	return newRun(entries), true
}

// signalCompact nudges the compactor without blocking; the channel is
// level-triggered with capacity one, so a pending signal absorbs
// duplicates.
func (l *LSM) signalCompact() {
	select {
	case l.compactC <- struct{}{}:
	default:
	}
}

// compactLoop is the background compactor: each signal triggers at most
// one merge pass. Passes also re-signal themselves when more work
// remains (e.g. freezes landed during a merge).
func (l *LSM) compactLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case <-l.compactC:
			if l.compactPass() {
				l.signalCompact()
			}
		}
	}
}

// compactPass merges all current runs into one if enough accumulated.
// The merge runs outside the lock against an immutable snapshot of the
// run list; installation verifies the snapshot is still the tail of the
// list (freezes prepend, so new runs at the front are fine) and
// abandons otherwise — a prune rewrote a source run, and resurrecting
// its pre-prune versions would violate the prune contract. Returns
// whether another pass might have work.
func (l *LSM) compactPass() bool {
	l.mu.RLock()
	if len(l.runs) < l.opts.CompactRuns {
		l.mu.RUnlock()
		return false
	}
	src := append([]*run(nil), l.runs...)
	floor := l.floorLocked()
	l.mu.RUnlock()

	merged := mergeRuns(src, floor)

	l.mu.Lock()
	defer l.mu.Unlock()
	if !tailIs(l.runs, src) {
		// Inputs went stale mid-merge; the prune that rewrote them
		// already re-signaled, and the next pass sees fresh runs.
		return false
	}
	head := l.runs[:len(l.runs)-len(src) : len(l.runs)-len(src)]
	if merged != nil {
		l.runs = append(head, merged)
	} else {
		l.runs = head
	}
	l.compactions.Add(1)
	return len(l.runs) >= l.opts.CompactRuns
}

// tailIs reports whether src is exactly the identity-equal tail of
// runs.
func tailIs(runs, src []*run) bool {
	if len(runs) < len(src) {
		return false
	}
	off := len(runs) - len(src)
	for i, r := range src {
		if runs[off+i] != r {
			return false
		}
	}
	return true
}

// mergeRuns k-way merges newest-first runs into one, concatenating each
// key's versions oldest-run-first so batches stay ascending, and drops
// versions below the prune floor (keeping each key's newest version at
// or below it — the same rule PruneShard applies synchronously, here
// reclaiming cross-run slack). Returns nil if everything merged away.
func mergeRuns(src []*run, floor int64) *run {
	cursors := make([]int, len(src))
	var entries []entry
	for {
		minKey := ""
		found := false
		for i, r := range src {
			if cursors[i] >= len(r.entries) {
				continue
			}
			if k := r.entries[cursors[i]].key; !found || k < minKey {
				minKey, found = k, true
			}
		}
		if !found {
			break
		}
		var vs []version
		for i := len(src) - 1; i >= 0; i-- {
			r := src[i]
			if cursors[i] < len(r.entries) && r.entries[cursors[i]].key == minKey {
				vs = append(vs, r.entries[cursors[i]].versions...)
				cursors[i]++
			}
		}
		if j := sort.Search(len(vs), func(j int) bool { return vs[j].batch > floor }); j > 1 {
			vs = vs[j-1:]
		}
		entries = append(entries, entry{key: minKey, versions: vs})
	}
	if len(entries) == 0 {
		return nil
	}
	return newRun(entries)
}
