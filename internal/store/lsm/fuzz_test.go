package lsm_test

import (
	"bytes"
	"fmt"
	"testing"

	"transedge/internal/store"
	"transedge/internal/store/lsm"
)

// FuzzEngineDifferential decodes the fuzzer's byte stream into an op
// sequence — applies, point reads, snapshot reads, exports, prunes, and
// a cross-engine snapshot import — and runs it against the sharded
// store and the LSM engine side by side, requiring identical Get /
// GetAsOf / ExportAsOf / LastWriters results after every op. The LSM
// runs with a tiny memtable and an eager compactor so even short inputs
// cross the freeze and merge paths; reads stay within the pruned
// watermark window, where results must be deterministic regardless of
// where a backend's compaction happens to be. This is the conformance
// suite's randomized test with the fuzzer, not a fixed seed, choosing
// the schedule.
func FuzzEngineDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0xff, 1, 0, 2, 7, 3, 0, 4, 9})
	f.Add([]byte{0, 0x0f, 0, 0xf0, 5, 3, 2, 1, 0, 0xaa, 6, 0, 4, 0})
	f.Add(bytes.Repeat([]byte{0, 0x55, 2, 9, 5, 1}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		a := store.NewSharded(4) // the reference
		b := lsm.NewWithOptions(lsm.Options{MemtableBytes: 64, CompactRuns: 2})
		defer b.Close()

		const keySpace = 16
		keyAt := func(i byte) string { return fmt.Sprintf("k%02d", int(i)%keySpace) }
		allKeys := make([]string, keySpace)
		for i := range allKeys {
			allKeys[i] = keyAt(byte(i))
		}

		var nextBatch, floor int64
		// clamp maps an arbitrary byte to a snapshot inside the window
		// both engines must serve deterministically: [floor, stable].
		clamp := func(arg byte) int64 {
			stable := a.StableBatch()
			if stable <= floor {
				return floor
			}
			return floor + int64(arg)%(stable-floor+1)
		}
		compareAt := func(asOf int64) {
			t.Helper()
			for _, k := range allKeys {
				av, aw, aok := a.GetAsOf(k, asOf)
				bv, bw, bok := b.GetAsOf(k, asOf)
				if aok != bok || aw != bw || !bytes.Equal(av, bv) {
					t.Fatalf("GetAsOf(%q, %d): sharded (%q, %d, %v) vs lsm (%q, %d, %v)",
						k, asOf, av, aw, aok, bv, bw, bok)
				}
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 7 {
			case 0: // apply a batch with 1-4 writes derived from arg
				nextBatch++
				writes := map[string][]byte{}
				for n := byte(0); n <= arg%4; n++ {
					k := keyAt(arg + 5*n)
					writes[k] = []byte(fmt.Sprintf("v%d-%s", nextBatch, k))
				}
				a.ApplyAll(nextBatch, writes)
				b.ApplyAll(nextBatch, writes)
			case 1: // point read
				k := keyAt(arg)
				av, aw, aok := a.Get(k)
				bv, bw, bok := b.Get(k)
				if aok != bok || aw != bw || !bytes.Equal(av, bv) {
					t.Fatalf("Get(%q): sharded (%q, %d, %v) vs lsm (%q, %d, %v)",
						k, av, aw, aok, bv, bw, bok)
				}
			case 2: // snapshot read sweep inside the servable window
				compareAt(clamp(arg))
			case 3: // last-writer provenance
				aw, bw := a.LastWriters(allKeys), b.LastWriters(allKeys)
				for j := range allKeys {
					if aw[j] != bw[j] {
						t.Fatalf("LastWriters[%q] = %d vs %d", allKeys[j], aw[j], bw[j])
					}
				}
			case 4: // full snapshot export
				asOf := clamp(arg)
				ae, be := a.ExportAsOf(asOf), b.ExportAsOf(asOf)
				if len(ae) != len(be) {
					t.Fatalf("ExportAsOf(%d): %d vs %d entries", asOf, len(ae), len(be))
				}
				for j := range ae {
					if ae[j].Key != be[j].Key || ae[j].Writer != be[j].Writer ||
						!bytes.Equal(ae[j].Value, be[j].Value) {
						t.Fatalf("ExportAsOf(%d)[%d]: %+v vs %+v", asOf, j, ae[j], be[j])
					}
				}
			case 5: // advance the prune floor on both sides
				next := floor + 1 + int64(arg%5)
				if stable := a.StableBatch(); next > stable {
					next = stable
				}
				if next > floor {
					floor = next
					a.Prune(floor)
					b.Prune(floor)
				}
			case 6: // cross-engine state transfer: sharded's snapshot into both
				stable := a.StableBatch()
				if stable < 0 {
					continue
				}
				snap := a.ExportAsOf(stable)
				a.ImportAsOf(stable, snap)
				b.ImportAsOf(stable, snap)
				floor = stable // history collapsed to the boundary
			}
		}

		// Final sweep: the full servable window must agree.
		for asOf := floor; asOf <= a.StableBatch(); asOf++ {
			compareAt(asOf)
		}
		if a.StableBatch() != b.StableBatch() {
			t.Fatalf("StableBatch: %d vs %d", a.StableBatch(), b.StableBatch())
		}
		if a.Keys() != b.Keys() {
			t.Fatalf("Keys: %d vs %d", a.Keys(), b.Keys())
		}
	})
}
