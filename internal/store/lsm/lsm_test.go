package lsm_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/store"
	"transedge/internal/store/lsm"
	"transedge/internal/store/storetest"
)

// TestLSMEngineConformance runs the reusable Engine conformance suite at
// three operating points: defaults (everything stays in the memtable for
// suite-sized workloads), a tiny memtable (every few batches freeze a
// run, compaction at 3 runs — the run/merge machinery carries the load),
// and a degenerate single-run compactor threshold with an even smaller
// memtable. A backend is only trusted if the suite passes wherever the
// thresholds land.
func TestLSMEngineConformance(t *testing.T) {
	configs := []struct {
		name string
		opts lsm.Options
	}{
		{"defaults", lsm.Options{}},
		{"tiny-memtable", lsm.Options{MemtableBytes: 256, CompactRuns: 3}},
		{"aggressive-compaction", lsm.Options{MemtableBytes: 64, CompactRuns: 2}},
	}
	for _, cfg := range configs {
		opts := cfg.opts
		t.Run(cfg.name, func(t *testing.T) {
			storetest.Run(t, func() store.Engine { return lsm.NewWithOptions(opts) })
		})
	}
}

// TestCrossEngineStateTransfer proves a snapshot moves between the
// sharded store and the LSM engine in both directions — the mixed-fleet
// state-transfer path.
func TestCrossEngineStateTransfer(t *testing.T) {
	storetest.RunCross(t,
		func() store.Engine { return store.NewSharded(4) },
		func() store.Engine { return lsm.NewWithOptions(lsm.Options{MemtableBytes: 128, CompactRuns: 2}) },
	)
}

// TestFreezeAndCompactionHappen pins that the thresholds actually
// trigger: enough writes through a tiny memtable must freeze runs, and
// the background compactor must eventually fold them back down.
func TestFreezeAndCompactionHappen(t *testing.T) {
	e := lsm.NewWithOptions(lsm.Options{MemtableBytes: 128, CompactRuns: 2})
	defer e.Close()
	for b := int64(1); b <= 200; b++ {
		e.ApplyAll(b, map[string][]byte{
			fmt.Sprintf("key-%02d", b%16): []byte(fmt.Sprintf("value-%d", b)),
		})
	}
	if e.Freezes() == 0 {
		t.Fatal("200 batches through a 128-byte memtable froze no runs")
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Compactions() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never merged: %d freezes, %d runs", e.Freezes(), e.RunCount())
		}
		time.Sleep(time.Millisecond)
	}
	// Reads must be correct regardless of where versions live.
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v, w, ok := e.Get(k)
		if !ok || string(v) != fmt.Sprintf("value-%d", w) {
			t.Fatalf("Get(%q) = (%q, %d, %v) after freeze+compaction", k, v, w, ok)
		}
	}
}

// TestCompactionRespectsPruneFloor pins that merging runs keeps every
// key's newest version at or below the prune floor: snapshots at the
// floor stay servable after freezes, prunes, and merges interleave.
func TestCompactionRespectsPruneFloor(t *testing.T) {
	e := lsm.NewWithOptions(lsm.Options{MemtableBytes: 96, CompactRuns: 2})
	defer e.Close()
	const floor = 60
	for b := int64(1); b <= 120; b++ {
		e.ApplyAll(b, map[string][]byte{
			fmt.Sprintf("key-%02d", b%8): []byte(fmt.Sprintf("value-%d", b)),
		})
		if b == 90 {
			e.Prune(floor)
		}
	}
	// Give the compactor a chance to fold everything; correctness must
	// hold whether or not it finished.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v, w, ok := e.GetAsOf(k, floor)
		if !ok || w > floor || string(v) != fmt.Sprintf("value-%d", w) {
			t.Fatalf("GetAsOf(%q, %d) = (%q, %d, %v): floor snapshot lost", k, floor, v, w, ok)
		}
	}
}

// TestCloseIsIdempotentAndLeavesEngineReadable pins the lifecycle
// contract the core relies on when stopping a node.
func TestCloseIsIdempotentAndLeavesEngineReadable(t *testing.T) {
	e := lsm.New()
	e.ApplyAll(1, map[string][]byte{"k": []byte("v")})
	e.Close()
	e.Close()
	if v, w, ok := e.Get("k"); !ok || string(v) != "v" || w != 1 {
		t.Fatalf("Get after Close = (%q, %d, %v)", v, w, ok)
	}
}

// TestRegistryBuildsLSM pins that the "lsm" name resolves through the
// engine registry (the side-effect import contract the core uses).
func TestRegistryBuildsLSM(t *testing.T) {
	e, err := store.NewEngine("lsm", 16)
	if err != nil {
		t.Fatalf("NewEngine(lsm) = %v", err)
	}
	l, ok := e.(*lsm.LSM)
	if !ok {
		t.Fatalf("NewEngine(lsm) built a %T", e)
	}
	l.Close()
}
