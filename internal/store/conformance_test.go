package store_test

import (
	"fmt"
	"testing"

	"transedge/internal/store"
	"transedge/internal/store/storetest"
)

// TestShardedEngineConformance runs the reusable Engine conformance suite
// against the sharded MVCC store at the shard counts the system actually
// uses: 1 (the readscale baseline), 4, and 16 (DefaultShards). Alternate
// backends add their own one-line test calling storetest.Run.
func TestShardedEngineConformance(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			storetest.Run(t, func() store.Engine { return store.NewSharded(shards) })
		})
	}
}
