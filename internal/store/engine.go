package store

// Engine is the storage surface the replica core depends on. The sharded
// in-memory MVCC Store is the default implementation; alternate backends
// (an LSM, an mmap'd file store) slot in behind the same interface — the
// durability layer (WAL + disk checkpoints) sits above Engine and works
// with any of them, because crash recovery rebuilds engine content from
// the verified checkpoint snapshot plus the replayed WAL suffix rather
// than trusting backend-private files.
//
// Contract (see the conformance suite in store/storetest):
//
//   - ApplyAll(batch, writes) installs one delivered batch's write set
//     atomically per shard and publishes batch as the stable watermark;
//     batch IDs are strictly increasing across calls.
//   - Reads at or below StableBatch() are torn-free snapshots.
//   - ExportAsOf/ImportAsOf round-trip the visible snapshot at any batch
//     boundary, including writer provenance.
//   - Prune(keepFrom) may drop versions strictly below keepFrom but must
//     keep each key's newest version at or below it (the snapshot at
//     keepFrom stays servable).
type Engine interface {
	// Load installs the genesis data as batch 0 writes.
	Load(kv map[string][]byte)
	// ApplyAll applies one batch's write set in a single sharded pass and
	// advances the stable watermark to batch (also for empty write sets).
	ApplyAll(batch int64, writes map[string][]byte)
	// Get returns the newest version of key.
	Get(key string) (value []byte, writer int64, ok bool)
	// GetAsOf returns the newest version of key visible at asOf.
	GetAsOf(key string, asOf int64) (value []byte, writer int64, ok bool)
	// MultiGetAsOf resolves a snapshot read of many keys in one pass.
	MultiGetAsOf(keys []string, asOf int64) []Versioned
	// LastWriter returns the newest batch that wrote key (-1 if never).
	LastWriter(key string) int64
	// LastWriters batches LastWriter over many keys.
	LastWriters(keys []string) []int64
	// StableBatch is the newest batch whose writes are fully visible.
	StableBatch() int64
	// ExportAsOf captures the snapshot at asOf, key-sorted.
	ExportAsOf(asOf int64) []KV
	// ImportAsOf replaces all content with a snapshot captured at asOf.
	ImportAsOf(asOf int64, entries []KV)
	// Keys returns the number of live keys.
	Keys() int
	// VersionCount returns how many versions of key are retained.
	VersionCount(key string) int
	// Prune drops versions below keepFrom across all shards.
	Prune(keepFrom int64)
	// PruneShard prunes one shard; i ranges over [0, ShardCount()).
	PruneShard(i int, keepFrom int64)
	// ShardCount reports the shard count for incremental pruning.
	ShardCount() int
}

// Store implements Engine.
var _ Engine = (*Store)(nil)
