package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	}
	for _, c := range cases {
		if got := NewSharded(c.in).ShardCount(); got != c.want {
			t.Fatalf("NewSharded(%d).ShardCount() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStableBatchWatermark(t *testing.T) {
	s := New()
	if got := s.StableBatch(); got != -1 {
		t.Fatalf("fresh store StableBatch = %d, want -1", got)
	}
	s.Load(map[string][]byte{"a": []byte("1")})
	if got := s.StableBatch(); got != GenesisBatch {
		t.Fatalf("after Load StableBatch = %d, want %d", got, GenesisBatch)
	}
	s.ApplyAll(3, map[string][]byte{"a": []byte("2")})
	if got := s.StableBatch(); got != 3 {
		t.Fatalf("after ApplyAll(3) StableBatch = %d, want 3", got)
	}
	// Write-free batches advance the watermark too: delivery of a batch
	// with no local writes must still make snapshot reads at its ID
	// recognizably stable.
	s.ApplyAll(4, nil)
	if got := s.StableBatch(); got != 4 {
		t.Fatalf("after empty ApplyAll(4) StableBatch = %d, want 4", got)
	}
}

func TestMultiGetAsOfMatchesGetAsOf(t *testing.T) {
	s := NewSharded(8)
	rng := rand.New(rand.NewSource(5))
	var keys []string
	for i := 0; i < 40; i++ {
		keys = append(keys, fmt.Sprintf("key-%03d", i))
	}
	for b := int64(1); b <= 30; b++ {
		writes := map[string][]byte{}
		for _, k := range keys {
			if rng.Intn(3) == 0 {
				writes[k] = []byte(fmt.Sprintf("%s@%d", k, b))
			}
		}
		s.ApplyAll(b, writes)
	}
	probe := append([]string{"never-written", keys[7]}, keys[20:30]...)
	for _, asOf := range []int64{0, 7, 15, 30, 99} {
		got := s.MultiGetAsOf(probe, asOf)
		if len(got) != len(probe) {
			t.Fatalf("MultiGetAsOf returned %d results for %d keys", len(got), len(probe))
		}
		for i, k := range probe {
			v, w, ok := s.GetAsOf(k, asOf)
			if got[i].Found != ok || got[i].Writer != w || string(got[i].Value) != string(v) {
				t.Fatalf("MultiGetAsOf(%q, %d) = %+v, GetAsOf = %q@%d %v",
					k, asOf, got[i], v, w, ok)
			}
		}
	}
}

func TestLastWritersMatchesLastWriter(t *testing.T) {
	s := NewSharded(4)
	s.Load(map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	s.ApplyAll(5, map[string][]byte{"b": []byte("3"), "c": []byte("4")})
	probe := []string{"a", "b", "c", "missing"}
	got := s.LastWriters(probe)
	for i, k := range probe {
		if want := s.LastWriter(k); got[i] != want {
			t.Fatalf("LastWriters[%q] = %d, want %d", k, got[i], want)
		}
	}
}

// modelStore replicates the seed's single-map store: one version slice
// per key, no shards, no locks. The equivalence property below drives it
// and the sharded engine with identical random operation sequences and
// demands identical answers.
type modelStore struct {
	data map[string][]version
}

func newModel() *modelStore { return &modelStore{data: make(map[string][]version)} }

func (m *modelStore) apply(batch int64, writes map[string][]byte) {
	for k, v := range writes {
		vs := m.data[k]
		if n := len(vs); n > 0 && vs[n-1].batch == batch {
			vs[n-1].value = v
		} else {
			vs = append(vs, version{batch: batch, value: v})
		}
		m.data[k] = vs
	}
}

func (m *modelStore) getAsOf(key string, asOf int64) ([]byte, int64, bool) {
	vs := m.data[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].batch <= asOf {
			return vs[i].value, vs[i].batch, true
		}
	}
	return nil, 0, false
}

func (m *modelStore) lastWriter(key string) int64 {
	vs := m.data[key]
	if len(vs) == 0 {
		return -1
	}
	return vs[len(vs)-1].batch
}

func (m *modelStore) prune(keepFrom int64) {
	for k, vs := range m.data {
		i := 0
		for i < len(vs) && vs[i].batch <= keepFrom {
			i++
		}
		if i > 1 {
			m.data[k] = append(vs[:0:0], vs[i-1:]...)
		}
	}
}

// TestShardedEquivalenceProperty runs random batched writes, prunes, and
// probes against both the sharded store and the single-map model: every
// read class (GetAsOf, MultiGetAsOf, Get, LastWriter, LastWriters,
// VersionCount) must agree at every step.
func TestShardedEquivalenceProperty(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(shards) * 977))
			s := NewSharded(shards)
			m := newModel()
			keys := make([]string, 24)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%02d", i)
			}
			pruned := int64(0)
			for batch := int64(1); batch <= 250; batch++ {
				writes := map[string][]byte{}
				for _, k := range keys {
					if rng.Intn(3) == 0 {
						writes[k] = []byte(fmt.Sprintf("%s-%d", k, batch))
					}
				}
				s.ApplyAll(batch, writes)
				m.apply(batch, writes)

				if rng.Intn(20) == 0 {
					// Prune to a random boundary at or above the last one
					// (never above the stable batch, like the node's
					// retention hook).
					pruned += rng.Int63n(batch - pruned + 1)
					s.Prune(pruned)
					m.prune(pruned)
				}

				// Probe at boundaries the node actually reads: at or above
				// the prune point.
				asOf := pruned + rng.Int63n(batch-pruned+1)
				probe := make([]string, 0, 6)
				for i := 0; i < 5; i++ {
					probe = append(probe, keys[rng.Intn(len(keys))])
				}
				probe = append(probe, "absent-key")
				multi := s.MultiGetAsOf(probe, asOf)
				writers := s.LastWriters(probe)
				for i, k := range probe {
					wv, ww, wok := m.getAsOf(k, asOf)
					if multi[i].Found != wok || multi[i].Writer != ww || string(multi[i].Value) != string(wv) {
						t.Fatalf("batch %d: MultiGetAsOf(%q, %d) = %+v, model %q@%d %v",
							batch, k, asOf, multi[i], wv, ww, wok)
					}
					gv, gw, gok := s.GetAsOf(k, asOf)
					if gok != wok || gw != ww || string(gv) != string(wv) {
						t.Fatalf("batch %d: GetAsOf(%q, %d) = %q@%d %v, model %q@%d %v",
							batch, k, asOf, gv, gw, gok, wv, ww, wok)
					}
					if writers[i] != m.lastWriter(k) {
						t.Fatalf("batch %d: LastWriters[%q] = %d, model %d",
							batch, k, writers[i], m.lastWriter(k))
					}
					if s.VersionCount(k) != len(m.data[k]) {
						t.Fatalf("batch %d: VersionCount(%q) = %d, model %d",
							batch, k, s.VersionCount(k), len(m.data[k]))
					}
				}
			}
			if s.Keys() != len(m.data) {
				t.Fatalf("Keys() = %d, model %d", s.Keys(), len(m.data))
			}
		})
	}
}

// TestConcurrentApplyMultiGetPruneStress exercises the exact concurrency
// the node produces under the race detector: one dispatcher (the event
// loop) applying batches in order, pinning snapshot targets, and running
// the incremental per-shard pruner clamped by the oldest pinned target —
// while a pool of readers does the snapshot fan-outs concurrently.
// Readers assert full snapshot semantics: every key resolves, the writer
// batch never exceeds the snapshot, and the value is the one that writer
// produced. (Pinning MUST be serialized with prune-boundary computation —
// the node does both on its event loop; a free-running reader picking its
// own snapshot could be overtaken by the pruner. This test mirrors that
// protocol.)
func TestConcurrentApplyMultiGetPruneStress(t *testing.T) {
	const (
		keys    = 64
		batches = 400
		readers = 4
		lag     = 8 // desired prune boundary: this far behind the stable batch
	)
	s := NewSharded(8)
	all := make([]string, keys)
	init := make(map[string][]byte, keys)
	for i := range all {
		all[i] = fmt.Sprintf("key-%04d", i)
		init[all[i]] = []byte(fmt.Sprintf("%s@0", all[i]))
	}
	s.Load(init)

	type job struct {
		target int64
		probe  []string
	}
	var (
		pinMu sync.Mutex
		pins  = map[int64]int{}
	)
	unpin := func(target int64) {
		pinMu.Lock()
		if pins[target] > 1 {
			pins[target]--
		} else {
			delete(pins, target)
		}
		pinMu.Unlock()
	}
	minPinned := func() int64 {
		pinMu.Lock()
		defer pinMu.Unlock()
		min := int64(-1)
		for tgt := range pins {
			if min < 0 || tgt < min {
				min = tgt
			}
		}
		return min
	}

	jobs := make(chan job, 64)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				for i, v := range s.MultiGetAsOf(j.probe, j.target) {
					if !v.Found || v.Writer > j.target ||
						string(v.Value) != fmt.Sprintf("%s@%d", j.probe[i], v.Writer) {
						failures.Add(1)
						break
					}
				}
				unpin(j.target)
			}
		}()
	}

	// The dispatcher: write, pin + hand out reads, prune — serialized,
	// like the node's event loop. `oldest` plays oldestSnapshot's role
	// (monotone; every handed-out target is at or above it), and a prune
	// pass fixes its boundary when it starts, clamped by pinned targets —
	// exactly Node.pruneStoreStep's protocol.
	rng := rand.New(rand.NewSource(99))
	var oldest, passBoundary, prunedThrough int64
	cursor := 0
	for b := int64(1); b <= batches; b++ {
		writes := map[string][]byte{}
		for _, k := range all {
			if rng.Intn(4) == 0 {
				writes[k] = []byte(fmt.Sprintf("%s@%d", k, b))
			}
		}
		s.ApplyAll(b, writes)
		if b-lag > oldest {
			oldest = b - lag
		}

		// Pin snapshots at or above the retention floor, then hand the
		// fan-outs to readers.
		for n := rng.Intn(3); n > 0; n-- {
			target := oldest + rng.Int63n(b-oldest+1)
			probe := make([]string, 8)
			for i := range probe {
				probe[i] = all[rng.Intn(len(all))]
			}
			pinMu.Lock()
			pins[target]++
			pinMu.Unlock()
			select {
			case jobs <- job{target: target, probe: probe}:
			default:
				unpin(target) // pool saturated; the node would serve inline
			}
		}

		// Incremental prune step, boundary fixed per pass and clamped by
		// in-flight snapshots at pass start.
		if cursor == 0 {
			keep := oldest
			if m := minPinned(); m >= 0 && m < keep {
				keep = m
			}
			if keep <= prunedThrough {
				continue
			}
			passBoundary = keep
		}
		s.PruneShard(cursor, passBoundary)
		cursor++
		if cursor == s.ShardCount() {
			cursor = 0
			prunedThrough = passBoundary
		}
	}
	close(jobs)
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d snapshot reads returned torn or pruned state", n)
	}
	// Final state sanity after the dust settles.
	for _, k := range all[:8] {
		v, w, ok := s.Get(k)
		if !ok || string(v) != fmt.Sprintf("%s@%d", k, w) {
			t.Fatalf("final Get(%q) = %q@%d %v", k, v, w, ok)
		}
	}
}
