package store_test

import (
	"strings"
	"testing"

	"transedge/internal/store"
)

// TestNewEngineDefaultsAndErrors pins the registry contract: the empty
// name selects the sharded default, and an unknown name is an error
// that lists every valid backend — no silent fallback.
func TestNewEngineDefaultsAndErrors(t *testing.T) {
	e, err := store.NewEngine("", 8)
	if err != nil {
		t.Fatalf(`NewEngine("") = %v`, err)
	}
	if _, ok := e.(*store.Store); !ok {
		t.Fatalf(`NewEngine("") built a %T, want the sharded store`, e)
	}
	if e, err = store.NewEngine(store.DefaultEngine, 8); err != nil {
		t.Fatalf("NewEngine(%q) = %v", store.DefaultEngine, err)
	} else if _, ok := e.(*store.Store); !ok {
		t.Fatalf("NewEngine(%q) built a %T", store.DefaultEngine, e)
	}

	_, err = store.NewEngine("no-such-backend", 8)
	if err == nil {
		t.Fatal("NewEngine(no-such-backend) succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no-such-backend") {
		t.Fatalf("error %q does not echo the bad name", msg)
	}
	for _, name := range store.EngineNames() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list registered engine %q", msg, name)
		}
	}
}

// TestEngineNamesSorted pins that the name list is deterministic (it is
// embedded in user-facing error messages and CLI help).
func TestEngineNamesSorted(t *testing.T) {
	names := store.EngineNames()
	if len(names) == 0 {
		t.Fatal("no engines registered")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("EngineNames not sorted: %v", names)
		}
	}
	seen := false
	for _, n := range names {
		if n == store.DefaultEngine {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("EngineNames %v missing the default %q", names, store.DefaultEngine)
	}
}
