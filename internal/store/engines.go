package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The engine registry maps backend names to constructors so the rest of
// the system can select a storage engine by configuration string
// ("sharded", "lsm", ...) instead of linking against a concrete type.
// Alternate backends register themselves from an init function; whoever
// builds nodes (internal/core) imports them for the side effect. Every
// registered backend must pass the storetest conformance suite — the
// registry is how a name in a config file becomes code the replica core
// is allowed to trust.

// DefaultEngine is the backend selected by an empty engine name: the
// sharded in-memory MVCC store, the seed's semantics.
const DefaultEngine = "sharded"

// EngineBuilder constructs one engine instance. shards is the
// StoreShards knob; backends without a shard concept may ignore it.
type EngineBuilder func(shards int) Engine

var (
	enginesMu sync.RWMutex
	engines   = map[string]EngineBuilder{
		DefaultEngine: func(shards int) Engine { return NewSharded(shards) },
	}
)

// RegisterEngine adds a named backend. Intended to be called from init
// functions of backend packages; registering a duplicate name panics
// (two backends claiming one name is a programming error, not a runtime
// condition).
func RegisterEngine(name string, build EngineBuilder) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	if name == "" || build == nil {
		panic("store: RegisterEngine with empty name or nil builder")
	}
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("store: engine %q registered twice", name))
	}
	engines[name] = build
}

// EngineNames returns the registered backend names, sorted.
func EngineNames() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewEngine builds the named backend ("" selects DefaultEngine). An
// unknown name is an error listing the valid backends — callers
// surface it instead of silently falling back to the default, so a
// typo in an -engine flag or Options.Engine can never masquerade as a
// measurement of the sharded store.
func NewEngine(name string, shards int) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	enginesMu.RLock()
	build, ok := engines[name]
	enginesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown storage engine %q (valid engines: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
	return build(shards), nil
}
