// Package store implements the multi-version key-value storage used by
// every TransEdge replica.
//
// Each committed batch writes a new version of the keys it touches, tagged
// with the batch ID. Point-in-time reads ("value of k as of batch i")
// power both OCC validation (a read set records the writer batch of each
// value) and the second round of the read-only protocol, which serves the
// snapshot of an earlier batch after later batches have committed.
package store

import (
	"sort"
	"sync"
)

// GenesisBatch is the version assigned to the initial data load.
const GenesisBatch int64 = 0

// version is one historical value of a key.
type version struct {
	batch int64
	value []byte
}

// Store is a thread-safe multi-version map. Versions for a key are kept in
// strictly increasing batch order; Apply must be called with
// non-decreasing batch IDs (the SMR log already serializes batches).
type Store struct {
	mu   sync.RWMutex
	data map[string][]version
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]version)}
}

// Load initializes keys at the genesis version. Intended for the initial
// data placement before the system starts.
func (s *Store) Load(kv map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range kv {
		s.data[k] = []version{{batch: GenesisBatch, value: v}}
	}
}

// Apply writes a batch of updates as versions tagged with batch.
// Overwriting within the same batch replaces the version (last write
// wins), matching batch semantics where conflicting transactions never
// share a batch.
func (s *Store) Apply(batch int64, writes map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range writes {
		vs := s.data[k]
		if n := len(vs); n > 0 && vs[n-1].batch == batch {
			vs[n-1].value = v
		} else {
			vs = append(vs, version{batch: batch, value: v})
		}
		s.data[k] = vs
	}
}

// Get returns the latest committed value of key and the batch that wrote
// it.
func (s *Store) Get(key string) (value []byte, writer int64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	if len(vs) == 0 {
		return nil, 0, false
	}
	last := vs[len(vs)-1]
	return last.value, last.batch, true
}

// GetAsOf returns the value of key as of the given batch (the newest
// version with writer batch <= asOf) and the writer batch.
func (s *Store) GetAsOf(key string, asOf int64) (value []byte, writer int64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	// First index with batch > asOf; the predecessor is the answer.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].batch > asOf })
	if i == 0 {
		return nil, 0, false
	}
	v := vs[i-1]
	return v.value, v.batch, true
}

// LastWriter returns the batch that last wrote key, or -1 if the key has
// never been written.
func (s *Store) LastWriter(key string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	if len(vs) == 0 {
		return -1
	}
	return vs[len(vs)-1].batch
}

// Keys returns the number of distinct keys stored.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// VersionCount returns the number of retained versions of key, for tests
// and introspection tooling.
func (s *Store) VersionCount(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[key])
}

// Prune drops versions strictly older than the newest version at or below
// keepFrom for every key, bounding memory in long runs while preserving
// the ability to serve snapshots at or after keepFrom.
func (s *Store) Prune(keepFrom int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, vs := range s.data {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].batch > keepFrom })
		// vs[i-1] is the version visible at keepFrom; keep it and later.
		if i > 1 {
			s.data[k] = append(vs[:0:0], vs[i-1:]...)
		}
	}
}
