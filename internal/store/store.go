// Package store implements the multi-version key-value storage used by
// every TransEdge replica.
//
// Each committed batch writes a new version of the keys it touches, tagged
// with the batch ID. Point-in-time reads ("value of k as of batch i")
// power both OCC validation (a read set records the writer batch of each
// value) and the second round of the read-only protocol, which serves the
// snapshot of an earlier batch after later batches have committed.
//
// The engine is sharded: keys hash (FNV-1a) onto a power-of-two number of
// shards, each guarded by its own RWMutex, so concurrent readers — the
// off-loop read executors serving snapshot transactions — contend only
// per shard, never on one global lock. The batch APIs (ApplyAll,
// MultiGetAsOf, LastWriters) group their keys by shard and take each
// shard lock exactly once per call.
//
// StableBatch is an atomically published watermark: every version tagged
// with a batch at or below it is fully applied. The single writer (the
// consensus event loop) advances it after ApplyAll finishes all shards,
// so a snapshot read at asOf <= StableBatch can never observe a torn
// (half-applied) batch regardless of which shards it touches.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
)

// GenesisBatch is the version assigned to the initial data load.
const GenesisBatch int64 = 0

// DefaultShards is the shard count used by New. Sixteen shards keep
// reader contention negligible at typical core counts while the per-shard
// maps stay large enough to amortize hashing.
const DefaultShards = 16

// version is one historical value of a key.
type version struct {
	batch int64
	value []byte
}

// shard is one lock domain of the keyspace. The padding keeps two shards'
// mutexes off one cache line so reader locks don't false-share.
type shard struct {
	mu   sync.RWMutex
	data map[string][]version
	_    [64]byte
}

// Store is a thread-safe sharded multi-version map. Versions for a key
// are kept in strictly increasing batch order; ApplyAll must be called
// with non-decreasing batch IDs from a single writer (the SMR log already
// serializes batches).
type Store struct {
	shards []shard
	mask   uint64
	// stable is the StableBatch watermark: the newest batch whose writes
	// are fully applied across all shards. -1 until the first Load/Apply.
	stable atomic.Int64
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store with n shards, rounded up to a power
// of two (n <= 0 selects DefaultShards; 1 degenerates to a single-lock
// store, which the readscale experiment uses as its baseline).
func NewSharded(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[string][]version)
	}
	s.stable.Store(-1)
	return s
}

// ShardCount returns the number of shards (a power of two).
func (s *Store) ShardCount() int { return len(s.shards) }

// shardIndex maps a key to its shard with inline FNV-1a.
func (s *Store) shardIndex(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h & s.mask
}

func (s *Store) shardOf(key string) *shard { return &s.shards[s.shardIndex(key)] }

// StableBatch returns the newest batch whose writes are fully applied on
// every shard. Snapshot reads at or below this watermark never race an
// in-progress ApplyAll.
func (s *Store) StableBatch() int64 { return s.stable.Load() }

// advanceStable ratchets the watermark up to batch.
func (s *Store) advanceStable(batch int64) {
	for {
		cur := s.stable.Load()
		if batch <= cur || s.stable.CompareAndSwap(cur, batch) {
			return
		}
	}
}

// put writes one version into a shard; the caller holds the shard lock.
// Overwriting within the same batch replaces the version (last write
// wins), matching batch semantics where conflicting transactions never
// share a batch.
func (sh *shard) put(batch int64, key string, value []byte) {
	vs := sh.data[key]
	if n := len(vs); n > 0 && vs[n-1].batch == batch {
		vs[n-1].value = value
	} else {
		vs = append(vs, version{batch: batch, value: value})
	}
	sh.data[key] = vs
}

// getAsOf resolves a snapshot read inside a shard; the caller holds at
// least the read lock.
func (sh *shard) getAsOf(key string, asOf int64) Versioned {
	vs := sh.data[key]
	// First index with batch > asOf; the predecessor is the answer.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].batch > asOf })
	if i == 0 {
		return Versioned{}
	}
	v := vs[i-1]
	return Versioned{Value: v.value, Writer: v.batch, Found: true}
}

// Load initializes keys at the genesis version. Intended for the initial
// data placement before the system starts.
func (s *Store) Load(kv map[string][]byte) {
	for k, v := range kv {
		sh := s.shardOf(k)
		sh.mu.Lock()
		sh.data[k] = []version{{batch: GenesisBatch, value: v}}
		sh.mu.Unlock()
	}
	s.advanceStable(GenesisBatch)
}

// Apply writes a batch of updates as versions tagged with batch. It is
// ApplyAll under the seed store's name, kept for call-site compatibility.
func (s *Store) Apply(batch int64, writes map[string][]byte) {
	s.ApplyAll(batch, writes)
}

// forEachShardGroup visits every key grouped by shard, taking each
// shard's lock (write when write is set, read otherwise) exactly once
// around that shard's whole group. fn receives the shard (already
// locked) and the key's index. The grouping costs one index-slice
// allocation and an O(keys × distinct-shards) scan — for the small key
// counts of batch fan-outs that beats materializing O(ShardCount)
// per-shard slices per call.
func (s *Store) forEachShardGroup(keys []string, write bool, fn func(sh *shard, i int)) {
	if len(keys) == 0 {
		return
	}
	const visited = ^uint64(0)
	idx := make([]uint64, len(keys))
	for i, k := range keys {
		idx[i] = s.shardIndex(k)
	}
	for i := range keys {
		if idx[i] == visited {
			continue
		}
		si := idx[i]
		sh := &s.shards[si]
		if write {
			sh.mu.Lock()
		} else {
			sh.mu.RLock()
		}
		for j := i; j < len(keys); j++ {
			if idx[j] == si {
				fn(sh, j)
				idx[j] = visited
			}
		}
		if write {
			sh.mu.Unlock()
		} else {
			sh.mu.RUnlock()
		}
	}
}

// ApplyAll writes a whole batch: keys are grouped by shard and each shard
// lock is taken exactly once. After every shard is written the
// StableBatch watermark advances to batch (also for empty write sets, so
// the watermark tracks delivery of write-free batches too).
func (s *Store) ApplyAll(batch int64, writes map[string][]byte) {
	if len(writes) > 0 {
		keys := make([]string, 0, len(writes))
		vals := make([][]byte, 0, len(writes))
		for k, v := range writes {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		s.forEachShardGroup(keys, true, func(sh *shard, i int) {
			sh.put(batch, keys[i], vals[i])
		})
	}
	s.advanceStable(batch)
}

// Get returns the latest committed value of key and the batch that wrote
// it.
func (s *Store) Get(key string) (value []byte, writer int64, ok bool) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	vs := sh.data[key]
	if len(vs) == 0 {
		return nil, 0, false
	}
	last := vs[len(vs)-1]
	return last.value, last.batch, true
}

// GetAsOf returns the value of key as of the given batch (the newest
// version with writer batch <= asOf) and the writer batch.
func (s *Store) GetAsOf(key string, asOf int64) (value []byte, writer int64, ok bool) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	v := sh.getAsOf(key, asOf)
	sh.mu.RUnlock()
	return v.Value, v.Writer, v.Found
}

// Versioned is one MultiGetAsOf answer: the value and the batch that
// wrote it, or Found == false if the key has no version at the snapshot.
type Versioned struct {
	Value  []byte
	Writer int64
	Found  bool
}

// MultiGetAsOf resolves a snapshot read of many keys in one pass: keys
// are grouped by shard and each shard's read lock is taken exactly once.
// Results are returned in the order of keys. Reads at asOf <=
// StableBatch are guaranteed torn-free (see the package comment).
func (s *Store) MultiGetAsOf(keys []string, asOf int64) []Versioned {
	out := make([]Versioned, len(keys))
	s.forEachShardGroup(keys, false, func(sh *shard, i int) {
		out[i] = sh.getAsOf(keys[i], asOf)
	})
	return out
}

// LastWriter returns the batch that last wrote key, or -1 if the key has
// never been written.
func (s *Store) LastWriter(key string) int64 {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	vs := sh.data[key]
	if len(vs) == 0 {
		return -1
	}
	return vs[len(vs)-1].batch
}

// LastWriters resolves the last-writer batch of many keys, grouping by
// shard so each shard lock is taken once. Results follow the order of
// keys; -1 marks never-written keys.
func (s *Store) LastWriters(keys []string) []int64 {
	out := make([]int64, len(keys))
	s.forEachShardGroup(keys, false, func(sh *shard, i int) {
		if vs := sh.data[keys[i]]; len(vs) > 0 {
			out[i] = vs[len(vs)-1].batch
		} else {
			out[i] = -1
		}
	})
	return out
}

// KV is one key's state in an exported snapshot: the value visible at
// the export batch and the batch that wrote it. The writer rides along
// because OCC validation on an importing replica compares read versions
// against last-writer batches, which the values alone cannot restore.
type KV struct {
	Key    string
	Value  []byte
	Writer int64
}

// ExportAsOf captures the snapshot at asOf as a key-sorted slice of KV
// entries: for every key, the newest version with writer <= asOf. The
// iteration is per shard — each shard's read lock is held only for its
// own scan — so concurrent readers and the (single) writer are never
// stalled across the whole keyspace. Callers must ensure versions at
// asOf have not been pruned (Prune keepFrom <= asOf).
func (s *Store) ExportAsOf(asOf int64) []KV {
	var out []KV
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.data {
			if v := sh.getAsOf(k, asOf); v.Found {
				out = append(out, KV{Key: k, Value: v.Value, Writer: v.Writer})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ImportAsOf replaces the store's content with an exported snapshot:
// every key gets exactly one version, tagged with its original writer
// batch, and the StableBatch watermark is set to asOf. Shards are
// replaced one write-lock at a time; a concurrent multi-shard snapshot
// read can therefore observe a half-installed state — safe in TransEdge
// because every read-only answer is Merkle-verified end to end, so a
// torn read surfaces as a failed client verification and a retry, never
// as silently wrong data (DESIGN.md §6).
func (s *Store) ImportAsOf(asOf int64, entries []KV) {
	byShard := make([][]KV, len(s.shards))
	for _, e := range entries {
		i := int(s.shardIndex(e.Key))
		byShard[i] = append(byShard[i], e)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.data = make(map[string][]version, len(byShard[i]))
		for _, e := range byShard[i] {
			sh.data[e.Key] = []version{{batch: e.Writer, value: e.Value}}
		}
		sh.mu.Unlock()
	}
	s.advanceStable(asOf)
}

// Keys returns the number of distinct keys stored.
func (s *Store) Keys() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.data)
		sh.mu.RUnlock()
	}
	return total
}

// VersionCount returns the number of retained versions of key, for tests
// and introspection tooling.
func (s *Store) VersionCount(key string) int {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.data[key])
}

// Prune drops versions strictly older than the newest version at or below
// keepFrom for every key, bounding memory in long runs while preserving
// the ability to serve snapshots at or after keepFrom. The whole-store
// form iterates the shards; long-running replicas instead spread the work
// over time with PruneShard so no single call stalls writers.
func (s *Store) Prune(keepFrom int64) {
	for i := range s.shards {
		s.PruneShard(i, keepFrom)
	}
}

// PruneShard prunes one shard (0 <= i < ShardCount), holding only that
// shard's write lock for the duration — the incremental unit the periodic
// lifecycle hook calls so pruning never stalls the whole keyspace.
func (s *Store) PruneShard(i int, keepFrom int64) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k, vs := range sh.data {
		j := sort.Search(len(vs), func(j int) bool { return vs[j].batch > keepFrom })
		// vs[j-1] is the version visible at keepFrom; keep it and later.
		if j > 1 {
			sh.data[k] = append(vs[:0:0], vs[j-1:]...)
		}
	}
}
