// Package storetest is the reusable conformance suite for store.Engine
// implementations. Any backend that slots in behind the Engine interface
// — the sharded in-memory MVCC store, a future LSM or mmap'd file store —
// runs the same suite and must exhibit identical observable behavior:
// the durability layer (WAL replay, checkpoint import) and the read-only
// protocol both assume these semantics, so a backend that passes here is
// safe to wire into a replica.
//
// Usage:
//
//	func TestMyEngine(t *testing.T) {
//		storetest.Run(t, func() store.Engine { return myengine.New() })
//	}
package storetest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"transedge/internal/store"
)

// Run exercises every Engine method against mk()-fresh instances. Each
// property runs as its own subtest so a failing backend reports exactly
// which part of the contract it breaks.
func Run(t *testing.T, mk func() store.Engine) {
	t.Run("EmptyEngine", func(t *testing.T) { testEmpty(t, newEngine(t, mk)) })
	t.Run("LoadGenesis", func(t *testing.T) { testLoad(t, newEngine(t, mk)) })
	t.Run("ApplyAndSnapshots", func(t *testing.T) { testApplyAndSnapshots(t, newEngine(t, mk)) })
	t.Run("EmptyBatchAdvancesWatermark", func(t *testing.T) { testEmptyBatch(t, newEngine(t, mk)) })
	t.Run("BatchedReadsMatchPointReads", func(t *testing.T) { testBatchedReads(t, newEngine(t, mk)) })
	t.Run("ExportImportRoundTrip", func(t *testing.T) { testExportImport(t, mk, mk) })
	t.Run("PruneKeepsServableSnapshot", func(t *testing.T) { testPrune(t, newEngine(t, mk)) })
	t.Run("PruneShardCoversAllShards", func(t *testing.T) { testPruneShard(t, newEngine(t, mk)) })
	t.Run("RandomizedAgainstModel", func(t *testing.T) { testRandomized(t, newEngine(t, mk)) })
	t.Run("ConcurrentSnapshotStress", func(t *testing.T) { testConcurrentStress(t, newEngine(t, mk)) })
}

// RunCross exercises cross-backend state transfer: a snapshot exported
// from one backend imports into the other with identical reads and
// provenance, in both directions. This is what lets a mixed fleet (or a
// migration) move replica state between engines.
func RunCross(t *testing.T, mkA, mkB func() store.Engine) {
	t.Run("ExportImportAToB", func(t *testing.T) { testExportImport(t, mkA, mkB) })
	t.Run("ExportImportBToA", func(t *testing.T) { testExportImport(t, mkB, mkA) })
}

// newEngine builds a fresh engine and ties its lifecycle to the test:
// backends with background goroutines (e.g. an LSM compactor) expose
// Close, and the suite shuts them down so goroutine-leak and race
// checks see a quiet engine at test end.
func newEngine(t *testing.T, mk func() store.Engine) store.Engine {
	t.Helper()
	e := mk()
	if c, ok := e.(interface{ Close() }); ok {
		t.Cleanup(c.Close)
	}
	return e
}

func testEmpty(t *testing.T, e store.Engine) {
	if _, _, ok := e.Get("missing"); ok {
		t.Fatal("Get on an empty engine reported ok")
	}
	if _, _, ok := e.GetAsOf("missing", 100); ok {
		t.Fatal("GetAsOf on an empty engine reported ok")
	}
	if w := e.LastWriter("missing"); w != -1 {
		t.Fatalf("LastWriter on an empty engine = %d, want -1", w)
	}
	if got := e.LastWriters([]string{"a", "b"}); got[0] != -1 || got[1] != -1 {
		t.Fatalf("LastWriters on an empty engine = %v, want [-1 -1]", got)
	}
	if n := e.Keys(); n != 0 {
		t.Fatalf("Keys on an empty engine = %d", n)
	}
	if n := e.VersionCount("missing"); n != 0 {
		t.Fatalf("VersionCount on an empty engine = %d", n)
	}
	if got := e.ExportAsOf(1 << 30); len(got) != 0 {
		t.Fatalf("ExportAsOf on an empty engine returned %d entries", len(got))
	}
	if sc := e.ShardCount(); sc < 1 || sc&(sc-1) != 0 {
		t.Fatalf("ShardCount = %d, want a power of two", sc)
	}
	vs := e.MultiGetAsOf([]string{"x", "y"}, 5)
	if len(vs) != 2 || vs[0].Found || vs[1].Found {
		t.Fatalf("MultiGetAsOf on an empty engine = %v", vs)
	}
}

func testLoad(t *testing.T, e store.Engine) {
	e.Load(map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	if e.StableBatch() != store.GenesisBatch {
		t.Fatalf("StableBatch after Load = %d, want %d", e.StableBatch(), store.GenesisBatch)
	}
	v, w, ok := e.Get("a")
	if !ok || string(v) != "1" || w != store.GenesisBatch {
		t.Fatalf("Get(a) after Load = (%q, %d, %v)", v, w, ok)
	}
	if e.Keys() != 2 {
		t.Fatalf("Keys after Load = %d, want 2", e.Keys())
	}
	if w := e.LastWriter("b"); w != store.GenesisBatch {
		t.Fatalf("LastWriter(b) after Load = %d", w)
	}
}

func testApplyAndSnapshots(t *testing.T, e store.Engine) {
	e.Load(map[string][]byte{"k": []byte("g")})
	e.ApplyAll(1, map[string][]byte{"k": []byte("v1"), "other": []byte("o1")})
	e.ApplyAll(2, map[string][]byte{"k": []byte("v2")})
	e.ApplyAll(4, map[string][]byte{"k": []byte("v4")})

	if e.StableBatch() != 4 {
		t.Fatalf("StableBatch = %d, want 4", e.StableBatch())
	}
	// Newest version wins point reads.
	if v, w, ok := e.Get("k"); !ok || string(v) != "v4" || w != 4 {
		t.Fatalf("Get(k) = (%q, %d, %v)", v, w, ok)
	}
	// Snapshots resolve to the newest version at or below asOf, including
	// the gap batch 3 (written by nobody) and batches before the first write.
	wantAsOf := []struct {
		asOf   int64
		value  string
		writer int64
		ok     bool
	}{
		{0, "g", 0, true}, {1, "v1", 1, true}, {2, "v2", 2, true},
		{3, "v2", 2, true}, {4, "v4", 4, true}, {99, "v4", 4, true},
	}
	for _, want := range wantAsOf {
		v, w, ok := e.GetAsOf("k", want.asOf)
		if ok != want.ok || string(v) != want.value || w != want.writer {
			t.Fatalf("GetAsOf(k, %d) = (%q, %d, %v), want (%q, %d, %v)",
				want.asOf, v, w, ok, want.value, want.writer, want.ok)
		}
	}
	// A key born at batch 1 is invisible at snapshot 0.
	if _, _, ok := e.GetAsOf("other", 0); ok {
		t.Fatal("GetAsOf(other, 0) found a key born at batch 1")
	}
	if e.VersionCount("k") != 4 {
		t.Fatalf("VersionCount(k) = %d, want 4", e.VersionCount("k"))
	}
}

func testEmptyBatch(t *testing.T, e store.Engine) {
	e.Load(map[string][]byte{"k": []byte("v")})
	e.ApplyAll(1, map[string][]byte{"k": []byte("v1")})
	// Write-free batches still advance the watermark — delivery of a
	// batch with no local writes must make snapshots at its ID servable.
	e.ApplyAll(2, nil)
	e.ApplyAll(3, map[string][]byte{})
	if e.StableBatch() != 3 {
		t.Fatalf("StableBatch after empty batches = %d, want 3", e.StableBatch())
	}
	if v, w, ok := e.GetAsOf("k", 3); !ok || string(v) != "v1" || w != 1 {
		t.Fatalf("GetAsOf(k, 3) = (%q, %d, %v)", v, w, ok)
	}
}

// testBatchedReads pins the equivalence the off-loop read executors rely
// on: MultiGetAsOf and LastWriters must agree with their point-read
// forms, in input order, including duplicate and missing keys.
func testBatchedReads(t *testing.T, e store.Engine) {
	e.Load(map[string][]byte{"a": []byte("ga"), "b": []byte("gb"), "c": []byte("gc")})
	e.ApplyAll(1, map[string][]byte{"a": []byte("a1"), "c": []byte("c1")})
	e.ApplyAll(2, map[string][]byte{"b": []byte("b2")})

	keys := []string{"a", "missing", "c", "b", "a", "c"}
	for asOf := int64(0); asOf <= 3; asOf++ {
		got := e.MultiGetAsOf(keys, asOf)
		if len(got) != len(keys) {
			t.Fatalf("MultiGetAsOf returned %d results for %d keys", len(got), len(keys))
		}
		for i, k := range keys {
			v, w, ok := e.GetAsOf(k, asOf)
			if got[i].Found != ok || got[i].Writer != w || !bytes.Equal(got[i].Value, v) {
				t.Fatalf("MultiGetAsOf[%d] (key %q, asOf %d) = %+v, point read = (%q, %d, %v)",
					i, k, asOf, got[i], v, w, ok)
			}
		}
	}
	ws := e.LastWriters(keys)
	for i, k := range keys {
		if want := e.LastWriter(k); ws[i] != want {
			t.Fatalf("LastWriters[%d] (key %q) = %d, want %d", i, k, ws[i], want)
		}
	}
}

// testExportImport pins the state-transfer contract: importing a snapshot
// exported at a batch boundary reproduces every visible read — values and
// writer provenance — at that boundary, and sets the watermark to it.
func testExportImport(t *testing.T, mkSrc, mkDst func() store.Engine) {
	src := newEngine(t, mkSrc)
	src.Load(map[string][]byte{"a": []byte("ga"), "b": []byte("gb")})
	src.ApplyAll(1, map[string][]byte{"a": []byte("a1"), "c": []byte("c1")})
	src.ApplyAll(2, map[string][]byte{"b": []byte("b2"), "d": []byte("d2")})
	src.ApplyAll(3, map[string][]byte{"a": []byte("a3")})

	const asOf = 2
	snap := src.ExportAsOf(asOf)
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Key < snap[j].Key }) {
		t.Fatal("ExportAsOf is not key-sorted")
	}
	// The batch-3 write must not leak into the snapshot at 2.
	for _, kv := range snap {
		if kv.Writer > asOf {
			t.Fatalf("exported entry %q has writer %d > asOf %d", kv.Key, kv.Writer, asOf)
		}
	}

	dst := newEngine(t, mkDst)
	dst.Load(map[string][]byte{"stale": []byte("gone")}) // Import must replace, not merge.
	dst.ImportAsOf(asOf, snap)

	if dst.StableBatch() != asOf {
		t.Fatalf("StableBatch after import = %d, want %d", dst.StableBatch(), asOf)
	}
	if dst.Keys() != len(snap) {
		t.Fatalf("Keys after import = %d, want %d (stale content must be dropped)",
			dst.Keys(), len(snap))
	}
	for _, k := range []string{"a", "b", "c", "d", "stale"} {
		sv, sw, sok := src.GetAsOf(k, asOf)
		dv, dw, dok := dst.GetAsOf(k, asOf)
		if k == "stale" {
			sok = false // never existed on the source
		}
		if sok != dok || sw != dw || !bytes.Equal(sv, dv) {
			t.Fatalf("GetAsOf(%q, %d): source (%q, %d, %v) vs import (%q, %d, %v)",
				k, asOf, sv, sw, sok, dv, dw, dok)
		}
	}
	// A re-export of the imported snapshot is byte-identical.
	if got := dst.ExportAsOf(asOf); !snapshotsEqual(got, snap) {
		t.Fatal("re-export after import differs from the original snapshot")
	}
}

func testPrune(t *testing.T, e store.Engine) {
	e.Load(map[string][]byte{"k": []byte("g"), "young": []byte("gy")})
	for b := int64(1); b <= 6; b++ {
		e.ApplyAll(b, map[string][]byte{"k": []byte(fmt.Sprintf("v%d", b))})
	}
	before := e.ExportAsOf(4)

	e.Prune(4)

	// The snapshot at keepFrom (and later) must be unaffected.
	if got := e.ExportAsOf(4); !snapshotsEqual(got, before) {
		t.Fatal("Prune changed the snapshot at keepFrom")
	}
	for _, asOf := range []int64{4, 5, 6} {
		want := fmt.Sprintf("v%d", asOf)
		if v, w, ok := e.GetAsOf("k", asOf); !ok || string(v) != want || w != asOf {
			t.Fatalf("after Prune, GetAsOf(k, %d) = (%q, %d, %v)", asOf, v, w, ok)
		}
	}
	// Versions strictly below the kept one may be dropped; the retained
	// count is keepFrom's version plus the two newer ones.
	if n := e.VersionCount("k"); n != 3 {
		t.Fatalf("VersionCount(k) after Prune = %d, want 3", n)
	}
	// A key whose only version already satisfies keepFrom is untouched.
	if v, w, ok := e.GetAsOf("young", 6); !ok || string(v) != "gy" || w != store.GenesisBatch {
		t.Fatalf("after Prune, GetAsOf(young, 6) = (%q, %d, %v)", v, w, ok)
	}
}

func testPruneShard(t *testing.T, e store.Engine) {
	e.Load(map[string][]byte{})
	// Enough keys that every shard of a 16-way store holds a few.
	for b := int64(1); b <= 5; b++ {
		writes := make(map[string][]byte)
		for i := 0; i < 64; i++ {
			writes[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("v%d-%d", b, i))
		}
		e.ApplyAll(b, writes)
	}
	before := e.ExportAsOf(3)
	// Incremental pruning: one shard per call, as the lifecycle hook does.
	for i := 0; i < e.ShardCount(); i++ {
		e.PruneShard(i, 3)
	}
	if got := e.ExportAsOf(3); !snapshotsEqual(got, before) {
		t.Fatal("PruneShard over all shards changed the snapshot at keepFrom")
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if n := e.VersionCount(k); n != 3 {
			t.Fatalf("VersionCount(%s) = %d, want 3 (versions 3..5)", k, n)
		}
	}
}

// modelVersion mirrors one retained version in the reference model.
type modelVersion struct {
	batch int64
	value []byte
}

// testRandomized drives the engine and a naive single-map reference model
// through the same seeded workload — applies, snapshot reads, prunes, and
// one export/import — and fails on the first divergence. This is the
// cross-implementation equivalence check: every backend is compared
// against the same executable specification. Every failure is prefixed
// with the seed and the index of the op that exposed it, so a red run on
// a new backend reproduces from the log alone.
func testRandomized(t *testing.T, e store.Engine) {
	const seed = 7
	rng := rand.New(rand.NewSource(seed))
	// op counts engine-visible operations (Load, ApplyAll, Prune,
	// export/import, snapshot checks) in execution order.
	var op int
	failf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("[seed=%d op=%d] %s", seed, op, fmt.Sprintf(format, args...))
	}
	model := map[string][]modelVersion{}
	keyAt := func(i int) string { return fmt.Sprintf("rk-%02d", i) }
	const keySpace = 24

	modelGetAsOf := func(k string, asOf int64) (string, int64, bool) {
		vs := model[k]
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].batch <= asOf {
				return string(vs[i].value), vs[i].batch, true
			}
		}
		return "", 0, false
	}
	check := func(batch int64) {
		t.Helper()
		keys := make([]string, keySpace)
		for i := range keys {
			keys[i] = keyAt(i)
		}
		asOf := batch - int64(rng.Intn(4))
		got := e.MultiGetAsOf(keys, asOf)
		for i, k := range keys {
			mv, mw, mok := modelGetAsOf(k, asOf)
			if got[i].Found != mok || got[i].Writer != mw || string(got[i].Value) != mv {
				failf("batch %d: MultiGetAsOf(%q, %d) = %+v, model = (%q, %d, %v)",
					batch, k, asOf, got[i], mv, mw, mok)
			}
		}
	}

	genesis := map[string][]byte{}
	for i := 0; i < keySpace/2; i++ {
		genesis[keyAt(i)] = []byte(fmt.Sprintf("g%d", i))
	}
	e.Load(genesis)
	for k, v := range genesis {
		model[k] = []modelVersion{{batch: store.GenesisBatch, value: v}}
	}

	var pruned int64
	for batch := int64(1); batch <= 120; batch++ {
		writes := map[string][]byte{}
		for n := rng.Intn(5); n > 0; n-- {
			k := keyAt(rng.Intn(keySpace))
			writes[k] = []byte(fmt.Sprintf("b%d-%s", batch, k))
		}
		op++
		e.ApplyAll(batch, writes)
		for k, v := range writes {
			model[k] = append(model[k], modelVersion{batch: batch, value: v})
		}
		if e.StableBatch() != batch {
			failf("StableBatch = %d after applying batch %d", e.StableBatch(), batch)
		}

		switch {
		case batch%17 == 0:
			// Prune both sides; later snapshot reads stay >= the floor.
			pruned = batch - 2
			op++
			e.Prune(pruned)
			for k, vs := range model {
				j := 0
				for j < len(vs)-1 && vs[j+1].batch <= pruned {
					j++
				}
				model[k] = vs[j:]
			}
		case batch%29 == 0:
			// Round-trip the engine's own state through export/import:
			// history collapses to single versions at the boundary.
			op++
			snap := e.ExportAsOf(batch)
			e.ImportAsOf(batch, snap)
			for k := range model {
				if v, w, ok := modelGetAsOf(k, batch); ok {
					model[k] = []modelVersion{{batch: w, value: []byte(v)}}
				} else {
					delete(model, k)
				}
			}
			pruned = batch
		}
		// Only read at snapshots the prune floor still serves.
		if batch-3 >= pruned {
			op++
			check(batch)
		}
	}
}

// testConcurrentStress replays, against any backend, the exact
// concurrency the replica core produces: one dispatcher (the event
// loop) applying batches in order, pinning snapshot targets, and
// running the incremental per-shard pruner clamped by the oldest pinned
// target — while a pool of readers does the snapshot fan-outs
// concurrently. Pinned targets are always at or above the retention
// floor (the pin-then-prune protocol of Node.pruneStoreStep), so every
// read must resolve: full value, writer batch at or below the snapshot,
// never torn, never pruned out from under the reader. Run it under
// -race; the schedule, not the assertions, is most of the test.
func testConcurrentStress(t *testing.T, e store.Engine) {
	const (
		keys    = 64
		batches = 250
		readers = 4
		lag     = 8 // desired prune boundary: this far behind the stable batch
	)
	all := make([]string, keys)
	init := make(map[string][]byte, keys)
	for i := range all {
		all[i] = fmt.Sprintf("key-%04d", i)
		init[all[i]] = []byte(fmt.Sprintf("%s@0", all[i]))
	}
	e.Load(init)

	type job struct {
		target int64
		probe  []string
	}
	var (
		pinMu sync.Mutex
		pins  = map[int64]int{}
	)
	unpin := func(target int64) {
		pinMu.Lock()
		if pins[target] > 1 {
			pins[target]--
		} else {
			delete(pins, target)
		}
		pinMu.Unlock()
	}
	minPinned := func() int64 {
		pinMu.Lock()
		defer pinMu.Unlock()
		min := int64(-1)
		for tgt := range pins {
			if min < 0 || tgt < min {
				min = tgt
			}
		}
		return min
	}

	jobs := make(chan job, 64)
	var wg sync.WaitGroup
	var failures atomic.Int64
	var firstFail atomic.Value
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				for i, v := range e.MultiGetAsOf(j.probe, j.target) {
					if !v.Found || v.Writer > j.target ||
						string(v.Value) != fmt.Sprintf("%s@%d", j.probe[i], v.Writer) {
						failures.Add(1)
						firstFail.CompareAndSwap(nil, fmt.Sprintf(
							"MultiGetAsOf(%q, %d)[%d] = {Found:%v Writer:%d Value:%q}",
							j.probe[i], j.target, i, v.Found, v.Writer, v.Value))
						break
					}
				}
				unpin(j.target)
			}
		}()
	}

	// The dispatcher: write, pin + hand out reads, prune — serialized,
	// like the node's event loop. `oldest` plays oldestSnapshot's role
	// (monotone; every handed-out target is at or above it), and a prune
	// pass fixes its boundary when it starts, clamped by pinned targets.
	rng := rand.New(rand.NewSource(99))
	var oldest, passBoundary, prunedThrough int64
	cursor := 0
	for b := int64(1); b <= batches; b++ {
		writes := map[string][]byte{}
		for _, k := range all {
			if rng.Intn(4) == 0 {
				writes[k] = []byte(fmt.Sprintf("%s@%d", k, b))
			}
		}
		e.ApplyAll(b, writes)
		if b-lag > oldest {
			oldest = b - lag
		}

		// Pin snapshots at or above the retention floor, then hand the
		// fan-outs to readers.
		for n := rng.Intn(3); n > 0; n-- {
			target := oldest + rng.Int63n(b-oldest+1)
			probe := make([]string, 8)
			for i := range probe {
				probe[i] = all[rng.Intn(len(all))]
			}
			pinMu.Lock()
			pins[target]++
			pinMu.Unlock()
			select {
			case jobs <- job{target: target, probe: probe}:
			default:
				unpin(target) // pool saturated; the node would serve inline
			}
		}

		// Incremental prune step, boundary fixed per pass and clamped by
		// in-flight snapshots at pass start.
		if cursor == 0 {
			keep := oldest
			if m := minPinned(); m >= 0 && m < keep {
				keep = m
			}
			if keep <= prunedThrough {
				continue
			}
			passBoundary = keep
		}
		e.PruneShard(cursor, passBoundary)
		cursor++
		if cursor == e.ShardCount() {
			cursor = 0
			prunedThrough = passBoundary
		}
	}
	close(jobs)
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d snapshot reads returned torn or pruned state; first: %s",
			n, firstFail.Load())
	}
	// Final state sanity after the dust settles.
	for _, k := range all[:8] {
		v, w, ok := e.Get(k)
		if !ok || string(v) != fmt.Sprintf("%s@%d", k, w) {
			t.Fatalf("final Get(%q) = %q@%d %v", k, v, w, ok)
		}
	}
}

func snapshotsEqual(a, b []store.KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Writer != b[i].Writer || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}
