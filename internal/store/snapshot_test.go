package store

import (
	"fmt"
	"reflect"
	"testing"
)

// buildVersioned loads a store with three batches of overlapping writes
// so exports at different asOf points see different values and writers.
func buildVersioned(shards int) *Store {
	s := NewSharded(shards)
	s.Load(map[string][]byte{"a": []byte("a0"), "b": []byte("b0"), "c": []byte("c0")})
	s.ApplyAll(1, map[string][]byte{"a": []byte("a1"), "d": []byte("d1")})
	s.ApplyAll(2, map[string][]byte{"b": []byte("b2")})
	s.ApplyAll(3, map[string][]byte{"a": []byte("a3")})
	return s
}

func TestExportAsOfSortedAndVersioned(t *testing.T) {
	s := buildVersioned(4)
	got := s.ExportAsOf(2)
	want := []KV{
		{Key: "a", Value: []byte("a1"), Writer: 1},
		{Key: "b", Value: []byte("b2"), Writer: 2},
		{Key: "c", Value: []byte("c0"), Writer: 0},
		{Key: "d", Value: []byte("d1"), Writer: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("export at 2:\n got %v\nwant %v", got, want)
	}
	// The export order must be deterministic across shard counts (it
	// feeds the checkpoint digest every replica must agree on).
	if single := buildVersioned(1).ExportAsOf(2); !reflect.DeepEqual(single, got) {
		t.Fatalf("export differs across shard counts:\n 1 shard: %v\n 4 shards: %v", single, got)
	}
}

func TestImportAsOfRestoresValuesAndWriters(t *testing.T) {
	src := buildVersioned(4)
	snap := src.ExportAsOf(3)

	dst := NewSharded(2)
	dst.Load(map[string][]byte{"stale": []byte("gone")})
	dst.ImportAsOf(3, snap)

	if dst.StableBatch() != 3 {
		t.Fatalf("stable = %d, want 3", dst.StableBatch())
	}
	if _, _, ok := dst.Get("stale"); ok {
		t.Fatal("pre-import key survived the install")
	}
	for _, e := range snap {
		v, w, ok := dst.Get(e.Key)
		if !ok || string(v) != string(e.Value) || w != e.Writer {
			t.Fatalf("key %q: got (%q, %d, %v), want (%q, %d)", e.Key, v, w, ok, e.Value, e.Writer)
		}
	}
	// Re-export round-trips bit for bit: the imported store is a valid
	// checkpoint source itself.
	if again := dst.ExportAsOf(3); !reflect.DeepEqual(again, snap) {
		t.Fatalf("re-export differs:\n got %v\nwant %v", again, snap)
	}
	// The importing store keeps accepting batches on top.
	dst.ApplyAll(4, map[string][]byte{"a": []byte("a4")})
	if v, w, _ := dst.Get("a"); string(v) != "a4" || w != 4 {
		t.Fatalf("post-import apply: got (%q, %d)", v, w)
	}
	if v, w, _ := dst.GetAsOf("a", 3); string(v) != "a3" || w != 3 {
		t.Fatalf("post-import history: got (%q, %d)", v, w)
	}
}

func TestExportAsOfAfterPruneToSameBoundary(t *testing.T) {
	s := buildVersioned(4)
	want := s.ExportAsOf(2)
	s.Prune(2) // keeps the version visible at 2 for every key
	if got := s.ExportAsOf(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("export after prune:\n got %v\nwant %v", got, want)
	}
}

func TestExportImportLargeKeyspace(t *testing.T) {
	s := NewSharded(16)
	init := make(map[string][]byte, 500)
	for i := 0; i < 500; i++ {
		init[fmt.Sprintf("key-%04d", i)] = []byte{byte(i)}
	}
	s.Load(init)
	for b := int64(1); b <= 10; b++ {
		writes := make(map[string][]byte, 50)
		for i := 0; i < 50; i++ {
			writes[fmt.Sprintf("key-%04d", (int(b)*37+i)%500)] = []byte{byte(b)}
		}
		s.ApplyAll(b, writes)
	}
	snap := s.ExportAsOf(10)
	if len(snap) != 500 {
		t.Fatalf("exported %d keys, want 500", len(snap))
	}
	dst := NewSharded(4)
	dst.ImportAsOf(10, snap)
	if !reflect.DeepEqual(dst.ExportAsOf(10), snap) {
		t.Fatal("import/re-export mismatch on large keyspace")
	}
}
