package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyStore(t *testing.T) {
	s := New()
	if _, _, ok := s.Get("x"); ok {
		t.Fatal("Get on empty store returned a value")
	}
	if _, _, ok := s.GetAsOf("x", 100); ok {
		t.Fatal("GetAsOf on empty store returned a value")
	}
	if s.LastWriter("x") != -1 {
		t.Fatal("LastWriter on empty store != -1")
	}
	if s.Keys() != 0 {
		t.Fatal("Keys on empty store != 0")
	}
}

func TestLoadAndGet(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	v, w, ok := s.Get("a")
	if !ok || string(v) != "1" || w != GenesisBatch {
		t.Fatalf("Get(a) = %q %d %v", v, w, ok)
	}
	if s.Keys() != 2 {
		t.Fatalf("Keys = %d, want 2", s.Keys())
	}
}

func TestApplyVersions(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"k": []byte("v0")})
	s.Apply(3, map[string][]byte{"k": []byte("v3")})
	s.Apply(7, map[string][]byte{"k": []byte("v7")})

	v, w, _ := s.Get("k")
	if string(v) != "v7" || w != 7 {
		t.Fatalf("Get = %q at %d", v, w)
	}
	cases := []struct {
		asOf  int64
		value string
		batch int64
	}{
		{0, "v0", 0}, {1, "v0", 0}, {2, "v0", 0},
		{3, "v3", 3}, {4, "v3", 3}, {6, "v3", 3},
		{7, "v7", 7}, {100, "v7", 7},
	}
	for _, c := range cases {
		v, w, ok := s.GetAsOf("k", c.asOf)
		if !ok || string(v) != c.value || w != c.batch {
			t.Fatalf("GetAsOf(%d) = %q %d %v, want %q %d", c.asOf, v, w, ok, c.value, c.batch)
		}
	}
	if _, _, ok := s.GetAsOf("k", -1); ok {
		t.Fatal("GetAsOf before genesis returned a value")
	}
}

func TestApplySameBatchLastWriteWins(t *testing.T) {
	s := New()
	s.Apply(2, map[string][]byte{"k": []byte("a")})
	s.Apply(2, map[string][]byte{"k": []byte("b")})
	v, w, _ := s.Get("k")
	if string(v) != "b" || w != 2 {
		t.Fatalf("Get = %q at %d, want b at 2", v, w)
	}
	if s.VersionCount("k") != 1 {
		t.Fatalf("VersionCount = %d, want 1 (replaced, not appended)", s.VersionCount("k"))
	}
}

func TestLastWriter(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"k": []byte("v")})
	if s.LastWriter("k") != GenesisBatch {
		t.Fatal("LastWriter after load wrong")
	}
	s.Apply(5, map[string][]byte{"k": []byte("v5")})
	if s.LastWriter("k") != 5 {
		t.Fatal("LastWriter after apply wrong")
	}
}

func TestPrune(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"k": []byte("v0")})
	for i := int64(1); i <= 10; i++ {
		s.Apply(i, map[string][]byte{"k": []byte(fmt.Sprintf("v%d", i))})
	}
	s.Prune(5)
	// Snapshots at or after 5 must still be exact.
	for i := int64(5); i <= 10; i++ {
		v, _, ok := s.GetAsOf("k", i)
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after prune, GetAsOf(%d) = %q %v", i, v, ok)
		}
	}
	if got := s.VersionCount("k"); got != 6 {
		t.Fatalf("VersionCount after prune = %d, want 6", got)
	}
}

// TestPruneBoundary pins the exact prune-boundary semantics: a key whose
// last write happened strictly before keepFrom keeps exactly the version
// visible at keepFrom, snapshot reads at and after keepFrom stay exact,
// and reads strictly below the kept version's batch report not-found.
func TestPruneBoundary(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"cold": []byte("v0"), "hot": []byte("v0")})
	// cold is written at batches 2 and 4; hot at every batch 1..8.
	for i := int64(1); i <= 8; i++ {
		w := map[string][]byte{"hot": []byte(fmt.Sprintf("h%d", i))}
		if i == 2 || i == 4 {
			w["cold"] = []byte(fmt.Sprintf("c%d", i))
		}
		s.Apply(i, w)
	}
	s.Prune(6)

	// Reads exactly at keepFrom: cold's visible version is c4 (written
	// before the boundary), hot's is h6 (written at the boundary).
	if v, w, ok := s.GetAsOf("cold", 6); !ok || string(v) != "c4" || w != 4 {
		t.Fatalf("GetAsOf(cold, 6) = %q@%d %v, want c4@4", v, w, ok)
	}
	if v, w, ok := s.GetAsOf("hot", 6); !ok || string(v) != "h6" || w != 6 {
		t.Fatalf("GetAsOf(hot, 6) = %q@%d %v, want h6@6", v, w, ok)
	}
	// cold retains exactly one version (c4); its history below is gone.
	if got := s.VersionCount("cold"); got != 1 {
		t.Fatalf("VersionCount(cold) = %d, want 1", got)
	}
	// Snapshots between the kept version and the boundary still resolve
	// (the kept version was visible there too)...
	if v, _, ok := s.GetAsOf("cold", 5); !ok || string(v) != "c4" {
		t.Fatalf("GetAsOf(cold, 5) = %q %v, want c4", v, ok)
	}
	// ...but snapshots before the kept version's batch are unservable.
	if _, _, ok := s.GetAsOf("cold", 3); ok {
		t.Fatal("GetAsOf(cold, 3) served a pruned snapshot")
	}
	// Later snapshots and the latest read are unaffected.
	if v, _, ok := s.GetAsOf("hot", 7); !ok || string(v) != "h7" {
		t.Fatalf("GetAsOf(hot, 7) = %q %v, want h7", v, ok)
	}
	if v, w, ok := s.Get("hot"); !ok || string(v) != "h8" || w != 8 {
		t.Fatalf("Get(hot) = %q@%d %v, want h8@8", v, w, ok)
	}
	// Pruning is idempotent at the same boundary.
	s.Prune(6)
	if v, _, ok := s.GetAsOf("cold", 6); !ok || string(v) != "c4" {
		t.Fatalf("after re-prune, GetAsOf(cold, 6) = %q %v, want c4", v, ok)
	}
}

// TestPruneThenApplySameBatchOverwrite combines the two edge cases: after
// pruning, a same-batch overwrite must replace in place (never append a
// duplicate version) and historical snapshots at the prune boundary must
// be unaffected by the overwrite.
func TestPruneThenApplySameBatchOverwrite(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"k": []byte("v0")})
	for i := int64(1); i <= 5; i++ {
		s.Apply(i, map[string][]byte{"k": []byte(fmt.Sprintf("v%d", i))})
	}
	s.Prune(3)

	s.Apply(6, map[string][]byte{"k": []byte("first")})
	s.Apply(6, map[string][]byte{"k": []byte("second")})
	if v, w, _ := s.Get("k"); string(v) != "second" || w != 6 {
		t.Fatalf("Get = %q@%d, want second@6", v, w)
	}
	// Versions: v3 (kept boundary version), v4, v5, and one slot for
	// batch 6 — the overwrite must not have appended a second.
	if got := s.VersionCount("k"); got != 4 {
		t.Fatalf("VersionCount = %d, want 4", got)
	}
	if v, _, ok := s.GetAsOf("k", 3); !ok || string(v) != "v3" {
		t.Fatalf("GetAsOf(3) = %q %v, want v3", v, ok)
	}
	if v, _, ok := s.GetAsOf("k", 5); !ok || string(v) != "v5" {
		t.Fatalf("GetAsOf(5) = %q %v, want v5", v, ok)
	}
}

// TestApplySameBatchNewKey: a same-batch overwrite of a key whose first
// ever version is in that batch must also replace in place.
func TestApplySameBatchNewKey(t *testing.T) {
	s := New()
	s.Apply(1, map[string][]byte{"fresh": []byte("a")})
	s.Apply(1, map[string][]byte{"fresh": []byte("b")})
	if got := s.VersionCount("fresh"); got != 1 {
		t.Fatalf("VersionCount = %d, want 1", got)
	}
	if v, w, ok := s.GetAsOf("fresh", 1); !ok || string(v) != "b" || w != 1 {
		t.Fatalf("GetAsOf(1) = %q@%d %v, want b@1", v, w, ok)
	}
	if _, _, ok := s.GetAsOf("fresh", 0); ok {
		t.Fatal("GetAsOf(0) found a value before the key existed")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	s := New()
	s.Load(map[string][]byte{"k": []byte("v0")})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Get("k")
					s.GetAsOf("k", 3)
					s.LastWriter("k")
				}
			}
		}()
	}
	for b := int64(1); b <= 200; b++ {
		s.Apply(b, map[string][]byte{"k": []byte(fmt.Sprintf("v%d", b))})
	}
	close(stop)
	wg.Wait()
	v, w, _ := s.Get("k")
	if string(v) != "v200" || w != 200 {
		t.Fatalf("final value %q at %d", v, w)
	}
}

// TestAgainstModel compares the store against a naive model of full
// version history under random batched writes.
func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	type mv struct {
		batch int64
		value string
	}
	model := map[string][]mv{}
	keys := []string{"a", "b", "c", "d"}
	for batch := int64(1); batch <= 300; batch++ {
		writes := map[string][]byte{}
		for _, k := range keys {
			if rng.Intn(2) == 0 {
				v := fmt.Sprintf("%s-%d", k, batch)
				writes[k] = []byte(v)
				model[k] = append(model[k], mv{batch, v})
			}
		}
		s.Apply(batch, writes)

		// Probe a random key at a random historical batch.
		k := keys[rng.Intn(len(keys))]
		asOf := rng.Int63n(batch + 1)
		var want *mv
		for i := range model[k] {
			if model[k][i].batch <= asOf {
				want = &model[k][i]
			}
		}
		v, w, ok := s.GetAsOf(k, asOf)
		if want == nil {
			if ok {
				t.Fatalf("batch %d: GetAsOf(%s,%d) found %q, model has nothing", batch, k, asOf, v)
			}
		} else if !ok || string(v) != want.value || w != want.batch {
			t.Fatalf("batch %d: GetAsOf(%s,%d) = %q@%d %v, want %q@%d",
				batch, k, asOf, v, w, ok, want.value, want.batch)
		}
	}
}

// TestGetAsOfMonotoneProperty: for a fixed key, GetAsOf is monotone in the
// asOf argument (later snapshots never show older versions).
func TestGetAsOfMonotoneProperty(t *testing.T) {
	s := New()
	for b := int64(1); b <= 50; b += 3 {
		s.Apply(b, map[string][]byte{"k": []byte(fmt.Sprintf("v%d", b))})
	}
	f := func(a, b uint8) bool {
		lo, hi := int64(a%60), int64(b%60)
		if lo > hi {
			lo, hi = hi, lo
		}
		_, w1, ok1 := s.GetAsOf("k", lo)
		_, w2, ok2 := s.GetAsOf("k", hi)
		if !ok1 {
			return true // nothing visible yet at lo
		}
		return ok2 && w2 >= w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
