// Package histcheck validates executions against conflict
// serializability using the serializability-graph (SG) test the paper's
// correctness proofs are built on (Sec. 3.6 and 4.4, citing Bernstein et
// al. [12]): one vertex per transaction, one edge per wr/ww/rw conflict,
// serializable iff the graph is acyclic.
//
// Version orders are taken from per-key sequence numbers supplied by the
// recorder (tests use one designated writer per key, so the order is
// ground truth rather than inferred). Read-only transactions participate
// exactly as in Lemma 4.4: incoming wr edges from the writers they
// observed, outgoing rw edges to the writers that overwrote what they
// observed.
package histcheck

import (
	"fmt"
	"sort"
	"strings"
)

// ReadOb records that a transaction observed version Seq of Key (Seq 0 is
// the initial load).
type ReadOb struct {
	Key string
	Seq int64
}

// WriteOb records that a transaction installed version Seq of Key.
type WriteOb struct {
	Key string
	Seq int64
}

// Event is one committed transaction in the history. Aborted transactions
// must not be recorded — they are not part of the committed history.
type Event struct {
	TxnID    string
	ReadOnly bool
	Reads    []ReadOb
	Writes   []WriteOb
}

// Violation describes a serializability cycle.
type Violation struct {
	Cycle []string // transaction IDs along the cycle
}

func (v *Violation) Error() string {
	return fmt.Sprintf("histcheck: serializability cycle: %s", strings.Join(v.Cycle, " -> "))
}

// CheckSerializable builds the SG of the history and returns a *Violation
// if it contains a cycle, nil otherwise. It also validates recording
// sanity: two committed transactions must not install the same version of
// a key.
func CheckSerializable(events []Event) error {
	// writerOf[key][seq] = index of the event that installed it.
	writerOf := make(map[string]map[int64]int)
	for i, e := range events {
		for _, w := range e.Writes {
			if w.Seq <= 0 {
				return fmt.Errorf("histcheck: %s writes %q seq %d; versions start at 1", e.TxnID, w.Key, w.Seq)
			}
			m := writerOf[w.Key]
			if m == nil {
				m = make(map[int64]int)
				writerOf[w.Key] = m
			}
			if prev, dup := m[w.Seq]; dup {
				return fmt.Errorf("histcheck: %s and %s both install %q seq %d",
					events[prev].TxnID, e.TxnID, w.Key, w.Seq)
			}
			m[w.Seq] = i
		}
	}

	adj := make([][]int, len(events))
	addEdge := func(from, to int) {
		if from != to {
			adj[from] = append(adj[from], to)
		}
	}

	// ww edges: per-key version order (adjacent versions chain the total
	// order; transitivity closes the rest).
	for _, m := range writerOf {
		seqs := make([]int64, 0, len(m))
		for s := range m {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i := 1; i < len(seqs); i++ {
			addEdge(m[seqs[i-1]], m[seqs[i]])
		}
	}

	// wr and rw edges from reads.
	for i, e := range events {
		for _, r := range e.Reads {
			m := writerOf[r.Key]
			if r.Seq > 0 {
				w, ok := m[r.Seq]
				if !ok {
					return fmt.Errorf("histcheck: %s read %q seq %d, never installed", e.TxnID, r.Key, r.Seq)
				}
				addEdge(w, i) // wr: writer happens-before reader
			}
			// rw: the reader happens-before the next overwriter.
			if next, ok := nextVersion(m, r.Seq); ok {
				addEdge(i, next)
			}
		}
	}

	// Cycle detection (iterative DFS with colors).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(events))
	parent := make([]int, len(events))
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt, cycleTo = -1, -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycleAt, cycleTo = u, v
				return true
			}
		}
		color[u] = black
		return false
	}
	for i := range events {
		if color[i] == white && dfs(i) {
			// Reconstruct the cycle cycleTo ... cycleAt -> cycleTo.
			var ids []string
			for u := cycleAt; u != -1 && u != parent[cycleTo]; u = parent[u] {
				ids = append(ids, events[u].TxnID)
				if u == cycleTo {
					break
				}
			}
			// Reverse into forward order and close the loop.
			for l, r := 0, len(ids)-1; l < r; l, r = l+1, r-1 {
				ids[l], ids[r] = ids[r], ids[l]
			}
			ids = append(ids, ids[0])
			return &Violation{Cycle: ids}
		}
	}
	return nil
}

// nextVersion returns the writer of the smallest installed version
// strictly greater than seq.
func nextVersion(m map[int64]int, seq int64) (int, bool) {
	best := int64(-1)
	idx := -1
	for s, i := range m {
		if s > seq && (best < 0 || s < best) {
			best = s
			idx = i
		}
	}
	return idx, idx >= 0
}
