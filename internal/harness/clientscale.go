package harness

import (
	"fmt"
	"runtime"
)

// ClientScale — the verified-read fast path under open-loop client scale.
//
// Open-loop session clients issue wide (2 clusters x 10 keys, zipfian)
// verified read-only transactions on Poisson arrival schedules; latency is
// measured from each request's scheduled arrival, so queueing delay under
// overload inflates the recorded tail instead of throttling the offered
// load (the closed-loop fallacy). The sweep crosses client count with the
// two fast-path toggles:
//
//	fastpath      — multi-proof replies + client root cache (the default)
//	no-multiproof — per-key membership/absence proofs on the wire
//	no-rootcache  — every reply re-verifies its f+1 certificate
//
// plus an arrival-rate sweep at a fixed fleet. Every row records proof
// bytes per request, Merkle hash operations per read, and total
// certificate verifications, so the fast path's savings are visible next
// to the p50/p99/p999 they buy.
func ClientScale(s Scale) []Point {
	base := func() Config {
		cfg := s.base()
		cfg.Protocol = TransEdge
		cfg.Clusters = 2
		cfg.ROWorkers = 0
		cfg.RWWorkers = 0
		cfg.ROClusters = 2
		cfg.ROPerCluster = 10
		cfg.ZipfS = 1.1
		cfg.MeasureProofBytes = true
		cfg.IntraLatency = 2 * s.LatencyUnit
		cfg.InterLatency = 2 * s.LatencyUnit
		cfg.Duration = s.Duration * 2
		return cfg
	}
	run := func(cfg Config, series, x string) Point {
		runtime.GC() // level GC debt between points
		r := Run(cfg)
		return withRuntime(Point{
			Experiment: "clientscale", Series: series, X: x,
			LatencyMS: ms(r.RO.Mean), P99MS: ms(r.RO.P99), P999MS: ms(r.RO.P999),
			ThroughputTPS: r.RO.Throughput, AbortPct: r.RO.AbortPct(),
			ProofBytesPerReq:   r.ProofBytesPerReq,
			VerifyHashesPerReq: r.VerifyHashesPerReq,
			CertVerifications:  r.CertVerifications,
		}, r)
	}

	const perClientRate = 40.0
	modes := []struct {
		series           string
		disableMulti     bool
		disableRootCache bool
	}{
		{"fastpath", false, false},
		{"no-multiproof", true, false},
		{"no-rootcache", false, true},
	}
	counts := []int{s.ROWorkers, s.ROWorkers * 4, s.ROWorkers * 16}

	var out []Point
	for _, m := range modes {
		for _, clients := range counts {
			cfg := base()
			cfg.OpenLoopClients = clients
			cfg.ArrivalRate = perClientRate
			cfg.DisableMultiProofRO = m.disableMulti
			cfg.DisableRootCache = m.disableRootCache
			out = append(out, run(cfg, m.series, fmt.Sprintf("clients=%d", clients)))
		}
	}
	// Arrival-rate sweep at the middle fleet: same clients, rising offered
	// load, fast path on — the open-loop knee in one series.
	for _, rate := range []float64{perClientRate / 4, perClientRate, perClientRate * 4} {
		cfg := base()
		cfg.OpenLoopClients = s.ROWorkers * 4
		cfg.ArrivalRate = rate
		out = append(out, run(cfg, "fastpath-rate", fmt.Sprintf("rate=%g", rate)))
	}
	return out
}
