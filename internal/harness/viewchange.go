// The viewchange experiment: kill the leader of a loaded cluster and
// measure how long commits take to resume under a new leader — the
// failover latency and throughput dip of the PBFT view change
// (DESIGN.md §7). The companion of the recovery experiment: recovery
// kills a follower (quorum survives, nothing stalls); this kills the one
// replica whose absence stalls everything until the cluster votes it out.
package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/workload"
)

// ViewChangeResult captures one leader-failover run.
type ViewChangeResult struct {
	// Baseline, Failover, Recovered are the commit stats for the three
	// load phases: old leader up, the window from the kill until the new
	// view commits (the dip), and steady state under the new leader.
	Baseline  Stats
	Failover  Stats
	Recovered Stats
	// FailoverTime is how long after the kill every survivor had
	// installed a new view AND the committed tip advanced past its
	// at-kill value — i.e. commits demonstrably resumed.
	FailoverTime time.Duration
	FailedOver   bool
	// ViewChanges / LeaderSuspects are summed across replicas after the
	// run: how many new views installed and how many progress timeouts
	// fired to get there.
	ViewChanges    int64
	LeaderSuspects int64
	HeapMB         float64
	MaxLogLen      int64
}

// RunViewChange executes the kill-the-leader scenario. Phases 0 and 2
// each run for cfg.Duration; the failover deadline is ten times that.
func RunViewChange(cfg Config) ViewChangeResult {
	cfg = cfg.withDefaults()
	gen := workload.New(workload.Config{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters, Seed: cfg.Seed,
	})
	sys := core.NewSystem(core.SystemConfig{
		Clusters:             cfg.Clusters,
		F:                    cfg.F,
		Seed:                 uint64(cfg.Seed),
		BatchInterval:        cfg.BatchInterval,
		BatchMaxSize:         cfg.BatchMaxSize,
		PipelineDepth:        cfg.PipelineDepth,
		StoreShards:          cfg.StoreShards,
		Engine:               cfg.Engine,
		ReadExecutors:        cfg.ReadExecutors,
		CheckpointInterval:   cfg.CheckpointInterval,
		StateTransferTimeout: cfg.StateTransferTimeout,
		RetainBatches:        cfg.RetainBatches,
		ViewTimeout:          cfg.ViewTimeout,
		IntraLatency:         cfg.IntraLatency,
		InterLatency:         cfg.InterLatency,
		InitialData:          gen.InitialData(),
	})
	sys.Start()

	var (
		phases [3]collector
		phase  atomic.Int32
		stop   atomic.Bool
		wg     sync.WaitGroup
		leader = core.NodeID{Cluster: 0, Replica: 0}
	)
	// Client timeouts are tight relative to the view timeout: the contact
	// rotation divides the budget across the cluster, so a worker stuck on
	// the dead leader moves to a live replica (arming its progress timer)
	// within a couple of view-timeout periods instead of parking for the
	// usual 30s RPC budget.
	clientTimeout := 10 * cfg.ViewTimeout
	if clientTimeout <= 0 {
		clientTimeout = time.Second
	}
	for w := 0; w < cfg.RWWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New(client.Config{
				ID: uint32(200 + w), Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
				Clusters: cfg.Clusters, Timeout: clientTimeout, Seed: cfg.Seed,
			})
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*17, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
			})
			for !stop.Load() {
				runRW(c, g, &phases[phase.Load()])
			}
		}(w)
	}

	// Phase 0: the view-0 leader drives commits.
	time.Sleep(cfg.Duration)

	// Survivor observation points (replicas 1..n-1 of cluster 0).
	survivors := make([]*core.Node, 0, sys.ReplicasPerCluster()-1)
	for r := 1; r < sys.ReplicasPerCluster(); r++ {
		survivors = append(survivors, sys.Node(core.NodeID{Cluster: 0, Replica: int32(r)}))
	}
	maxTip := func() int64 {
		var tip int64
		for _, n := range survivors {
			if t := n.Tip(); t > tip {
				tip = t
			}
		}
		return tip
	}
	tipAtKill := maxTip()

	// Phase 1: kill the leader; the dip window lasts until commits resume
	// under a new view (or the deadline passes).
	phase.Store(1)
	sys.StopReplica(leader)
	killed := time.Now()
	res := ViewChangeResult{}
	deadline := killed.Add(10 * cfg.Duration)
	for time.Now().Before(deadline) {
		installed := true
		for _, n := range survivors {
			if n.CurrentView() == 0 {
				installed = false
				break
			}
		}
		if installed && maxTip() > tipAtKill {
			res.FailedOver = true
			break
		}
		time.Sleep(cfg.Duration / 100)
	}
	res.FailoverTime = time.Since(killed)
	dipWindow := time.Since(killed)

	// Phase 2: steady state under the new leader.
	phase.Store(2)
	time.Sleep(cfg.Duration)

	stop.Store(true)
	wg.Wait()
	res.Baseline = phases[0].stats(cfg.Duration)
	res.Failover = phases[1].stats(dipWindow)
	res.Recovered = phases[2].stats(cfg.Duration)
	res.HeapMB = liveHeapMB()
	sys.Stop()
	res.MaxLogLen = maxLogLen(sys)
	res.ViewChanges = sys.NodeMetrics(func(m *core.Metrics) int64 { return m.ViewChanges })
	res.LeaderSuspects = sys.NodeMetrics(func(m *core.Metrics) int64 { return m.LeaderSuspects })
	return res
}

// ViewChange — the harness experiment: one cluster under sustained local
// write load, its leader killed mid-run. Rows record the commit
// throughput of the three phases (baseline / the dip while the cluster
// votes / recovered under the new leader) and the failover latency. A
// negative failover latency means the cluster never failed over.
func ViewChange(s Scale) []Point {
	cfg := s.base()
	cfg.Protocol = TransEdge
	cfg.Clusters = 1
	cfg.ROWorkers = 0
	cfg.RWWorkers = s.RWWorkers * 2
	cfg.LocalFraction = 1.0
	cfg.ReadOps = NoOps
	cfg.WriteOps = 3
	cfg.CheckpointInterval = 16
	cfg.StateTransferTimeout = 10 * time.Millisecond
	cfg.RetainBatches = 32
	cfg.IntraLatency = 2 * s.LatencyUnit
	cfg.InterLatency = 2 * s.LatencyUnit
	// The view timeout scales with the injected latency but never drops
	// below a floor that keeps scheduler jitter from firing spurious view
	// changes at quick scale.
	cfg.ViewTimeout = 100 * s.LatencyUnit
	if cfg.ViewTimeout < 25*time.Millisecond {
		cfg.ViewTimeout = 25 * time.Millisecond
	}
	r := RunViewChange(cfg)

	rt := Result{HeapMB: r.HeapMB, MaxLogLen: r.MaxLogLen}
	failoverMS := ms(r.FailoverTime)
	if !r.FailedOver {
		failoverMS = -1 // sentinel: the deadline expired
	}
	return []Point{
		withRuntime(Point{
			Experiment: "viewchange", Series: "TransEdge", X: "baseline",
			ThroughputTPS: r.Baseline.Throughput, LatencyMS: ms(r.Baseline.Mean),
			P99MS: ms(r.Baseline.P99), AbortPct: r.Baseline.AbortPct(),
		}, rt),
		withRuntime(Point{
			Experiment: "viewchange", Series: "TransEdge", X: "leader-down",
			ThroughputTPS: r.Failover.Throughput, LatencyMS: ms(r.Failover.Mean),
			P99MS: ms(r.Failover.P99), AbortPct: r.Failover.AbortPct(),
		}, rt),
		withRuntime(Point{
			Experiment: "viewchange", Series: "TransEdge", X: "recovered",
			ThroughputTPS: r.Recovered.Throughput, LatencyMS: ms(r.Recovered.Mean),
			P99MS: ms(r.Recovered.P99), AbortPct: r.Recovered.AbortPct(),
		}, rt),
		withRuntime(Point{
			Experiment: "viewchange", Series: "TransEdge", X: "failover",
			LatencyMS: failoverMS,
		}, rt),
	}
}
