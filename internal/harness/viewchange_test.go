package harness

import (
	"testing"
	"time"
)

// TestViewChangeExperiment pins the leader-failover scenario end to end
// at test scale: the cluster commits before the kill, fails over to a
// new leader within the deadline, and commits again afterwards.
func TestViewChangeExperiment(t *testing.T) {
	// The failover deadline is 10x Duration and the view timeout has a
	// 25ms floor, so give the phases a window comfortably above it.
	scale := tinyScale
	scale.Duration = 300 * time.Millisecond
	pts := ViewChange(scale)
	byX := make(map[string]Point, len(pts))
	for _, p := range pts {
		byX[p.X] = p
	}
	base, ok := byX["baseline"]
	if !ok {
		t.Fatal("missing baseline row")
	}
	if base.ThroughputTPS <= 0 {
		t.Fatal("no baseline commit throughput")
	}
	fail, ok := byX["failover"]
	if !ok {
		t.Fatal("missing failover row")
	}
	if fail.LatencyMS < 0 {
		t.Fatal("cluster never failed over to a new leader")
	}
	rec := byX["recovered"]
	if rec.ThroughputTPS <= 0 {
		t.Fatal("commits never resumed under the new leader")
	}
	if base.HeapMB <= 0 || base.LogLen <= 0 {
		t.Fatal("runtime footprint not recorded")
	}
}
