package harness

import (
	"testing"
	"time"
)

// tinyScale keeps harness tests fast.
var tinyScale = Scale{
	Keys:        1500,
	Duration:    150 * time.Millisecond,
	LatencyUnit: 20 * time.Microsecond,
	ROWorkers:   2,
	RWWorkers:   2,
	BatchSizes:  []int{900},
	ScanSizes:   []int{100},
	LatenciesMS: []int{0, 20},
}

func TestRunTransEdgeProducesTraffic(t *testing.T) {
	cfg := tinyScale.base()
	cfg.Protocol = TransEdge
	cfg.Clusters = 3
	r := Run(cfg)
	if r.RO.Count == 0 {
		t.Fatal("no read-only transactions completed")
	}
	if r.RW.Count == 0 {
		t.Fatal("no read-write transactions committed")
	}
	if r.RO.Mean <= 0 || r.RO.Throughput <= 0 {
		t.Fatalf("degenerate RO stats: %+v", r.RO)
	}
	if r.RO.P99 < r.RO.P50 {
		t.Fatalf("P99 (%v) < P50 (%v)", r.RO.P99, r.RO.P50)
	}
}

func TestRunTwoPCBFTProducesTraffic(t *testing.T) {
	cfg := tinyScale.base()
	cfg.Protocol = TwoPCBFT
	cfg.Clusters = 3
	r := Run(cfg)
	if r.RO.Count == 0 || r.RW.Count == 0 {
		t.Fatalf("no traffic: RO=%d RW=%d", r.RO.Count, r.RW.Count)
	}
}

func TestRunAugustusProducesTraffic(t *testing.T) {
	cfg := tinyScale.base()
	cfg.Protocol = Augustus
	cfg.Clusters = 3
	r := Run(cfg)
	if r.RO.Count == 0 || r.RW.Count == 0 {
		t.Fatalf("no traffic: RO=%d RW=%d", r.RO.Count, r.RW.Count)
	}
}

// TestReadOnlySpeedupShape asserts the paper's central comparison: a
// TransEdge snapshot read across multiple clusters is substantially
// faster than the same read executed as a 2PC/BFT transaction.
func TestReadOnlySpeedupShape(t *testing.T) {
	te := tinyScale.base()
	te.Protocol = TransEdge
	te.ROClusters = 3
	te.Clusters = 3
	te.RWWorkers = 0
	rTE := Run(te)

	bl := te
	bl.Protocol = TwoPCBFT
	rBL := Run(bl)

	if rTE.RO.Count == 0 || rBL.RO.Count == 0 {
		t.Fatalf("no samples: TE=%d BL=%d", rTE.RO.Count, rBL.RO.Count)
	}
	if rTE.RO.Mean*2 >= rBL.RO.Mean {
		t.Fatalf("expected >=2x RO speedup, got TransEdge %v vs 2PC/BFT %v",
			rTE.RO.Mean, rBL.RO.Mean)
	}
	t.Logf("RO latency: TransEdge %v vs 2PC/BFT %v (%.1fx)",
		rTE.RO.Mean, rBL.RO.Mean, float64(rBL.RO.Mean)/float64(rTE.RO.Mean))
}

func TestStatsPercentilesMonotone(t *testing.T) {
	var c collector
	for i := 1; i <= 100; i++ {
		c.add(time.Duration(i)*time.Millisecond, 1)
	}
	s := c.stats(time.Second)
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("percentiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
	if s.Throughput != 100 {
		t.Fatalf("Throughput = %v, want 100", s.Throughput)
	}
}

func TestAbortPct(t *testing.T) {
	s := Stats{Count: 90, Aborts: 10}
	if got := s.AbortPct(); got != 10 {
		t.Fatalf("AbortPct = %v, want 10", got)
	}
	if (Stats{}).AbortPct() != 0 {
		t.Fatal("empty stats AbortPct != 0")
	}
}

func TestFig4SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	pts := Fig4(tinyScale)
	if len(pts) != 10 {
		t.Fatalf("Fig4 produced %d points, want 10", len(pts))
	}
	series := map[string]int{}
	for _, p := range pts {
		series[p.Series]++
		if p.LatencyMS <= 0 {
			t.Fatalf("point %+v has no latency", p)
		}
	}
	if series[string(TransEdge)] != 5 || series[string(TwoPCBFT)] != 5 {
		t.Fatalf("series malformed: %v", series)
	}
}

func TestTable1SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	pts := Table1(Scale{
		Keys: 1200, Duration: 200 * time.Millisecond, LatencyUnit: 20 * time.Microsecond,
		ROWorkers: 2, RWWorkers: 2, BatchSizes: []int{900},
	})
	// TransEdge's number is the abort-rate *delta* between two separate
	// short runs, so it carries sampling noise; the structural zero is
	// asserted by TestReadOnlyNeverInterferesWithWriters in core. The
	// table's shape claim is relative: TransEdge interference must stay
	// far below Augustus's lock interference in aggregate.
	var te, aug float64
	for _, p := range pts {
		switch p.Series {
		case "TransEdge":
			te += p.AbortPct
		case "Augustus":
			aug += p.AbortPct
		}
	}
	if aug <= 0 {
		t.Fatal("Augustus showed no lock interference; workload too light")
	}
	if te >= aug/2 {
		t.Fatalf("TransEdge interference (sum %.2f%%) not clearly below Augustus (sum %.2f%%)", te, aug)
	}
}
