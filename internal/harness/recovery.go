// The recovery experiment: kill a follower replica mid-run, restart it,
// and measure (a) that commit throughput never stalls while it is down
// and (b) how long the restarted replica takes to state-transfer and
// catch back up to the live tip. This is the fault-injection scenario
// the checkpointing subsystem (DESIGN.md §6) exists to serve.
package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/workload"
)

// RecoveryResult captures one recovery run's phases.
type RecoveryResult struct {
	// Baseline, Degraded, Recovered are the read-write commit stats for
	// the three load phases: all replicas up, one follower crashed, and
	// after its restart.
	Baseline  Stats
	Degraded  Stats
	Recovered Stats
	// Catchup is how long the restarted replica took from Start until
	// its committed tip reached the leader's (within pipeline slack).
	Catchup time.Duration
	// CaughtUp reports whether the replica made it before the deadline.
	CaughtUp bool
	// StateTransfers / SuffixReplayed are the restarted replica's
	// recovery metrics; LogTruncated sums truncation across replicas.
	StateTransfers int64
	SuffixReplayed int64
	LogTruncated   int64
	HeapMB         float64
	MaxLogLen      int64
}

// RunRecovery executes the crash/restart scenario. Each phase runs for
// cfg.Duration; the catch-up deadline is ten times that.
func RunRecovery(cfg Config) RecoveryResult {
	cfg = cfg.withDefaults()
	gen := workload.New(workload.Config{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters, Seed: cfg.Seed,
	})
	sys := core.NewSystem(core.SystemConfig{
		Clusters:             cfg.Clusters,
		F:                    cfg.F,
		Seed:                 uint64(cfg.Seed),
		BatchInterval:        cfg.BatchInterval,
		BatchMaxSize:         cfg.BatchMaxSize,
		PipelineDepth:        cfg.PipelineDepth,
		StoreShards:          cfg.StoreShards,
		Engine:               cfg.Engine,
		ReadExecutors:        cfg.ReadExecutors,
		CheckpointInterval:   cfg.CheckpointInterval,
		StateTransferTimeout: cfg.StateTransferTimeout,
		RetainBatches:        cfg.RetainBatches,
		IntraLatency:         cfg.IntraLatency,
		InterLatency:         cfg.InterLatency,
		InitialData:          gen.InitialData(),
	})
	sys.Start()

	// Phase-aware collection: workers record into whichever collector is
	// current, so each phase's throughput is measured separately.
	var (
		phases  [3]collector
		phase   atomic.Int32
		stop    atomic.Bool
		wg      sync.WaitGroup
		crashed = core.NodeID{Cluster: 0, Replica: int32(3 * cfg.F)} // highest follower
		leader  = core.NodeID{Cluster: 0, Replica: 0}
	)
	for w := 0; w < cfg.RWWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New(client.Config{
				ID: uint32(200 + w), Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
				Clusters: cfg.Clusters, Timeout: 30 * time.Second, Seed: cfg.Seed,
			})
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*17, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
			})
			for !stop.Load() {
				runRW(c, g, &phases[phase.Load()])
			}
		}(w)
	}

	// Phase 0: all replicas up.
	time.Sleep(cfg.Duration)

	// Phase 1: crash a follower; commits must keep flowing on the
	// remaining 2f+1 quorum.
	phase.Store(1)
	sys.StopReplica(crashed)
	time.Sleep(cfg.Duration)

	// Phase 2: restart it and measure catch-up against the moving tip.
	phase.Store(2)
	restarted := sys.RestartReplica(crashed)
	started := time.Now()
	deadline := started.Add(10 * cfg.Duration)
	res := RecoveryResult{}
	for time.Now().Before(deadline) {
		lead := sys.Node(leader).Tip()
		if got := restarted.Tip(); lead > 0 && got >= lead-int64(cfg.PipelineDepth)-1 {
			res.CaughtUp = true
			break
		}
		time.Sleep(cfg.Duration / 50)
	}
	res.Catchup = time.Since(started)
	time.Sleep(cfg.Duration)

	stop.Store(true)
	wg.Wait()
	res.Baseline = phases[0].stats(cfg.Duration)
	res.Degraded = phases[1].stats(cfg.Duration)
	res.Recovered = phases[2].stats(cfg.Duration + res.Catchup)
	res.HeapMB = liveHeapMB()
	// Stop (not deferred: per-replica state below must be read
	// quiescent) before collecting windows and metrics.
	sys.Stop()
	res.MaxLogLen = maxLogLen(sys)
	res.StateTransfers = restarted.Metrics.StateTransfers
	res.SuffixReplayed = restarted.Metrics.SuffixReplayed
	res.LogTruncated = sys.NodeMetrics(func(m *core.Metrics) int64 { return m.LogTruncated })
	return res
}

// Recovery — the harness experiment: one cluster under sustained local
// write load, a follower crashed for a phase and restarted. Rows record
// per-phase commit throughput (the "commits never stall" claim: the
// follower-down and recovered rows stay at the baseline's level) and the
// catch-up latency of the state transfer.
func Recovery(s Scale) []Point {
	cfg := s.base()
	cfg.Protocol = TransEdge
	cfg.Clusters = 1
	cfg.ROWorkers = 0
	cfg.RWWorkers = s.RWWorkers * 2
	cfg.LocalFraction = 1.0
	cfg.ReadOps = NoOps
	cfg.WriteOps = 3
	// Checkpoints every 16 batches keep the window (and the suffix a
	// restart must replay) small relative to the run; the transfer
	// timeout is tight so empty pre-checkpoint responses retry quickly.
	cfg.CheckpointInterval = 16
	cfg.StateTransferTimeout = 10 * time.Millisecond
	cfg.RetainBatches = 32
	cfg.IntraLatency = 2 * s.LatencyUnit
	cfg.InterLatency = 2 * s.LatencyUnit
	r := RunRecovery(cfg)

	rt := Result{HeapMB: r.HeapMB, MaxLogLen: r.MaxLogLen}
	catchupMS := ms(r.Catchup)
	if !r.CaughtUp {
		catchupMS = -1 // sentinel: the deadline expired
	}
	return []Point{
		withRuntime(Point{
			Experiment: "recovery", Series: "TransEdge", X: "baseline",
			ThroughputTPS: r.Baseline.Throughput, LatencyMS: ms(r.Baseline.Mean),
			P99MS: ms(r.Baseline.P99), AbortPct: r.Baseline.AbortPct(),
		}, rt),
		withRuntime(Point{
			Experiment: "recovery", Series: "TransEdge", X: "follower-down",
			ThroughputTPS: r.Degraded.Throughput, LatencyMS: ms(r.Degraded.Mean),
			P99MS: ms(r.Degraded.P99), AbortPct: r.Degraded.AbortPct(),
		}, rt),
		withRuntime(Point{
			Experiment: "recovery", Series: "TransEdge", X: "recovered",
			ThroughputTPS: r.Recovered.Throughput, LatencyMS: ms(r.Recovered.Mean),
			P99MS: ms(r.Recovered.P99), AbortPct: r.Recovered.AbortPct(),
		}, rt),
		withRuntime(Point{
			Experiment: "recovery", Series: "TransEdge", X: "catchup",
			LatencyMS: catchupMS,
		}, rt),
	}
}
