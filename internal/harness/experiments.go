package harness

import (
	"fmt"
	"runtime"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
)

// Scale controls how faithfully an experiment reproduces the paper's
// parameters. Quick keeps the whole suite runnable in minutes inside
// tests and benchmarks; Paper restores the published workload sizes and
// wide-area delays (run via cmd/transedge-bench -scale paper).
type Scale struct {
	Keys        int
	Duration    time.Duration // measurement window per point
	LatencyUnit time.Duration // how long "1 ms" of paper-injected latency lasts
	ROWorkers   int
	RWWorkers   int
	BatchSizes  []int // which of the paper's batch sizes to sweep
	ScanSizes   []int // Fig. 7 scan lengths
	LatenciesMS []int // Fig. 12/13 injected latencies, in paper ms
	// Engine pins every experiment's storage backend ("" = sharded
	// default; the -engine flag of cmd/transedge-bench sets it). The
	// engines experiment ignores it and sweeps backends itself.
	Engine string
}

// Quick is the CI-friendly scale: ~50x shorter windows, 20x smaller
// keyspace, latencies scaled 1 paper-ms -> 50µs. Ratios between systems
// and trends across sweeps are preserved.
var Quick = Scale{
	Keys:        3000,
	Duration:    350 * time.Millisecond,
	LatencyUnit: 50 * time.Microsecond,
	ROWorkers:   4,
	RWWorkers:   4,
	BatchSizes:  []int{900, 2500},
	ScanSizes:   []int{250, 1000, 2000},
	LatenciesMS: []int{0, 20, 70, 150},
}

// PaperScale restores the published parameters (Sec. 5.1): 1M keys, 20
// worker threads, real injected latencies. Expect the full suite to take
// on the order of an hour.
var PaperScale = Scale{
	Keys:        1000000,
	Duration:    10 * time.Second,
	LatencyUnit: time.Millisecond,
	ROWorkers:   10,
	RWWorkers:   10,
	BatchSizes:  []int{900, 2000, 2500, 3500},
	ScanSizes:   []int{250, 500, 750, 1000, 1250, 1500, 1750, 2000},
	LatenciesMS: []int{0, 20, 70, 150, 300, 500},
}

// Point is one measured datum of a figure or table.
type Point struct {
	Experiment string
	Series     string
	X          string

	LatencyMS     float64
	P99MS         float64
	P999MS        float64 `json:",omitempty"`
	ThroughputTPS float64
	AbortPct      float64
	Round1MS      float64
	Round2EffMS   float64
	Round2Pct     float64

	// Runtime footprint of the run behind this row: live heap after the
	// measurement window and the longest retained log window across
	// replicas. Together they make the checkpointing memory bound (and
	// any regression of it) visible in the recorded perf trajectory.
	HeapMB float64
	LogLen int64

	// Verified-read cost accounting (clientscale rows): canonical proof
	// bytes per read-only reply, Merkle hash operations per read, and
	// total certificate verifications across the run's clients.
	ProofBytesPerReq   float64 `json:",omitempty"`
	VerifyHashesPerReq float64 `json:",omitempty"`
	CertVerifications  int64   `json:",omitempty"`
}

// withRuntime copies a run's footprint measurements onto its point, so
// every recorded BENCH row carries them.
func withRuntime(p Point, r Result) Point {
	p.HeapMB = r.HeapMB
	p.LogLen = r.MaxLogLen
	return p
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s Scale) base() Config {
	return Config{
		Clusters:  5,
		F:         1,
		Keys:      s.Keys,
		ROWorkers: s.ROWorkers,
		RWWorkers: s.RWWorkers,
		Duration:  s.Duration,
		Seed:      42,
		Engine:    s.Engine,
		// Baseline edge topology: ~1 paper-ms within a cluster, ~10
		// paper-ms between neighboring edge clusters. Latency sweeps add
		// on top of this via InterLatency overrides.
		IntraLatency: s.LatencyUnit,
		InterLatency: 10 * s.LatencyUnit,
	}
}

// Fig4 — read-only latency, TransEdge vs 2PC/BFT, varying the number of
// clusters accessed (the paper's headline 9–24x gap).
func Fig4(s Scale) []Point {
	var out []Point
	for _, proto := range []Protocol{TwoPCBFT, TransEdge} {
		for m := 1; m <= 5; m++ {
			cfg := s.base()
			cfg.Protocol = proto
			cfg.ROClusters = m
			cfg.RWWorkers = 2 // light background load, as in the paper
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig4", Series: string(proto), X: fmt.Sprintf("clusters=%d", m),
				LatencyMS: ms(r.RO.Mean), P99MS: ms(r.RO.P99), ThroughputTPS: r.RO.Throughput,
			}, r))
		}
	}
	return out
}

// Fig5 — read-only latency split into round 1 and the effective cost of
// round 2, compared with Augustus.
func Fig5(s Scale) []Point {
	var out []Point
	for m := 1; m <= 5; m++ {
		cfg := s.base()
		cfg.Protocol = TransEdge
		cfg.ROClusters = m
		cfg.RWWorkers = 4 // concurrent writers provoke repair rounds
		r := Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "fig5", Series: "TransEdge", X: fmt.Sprintf("clusters=%d", m),
			LatencyMS: ms(r.RO.Mean), Round1MS: ms(r.Round1Mean),
			Round2EffMS: r.Round2Frac * ms(r.Round2Extra), Round2Pct: 100 * r.Round2Frac,
			ThroughputTPS: r.RO.Throughput,
		}, r))
	}
	for m := 1; m <= 5; m++ {
		cfg := s.base()
		cfg.Protocol = Augustus
		cfg.ROClusters = m
		cfg.RWWorkers = 4
		r := Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "fig5", Series: "Augustus", X: fmt.Sprintf("clusters=%d", m),
			LatencyMS: ms(r.RO.Mean), ThroughputTPS: r.RO.Throughput,
		}, r))
	}
	return out
}

// Fig6 — read-only throughput, TransEdge vs Augustus.
func Fig6(s Scale) []Point {
	var out []Point
	for _, proto := range []Protocol{TransEdge, Augustus} {
		for m := 1; m <= 5; m++ {
			cfg := s.base()
			cfg.Protocol = proto
			cfg.ROClusters = m
			cfg.ROWorkers = s.ROWorkers * 2 // closed-loop read pressure
			cfg.RWWorkers = 0
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig6", Series: string(proto), X: fmt.Sprintf("clusters=%d", m),
				ThroughputTPS: r.RO.Throughput, LatencyMS: ms(r.RO.Mean),
			}, r))
		}
	}
	return out
}

// Fig7 — long-running read-only scans vs Augustus under write load.
func Fig7(s Scale) []Point {
	var out []Point
	for _, proto := range []Protocol{TransEdge, Augustus} {
		for _, scan := range s.ScanSizes {
			cfg := s.base()
			cfg.Protocol = proto
			cfg.ROScanSize = scan
			cfg.ROWorkers = 2
			cfg.RWWorkers = 4
			cfg.Duration = s.Duration * 2 // scans are slow; keep samples meaningful
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig7", Series: string(proto), X: fmt.Sprintf("readops=%d", scan),
				LatencyMS: ms(r.RO.Mean), AbortPct: r.RW.AbortPct(),
			}, r))
		}
	}
	return out
}

// Fig8 — read-only throughput as inter-cluster latency grows.
func Fig8(s Scale) []Point {
	var out []Point
	for _, lat := range s.LatenciesMS {
		cfg := s.base()
		cfg.Protocol = TransEdge
		cfg.InterLatency += time.Duration(lat) * s.LatencyUnit // additional latency
		cfg.ROWorkers = s.ROWorkers * 2
		cfg.RWWorkers = 0
		r := Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "fig8", Series: "TransEdge", X: fmt.Sprintf("latency=%dms", lat),
			ThroughputTPS: r.RO.Throughput, LatencyMS: ms(r.RO.Mean),
		}, r))
	}
	return out
}

// Fig9 — write-only and local read-write throughput vs batch size, on
// TransEdge and the (structurally identical) 2PC/BFT system.
func Fig9(s Scale) []Point {
	var out []Point
	type variant struct {
		series   string
		protocol Protocol
		readOps  int
	}
	variants := []variant{
		{"Write-only-RW TransEdge", TransEdge, 0},
		{"Local-RW TransEdge", TransEdge, 5},
		{"Local-RW 2PC/BFT", TwoPCBFT, 5},
	}
	for _, v := range variants {
		for _, bs := range s.BatchSizes {
			cfg := s.base()
			cfg.Protocol = v.protocol
			cfg.BatchMaxSize = bs
			cfg.ROWorkers = 0
			cfg.RWWorkers = s.RWWorkers * 2
			cfg.LocalFraction = 1.0
			cfg.ReadOps = v.readOps
			cfg.WriteOps = 3
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig9", Series: v.series, X: fmt.Sprintf("batch=%d", bs),
				ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
			}, r))
		}
	}
	return out
}

// Fig10and11 — distributed read-write latency (Fig. 10) and throughput
// (Fig. 11) across the read/write skew, per batch size.
func Fig10and11(s Scale) []Point {
	var out []Point
	skews := [][2]int{{5, 1}, {4, 2}, {3, 3}, {2, 4}, {1, 5}}
	for _, bs := range s.BatchSizes {
		for _, skew := range skews {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.BatchMaxSize = bs
			cfg.ROWorkers = 0
			cfg.ReadOps, cfg.WriteOps = skew[0], skew[1]
			cfg.LocalFraction = 0
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig10+11", Series: fmt.Sprintf("batch=%d", bs),
				X:         fmt.Sprintf("R=%d,W=%d", skew[0], skew[1]),
				LatencyMS: ms(r.RW.Mean), ThroughputTPS: r.RW.Throughput, AbortPct: r.RW.AbortPct(),
			}, r))
		}
	}
	return out
}

// Fig12 — distributed read-write throughput as inter-cluster latency
// grows to wide-area magnitudes.
func Fig12(s Scale) []Point {
	var out []Point
	for _, bs := range s.BatchSizes {
		for _, lat := range s.LatenciesMS {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.BatchMaxSize = bs
			cfg.ROWorkers = 0
			cfg.LocalFraction = 0
			cfg.InterLatency += time.Duration(lat) * s.LatencyUnit
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig12", Series: fmt.Sprintf("batch=%d", bs),
				X:             fmt.Sprintf("latency=%dms", lat),
				ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
			}, r))
		}
	}
	return out
}

// Fig13 — read-write abort percentage vs batch size under injected
// latency.
func Fig13(s Scale) []Point {
	var out []Point
	lats := s.LatenciesMS
	if len(lats) > 3 {
		lats = lats[:3] // the paper plots 0/20/70 ms
	}
	for _, lat := range lats {
		for _, bs := range s.BatchSizes {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.BatchMaxSize = bs
			cfg.ROWorkers = 0
			cfg.LocalFraction = 0
			cfg.Keys = s.Keys / 4 // hotter keyspace so conflicts materialize
			cfg.InterLatency += time.Duration(lat) * s.LatencyUnit
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig13", Series: fmt.Sprintf("latency=%dms", lat),
				X:        fmt.Sprintf("batch=%d", bs),
				AbortPct: r.RW.AbortPct(), ThroughputTPS: r.RW.Throughput,
			}, r))
		}
	}
	return out
}

// Fig14 — throughput across the local/distributed transaction mix.
func Fig14(s Scale) []Point {
	var out []Point
	for _, bs := range s.BatchSizes {
		for _, local := range []int{0, 20, 40, 60, 80, 100} {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.BatchMaxSize = bs
			cfg.ROWorkers = 0
			cfg.LocalFraction = float64(local) / 100
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig14", Series: fmt.Sprintf("batch=%d", bs),
				X:             fmt.Sprintf("LRWT=%d%%", local),
				ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
			}, r))
		}
	}
	return out
}

// Fig15 — the cost of higher fault tolerance: f = 1, 2, 3 (4, 7, 10
// replicas per cluster).
func Fig15(s Scale) []Point {
	var out []Point
	for _, f := range []int{1, 2, 3} {
		for _, bs := range s.BatchSizes {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.F = f
			cfg.BatchMaxSize = bs
			cfg.ROWorkers = 0
			cfg.LocalFraction = 0
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "fig15", Series: fmt.Sprintf("f=%d", f),
				X:         fmt.Sprintf("batch=%d", bs),
				LatencyMS: ms(r.RW.Mean), ThroughputTPS: r.RW.Throughput,
			}, r))
		}
	}
	return out
}

// Table1 — read-write aborts caused by conflicting read-only
// transactions. As in the paper, the interference is measured under
// long-running read-only transactions (the Fig. 7 workload): Augustus
// counts writer aborts on reader-held locks directly; for TransEdge we
// measure the abort-rate delta between runs with and without read-only
// load (zero by non-interference).
func Table1(s Scale) []Point {
	// Long scans spanning every partition, sized relative to the keyspace
	// so the locked fraction (which drives Augustus's abort magnitude)
	// stays comparable across scales.
	scan := s.Keys / 40
	if scan < 10 {
		scan = 10
	}
	var out []Point
	for m := 1; m <= 5; m++ {
		// TransEdge: with and without read-only pressure.
		with := s.base()
		with.Protocol = TransEdge
		with.ROClusters = m
		with.ROScanSize = scan
		with.ROWorkers = s.ROWorkers * 2
		rWith := Run(with)
		without := with
		without.ROWorkers = 0
		rWithout := Run(without)
		delta := rWith.RW.AbortPct() - rWithout.RW.AbortPct()
		if delta < 0 {
			delta = 0
		}
		out = append(out, withRuntime(Point{
			Experiment: "table1", Series: "TransEdge", X: fmt.Sprintf("clusters=%d", m),
			AbortPct: delta,
		}, rWithout))

		aug := s.base()
		aug.Protocol = Augustus
		aug.ROClusters = m
		aug.ROScanSize = scan
		aug.ROWorkers = s.ROWorkers * 2
		rAug := Run(aug)
		attempts := rAug.RW.Count + rAug.RW.Aborts
		pct := 0.0
		if attempts > 0 {
			pct = 100 * float64(rAug.LockAborts) / float64(attempts)
		}
		out = append(out, withRuntime(Point{
			Experiment: "table1", Series: "Augustus", X: fmt.Sprintf("clusters=%d", m),
			AbortPct: pct,
		}, rAug))
	}
	return out
}

// Pipeline — commit throughput across leader pipeline depths. With depth
// 1 (the paper's one-batch-at-a-time rule) every batch waits out a full
// consensus round before the next proposal, so consensus latency caps
// commit throughput; deeper pipelines keep PipelineDepth speculative
// batches in flight. Local transactions under a closed loop with a
// non-trivial intra-cluster latency make the effect visible: per-slot
// consensus takes ~3 one-way hops, which depth 1 serializes and depth 4
// overlaps.
func Pipeline(s Scale) []Point {
	var out []Point
	for _, depth := range []int{1, 2, 4} {
		cfg := s.base()
		cfg.Protocol = TransEdge
		cfg.PipelineDepth = depth
		cfg.Clusters = 2
		cfg.ROWorkers = 0
		cfg.RWWorkers = s.RWWorkers * 4
		cfg.LocalFraction = 1.0
		// Write-only transactions over cheap client links but expensive
		// intra-cluster hops: commit latency is then dominated by the
		// consensus rounds the pipeline does (depth 1) or does not
		// (depth 4) serialize. The hops are deliberately long relative to
		// the per-batch CPU cost (signatures, Merkle updates) so the
		// experiment measures pipeline stalls, not crypto throughput, and
		// the batch interval bounds the batch rate so deeper pipelines
		// don't degenerate into thousands of tiny batches.
		cfg.ReadOps = NoOps
		cfg.WriteOps = 3
		cfg.IntraLatency = 80 * s.LatencyUnit
		cfg.InterLatency = 4 * s.LatencyUnit
		cfg.BatchInterval = 20 * s.LatencyUnit
		cfg.Duration = s.Duration * 2
		r := Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "pipeline", Series: "TransEdge",
			X:             fmt.Sprintf("depth=%d", depth),
			ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
			P99MS: ms(r.RW.P99), AbortPct: r.RW.AbortPct(),
		}, r))
	}
	return out
}

// setHotpathOptimizations flips the three headline hot-path
// optimizations — digest memoization, early-exit certificate
// verification, bulk Merkle apply — together, so the hotpath experiment
// can record before ("pre") and after ("post") rows from one binary.
// Untoggled micro-optimizations (pooled encoder buffers, the client
// certificate cache) stay on in both modes, so the pre/post gap slightly
// understates the full distance to the PR-1 build.
func setHotpathOptimizations(on bool) {
	protocol.SetDigestMemo(on)
	cryptoutil.SetFastVerify(on)
	merkle.SetBulkApply(on)
}

// Hotpath — before/after sweep of the per-slot CPU hot paths every
// pipelined batch pays: digest memoization, early-exit/parallel
// certificate verification, and single-pass bulk Merkle apply. Unlike
// the pipeline experiment (which stretches network hops so stalls
// dominate), this point keeps links cheap and batches full so per-batch
// CPU work — redundant header re-encodes, per-key Merkle path re-hashing
// — is the bottleneck the rows expose. "pre" disables the three headline
// optimizations; "post" is the shipped configuration.
func Hotpath(s Scale) []Point {
	var out []Point
	modes := []struct {
		name string
		fast bool
	}{{"pre", false}, {"post", true}}
	for _, mode := range modes {
		setHotpathOptimizations(mode.fast)
		for _, depth := range []int{1, 4} {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.PipelineDepth = depth
			cfg.Clusters = 2
			cfg.ROWorkers = 0
			// Enough closed-loop writers to keep the replicas CPU-bound
			// despite the long flush interval below.
			cfg.RWWorkers = s.RWWorkers * 16
			cfg.LocalFraction = 1.0
			cfg.ReadOps = NoOps
			// Wide write sets: every write is one Merkle insert plus its
			// share of three section encodes on every replica, so the
			// per-batch CPU cost the overhaul attacks dominates. A cooler
			// keyspace keeps OCC aborts (and their noise) out of the
			// throughput signal.
			cfg.WriteOps = 8
			cfg.Keys = s.Keys * 10
			cfg.IntraLatency = 2 * s.LatencyUnit
			cfg.InterLatency = 2 * s.LatencyUnit
			// A long flush interval fills batches to hundreds of writes,
			// amortizing the fixed per-batch signature work that this
			// overhaul does not target; what remains per transaction is
			// encoding and Merkle hashing, which it does.
			cfg.BatchInterval = 200 * s.LatencyUnit
			cfg.Duration = s.Duration * 4
			runtime.GC() // level GC debt between points
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "hotpath", Series: mode.name,
				X:             fmt.Sprintf("depth=%d", depth),
				ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
				P99MS: ms(r.RW.P99), AbortPct: r.RW.AbortPct(),
			}, r))
		}
	}
	setHotpathOptimizations(true)
	return out
}

// ReadScale — read-only throughput across store shard counts at
// read-heavy mixes. One partition isolates the per-replica read path;
// cheap links and closed-loop mixed workers keep the replica CPU-bound,
// so the bottleneck is exactly what the sharded engine and the off-loop
// executor pool attack: the store lock and the consensus loop serving
// every read inline. The shards=1 series pins the executor pool to one
// worker as well, approximating the seed's serial read path; higher
// series scale both together, and read throughput should rise with the
// series while the write path (same batch pipeline in every series)
// holds steady.
func ReadScale(s Scale) []Point {
	var out []Point
	for _, shards := range []int{1, 4, 16} {
		for _, roPct := range []int{50, 90, 99} {
			cfg := s.base()
			cfg.Protocol = TransEdge
			cfg.Clusters = 1
			cfg.StoreShards = shards
			cfg.ReadExecutors = shards
			cfg.ROWorkers = 0
			cfg.RWWorkers = 0
			cfg.MixedWorkers = s.ROWorkers * 6
			cfg.ROFraction = float64(roPct) / 100
			// Wide read-only transactions (8 keys, each with a Merkle
			// proof) make per-read CPU the dominant cost; write-only RW
			// transactions keep versions churning underneath the readers.
			cfg.ROPerCluster = 8
			cfg.ReadOps = NoOps
			cfg.WriteOps = 3
			cfg.IntraLatency = 2 * s.LatencyUnit
			cfg.InterLatency = 2 * s.LatencyUnit
			cfg.Duration = s.Duration * 2
			runtime.GC() // level GC debt between points
			r := Run(cfg)
			out = append(out, withRuntime(Point{
				Experiment: "readscale", Series: fmt.Sprintf("shards=%d", shards),
				X:             fmt.Sprintf("ro=%d%%", roPct),
				ThroughputTPS: r.RO.Throughput, LatencyMS: ms(r.RO.Mean),
				P99MS: ms(r.RO.P99), AbortPct: r.RW.AbortPct(),
			}, r))
		}
	}
	return out
}

// Engines compares the registered storage backends under two of the
// paper workloads: the write-heavy pipeline shape (consensus-paced
// commits churning versions) and the 90%-read-only readscale shape
// (snapshot fan-outs dominating). One row per backend x workload, with
// HeapMB recorded so the engines' memory shapes — flat maps vs
// memtable+runs — are visible next to their throughput.
func Engines(s Scale) []Point {
	var out []Point
	for _, engine := range []string{"sharded", "lsm"} {
		// Write-heavy: the pipeline experiment's depth-4 point.
		cfg := s.base()
		cfg.Protocol = TransEdge
		cfg.Engine = engine
		cfg.Clusters = 2
		cfg.ROWorkers = 0
		cfg.RWWorkers = s.RWWorkers * 4
		cfg.LocalFraction = 1.0
		cfg.ReadOps = NoOps
		cfg.WriteOps = 3
		cfg.IntraLatency = 80 * s.LatencyUnit
		cfg.InterLatency = 4 * s.LatencyUnit
		cfg.BatchInterval = 20 * s.LatencyUnit
		cfg.Duration = s.Duration * 2
		runtime.GC()
		r := Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "engines", Series: engine, X: "pipeline",
			ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
			P99MS: ms(r.RW.P99), AbortPct: r.RW.AbortPct(),
		}, r))

		// Read-heavy: the readscale experiment's 90% read-only mix.
		cfg = s.base()
		cfg.Protocol = TransEdge
		cfg.Engine = engine
		cfg.Clusters = 1
		cfg.StoreShards = 16
		cfg.ReadExecutors = 16
		cfg.ROWorkers = 0
		cfg.RWWorkers = 0
		cfg.MixedWorkers = s.ROWorkers * 6
		cfg.ROFraction = 0.9
		cfg.ROPerCluster = 8
		cfg.ReadOps = NoOps
		cfg.WriteOps = 3
		cfg.IntraLatency = 2 * s.LatencyUnit
		cfg.InterLatency = 2 * s.LatencyUnit
		cfg.Duration = s.Duration * 2
		runtime.GC()
		r = Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "engines", Series: engine, X: "readscale-ro90",
			ThroughputTPS: r.RO.Throughput, LatencyMS: ms(r.RO.Mean),
			P99MS: ms(r.RO.P99), AbortPct: r.RW.AbortPct(),
		}, r))
	}
	return out
}

// Experiments maps experiment IDs to their runners, for the CLI.
var Experiments = map[string]func(Scale) []Point{
	"fig4":        Fig4,
	"fig5":        Fig5,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig10":       Fig10and11,
	"fig11":       Fig10and11,
	"fig9":        Fig9,
	"fig12":       Fig12,
	"fig13":       Fig13,
	"fig14":       Fig14,
	"fig15":       Fig15,
	"table1":      Table1,
	"pipeline":    Pipeline,
	"hotpath":     Hotpath,
	"readscale":   ReadScale,
	"clientscale": ClientScale,
	"recovery":    Recovery,
	"viewchange":  ViewChange,
	"durability":  Durability,
	"engines":     Engines,
}

// Order lists experiments in paper order for -experiment all.
var Order = []string{
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig12", "fig13", "fig14", "fig15", "table1",
	"pipeline", "hotpath", "readscale", "clientscale", "recovery",
	"viewchange", "durability", "engines",
}
