// Package harness drives the paper's evaluation (Sec. 5): it builds a
// deployment of the chosen protocol, applies the YCSB-style workload, and
// measures the latency/throughput/abort statistics that every figure and
// table reports. Both bench_test.go and cmd/transedge-bench are thin
// layers over this package.
package harness

import (
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/baseline/augustus"
	"transedge/internal/baseline/twopcbft"
	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
	"transedge/internal/workload"
)

// Protocol selects the system under test.
type Protocol string

// The three systems of the evaluation.
const (
	TransEdge Protocol = "TransEdge"
	TwoPCBFT  Protocol = "2PC/BFT"
	Augustus  Protocol = "Augustus"
)

// NoOps marks an operation count as explicitly zero (the zero value of
// ReadOps/WriteOps selects the paper's defaults instead).
const NoOps = -1

// Config describes one experiment point.
type Config struct {
	Protocol Protocol
	Clusters int
	F        int

	Keys      int
	ValueSize int

	BatchInterval time.Duration
	BatchMaxSize  int
	// PipelineDepth is the leader's in-flight batch window (0 = the
	// system default; 1 = the paper's one-batch-at-a-time pipeline).
	PipelineDepth int
	IntraLatency  time.Duration
	InterLatency  time.Duration

	// StoreShards / ReadExecutors shape each replica's storage engine and
	// off-loop read pool (0 = system defaults); the readscale experiment
	// sweeps them.
	StoreShards   int
	ReadExecutors int
	// Engine names the storage backend per replica ("" = the sharded
	// default); the engines experiment compares backends under the
	// paper workloads.
	Engine string

	// CheckpointInterval / StateTransferTimeout shape the stable-
	// checkpoint subsystem (0 = system defaults; the recovery experiment
	// sets them explicitly so crashes recover within its window).
	CheckpointInterval   int
	StateTransferTimeout time.Duration
	// RetainBatches bounds each replica's historical snapshot window
	// (0 = keep everything, the system default).
	RetainBatches int
	// ViewTimeout enables PBFT leader failover (0 = disabled, the system
	// default; the viewchange experiment sets it).
	ViewTimeout time.Duration
	// DataDir enables durability: replicas write-ahead-log certified
	// batches and persist stable checkpoints under it (empty = in-memory,
	// the system default; the durability experiment sets it).
	DataDir string
	// WALSyncEvery / WALSyncInterval shape the WAL's group-commit fsync
	// policy (0 = system defaults; wal.SyncNever disables fsync).
	WALSyncEvery    int
	WALSyncInterval time.Duration

	// Worker counts (the paper uses 2 clients x 10 threads).
	ROWorkers int
	RWWorkers int
	// MixedWorkers run a blended closed loop: each operation is a
	// read-only transaction with probability ROFraction, else a
	// read-write one — the read-mix knob of the readscale experiment.
	MixedWorkers int
	ROFraction   float64
	// OpenLoopClients run session read-only clients on an open loop: each
	// issues requests on a Poisson schedule of ArrivalRate requests/second
	// regardless of completion, so queueing delay shows up in the tail
	// percentiles (a closed loop self-clocks and hides it). Latency is
	// measured from the scheduled arrival, not the actual send.
	OpenLoopClients int
	ArrivalRate     float64
	// ZipfS skews open-loop (and every other worker's) key choice within
	// each cluster; 0 keeps uniform draws.
	ZipfS float64

	// Verified-read fast-path toggles (the clientscale experiment sweeps
	// them; zero values = both optimizations on).
	DisableMultiProofRO bool
	DisableRootCache    bool
	// MeasureProofBytes makes every client canonically encode verified
	// proofs and account their size (Result.ProofBytesPerReq).
	MeasureProofBytes bool

	// Workload shape. Zero means the paper default (5 reads, 3 writes);
	// NoOps requests explicitly none.
	ReadOps       int
	WriteOps      int
	LocalFraction float64
	ROClusters    int
	ROPerCluster  int
	// ROScanSize > 0 switches read-only workers to long scans of that
	// many keys (Fig. 7).
	ROScanSize int

	Duration time.Duration
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.Protocol == "" {
		c.Protocol = TransEdge
	}
	if c.Clusters <= 0 {
		c.Clusters = 5
	}
	if c.F <= 0 {
		c.F = 1
	}
	if c.Keys <= 0 {
		c.Keys = 5000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 256
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 2000
	}
	// 0 means "paper default"; NoOps (-1) means explicitly none.
	if c.ReadOps == 0 {
		c.ReadOps = 5
	} else if c.ReadOps < 0 {
		c.ReadOps = 0
	}
	if c.WriteOps == 0 {
		c.WriteOps = 3
	} else if c.WriteOps < 0 {
		c.WriteOps = 0
	}
	if c.ROClusters <= 0 {
		c.ROClusters = c.Clusters
	}
	if c.ROPerCluster <= 0 {
		c.ROPerCluster = 1
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	return c
}

// Stats summarizes one transaction class.
type Stats struct {
	Count      int64
	Aborts     int64
	Mean       time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	P999       time.Duration
	Throughput float64 // committed txns per second
}

// AbortPct returns aborted / attempted in percent.
func (s Stats) AbortPct() float64 {
	total := s.Count + s.Aborts
	if total == 0 {
		return 0
	}
	return 100 * float64(s.Aborts) / float64(total)
}

// Result is one experiment point's measurements.
type Result struct {
	RO Stats
	RW Stats

	// HeapMB is the live heap (runtime.ReadMemStats HeapAlloc, after a
	// collection) at the end of the measurement window, and MaxLogLen
	// the longest retained log window across replicas — the pair that
	// makes the checkpointing memory bound visible in every BENCH row.
	HeapMB    float64
	MaxLogLen int64

	// Round-split metrics for TransEdge read-only transactions (Fig. 5):
	// Round1Mean is the mean latency of single-round transactions;
	// Round2Extra is the mean additional latency of transactions that
	// needed repair rounds; Round2Frac is the fraction that did.
	Round1Mean  time.Duration
	Round2Extra time.Duration
	Round2Frac  float64

	// LockAborts counts writer aborts caused by read locks (Augustus,
	// Table 1).
	LockAborts int64

	// ProofBytesPerReq is the mean canonical proof encoding size per
	// verified read-only reply, summed over all clients (0 unless
	// MeasureProofBytes).
	ProofBytesPerReq float64
	// CertVerifications counts full certificate checks across all clients
	// (root-cache hits excluded).
	CertVerifications int64
	// VerifyHashesPerReq is the mean Merkle hash operations per committed
	// read-only transaction, from the process-wide merkle.HashOps delta
	// over the run. Meaningful for read-only workloads (writes rebuild
	// server trees through the same counter).
	VerifyHashesPerReq float64
}

// reservoirCap bounds the latency sample kept per class; open-loop runs
// can record millions of operations, and percentile memory must not grow
// with them.
const reservoirCap = 1 << 16

// reservoir keeps an exact count and sum plus a bounded uniform sample,
// giving exact mean/throughput and sampled percentiles in fixed memory.
type reservoir struct {
	count   int64
	sum     time.Duration
	samples []time.Duration
	rng     *rand.Rand
}

func (r *reservoir) add(d time.Duration) {
	r.count++
	r.sum += d
	if len(r.samples) < reservoirCap {
		r.samples = append(r.samples, d)
		return
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.count))
	}
	if i := r.rng.Int63n(r.count); i < reservoirCap {
		r.samples[i] = d
	}
}

func (r *reservoir) mean() time.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// collector accumulates latencies per worker without contention.
type collector struct {
	mu     sync.Mutex
	all    reservoir
	aborts int64
	round1 reservoir
	round2 reservoir
}

func (c *collector) add(d time.Duration, rounds int) {
	c.mu.Lock()
	c.all.add(d)
	switch rounds {
	case 1:
		c.round1.add(d)
	case 0:
	default:
		c.round2.add(d)
	}
	c.mu.Unlock()
}

func (c *collector) abort() { atomic.AddInt64(&c.aborts, 1) }

func (c *collector) stats(window time.Duration) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Count: c.all.count, Aborts: atomic.LoadInt64(&c.aborts)}
	if c.all.count == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), c.all.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Mean = c.all.mean()
	s.P50 = sorted[len(sorted)*50/100]
	s.P95 = sorted[len(sorted)*95/100]
	s.P99 = sorted[len(sorted)*99/100]
	s.P999 = sorted[len(sorted)*999/1000]
	s.Throughput = float64(c.all.count) / window.Seconds()
	return s
}

// pickROKeys draws one read-only transaction's key set: the configured
// scan when scanSize > 0, the default RO shape otherwise. Every
// protocol's RO path draws through here so baselines see the same
// workload.
func pickROKeys(g *workload.Generator, scanSize int) []string {
	if scanSize > 0 {
		return g.NextROScan(scanSize)
	}
	return g.NextRO()
}

// runRO executes one read-only transaction, recording latency/rounds or
// an abort into col. Returns false when the worker should exit (error
// after the stop flag is raised).
func runRO(c *client.Client, g *workload.Generator, col *collector, stop *atomic.Bool, scanSize int) bool {
	keys := pickROKeys(g, scanSize)
	start := time.Now()
	res, err := c.ReadOnly(keys)
	if err != nil {
		if stop.Load() {
			return false
		}
		col.abort()
		return true
	}
	col.add(time.Since(start), res.Rounds)
	return true
}

// runRW executes one read-write transaction, recording latency or an
// abort into col.
func runRW(c *client.Client, g *workload.Generator, col *collector) {
	spec := g.NextRW()
	start := time.Now()
	txn := c.Begin()
	for _, k := range spec.ReadKeys {
		if _, err := txn.Read(k); err != nil {
			return
		}
	}
	for _, k := range spec.WriteKeys {
		txn.Write(k, spec.Value)
	}
	if err := txn.Commit(); err != nil {
		if errors.Is(err, client.ErrAborted) {
			col.abort()
		}
		return
	}
	col.add(time.Since(start), 0)
}

// Run executes one experiment point and returns its measurements.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	switch cfg.Protocol {
	case Augustus:
		return runAugustus(cfg)
	default:
		return runTransEdgeLike(cfg)
	}
}

// runTransEdgeLike measures TransEdge or the 2PC/BFT baseline (identical
// deployment; the read-only path differs).
func runTransEdgeLike(cfg Config) Result {
	gen := workload.New(workload.Config{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters, Seed: cfg.Seed,
	})
	sys := core.NewSystem(core.SystemConfig{
		Clusters:             cfg.Clusters,
		F:                    cfg.F,
		Seed:                 uint64(cfg.Seed),
		BatchInterval:        cfg.BatchInterval,
		BatchMaxSize:         cfg.BatchMaxSize,
		PipelineDepth:        cfg.PipelineDepth,
		StoreShards:          cfg.StoreShards,
		Engine:               cfg.Engine,
		ReadExecutors:        cfg.ReadExecutors,
		CheckpointInterval:   cfg.CheckpointInterval,
		StateTransferTimeout: cfg.StateTransferTimeout,
		RetainBatches:        cfg.RetainBatches,
		ViewTimeout:          cfg.ViewTimeout,
		DataDir:              cfg.DataDir,
		WALSyncEvery:         cfg.WALSyncEvery,
		WALSyncInterval:      cfg.WALSyncInterval,
		IntraLatency:         cfg.IntraLatency,
		InterLatency:         cfg.InterLatency,
		DisableMultiProofRO:  cfg.DisableMultiProofRO,
		InitialData:          gen.InitialData(),
	})
	sys.Start()
	// Hash ops from here on are verification work plus any server-side
	// tree rebuilding; for read-only workloads the delta is pure verify
	// cost (genesis tree construction is excluded by sampling post-Start).
	hashOps0 := merkle.HashOps()

	var (
		clientMu   sync.Mutex
		allClients []*client.Client
	)
	newClient := func(id uint32) *client.Client {
		c := client.New(client.Config{
			ID: id, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
			Clusters: cfg.Clusters, Timeout: 30 * time.Second, Seed: cfg.Seed,
			DisableRootCache:  cfg.DisableRootCache,
			MeasureProofBytes: cfg.MeasureProofBytes,
		})
		clientMu.Lock()
		allClients = append(allClients, c)
		clientMu.Unlock()
		return c
	}

	var (
		roCol, rwCol collector
		stop         atomic.Bool
		wg           sync.WaitGroup
	)

	// roClientFor wraps a client with the protocol's read-only path: the
	// TwoPCBFT baseline reads via coordinated 2PC, TransEdge via
	// one-round verified snapshots.
	roClientFor := func(c *client.Client) *twopcbft.Client {
		if cfg.Protocol == TwoPCBFT {
			return twopcbft.New(c)
		}
		return nil
	}
	// roOnce runs one read-only transaction on whichever path applies.
	// Returns false when the worker should exit.
	roOnce := func(c *client.Client, ro2pc *twopcbft.Client, g *workload.Generator) bool {
		if ro2pc == nil {
			return runRO(c, g, &roCol, &stop, cfg.ROScanSize)
		}
		keys := pickROKeys(g, cfg.ROScanSize)
		start := time.Now()
		res, err := ro2pc.ReadOnly(keys)
		if err != nil {
			return false
		}
		if res.Aborted {
			roCol.abort()
			return true
		}
		roCol.add(time.Since(start), 0)
		return true
	}

	// Read-only workers.
	for w := 0; w < cfg.ROWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient(uint32(100 + w))
			ro2pc := roClientFor(c)
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*31, ROClusters: cfg.ROClusters, ROPerCluster: cfg.ROPerCluster,
				ZipfS: cfg.ZipfS,
			})
			for !stop.Load() {
				if !roOnce(c, ro2pc, g) {
					return
				}
			}
		}(w)
	}

	// Open-loop session clients: each issues verified session reads on a
	// Poisson arrival schedule, decoupled from completions. A bounded
	// window caps CONCURRENT requests, not arrivals: the slot is acquired
	// inside the spawned goroutine, off the scheduling loop, so the
	// offered load is never throttled — a saturated window shows up as
	// queue wait, which the latency clock (running from the SCHEDULED
	// arrival) counts as tail inflation rather than hiding.
	for w := 0; w < cfg.OpenLoopClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := newClient(uint32(400 + w)).NewSession()
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*37, ROClusters: cfg.ROClusters, ROPerCluster: cfg.ROPerCluster,
				ZipfS: cfg.ZipfS,
			})
			var inflight sync.WaitGroup
			window := make(chan struct{}, 256)
			next := time.Now()
			for !stop.Load() {
				next = next.Add(g.NextArrival(cfg.ArrivalRate))
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				keys := pickROKeys(g, cfg.ROScanSize)
				arrival := next
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					window <- struct{}{}
					res, err := sess.ReadOnly(keys)
					<-window
					if err != nil {
						if !stop.Load() {
							roCol.abort()
						}
						return
					}
					roCol.add(time.Since(arrival), res.Rounds)
				}()
			}
			inflight.Wait()
		}(w)
	}

	// Read-write workers.
	for w := 0; w < cfg.RWWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient(uint32(200 + w))
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*17, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
				ZipfS:         cfg.ZipfS,
			})
			for !stop.Load() {
				runRW(c, g, &rwCol)
			}
		}(w)
	}

	// Mixed workers interleave both classes from one deterministic stream
	// (the read-mix knob of the readscale experiment).
	for w := 0; w < cfg.MixedWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient(uint32(300 + w))
			ro2pc := roClientFor(c)
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*13, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
				ROClusters:    cfg.ROClusters, ROPerCluster: cfg.ROPerCluster,
				ROFraction: cfg.ROFraction,
				ZipfS:      cfg.ZipfS,
			})
			for !stop.Load() {
				if g.NextIsRO() {
					if !roOnce(c, ro2pc, g) {
						return
					}
				} else {
					runRW(c, g, &rwCol)
				}
			}
		}(w)
	}

	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	hashDelta := merkle.HashOps() - hashOps0

	res := Result{
		RO:     roCol.stats(cfg.Duration),
		RW:     rwCol.stats(cfg.Duration),
		HeapMB: liveHeapMB(),
	}
	// Stop (not deferred: the log windows must be read quiescent, and
	// the ordering matters) before collecting per-replica state.
	sys.Stop()
	res.MaxLogLen = maxLogLen(sys)
	res.Round1Mean = roCol.round1.mean()
	if n := roCol.round2.count; n > 0 {
		res.Round2Frac = float64(n) / float64(roCol.round1.count+n)
		if extra := roCol.round2.mean() - res.Round1Mean; extra > 0 {
			res.Round2Extra = extra
		}
	}
	var proofReqs, proofBytes int64
	clientMu.Lock()
	for _, c := range allClients {
		r, b := c.ProofStats()
		proofReqs += r
		proofBytes += b
		res.CertVerifications += c.CertVerifications()
	}
	clientMu.Unlock()
	if proofReqs > 0 {
		res.ProofBytesPerReq = float64(proofBytes) / float64(proofReqs)
	}
	if res.RO.Count > 0 {
		res.VerifyHashesPerReq = float64(hashDelta) / float64(res.RO.Count)
	}
	return res
}

// runAugustus measures the lock-based baseline.
func runAugustus(cfg Config) Result {
	gen := workload.New(workload.Config{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters, Seed: cfg.Seed,
	})
	sys := augustus.NewSystem(augustus.SystemConfig{
		Clusters:     cfg.Clusters,
		F:            cfg.F,
		IntraLatency: cfg.IntraLatency,
		InterLatency: cfg.InterLatency,
		InitialData:  gen.InitialData(),
	})
	sys.Start()
	defer sys.Stop()

	var (
		roCol, rwCol collector
		stop         atomic.Bool
		wg           sync.WaitGroup
	)
	runAugRO := func(c *augustus.Client, g *workload.Generator) bool {
		keys := pickROKeys(g, cfg.ROScanSize)
		start := time.Now()
		if _, err := c.ReadOnly(keys); err != nil {
			if stop.Load() {
				return false
			}
			roCol.abort()
			return true
		}
		roCol.add(time.Since(start), 0)
		return true
	}
	runAugRW := func(c *augustus.Client, g *workload.Generator) {
		spec := g.NextRW()
		writes := make([]protocol.WriteOp, len(spec.WriteKeys))
		for i, k := range spec.WriteKeys {
			writes[i] = protocol.WriteOp{Key: k, Value: spec.Value}
		}
		start := time.Now()
		if err := c.Execute(spec.ReadKeys, writes); err != nil {
			if errors.Is(err, augustus.ErrAborted) {
				rwCol.abort()
			}
			return
		}
		rwCol.add(time.Since(start), 0)
	}
	for w := 0; w < cfg.ROWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sys.NewClient(uint32(100 + w))
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*31, ROClusters: cfg.ROClusters, ROPerCluster: cfg.ROPerCluster,
			})
			for !stop.Load() {
				if !runAugRO(c, g) {
					return
				}
			}
		}(w)
	}
	for w := 0; w < cfg.RWWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sys.NewClient(uint32(200 + w))
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*17, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
			})
			for !stop.Load() {
				runAugRW(c, g)
			}
		}(w)
	}
	// Mixed workers, so read-mix sweeps can compare against the baseline.
	for w := 0; w < cfg.MixedWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sys.NewClient(uint32(300 + w))
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*13, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
				ROClusters:    cfg.ROClusters, ROPerCluster: cfg.ROPerCluster,
				ROFraction: cfg.ROFraction,
			})
			for !stop.Load() {
				if g.NextIsRO() {
					if !runAugRO(c, g) {
						return
					}
				} else {
					runAugRW(c, g)
				}
			}
		}(w)
	}

	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	return Result{
		RO:         roCol.stats(cfg.Duration),
		RW:         rwCol.stats(cfg.Duration),
		LockAborts: sys.RWLockAborts(),
		HeapMB:     liveHeapMB(),
	}
}

// liveHeapMB reports the live heap after a collection, so BENCH rows
// record steady-state retention rather than transient garbage.
func liveHeapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// maxLogLen returns the longest retained log window across replicas of a
// stopped system.
func maxLogLen(sys *core.System) int64 {
	var max int64
	for c := 0; c < sys.Cfg.Clusters; c++ {
		for r := 0; r < sys.ReplicasPerCluster(); r++ {
			node := sys.Node(core.NodeID{Cluster: int32(c), Replica: int32(r)})
			if node == nil {
				continue
			}
			if _, l := node.LogWindow(); int64(l) > max {
				max = int64(l)
			}
		}
	}
	return max
}

// asWorkloadOps converts a resolved op count (0 = explicitly none) into
// the workload package's convention (0 = default, NoOps = none).
func asWorkloadOps(n int) int {
	if n == 0 {
		return workload.NoOps
	}
	return n
}
