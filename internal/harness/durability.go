// The durability experiment: measure what the group-commit WAL costs
// (fsync-on vs fsync-off vs the in-memory seed configuration) and what it
// buys — a whole deployment killed and cold-restarted from disk alone,
// with committed writes surviving and verified reads succeeding against
// the recovered state. This is the fault-injection scenario the
// durability layer (DESIGN.md §8) exists to serve.
package harness

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/wal"
	"transedge/internal/workload"
)

// ColdRestartResult captures one kill-all/cold-restart run.
type ColdRestartResult struct {
	// Load is the read-write commit stats of the pre-crash load phase.
	Load Stats
	// Restart is how long the full deployment took to rebuild from disk
	// (NewSystem through Start, which runs every replica's WAL replay and
	// checkpoint install synchronously).
	Restart time.Duration
	// Recovered reports whether every replica's committed tip came back
	// at or above its pre-crash tip.
	Recovered bool
	// VerifiedReads reports whether a post-restart verified read-only
	// transaction returned the pre-crash committed marker values.
	VerifiedReads bool
	// ColdRestarts / WALReplayed / StateTransfers are summed across the
	// restarted replicas: a disk-only recovery has ColdRestarts > 0,
	// WALReplayed > 0 and StateTransfers == 0.
	ColdRestarts   int64
	WALReplayed    int64
	StateTransfers int64
	// CheckpointsPersisted is summed across the pre-crash replicas (the
	// run guarantees at least two stable checkpoints hit disk).
	CheckpointsPersisted int64
	HeapMB               float64
}

// durabilitySystem builds the deployment for one durability phase; both
// the pre-crash and the restarted system come through here so their
// configurations are bit-identical (genesis determinism then follows from
// the persisted genesis timestamp).
func durabilitySystem(cfg Config, gen *workload.Generator) *core.System {
	return core.NewSystem(core.SystemConfig{
		Clusters:             cfg.Clusters,
		F:                    cfg.F,
		Seed:                 uint64(cfg.Seed),
		BatchInterval:        cfg.BatchInterval,
		BatchMaxSize:         cfg.BatchMaxSize,
		PipelineDepth:        cfg.PipelineDepth,
		StoreShards:          cfg.StoreShards,
		Engine:               cfg.Engine,
		ReadExecutors:        cfg.ReadExecutors,
		CheckpointInterval:   cfg.CheckpointInterval,
		StateTransferTimeout: cfg.StateTransferTimeout,
		RetainBatches:        cfg.RetainBatches,
		DataDir:              cfg.DataDir,
		WALSyncEvery:         cfg.WALSyncEvery,
		WALSyncInterval:      cfg.WALSyncInterval,
		IntraLatency:         cfg.IntraLatency,
		InterLatency:         cfg.InterLatency,
		InitialData:          gen.InitialData(),
	})
}

// RunColdRestart loads a durable deployment until at least two stable
// checkpoints plus a WAL suffix are on disk, commits marker writes, stops
// every replica at once, and rebuilds the whole deployment from the same
// DataDir: no live peer holds the state, so recovery must come from disk.
func RunColdRestart(cfg Config) ColdRestartResult {
	cfg = cfg.withDefaults()
	gen := workload.New(workload.Config{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters, Seed: cfg.Seed,
	})
	sys := durabilitySystem(cfg, gen)
	sys.Start()

	var (
		col  collector
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for w := 0; w < cfg.RWWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New(client.Config{
				ID: uint32(200 + w), Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
				Clusters: cfg.Clusters, Timeout: 30 * time.Second, Seed: cfg.Seed,
			})
			g := workload.New(workload.Config{
				Keys: cfg.Keys, ValueSize: cfg.ValueSize, Clusters: cfg.Clusters,
				Seed: cfg.Seed + int64(w)*17, ReadOps: asWorkloadOps(cfg.ReadOps),
				WriteOps:      asWorkloadOps(cfg.WriteOps),
				LocalFraction: cfg.LocalFraction,
			})
			for !stop.Load() {
				runRW(c, g, &col)
			}
		}(w)
	}

	// Load until the tip is safely past two checkpoint intervals plus a
	// suffix, so disk holds ≥2 stable checkpoints and WAL records above
	// the last one.
	var (
		leader  = core.NodeID{Cluster: 0, Replica: 0}
		target  = int64(3*cfg.CheckpointInterval) + 4
		loadEnd = time.Now().Add(30 * cfg.Duration)
		started = time.Now()
	)
	for time.Now().Before(loadEnd) && sys.Node(leader).Tip() < target {
		time.Sleep(cfg.Duration / 50)
	}
	loadWindow := time.Since(started)

	// Commit marker writes whose values the post-restart verified read
	// must reproduce; they land in the WAL suffix above the last stable
	// checkpoint, so recovery exercises checkpoint install AND replay.
	mc := client.New(client.Config{
		ID: 99, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: cfg.Clusters, Timeout: 30 * time.Second, Seed: cfg.Seed,
	})
	markers := make(map[string][]byte)
	txn := mc.Begin()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("durable-marker-%03d", i)
		v := []byte(fmt.Sprintf("survives-%03d", i))
		markers[k] = v
		txn.Write(k, v)
	}
	markersOK := txn.Commit() == nil

	stop.Store(true)
	wg.Wait()
	res := ColdRestartResult{Load: col.stats(loadWindow)}

	// Let every replica deliver through the marker batch before the kill,
	// so each disk image contains the markers (Stop syncs and closes the
	// WALs; the loss-window variants live in the crash-injection tests).
	tips := make(map[core.NodeID]int64)
	settle := time.Now().Add(10 * cfg.Duration)
	for time.Now().Before(settle) {
		lead := sys.Node(leader).Tip()
		ok := true
		for r := 0; r < sys.ReplicasPerCluster(); r++ {
			id := core.NodeID{Cluster: 0, Replica: int32(r)}
			if sys.Node(id).Tip() < lead {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		time.Sleep(cfg.Duration / 50)
	}
	for r := 0; r < sys.ReplicasPerCluster(); r++ {
		id := core.NodeID{Cluster: 0, Replica: int32(r)}
		tips[id] = sys.Node(id).Tip()
	}
	sys.Stop()
	res.CheckpointsPersisted = sys.NodeMetrics(func(m *core.Metrics) int64 { return m.CheckpointsPersisted })

	// Cold restart: a brand-new System over the same DataDir. Start runs
	// each replica's disk recovery synchronously, so the elapsed time IS
	// the cold-restart latency.
	restartStart := time.Now()
	sys2 := durabilitySystem(cfg, gen)
	sys2.Start()
	res.Restart = time.Since(restartStart)

	res.Recovered = true
	for id, tip := range tips {
		if sys2.Node(id).Tip() < tip {
			res.Recovered = false
		}
	}

	// Verified read of the markers against the recovered state: Merkle
	// proofs against the f+1-certified recovered root.
	if markersOK {
		rc := client.New(client.Config{
			ID: 98, Net: sys2.Net, Ring: sys2.Ring, Part: sys2.Part,
			Clusters: cfg.Clusters, Timeout: 30 * time.Second, Seed: cfg.Seed,
		})
		keys := make([]string, 0, len(markers))
		for k := range markers {
			keys = append(keys, k)
		}
		if ro, err := rc.ReadOnly(keys); err == nil {
			res.VerifiedReads = true
			for k, want := range markers {
				if string(ro.Values[k]) != string(want) {
					res.VerifiedReads = false
				}
			}
		}
	}

	res.HeapMB = liveHeapMB()
	sys2.Stop()
	res.ColdRestarts = sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.ColdRestarts })
	res.WALReplayed = sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.WALReplayed })
	res.StateTransfers = sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.StateTransfers })
	return res
}

// durabilityBase is the shared shape of every durability point: one
// cluster under sustained local write load with checkpoints every 16
// batches, so runs are dominated by the commit path the WAL sits on.
func durabilityBase(s Scale) Config {
	cfg := s.base()
	cfg.Protocol = TransEdge
	cfg.Clusters = 1
	cfg.ROWorkers = 0
	cfg.RWWorkers = s.RWWorkers * 2
	cfg.LocalFraction = 1.0
	cfg.ReadOps = NoOps
	cfg.WriteOps = 3
	cfg.CheckpointInterval = 16
	cfg.StateTransferTimeout = 10 * time.Millisecond
	cfg.RetainBatches = 32
	cfg.IntraLatency = 2 * s.LatencyUnit
	cfg.InterLatency = 2 * s.LatencyUnit
	return cfg
}

// Durability — the harness experiment behind BENCH_durability.json. Rows
// record commit throughput with the WAL fsyncing (the shipped default),
// with fsync disabled (group commit still buffers, the disk write
// happens, only the flush barrier is skipped), and with durability off
// entirely (the seed's in-memory configuration); then a kill-all
// cold-restart row records how long a 3f+1 cluster takes to rebuild from
// its checkpoints and WAL suffix, with -1 signalling a failed recovery
// or a failed post-restart verified read.
func Durability(s Scale) []Point {
	var out []Point
	var cleanup []string
	defer func() {
		for _, d := range cleanup {
			os.RemoveAll(d)
		}
	}()
	tmp := func(tag string) string {
		d, err := os.MkdirTemp("", "transedge-durability-"+tag+"-")
		if err != nil {
			return ""
		}
		cleanup = append(cleanup, d)
		return d
	}

	modes := []struct {
		name      string
		durable   bool
		syncEvery int
	}{
		{"fsync-on", true, 0}, // system default group-commit policy
		{"fsync-off", true, wal.SyncNever},
		{"no-wal", false, 0}, // the seed's in-memory configuration
	}
	for _, m := range modes {
		cfg := durabilityBase(s)
		if m.durable {
			cfg.DataDir = tmp(m.name)
		}
		cfg.WALSyncEvery = m.syncEvery
		r := Run(cfg)
		out = append(out, withRuntime(Point{
			Experiment: "durability", Series: "TransEdge", X: m.name,
			ThroughputTPS: r.RW.Throughput, LatencyMS: ms(r.RW.Mean),
			P99MS: ms(r.RW.P99), AbortPct: r.RW.AbortPct(),
		}, r))
	}

	cfg := durabilityBase(s)
	cfg.DataDir = tmp("restart")
	cr := RunColdRestart(cfg)
	restartMS := ms(cr.Restart)
	if !cr.Recovered || !cr.VerifiedReads || cr.ColdRestarts == 0 {
		restartMS = -1 // sentinel: recovery or verification failed
	}
	rt := Result{HeapMB: cr.HeapMB}
	out = append(out, withRuntime(Point{
		Experiment: "durability", Series: "TransEdge", X: "cold-restart",
		LatencyMS: restartMS, ThroughputTPS: cr.Load.Throughput,
	}, rt))
	return out
}
