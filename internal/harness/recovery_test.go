package harness

import "testing"

// TestRecoveryExperiment pins the recovery scenario end to end at test
// scale: the crashed follower's absence never stalls commits, the
// restarted replica catches up via state transfer before the deadline,
// and the memory-bounding metrics are populated.
func TestRecoveryExperiment(t *testing.T) {
	pts := Recovery(tinyScale)
	byX := make(map[string]Point, len(pts))
	for _, p := range pts {
		byX[p.X] = p
	}
	base, ok := byX["baseline"]
	if !ok {
		t.Fatal("missing baseline row")
	}
	if base.ThroughputTPS <= 0 {
		t.Fatal("no baseline commit throughput")
	}
	down := byX["follower-down"]
	if down.ThroughputTPS <= 0 {
		t.Fatal("commits stalled while the follower was down")
	}
	rec := byX["recovered"]
	if rec.ThroughputTPS <= 0 {
		t.Fatal("commits stalled after the restart")
	}
	catch := byX["catchup"]
	if catch.LatencyMS < 0 {
		t.Fatal("restarted replica never caught up within the deadline")
	}
	if base.HeapMB <= 0 {
		t.Fatal("heap footprint not recorded")
	}
	if base.LogLen <= 0 {
		t.Fatal("log window length not recorded")
	}
}

// TestRunRecordsRuntimeFootprint: every ordinary Run result carries the
// memory metrics the BENCH rows record.
func TestRunRecordsRuntimeFootprint(t *testing.T) {
	cfg := tinyScale.base()
	cfg.Protocol = TransEdge
	cfg.Clusters = 2
	r := Run(cfg)
	if r.HeapMB <= 0 {
		t.Fatalf("HeapMB = %v", r.HeapMB)
	}
	if r.MaxLogLen <= 0 {
		t.Fatalf("MaxLogLen = %v", r.MaxLogLen)
	}
}
