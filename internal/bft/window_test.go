package bft

import (
	"testing"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// soloReplica builds a passive follower engine with a 4-node ring, fed
// directly via Handle (no goroutines), for white-box buffering tests.
func soloReplica(t *testing.T, maxInFlight int) (*Replica, []cryptoutil.KeyPair) {
	t.Helper()
	ring := cryptoutil.NewKeyRing()
	keys := make([]cryptoutil.KeyPair, 4)
	for i := range keys {
		id := NodeID{Cluster: 0, Replica: int32(i)}
		keys[i] = cryptoutil.DeriveKeyPair(id, 99)
		ring.Add(id, keys[i].Public)
	}
	r := New(Config{
		Cluster: 0, Replica: 1, N: 4, F: 1,
		Keys: keys[1], Ring: ring, Net: transport.NewNetwork(),
		MaxInFlight: maxInFlight,
	})
	return r, keys
}

func leaderPrePrepare(keys []cryptoutil.KeyPair, b *protocol.Batch) *PrePrepare {
	b.Seal()
	d := b.Digest()
	return &PrePrepare{Batch: b, LeaderSig: keys[0].Sign(d[:])}
}

// TestOutOfWindowMessagesDropped: consensus messages for sequence
// numbers beyond the buffering window are dropped — no instance state,
// no buffered pre-prepare — instead of accumulating without bound, and
// the replica reports itself lagging.
func TestOutOfWindowMessagesDropped(t *testing.T) {
	const w = 4
	r, keys := soloReplica(t, w)
	limit := r.nextDeliver + r.maxAhead() // first out-of-window ID

	from := NodeID{Cluster: 0, Replica: 2}
	r.Handle(from, &Prepare{ID: limit})
	r.Handle(from, &Commit{ID: limit + 100, CertSig: []byte("x")})
	pp := leaderPrePrepare(keys, &protocol.Batch{Cluster: 0, ID: limit + 5, CD: protocol.NewCDVector(1)})
	r.Handle(NodeID{Cluster: 0, Replica: 0}, pp)

	if len(r.instances) != 0 {
		t.Fatalf("out-of-window messages created %d instances", len(r.instances))
	}
	if len(r.pendingPrePrepare) != 0 {
		t.Fatalf("out-of-window pre-prepare buffered (%d entries)", len(r.pendingPrePrepare))
	}
	if got := r.DroppedAhead(); got != 3 {
		t.Fatalf("DroppedAhead = %d, want 3", got)
	}
	// The high-water mark is clamped a couple of windows ahead: the IDs
	// are unauthenticated, so a forged huge one must not pin the signal.
	if got, capped := r.HighestSeen(), r.nextDeliver+2*r.maxAhead(); got != capped {
		t.Fatalf("HighestSeen = %d, want clamp %d", got, capped)
	}
	if !r.Lagging() {
		t.Fatal("replica should report itself lagging after out-of-window traffic")
	}
	// A futile sync round settles the mark back to the delivered tip,
	// healing the lagging signal until genuine traffic re-raises it.
	r.SettleHighestSeen(r.nextDeliver - 1)
	if r.Lagging() {
		t.Fatal("still lagging after SettleHighestSeen")
	}
}

// TestUnboundedBufferNeverDrops: with BufferAhead < 0 (the node's
// configuration when checkpointing is disabled) far-future messages are
// buffered as in the seed, and the replica never reports lagging —
// without state transfer, dropping would wedge a slow replica forever.
func TestUnboundedBufferNeverDrops(t *testing.T) {
	ring := cryptoutil.NewKeyRing()
	keys := make([]cryptoutil.KeyPair, 4)
	for i := range keys {
		id := NodeID{Cluster: 0, Replica: int32(i)}
		keys[i] = cryptoutil.DeriveKeyPair(id, 99)
		ring.Add(id, keys[i].Public)
	}
	r := New(Config{
		Cluster: 0, Replica: 1, N: 4, F: 1,
		Keys: keys[1], Ring: ring, Net: transport.NewNetwork(),
		MaxInFlight: 4, BufferAhead: -1,
	})
	from := NodeID{Cluster: 0, Replica: 2}
	r.Handle(from, &Prepare{ID: 500})
	if len(r.instances) != 1 {
		t.Fatal("far-future prepare dropped despite unbounded buffer")
	}
	if r.DroppedAhead() != 0 {
		t.Fatalf("DroppedAhead = %d with unbounded buffer", r.DroppedAhead())
	}
	if r.Lagging() {
		t.Fatal("unbounded buffer must never report lagging")
	}
	if r.HighestSeen() != 500 {
		t.Fatalf("HighestSeen = %d, want 500", r.HighestSeen())
	}
}

// TestInWindowMessagesStillBuffered: the bound must not break normal
// pipelining — messages ahead of our validation point but inside the
// window are buffered as before.
func TestInWindowMessagesStillBuffered(t *testing.T) {
	const w = 4
	r, keys := soloReplica(t, w)
	from := NodeID{Cluster: 0, Replica: 2}

	inWindow := r.nextDeliver + r.maxAhead() - 1
	r.Handle(from, &Prepare{ID: inWindow})
	if len(r.instances) != 1 {
		t.Fatalf("in-window prepare not buffered (%d instances)", len(r.instances))
	}
	r.Handle(from, &Commit{ID: inWindow, Digest: protocol.Digest{1}, CertSig: []byte("x")})
	if got := len(r.instances[inWindow].pendingCommits); got != 1 {
		t.Fatalf("in-window commit not buffered (%d pending)", got)
	}
	// A pre-prepare for a future in-window slot is held for its turn.
	pp := leaderPrePrepare(keys, &protocol.Batch{Cluster: 0, ID: 3, CD: protocol.NewCDVector(1)})
	r.Handle(NodeID{Cluster: 0, Replica: 0}, pp)
	if _, ok := r.pendingPrePrepare[3]; !ok {
		t.Fatal("in-window future pre-prepare not buffered")
	}
	if r.DroppedAhead() != 0 {
		t.Fatalf("DroppedAhead = %d, want 0", r.DroppedAhead())
	}
	if r.Lagging() {
		t.Fatal("replica within the window must not report lagging")
	}
}

// TestResetRebasesEngine: Reset discards buffered per-slot state and
// resumes numbering after the installed base.
func TestResetRebasesEngine(t *testing.T) {
	r, _ := soloReplica(t, 4)
	from := NodeID{Cluster: 0, Replica: 2}
	r.Handle(from, &Prepare{ID: 2})
	r.Handle(from, &Prepare{ID: 3})
	if len(r.instances) != 2 {
		t.Fatalf("setup: %d instances", len(r.instances))
	}

	base := int64(128)
	d := protocol.Digest{42}
	r.Reset(base, d, protocol.BatchHeader{Cluster: 0, ID: base}, cryptoutil.Certificate{})
	if r.NextID() != base+1 {
		t.Fatalf("NextID = %d, want %d", r.NextID(), base+1)
	}
	if r.LastDigest() != d {
		t.Fatal("LastDigest not rebased")
	}
	if len(r.instances) != 0 || len(r.pendingPrePrepare) != 0 {
		t.Fatal("Reset kept stale buffered state")
	}
	if r.InFlight() != 0 {
		t.Fatalf("InFlight = %d after Reset", r.InFlight())
	}
	// Old-slot traffic is now below nextDeliver and ignored.
	r.Handle(from, &Prepare{ID: 2})
	if len(r.instances) != 0 {
		t.Fatal("pre-base message accepted after Reset")
	}
	// New-slot traffic inside the rebased window is accepted.
	r.Handle(from, &Prepare{ID: base + 2})
	if len(r.instances) != 1 {
		t.Fatal("post-base message rejected after Reset")
	}
}
