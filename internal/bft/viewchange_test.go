package bft

import (
	"testing"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// vcFixture holds a 4-replica cluster's key material, a certified genesis
// tip, and a sealed batch chain for slots 1..3 — the raw ingredients for
// building view-change votes by hand.
type vcFixture struct {
	keys    []cryptoutil.KeyPair
	ring    *cryptoutil.KeyRing
	genesis *protocol.Batch
	header  protocol.BatchHeader
	cert    cryptoutil.Certificate
	batches []*protocol.Batch // batches[i] is slot i+1
}

func newVCFixture(t *testing.T) *vcFixture {
	t.Helper()
	f := &vcFixture{ring: cryptoutil.NewKeyRing()}
	for i := 0; i < 4; i++ {
		id := NodeID{Cluster: 0, Replica: int32(i)}
		kp := cryptoutil.DeriveKeyPair(id, 7)
		f.keys = append(f.keys, kp)
		f.ring.Add(id, kp.Public)
	}
	f.genesis = (&protocol.Batch{Cluster: 0, ID: 0, CD: protocol.NewCDVector(1), LCE: -1}).Seal()
	f.header = f.genesis.Header()
	d := f.header.Digest()
	f.cert = cryptoutil.Certificate{Cluster: 0}
	for i := 0; i < 4; i++ {
		id := NodeID{Cluster: 0, Replica: int32(i)}
		f.cert.Signatures = append(f.cert.Signatures, cryptoutil.SignCertificate(f.keys[i], id, d[:]))
	}
	prev := f.genesis.Digest()
	for id := int64(1); id <= 3; id++ {
		b := (&protocol.Batch{Cluster: 0, ID: id, PrevDigest: prev, Timestamp: id,
			CD: protocol.NewCDVector(1), LCE: -1}).Seal()
		f.batches = append(f.batches, b)
		prev = b.Digest()
	}
	return f
}

// preps builds valid prepare signatures from the listed replicas for
// (view, id, digest).
func (f *vcFixture) preps(view uint64, id int64, d protocol.Digest, replicas ...int32) []protocol.PrepareSig {
	psd := protocol.PrepareSigDigest(0, view, id, d)
	out := make([]protocol.PrepareSig, 0, len(replicas))
	for _, r := range replicas {
		out = append(out, protocol.PrepareSig{Replica: r, Sig: f.keys[r].Sign(psd[:])})
	}
	return out
}

func vcVote(rep int32, tip protocol.BatchHeader, entries ...protocol.PreparedEntry) *protocol.ViewChange {
	return &protocol.ViewChange{Cluster: 0, Replica: rep, View: 1, TipHeader: tip, Entries: entries}
}

func vcEntry(view uint64, b *protocol.Batch, sigs []protocol.PrepareSig) protocol.PreparedEntry {
	return protocol.PreparedEntry{ID: b.ID, View: view, Digest: b.Digest(), Batch: b, Prepares: sigs}
}

// TestNewViewFrontierFromAnyQuorum is the safety property behind the view
// change: for EVERY 2f+1-subset of the cluster's view-change votes, the
// recomputed frontier re-proposes each slot that may have committed
// anywhere (here: slot 1, delivered by replica 0; slot 2, prepared by a
// full quorum) and never resurrects a slot that no quorum prepared
// (slot 3, one signature). No committed slot lost, no unprepared slot
// revived — from any subset a new leader might assemble.
func TestNewViewFrontierFromAnyQuorum(t *testing.T) {
	f := newVCFixture(t)
	b1, b2, b3 := f.batches[0], f.batches[1], f.batches[2]
	d1, d2 := b1.Digest(), b2.Digest()
	d3 := b3.Digest()

	votes := []*protocol.ViewChange{
		// Replica 0 delivered slot 1: its tip certifies it, entries resume
		// at slot 2. It holds a full prepare set for 2 and only its own
		// signature for 3.
		vcVote(0, b1.Header(),
			vcEntry(0, b2, f.preps(0, 2, d2, 0, 1, 2)),
			vcEntry(0, b3, f.preps(0, 3, d3, 0))),
		vcVote(1, f.header,
			vcEntry(0, b1, f.preps(0, 1, d1, 0, 1, 2, 3)),
			vcEntry(0, b2, f.preps(0, 2, d2, 0, 1, 2))),
		vcVote(2, f.header,
			vcEntry(0, b1, f.preps(0, 1, d1, 1, 2, 3)),
			vcEntry(0, b2, f.preps(0, 2, d2, 0, 1, 2))),
		vcVote(3, f.header,
			vcEntry(0, b1, f.preps(0, 1, d1, 0, 1, 2, 3)),
			vcEntry(0, b2, f.preps(0, 2, d2, 1, 2, 3)),
			vcEntry(0, b3, f.preps(0, 3, d3, 3))),
	}

	subsets := [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}, {0, 1, 2, 3}}
	for _, idx := range subsets {
		sub := make([]*protocol.ViewChange, 0, len(idx))
		tip := int64(0)
		for _, i := range idx {
			sub = append(sub, votes[i])
			if votes[i].TipHeader.ID > tip {
				tip = votes[i].TipHeader.ID
			}
		}
		fr := computeFrontier(f.ring, 0, 1, sub)
		got := make(map[int64]protocol.Digest, len(fr))
		for i, e := range fr {
			if e.ID != tip+1+int64(i) {
				t.Fatalf("subset %v: frontier not contiguous from tip %d: %+v", idx, tip, fr)
			}
			got[e.ID] = e.Digest
		}
		if tip < 1 && got[1] != d1 {
			t.Fatalf("subset %v: committed slot 1 lost (frontier %v)", idx, got)
		}
		if got[2] != d2 {
			t.Fatalf("subset %v: prepared slot 2 lost or re-proposed with wrong digest", idx)
		}
		if _, ok := got[3]; ok {
			t.Fatalf("subset %v: unprepared slot 3 resurrected", idx)
		}
	}
}

// TestFrontierRejectsForgedPrepares: a byzantine voter padding an
// under-prepared slot with fabricated signatures from honest replicas
// cannot push it over the 2f+1 bar — every counted signature is verified
// against the claimed signer's key.
func TestFrontierRejectsForgedPrepares(t *testing.T) {
	f := newVCFixture(t)
	b1, b2, b3 := f.batches[0], f.batches[1], f.batches[2]
	d1, d2, d3 := b1.Digest(), b2.Digest(), b3.Digest()

	psd3 := protocol.PrepareSigDigest(0, 0, 3, d3)
	forged := []protocol.PrepareSig{
		// Valid bytes, wrong claimed signer: replica 3's signature
		// presented as replicas 1 and 2.
		{Replica: 1, Sig: f.keys[3].Sign(psd3[:])},
		{Replica: 2, Sig: f.keys[3].Sign(psd3[:])},
		{Replica: 3, Sig: f.keys[3].Sign(psd3[:])},
	}
	votes := []*protocol.ViewChange{
		vcVote(1, f.header,
			vcEntry(0, b1, f.preps(0, 1, d1, 0, 1, 2)),
			vcEntry(0, b2, f.preps(0, 2, d2, 0, 1, 2))),
		vcVote(2, f.header,
			vcEntry(0, b1, f.preps(0, 1, d1, 0, 1, 2)),
			vcEntry(0, b2, f.preps(0, 2, d2, 0, 1, 2))),
		vcVote(3, f.header,
			vcEntry(0, b1, f.preps(0, 1, d1, 0, 1, 2)),
			vcEntry(0, b2, f.preps(0, 2, d2, 0, 1, 2)),
			vcEntry(0, b3, forged)),
	}
	fr := computeFrontier(f.ring, 0, 1, votes)
	if len(fr) != 2 || fr[0].ID != 1 || fr[1].ID != 2 {
		t.Fatalf("frontier = %+v, want exactly slots 1,2", fr)
	}
}

// TestFrontierPrefersHigherViewCandidate: when a slot prepared under two
// views (a previous failover re-proposed it), the candidate from the
// higher view wins — it is the one a later quorum may have committed.
func TestFrontierPrefersHigherViewCandidate(t *testing.T) {
	f := newVCFixture(t)
	b1 := f.batches[0]
	d1 := b1.Digest()
	b1b := (&protocol.Batch{Cluster: 0, ID: 1, PrevDigest: f.genesis.Digest(), Timestamp: 100,
		CD: protocol.NewCDVector(1), LCE: -1}).Seal()
	d1b := b1b.Digest()

	votes := []*protocol.ViewChange{
		vcVote(1, f.header, vcEntry(0, b1, f.preps(0, 1, d1, 0, 1, 2))),
		vcVote(2, f.header, vcEntry(1, b1b, f.preps(1, 1, d1b, 1, 2, 3))),
		vcVote(3, f.header, vcEntry(1, b1b, f.preps(1, 1, d1b, 1, 2, 3))),
	}
	fr := computeFrontier(f.ring, 0, 1, votes)
	if len(fr) != 1 || fr[0].View != 1 || fr[0].Digest != d1b {
		t.Fatalf("frontier = %+v, want slot 1 from view 1 (digest %x)", fr, d1b[:4])
	}
}

// TestFrontierRequiresChaining: a fully-signed candidate whose body does
// not chain PrevDigest onto the tip is not re-proposed — the frontier is
// always a prefix extension of certified history.
func TestFrontierRequiresChaining(t *testing.T) {
	f := newVCFixture(t)
	stray := (&protocol.Batch{Cluster: 0, ID: 1, PrevDigest: f.batches[2].Digest(), Timestamp: 9,
		CD: protocol.NewCDVector(1), LCE: -1}).Seal()
	ds := stray.Digest()
	votes := []*protocol.ViewChange{
		vcVote(1, f.header, vcEntry(0, stray, f.preps(0, 1, ds, 0, 1, 2))),
		vcVote(2, f.header, vcEntry(0, stray, f.preps(0, 1, ds, 0, 1, 2))),
		vcVote(3, f.header, vcEntry(0, stray, f.preps(0, 1, ds, 0, 1, 2))),
	}
	if fr := computeFrontier(f.ring, 0, 1, votes); len(fr) != 0 {
		t.Fatalf("frontier = %+v, want empty (candidate does not chain)", fr)
	}
}

// TestTruncateBelowBoundsEvidence: the equivocation-evidence map is
// pruned below the stable checkpoint base instead of growing for the
// replica's lifetime.
func TestTruncateBelowBoundsEvidence(t *testing.T) {
	r, _ := soloReplica(t, 4)
	for id := int64(1); id <= 10; id++ {
		r.proposedDigest[id] = protocol.Digest{byte(id)}
	}
	r.TruncateBelow(8)
	if len(r.proposedDigest) != 3 {
		t.Fatalf("proposedDigest holds %d entries after TruncateBelow(8), want 3", len(r.proposedDigest))
	}
	for id := range r.proposedDigest {
		if id < 8 {
			t.Fatalf("slot %d below the checkpoint base survived truncation", id)
		}
	}
}

// vcCluster wires four live Replicas over a zero-latency network. The
// test goroutine pumps every mailbox itself — the bft layer is
// single-threaded by contract (each node's event loop serializes Handle),
// and pumping from one goroutine preserves that.
type vcCluster struct {
	t         *testing.T
	f         *vcFixture
	net       *transport.Network
	inbox     []<-chan transport.Envelope
	reps      []*Replica
	delivered [][]int64
}

func newVCCluster(t *testing.T) *vcCluster {
	t.Helper()
	f := newVCFixture(t)
	c := &vcCluster{t: t, f: f, net: transport.NewNetwork(), delivered: make([][]int64, 4)}
	gd := f.header.Digest()
	for i := 0; i < 4; i++ {
		i := i
		id := NodeID{Cluster: 0, Replica: int32(i)}
		c.inbox = append(c.inbox, c.net.Register(id))
		c.reps = append(c.reps, New(Config{
			Cluster: 0, Replica: int32(i), N: 4, F: 1,
			Keys: f.keys[i], Ring: f.ring, Net: c.net,
			GenesisDigest: gd, GenesisHeader: f.header, GenesisCert: f.cert,
			MaxInFlight: 8,
			Deliver: func(cb protocol.CertifiedBatch) {
				c.delivered[i] = append(c.delivered[i], cb.Batch.ID)
			},
		}))
	}
	t.Cleanup(c.net.Stop)
	return c
}

// pump handles queued messages for the live replicas until cond holds.
func (c *vcCluster) pump(live []int, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		moved := false
		for _, i := range live {
			select {
			case env := <-c.inbox[i]:
				c.reps[i].Handle(env.From, env.Payload)
				moved = true
			default:
			}
		}
		if !moved {
			time.Sleep(100 * time.Microsecond)
		}
	}
	c.t.Fatal("pump: condition not reached before deadline")
}

// settle drains until the cluster has been quiet for a while.
func (c *vcCluster) settle(live []int) {
	for quiet := 0; quiet < 50; {
		moved := false
		for _, i := range live {
			select {
			case env := <-c.inbox[i]:
				c.reps[i].Handle(env.From, env.Payload)
				moved = true
			default:
			}
		}
		if moved {
			quiet = 0
		} else {
			quiet++
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// TestViewChangeElectsNextLeader: with the view-0 leader dark, the three
// survivors vote, install view 1 led by replica 1, and commit a batch —
// the core liveness claim of the failover path.
func TestViewChangeElectsNextLeader(t *testing.T) {
	c := newVCCluster(t)
	live := []int{1, 2, 3}
	for _, i := range live {
		c.reps[i].SuspectLeader()
	}
	c.pump(live, func() bool {
		for _, i := range live {
			if c.reps[i].CurrentView() != 1 || !c.reps[i].ViewActive() {
				return false
			}
		}
		return true
	})
	if !c.reps[1].CanPropose() {
		t.Fatal("replica 1 should lead view 1")
	}
	if c.reps[2].CanPropose() || c.reps[3].CanPropose() {
		t.Fatal("only the view-1 leader may propose")
	}
	if got, want := c.reps[2].LeaderID(), (NodeID{Cluster: 0, Replica: 1}); got != want {
		t.Fatalf("LeaderID = %v, want %v", got, want)
	}

	b := &protocol.Batch{Cluster: 0, ID: c.reps[1].NextID(), PrevDigest: c.reps[1].LastDigest(),
		Timestamp: 1, CD: protocol.NewCDVector(1), LCE: -1}
	if err := c.reps[1].Propose(b); err != nil {
		t.Fatalf("new leader propose: %v", err)
	}
	c.pump(live, func() bool {
		for _, i := range live {
			if len(c.delivered[i]) == 0 {
				return false
			}
		}
		return true
	})
	for _, i := range live {
		if c.delivered[i][0] != b.ID {
			t.Fatalf("replica %d delivered %v, want [%d]", i, c.delivered[i], b.ID)
		}
	}
}

// TestSingleSuspectDoesNotMoveCluster: PBFT's f+1 join rule — one faulty
// timer (or one byzantine suspecter) cannot drag the cluster through a
// view change.
func TestSingleSuspectDoesNotMoveCluster(t *testing.T) {
	c := newVCCluster(t)
	live := []int{0, 1, 2, 3}
	c.reps[3].SuspectLeader()
	c.settle(live)
	for _, i := range []int{0, 1, 2} {
		if c.reps[i].CurrentView() != 0 || !c.reps[i].ViewActive() {
			t.Fatalf("replica %d left view 0 on a single suspect vote", i)
		}
	}
	if !c.reps[0].CanPropose() {
		t.Fatal("view-0 leader lost proposal rights to a single suspect vote")
	}
}

// TestJoinRuleConverges: once f+1 replicas suspect, everyone (including
// the deposed leader) joins and the cluster installs the next view.
func TestJoinRuleConverges(t *testing.T) {
	c := newVCCluster(t)
	live := []int{0, 1, 2, 3}
	c.reps[2].SuspectLeader()
	c.reps[3].SuspectLeader()
	c.pump(live, func() bool {
		for _, i := range live {
			if c.reps[i].CurrentView() != 1 || !c.reps[i].ViewActive() {
				return false
			}
		}
		return true
	})
	if !c.reps[1].IsLeader() || c.reps[0].IsLeader() {
		t.Fatal("view 1 must be led by replica 1")
	}
}
