// Package bft implements the intra-cluster BFT state-machine replication
// service that TransEdge layers its batches on (the paper uses
// BFT-SMaRt [13]; this is an equivalent PBFT-style SMR substrate).
//
// Each cluster of n = 3f+1 replicas orders batches in sequence-numbered
// slots. A leader may keep up to MaxInFlight proposals outstanding
// between Propose and delivery (MaxInFlight = 1 reproduces the paper's
// "a leader writes a batch only if the previous batch is already
// written"); delivery is always in strict slot order, so the application
// observes the same one-batch-at-a-time log either way. The flow per
// batch is:
//
//	leader        --PrePrepare(batch)-->  all replicas
//	each replica  --Prepare(digest)--->   all replicas   (after validating)
//	each replica  --Commit(digest,sig)->  all replicas   (after 2f+1 Prepares)
//	deliver when 2f+1 valid Commits are held
//
// The Commit message carries the replica's signature over the batch-header
// digest; any 2f+1 commit quorum therefore contains at least f+1 honest
// signatures, which the deliverer assembles into the batch certificate
// that read-only clients later verify. Replicas validate batch *content*
// (conflict rules, Merkle root recomputation) through an application
// callback before voting, so a malicious leader cannot get an inconsistent
// batch certified — the safety property the paper relies on in Sec. 3.2.
//
// Leader replacement follows PBFT's view-change protocol (the paper
// inherits this behavior from BFT-SMaRt): views number the leadership
// epochs, the leader of view v is replica v mod n, and when the enclosing
// node's progress timer suspects the leader it calls SuspectLeader to
// vote the cluster into the next view. The vote carries the replica's
// certified tip and its prepared-but-undelivered frontier; 2f+1 votes
// form a NewView certificate from which every replica independently
// recomputes the slots that must be re-proposed — see viewchange.go and
// DESIGN.md §7 for the machinery and the safety argument.
//
// The Replica type is passive: it owns no goroutine and no timer. The
// enclosing node's event loop feeds it messages via Handle and drives
// suspicion from its own tick, keeping each replica single-threaded and
// deterministic.
package bft

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// NodeID aliases the system-wide node identity.
type NodeID = cryptoutil.NodeID

// Behavior configures fault injection for byzantine testing.
type Behavior struct {
	// Silent drops all outbound consensus messages (crash/byzantine-mute).
	Silent bool
	// Equivocate makes a byzantine leader send a different batch to every
	// replica.
	Equivocate bool
	// CorruptCertSig makes the replica emit garbage certificate
	// signatures in its Commit messages.
	CorruptCertSig bool
	// TamperBatch makes a byzantine leader flip a committed decision in
	// the proposed batch after computing honest segments elsewhere; used
	// to show content validation rejects it.
	TamperBatch func(*protocol.Batch)
}

// Config assembles a replica of one cluster's SMR service.
type Config struct {
	Cluster  int32
	Replica  int32
	N        int // cluster size, 3f+1
	F        int // tolerated byzantine faults
	Keys     cryptoutil.KeyPair
	Ring     *cryptoutil.KeyRing
	Net      *transport.Network
	Behavior Behavior
	// GenesisDigest chains the first proposed batch to the trusted
	// genesis batch (the initial data load).
	GenesisDigest protocol.Digest
	// GenesisHeader and GenesisCert seed the certified tip carried in
	// view-change votes before anything has been delivered. Optional when
	// view changes are never triggered (pure unit-test configs).
	GenesisHeader protocol.BatchHeader
	GenesisCert   cryptoutil.Certificate

	// Rebase, when set, is invoked after a new view is installed, before
	// the re-proposed frontier enters consensus: the enclosing node drops
	// or re-bases its speculative pipeline onto the frontier batches and
	// re-routes client traffic to the new leader.
	Rebase func(view uint64, frontier []*protocol.Batch)

	// MaxInFlight bounds how many proposals the leader may have between
	// Propose and delivery. Values <= 1 give the classic stop-and-wait
	// pipeline; larger values let the leader chain speculative batches
	// while predecessors are still in consensus.
	MaxInFlight int

	// BufferAhead bounds how far beyond nextDeliver a message's sequence
	// number may run before it is dropped instead of buffered (0 selects
	// 2*MaxInFlight+2; negative disables the bound entirely). The
	// enclosing node disables it when checkpointing is off — without
	// state transfer, dropped messages could never be recovered, so
	// unbounded buffering is the only way a slow replica catches up.
	BufferAhead int

	// Validate inspects a proposed batch before the replica votes for it.
	// It runs exactly once per batch ID, in log order, but ahead of
	// delivery: slot k+1 is validated as soon as slot k has been
	// validated, so the consensus phases of pipelined slots overlap.
	// Returning an error withholds the replica's Prepare vote.
	Validate func(*protocol.Batch) error
	// Deliver receives certified batches in strict log order.
	Deliver func(protocol.CertifiedBatch)
}

// Message types exchanged within a cluster.

// PrePrepare is the leader's proposal of the next batch in its view.
type PrePrepare struct {
	View      uint64
	Batch     *protocol.Batch
	LeaderSig []byte // leader's signature over the batch digest
}

// Prepare is a replica's vote that it accepts the proposal. Sig signs
// protocol.PrepareSigDigest(cluster, View, ID, Digest) and is verified on
// receipt, so any 2f+1 counted prepares are a transferable prepare
// certificate — the evidence view-change votes carry.
type Prepare struct {
	View   uint64
	ID     int64
	Digest protocol.Digest
	Sig    []byte
}

// Commit is a replica's second-phase vote; CertSig is its certificate
// signature over the batch-header digest. CertSig deliberately does NOT
// cover View: a slot re-proposed with identical content after a view
// change assembles its delivery certificate from commit votes cast in
// any view, which is what lets delivery straddle a failover.
type Commit struct {
	View    uint64 // informational: the sender's view when it committed
	ID      int64
	Digest  protocol.Digest
	CertSig []byte
}

// prepVote is one replica's verified prepare for a slot: the digest it
// voted for, the view it voted in, and its signature over
// PrepareSigDigest — kept so a view-change vote can relay it.
type prepVote struct {
	view   uint64
	digest protocol.Digest
	sig    []byte
}

// instance tracks one batch's consensus progress.
type instance struct {
	id        int64
	view      uint64 // view this replica validated (or adopted) the slot in
	batch     *protocol.Batch
	digest    protocol.Digest
	validated bool // Validate ran and passed; Prepare sent
	committed bool // Commit sent
	delivered bool
	prepares  map[int32]prepVote // replica -> newest-view verified prepare
	commits   map[int32][]byte   // replica -> valid cert sig (digest-matched)
	// pendingCommits buffers commit votes that arrived before this
	// replica validated the proposal (message interleaving makes this
	// common: peers only need 2f+1 prepares, not ours).
	pendingCommits map[int32]*Commit
}

// Replica is one cluster member's consensus engine.
type Replica struct {
	cfg          Config
	self         NodeID
	peers        []NodeID
	nextDeliver  int64 // next batch ID to deliver
	nextValidate int64 // next batch ID to validate (runs ahead of delivery)
	nextPropose  int64 // next slot the leader may propose into
	instances    map[int64]*instance
	// pendingPrePrepare buffers proposals that arrived before their turn.
	pendingPrePrepare map[int64]*PrePrepare
	lastDigest        protocol.Digest // digest of last delivered batch
	// lastValidated chains speculative validation: the digest of the
	// newest validated slot, which the next slot's PrevDigest must match.
	lastValidated protocol.Digest

	// View-change state (viewchange.go). view is the current view; while
	// viewActive is false the replica has voted the leader out (or holds a
	// NewView it cannot install yet) and accepts no new proposals.
	view       uint64
	viewActive bool
	// votedFor is the highest view this replica has cast a ViewChange
	// vote for; it never votes the same or a lower view twice.
	votedFor uint64
	// vcVotes holds at most one verified ViewChange vote per replica (its
	// newest), keyed by target view then voter.
	vcVotes map[uint64]map[int32]*protocol.ViewChange
	// lastHeader/lastCert are the certified tip carried in view-change
	// votes: the newest delivered batch header and an f+1 certificate
	// over its digest (genesis until the first delivery).
	lastHeader protocol.BatchHeader
	lastCert   cryptoutil.Certificate
	// pendingNewView is a verified NewView this replica cannot install
	// yet because its delivery point trails the certificate's global tip;
	// retried after every delivery and after state transfer.
	pendingNewView *protocol.NewView
	// currentView mirrors view for cross-thread readers.
	currentView atomic.Uint64
	viewChanges atomic.Int64

	// Equivocation evidence: leader proposals seen per ID.
	proposedDigest map[int64]protocol.Digest
	// highestSeen is the largest sequence number observed in any
	// consensus message (including ones dropped for being beyond the
	// buffering window) — the signal the enclosing node uses to detect
	// that it has fallen behind and must state-transfer.
	highestSeen int64
	// Fault counters are atomic so tests and monitoring can read them
	// while the event loop runs.
	equivocations atomic.Int64
	rejected      atomic.Int64
	droppedAhead  atomic.Int64
}

// New creates a replica engine. Batch IDs start at 1 (batch 0 is the
// implicit genesis data load).
func New(cfg Config) *Replica {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	r := &Replica{
		cfg:               cfg,
		self:              NodeID{Cluster: cfg.Cluster, Replica: cfg.Replica},
		nextDeliver:       1,
		nextValidate:      1,
		nextPropose:       1,
		instances:         make(map[int64]*instance),
		pendingPrePrepare: make(map[int64]*PrePrepare),
		proposedDigest:    make(map[int64]protocol.Digest),
		lastDigest:        cfg.GenesisDigest,
		lastValidated:     cfg.GenesisDigest,
		viewActive:        true,
		vcVotes:           make(map[uint64]map[int32]*protocol.ViewChange),
		lastHeader:        cfg.GenesisHeader,
		lastCert:          cfg.GenesisCert,
	}
	for i := 0; i < cfg.N; i++ {
		r.peers = append(r.peers, NodeID{Cluster: cfg.Cluster, Replica: int32(i)})
	}
	return r
}

// LeaderReplica is the leader index of view 0 within each cluster (the
// round-robin rotation starts here; see leaderAt).
const LeaderReplica int32 = 0

// leaderAt returns the leader replica index for a view: round-robin over
// the cluster, view 0 led by replica 0.
func (r *Replica) leaderAt(view uint64) int32 {
	return int32(view % uint64(r.cfg.N))
}

// IsLeader reports whether this replica leads its cluster in the current
// view.
func (r *Replica) IsLeader() bool { return r.cfg.Replica == r.leaderAt(r.view) }

// CanPropose reports whether this replica may propose right now: it must
// lead the current view, the view must be active (no view change in
// progress), and no NewView may be pending installation.
func (r *Replica) CanPropose() bool {
	return r.IsLeader() && r.viewActive && r.pendingNewView == nil
}

// LeaderID returns the node identity of the current view's leader, for
// routing client and 2PC traffic.
func (r *Replica) LeaderID() NodeID {
	return NodeID{Cluster: r.cfg.Cluster, Replica: r.leaderAt(r.view)}
}

// CurrentView returns the replica's view. Safe to read from any
// goroutine (tests and monitoring poll it while the event loop runs).
func (r *Replica) CurrentView() uint64 { return r.currentView.Load() }

// ViewActive reports whether the current view is operational (false
// while a view change is in progress).
func (r *Replica) ViewActive() bool { return r.viewActive }

// ViewChanges returns how many new views this replica has installed.
func (r *Replica) ViewChanges() int { return int(r.viewChanges.Load()) }

// PendingWork reports whether the consensus layer has undelivered state
// that only leader progress (or a view change) can resolve — the signal
// the enclosing node's progress timer arms on.
func (r *Replica) PendingWork() bool {
	return !r.viewActive || len(r.instances) > 0 || len(r.pendingPrePrepare) > 0
}

// NextID returns the ID the next proposed batch must carry.
func (r *Replica) NextID() int64 { return r.nextPropose }

// InFlight returns how many proposals are between Propose and delivery.
func (r *Replica) InFlight() int { return int(r.nextPropose - r.nextDeliver) }

// LastDigest returns the digest of the last delivered batch (zero digest
// before any delivery), for chaining PrevDigest.
func (r *Replica) LastDigest() protocol.Digest { return r.lastDigest }

// Equivocations returns how many conflicting leader proposals this replica
// has detected.
func (r *Replica) Equivocations() int { return int(r.equivocations.Load()) }

// Rejected returns how many proposals failed content validation here.
func (r *Replica) Rejected() int { return int(r.rejected.Load()) }

// DroppedAhead returns how many consensus messages were dropped for
// carrying sequence numbers beyond the buffering window.
func (r *Replica) DroppedAhead() int { return int(r.droppedAhead.Load()) }

// HighestSeen returns the largest sequence number observed in any
// consensus message, including dropped ones.
func (r *Replica) HighestSeen() int64 { return r.highestSeen }

// maxAhead is how far beyond nextDeliver a message's sequence number may
// run before it is dropped instead of buffered (-1 = unbounded). An
// honest leader never proposes past its own nextDeliver + MaxInFlight;
// the extra window absorbs the skew between our delivery point and the
// quorum's (plus timer-jitter reordering in the transport). Anything
// further means we lost messages for good — buffering cannot help, only
// state transfer can — so the buffers stay bounded at O(maxAhead)
// instances.
func (r *Replica) maxAhead() int64 {
	if r.cfg.BufferAhead < 0 {
		return -1
	}
	if r.cfg.BufferAhead > 0 {
		return int64(r.cfg.BufferAhead)
	}
	return 2*int64(r.cfg.MaxInFlight) + 2
}

// observe tracks the highest sequence number seen and reports whether
// the message is within the buffering window. Out-of-window messages
// are counted and dropped by the callers. The recorded high-water mark
// is clamped a couple of windows ahead of nextDeliver: sequence numbers
// in Prepare/Commit messages are unauthenticated, so one forged huge ID
// must not pin Lagging() true forever — the clamp keeps the signal
// (beyond the window ⇒ sync) while letting it heal as delivery (or a
// settle after a futile sync) advances.
func (r *Replica) observe(id int64) bool {
	ahead := r.maxAhead()
	if ahead < 0 {
		if id > r.highestSeen {
			r.highestSeen = id
		}
		return true
	}
	if capped := min(id, r.nextDeliver+2*ahead); capped > r.highestSeen {
		r.highestSeen = capped
	}
	if id >= r.nextDeliver+ahead {
		r.droppedAhead.Add(1)
		return false
	}
	return true
}

// SettleHighestSeen lowers the observed high-water mark to tip. The
// enclosing node calls it after a state-transfer round that found
// nothing newer than tip: whatever raised the mark beyond it (a forged
// sequence number, or traffic already superseded) is not fetchable, so
// leaving it high would re-trigger sync forever. Genuine new traffic
// raises the mark again immediately.
func (r *Replica) SettleHighestSeen(tip int64) {
	if tip < r.highestSeen {
		r.highestSeen = tip
	}
}

// Lagging reports whether this replica has observed consensus traffic so
// far beyond its delivery point that it has started dropping messages —
// the condition under which only a state transfer can restore liveness.
// Never true with an unbounded buffer (nothing is ever dropped).
func (r *Replica) Lagging() bool {
	ahead := r.maxAhead()
	return ahead >= 0 && r.highestSeen >= r.nextDeliver+ahead
}

// Reset re-bases the engine after a state transfer: the log prefix up to
// base (with the given batch digest, header, and consensus certificate)
// is installed out of band, so consensus resumes at base+1 with all
// per-slot state below (and any stale buffered state) discarded. The
// enclosing node guarantees base is a certified log position; header and
// cert become the certified tip carried in view-change votes.
func (r *Replica) Reset(base int64, digest protocol.Digest, header protocol.BatchHeader, cert cryptoutil.Certificate) {
	r.nextDeliver = base + 1
	r.nextValidate = base + 1
	r.nextPropose = base + 1
	r.lastDigest = digest
	r.lastValidated = digest
	r.lastHeader = header
	r.lastCert = cert
	r.instances = make(map[int64]*instance)
	r.pendingPrePrepare = make(map[int64]*PrePrepare)
	r.proposedDigest = make(map[int64]protocol.Digest)
	// Observations from before the reset describe slots the transfer
	// already covered (or forged numbers); discard them with the rest of
	// the stale state so Lagging() reflects post-reset traffic only.
	r.highestSeen = base
	// A NewView that was waiting for this replica to catch up may be
	// installable now that the transfer advanced the delivery point.
	if nv := r.pendingNewView; nv != nil {
		r.adoptNewView(nv)
	}
}

// TruncateBelow discards per-slot bookkeeping for slots below base (the
// cluster's stable checkpoint): equivocation evidence in proposedDigest
// and any stale buffered proposals or instances. Without this the
// evidence map grows for the life of the replica — slots that were
// proposed but never delivered (an equivocating leader's leftovers) were
// never cleaned up.
func (r *Replica) TruncateBelow(base int64) {
	for id := range r.proposedDigest {
		if id < base {
			delete(r.proposedDigest, id)
		}
	}
	for id := range r.pendingPrePrepare {
		if id < base {
			delete(r.pendingPrePrepare, id)
		}
	}
	for id := range r.instances {
		if id < base {
			delete(r.instances, id)
		}
	}
}

// Errors.
var (
	ErrNotLeader    = errors.New("bft: propose called on non-leader")
	ErrViewChanging = errors.New("bft: view change in progress")
	ErrBadBatchID   = errors.New("bft: proposed batch has wrong ID")
	ErrPipelineFull = errors.New("bft: MaxInFlight proposals already outstanding")
)

// Propose starts consensus on the next free slot. Only the current
// view's leader calls this; up to MaxInFlight proposals may be
// outstanding at once, and the batch must carry the next sequence number
// (NextID).
func (r *Replica) Propose(b *protocol.Batch) error {
	if !r.IsLeader() {
		return ErrNotLeader
	}
	if !r.CanPropose() {
		return ErrViewChanging
	}
	if b.ID != r.nextPropose {
		return fmt.Errorf("%w: got %d, want %d", ErrBadBatchID, b.ID, r.nextPropose)
	}
	if b.ID >= r.nextDeliver+int64(r.cfg.MaxInFlight) {
		return fmt.Errorf("%w: %d in flight", ErrPipelineFull, r.InFlight())
	}
	r.nextPropose = b.ID + 1
	if r.cfg.Behavior.TamperBatch != nil {
		// Mutating a proposal must never happen behind a sealed batch's
		// cached digest: the caller (the leader's core) may hold the
		// original in its speculative chain. Tampering therefore works on
		// a memo-detached copy; the injected function must copy any
		// segment slice it mutates (see DESIGN.md, "Digest memoization").
		b = b.MutableCopy()
		r.cfg.Behavior.TamperBatch(b)
	}
	if r.cfg.Behavior.Equivocate {
		// Byzantine leader: different content per replica.
		for i, peer := range r.peers {
			forged := b.MutableCopy()
			forged.Timestamp = b.Timestamp + int64(i)
			forged.Seal()
			d := forged.Digest()
			r.send(peer, &PrePrepare{View: r.view, Batch: forged, LeaderSig: r.cfg.Keys.Sign(d[:])})
		}
		return nil
	}
	// Seal before broadcast: the digest computed here for the leader's
	// signature is the one every replica (and the leader's own validation
	// and delivery steps) will reuse.
	b.Seal()
	d := b.Digest()
	pp := &PrePrepare{View: r.view, Batch: b, LeaderSig: r.cfg.Keys.Sign(d[:])}
	r.broadcast(pp)
	return nil
}

func (r *Replica) send(to NodeID, msg any) {
	if r.cfg.Behavior.Silent {
		return
	}
	r.cfg.Net.Send(r.self, to, msg)
}

func (r *Replica) broadcast(msg any) {
	if r.cfg.Behavior.Silent {
		return
	}
	// One envelope build and one network-lock acquisition for the whole
	// fan-out, instead of per peer.
	r.cfg.Net.Broadcast(r.self, r.peers, msg)
}

// Handle processes one consensus message. It returns true if the message
// was a consensus message (consumed), false if the payload is not for this
// layer.
func (r *Replica) Handle(from NodeID, payload any) bool {
	switch m := payload.(type) {
	case *PrePrepare:
		r.onPrePrepare(from, m)
	case *Prepare:
		r.onPrepare(from, m)
	case *Commit:
		r.onCommit(from, m)
	case *protocol.ViewChange:
		r.onViewChange(from, m)
	case *protocol.NewView:
		r.onNewView(from, m)
	default:
		return false
	}
	return true
}

func (r *Replica) inst(id int64) *instance {
	in, ok := r.instances[id]
	if !ok {
		in = &instance{
			id:             id,
			prepares:       make(map[int32]prepVote),
			commits:        make(map[int32][]byte),
			pendingCommits: make(map[int32]*Commit),
		}
		r.instances[id] = in
	}
	return in
}

func (r *Replica) onPrePrepare(from NodeID, m *PrePrepare) {
	if from.Cluster != r.cfg.Cluster || from.Replica != r.leaderAt(m.View) {
		return // only the view's leader proposes
	}
	if m.View != r.view || !r.viewActive {
		// Stale-view proposals are dead; future-view proposals mean we
		// missed a NewView — the Lagging/state-transfer path (which also
		// carries the cluster's view) catches us up.
		return
	}
	b := m.Batch
	if b == nil || b.Cluster != r.cfg.Cluster || b.ID < r.nextDeliver {
		return
	}
	if !r.observe(b.ID) {
		return // beyond the buffering window; state transfer catches us up
	}
	d := b.Digest()
	if !cryptoutil.Verify(r.cfg.Ring.PublicKey(from), d[:], m.LeaderSig) {
		return // forged proposal
	}
	if prev, ok := r.proposedDigest[b.ID]; ok && prev != d {
		// Leader equivocation: conflicting proposals for the same slot.
		r.equivocations.Add(1)
		return
	}
	r.proposedDigest[b.ID] = d

	if b.ID > r.nextValidate {
		r.pendingPrePrepare[b.ID] = m
		return
	}
	r.startInstance(m)
}

// startInstance validates the proposal for the next slot of the
// validation chain and votes. Validation runs ahead of delivery: the slot
// must chain off the newest validated proposal, not the newest delivered
// one, so a pipelining leader's slots all enter their Prepare phase
// without waiting for predecessors to commit.
func (r *Replica) startInstance(m *PrePrepare) {
	b := m.Batch
	in := r.inst(b.ID)
	if in.validated || in.delivered || b.ID != r.nextValidate {
		return
	}
	if b.PrevDigest != r.lastValidated {
		r.rejected.Add(1)
		return // does not extend our (speculative) log
	}
	if r.cfg.Validate != nil {
		if err := r.cfg.Validate(b); err != nil {
			r.rejected.Add(1)
			return // withhold vote; malicious content dies here
		}
	}
	in.batch = b
	in.digest = b.Digest()
	in.view = r.view
	in.validated = true
	r.lastValidated = in.digest
	r.nextValidate = b.ID + 1
	r.broadcastPrepare(in)
	r.replayPendingCommits(in)
	r.maybeCommit(in)
	r.maybeDeliver(in)
	// A buffered proposal for the next slot can be validated right away.
	if pp, ok := r.pendingPrePrepare[r.nextValidate]; ok {
		delete(r.pendingPrePrepare, r.nextValidate)
		r.startInstance(pp)
	}
}

// replayPendingCommits re-checks commit votes that arrived before this
// replica validated the proposal. Pipelined slots make these bursts
// common — peers race whole consensus phases ahead — so the buffered
// votes' certificate signatures are verified concurrently (they are
// independent Ed25519 checks) before the results are applied serially.
func (r *Replica) replayPendingCommits(in *instance) {
	if len(in.pendingCommits) == 0 {
		return
	}
	reps := make([]int32, 0, len(in.pendingCommits))
	checks := make([]cryptoutil.SigCheck, 0, len(in.pendingCommits))
	for rep, c := range in.pendingCommits {
		delete(in.pendingCommits, rep)
		pub, ok := r.vetCommit(in, NodeID{Cluster: r.cfg.Cluster, Replica: rep}, c)
		if !ok {
			continue
		}
		reps = append(reps, rep)
		checks = append(checks, cryptoutil.SigCheck{Pub: pub, Msg: c.Digest[:], Sig: c.CertSig})
	}
	for i, ok := range cryptoutil.VerifyEach(checks) {
		if ok {
			in.commits[reps[i]] = checks[i].Sig
		}
	}
}

// vetCommit runs the cheap acceptance checks shared by the direct and
// buffered-replay commit paths — digest match and signer lookup —
// returning the key for the (expensive) signature verification each path
// schedules its own way.
func (r *Replica) vetCommit(in *instance, from NodeID, m *Commit) (ed25519.PublicKey, bool) {
	if m.Digest != in.digest {
		return nil, false
	}
	pub := r.cfg.Ring.PublicKey(from)
	if pub == nil {
		return nil, false
	}
	return pub, true
}

// broadcastPrepare signs and sends this replica's prepare for the
// instance in its adopted view.
func (r *Replica) broadcastPrepare(in *instance) {
	psd := protocol.PrepareSigDigest(r.cfg.Cluster, in.view, in.id, in.digest)
	r.broadcast(&Prepare{View: in.view, ID: in.id, Digest: in.digest, Sig: r.cfg.Keys.Sign(psd[:])})
}

func (r *Replica) onPrepare(from NodeID, m *Prepare) {
	if from.Cluster != r.cfg.Cluster || m.ID < r.nextDeliver {
		return
	}
	if !r.observe(m.ID) {
		return
	}
	in := r.inst(m.ID)
	if prev, ok := in.prepares[from.Replica]; ok && prev.view >= m.View {
		return // keep each replica's newest-view prepare only
	}
	// Verify eagerly against the prepare's own claimed (view, id, digest):
	// commit quorums are counted from these votes, and the safety of the
	// view-change frontier (DESIGN §7) rests on every counted prepare
	// being a relayable signature. A byzantine replica that attached
	// garbage here must not count toward prepared-ness.
	psd := protocol.PrepareSigDigest(r.cfg.Cluster, m.View, m.ID, m.Digest)
	pub := r.cfg.Ring.PublicKey(from)
	if pub == nil || !cryptoutil.Verify(pub, psd[:], m.Sig) {
		return
	}
	in.prepares[from.Replica] = prepVote{view: m.View, digest: m.Digest, sig: m.Sig}
	r.maybeCommit(in)
}

// maybeCommit sends the Commit vote once 2f+1 matching Prepares are held
// for the digest this replica validated, in the view it validated it.
// The per-view match is what makes "prepared" transferable: any replica
// holding a commit quorum member's evidence holds 2f+1 signatures over
// one (view, id, digest) triple.
func (r *Replica) maybeCommit(in *instance) {
	if !in.validated || in.committed {
		return
	}
	quorum := 2*r.cfg.F + 1
	matching := 0
	for _, pv := range in.prepares {
		if pv.digest == in.digest && pv.view == in.view {
			matching++
		}
	}
	if matching < quorum {
		return
	}
	in.committed = true
	sig := r.cfg.Keys.Sign(in.digest[:])
	if r.cfg.Behavior.CorruptCertSig {
		sig = make([]byte, len(sig)) // zeroed garbage
	}
	r.broadcast(&Commit{View: in.view, ID: in.id, Digest: in.digest, CertSig: sig})
}

func (r *Replica) onCommit(from NodeID, m *Commit) {
	if from.Cluster != r.cfg.Cluster || m.ID < r.nextDeliver {
		return
	}
	if !r.observe(m.ID) {
		return
	}
	in := r.inst(m.ID)
	if _, dup := in.commits[from.Replica]; dup {
		return
	}
	if !in.validated {
		// Cannot check the digest yet; hold until validation.
		if _, dup := in.pendingCommits[from.Replica]; !dup {
			in.pendingCommits[from.Replica] = m
		}
		return
	}
	r.acceptCommit(in, from, m)
	r.maybeDeliver(in)
}

// acceptCommit records a commit vote after digest and signature checks.
// Only votes whose certificate signature actually verifies are counted —
// corrupt signatures must never reach the assembled certificate.
func (r *Replica) acceptCommit(in *instance, from NodeID, m *Commit) {
	pub, ok := r.vetCommit(in, from, m)
	if !ok || !cryptoutil.Verify(pub, m.Digest[:], m.CertSig) {
		return
	}
	in.commits[from.Replica] = m.CertSig
}

// maybeDeliver delivers the instance once it holds a 2f+1 commit quorum,
// assembling the f+1-signature certificate from the verified commit
// signatures. Delivery is strictly in ID order.
func (r *Replica) maybeDeliver(in *instance) {
	if in.delivered || !in.validated || in.id != r.nextDeliver {
		return
	}
	quorum := 2*r.cfg.F + 1
	if len(in.commits) < quorum {
		return
	}
	in.delivered = true

	// Deterministic certificate: lowest replica indices first.
	replicas := make([]int32, 0, len(in.commits))
	for rep := range in.commits {
		replicas = append(replicas, rep)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	cert := cryptoutil.Certificate{Cluster: r.cfg.Cluster}
	for _, rep := range replicas[:r.cfg.F+1] {
		cert.Signatures = append(cert.Signatures, cryptoutil.Signature{
			Signer: NodeID{Cluster: r.cfg.Cluster, Replica: rep},
			Sig:    in.commits[rep],
		})
	}

	r.lastDigest = in.digest
	r.lastHeader = in.batch.Header()
	r.lastCert = cert
	r.nextDeliver = in.id + 1
	delete(r.instances, in.id)
	delete(r.proposedDigest, in.id)

	if r.cfg.Deliver != nil {
		r.cfg.Deliver(protocol.CertifiedBatch{Batch: in.batch, Cert: cert})
	}

	// A pipelined successor may already hold its commit quorum; deliver it
	// now that it is next in line.
	if next, ok := r.instances[r.nextDeliver]; ok {
		r.maybeDeliver(next)
	}

	// A NewView that was waiting on our delivery point may be installable
	// now (it clears pendingNewView before touching instances, so the
	// recursion above cannot re-enter it).
	if nv := r.pendingNewView; nv != nil {
		r.adoptNewView(nv)
	}
}
