package bft

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// testCluster runs n replica engines, each on its own event-loop
// goroutine, and records deliveries per replica.
type testCluster struct {
	t        *testing.T
	net      *transport.Network
	ring     *cryptoutil.KeyRing
	replicas []*Replica
	n, f     int

	mu        sync.Mutex
	delivered map[int32][]protocol.CertifiedBatch
	notify    chan struct{}
	stop      []chan struct{}
	wg        sync.WaitGroup
}

type clusterOpt func(i int32, cfg *Config)

func withBehavior(replica int32, b Behavior) clusterOpt {
	return func(i int32, cfg *Config) {
		if i == replica {
			cfg.Behavior = b
		}
	}
}

func withValidate(f func(*protocol.Batch) error) clusterOpt {
	return func(i int32, cfg *Config) { cfg.Validate = f }
}

func newTestCluster(t *testing.T, f int, opts ...clusterOpt) *testCluster {
	t.Helper()
	n := 3*f + 1
	tc := &testCluster{
		t:         t,
		net:       transport.NewNetwork(),
		ring:      cryptoutil.NewKeyRing(),
		n:         n,
		f:         f,
		delivered: make(map[int32][]protocol.CertifiedBatch),
		notify:    make(chan struct{}, 1024),
	}
	keys := make([]cryptoutil.KeyPair, n)
	for i := 0; i < n; i++ {
		id := NodeID{Cluster: 0, Replica: int32(i)}
		keys[i] = cryptoutil.DeriveKeyPair(id, 77)
		tc.ring.Add(id, keys[i].Public)
	}
	for i := 0; i < n; i++ {
		i := int32(i)
		cfg := Config{
			Cluster: 0, Replica: i, N: n, F: f,
			Keys: keys[i], Ring: tc.ring, Net: tc.net,
			Deliver: func(cb protocol.CertifiedBatch) {
				tc.mu.Lock()
				tc.delivered[i] = append(tc.delivered[i], cb)
				tc.mu.Unlock()
				select {
				case tc.notify <- struct{}{}:
				default:
				}
			},
		}
		for _, o := range opts {
			o(i, &cfg)
		}
		r := New(cfg)
		tc.replicas = append(tc.replicas, r)

		inbox := tc.net.Register(NodeID{Cluster: 0, Replica: i})
		stop := make(chan struct{})
		tc.stop = append(tc.stop, stop)
		tc.wg.Add(1)
		go func(r *Replica, inbox <-chan transport.Envelope, stop chan struct{}) {
			defer tc.wg.Done()
			for {
				select {
				case env, ok := <-inbox:
					if !ok {
						return
					}
					r.Handle(env.From, env.Payload)
				case <-stop:
					return
				}
			}
		}(r, inbox, stop)
	}
	t.Cleanup(func() {
		for _, s := range tc.stop {
			close(s)
		}
		tc.net.Stop()
		tc.wg.Wait()
	})
	return tc
}

func (tc *testCluster) deliveredCount(replica int32) int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.delivered[replica])
}

// waitDelivered waits until every replica in want has delivered at least
// count batches, or fails after the timeout.
func (tc *testCluster) waitDelivered(count int, replicas []int32, timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		done := true
		for _, r := range replicas {
			if tc.deliveredCount(r) < count {
				done = false
				break
			}
		}
		if done {
			return true
		}
		select {
		case <-tc.notify:
		case <-deadline:
			return false
		}
	}
}

func testBatch(id int64, prev protocol.Digest) *protocol.Batch {
	return &protocol.Batch{
		Cluster:    0,
		ID:         id,
		PrevDigest: prev,
		Timestamp:  time.Now().UnixNano(),
		Local: []protocol.Transaction{{
			ID:     protocol.MakeTxnID(1, uint32(id)),
			Writes: []protocol.WriteOp{{Key: "k", Value: []byte(fmt.Sprintf("v%d", id))}},
		}},
		CD:  protocol.NewCDVector(1),
		LCE: -1,
	}
}

func allReplicas(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// propose runs the leader's Propose on the leader's event-loop context.
// The test harness is the only writer to replica 0 before the proposal, so
// direct invocation is race-free here; real nodes call Propose from their
// own event loop.
func (tc *testCluster) propose(b *protocol.Batch) error {
	return tc.replicas[0].Propose(b)
}

func TestConsensusCommitsOneBatch(t *testing.T) {
	tc := newTestCluster(t, 1)
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	if !tc.waitDelivered(1, allReplicas(4), 5*time.Second) {
		t.Fatal("batch not delivered at all replicas")
	}
	// Certificates must verify with f+1 threshold at every replica.
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var wantDigest protocol.Digest
	for r := int32(0); r < 4; r++ {
		cb := tc.delivered[r][0]
		d := cb.Batch.Digest()
		if r == 0 {
			wantDigest = d
		} else if d != wantDigest {
			t.Fatalf("replica %d delivered a different batch", r)
		}
		if err := cryptoutil.VerifyCertificate(tc.ring, cb.Cert, d[:], tc.f+1); err != nil {
			t.Fatalf("replica %d certificate invalid: %v", r, err)
		}
	}
}

func TestConsensusSequentialBatchesChain(t *testing.T) {
	tc := newTestCluster(t, 1)
	prev := protocol.Digest{}
	for i := int64(1); i <= 5; i++ {
		b := testBatch(i, prev)
		if err := tc.propose(b); err != nil {
			t.Fatal(err)
		}
		if !tc.waitDelivered(int(i), []int32{0}, 5*time.Second) {
			t.Fatalf("batch %d not delivered at leader", i)
		}
		prev = b.Digest()
	}
	if !tc.waitDelivered(5, allReplicas(4), 5*time.Second) {
		t.Fatal("followers did not deliver all batches")
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for r := int32(0); r < 4; r++ {
		for i := 1; i < 5; i++ {
			prevDigest := tc.delivered[r][i-1].Batch.Digest()
			if tc.delivered[r][i].Batch.PrevDigest != prevDigest {
				t.Fatalf("replica %d: batch %d does not chain", r, i+1)
			}
		}
	}
}

func TestProposeWrongIDRejected(t *testing.T) {
	tc := newTestCluster(t, 1)
	if err := tc.propose(testBatch(7, protocol.Digest{})); !errors.Is(err, ErrBadBatchID) {
		t.Fatalf("err = %v, want ErrBadBatchID", err)
	}
}

func TestNonLeaderCannotPropose(t *testing.T) {
	tc := newTestCluster(t, 1)
	if err := tc.replicas[1].Propose(testBatch(1, protocol.Digest{})); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
}

func TestToleratesSilentFollower(t *testing.T) {
	tc := newTestCluster(t, 1, withBehavior(3, Behavior{Silent: true}))
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	// The three honest replicas (incl. leader) form a 2f+1 quorum.
	if !tc.waitDelivered(1, []int32{0, 1, 2}, 5*time.Second) {
		t.Fatal("cluster did not survive one silent replica")
	}
}

func TestToleratesFSilentFollowersAtF2(t *testing.T) {
	tc := newTestCluster(t, 2,
		withBehavior(5, Behavior{Silent: true}),
		withBehavior(6, Behavior{Silent: true}))
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	if !tc.waitDelivered(1, []int32{0, 1, 2, 3, 4}, 5*time.Second) {
		t.Fatal("cluster did not survive f=2 silent replicas")
	}
}

func TestEquivocatingLeaderCannotCommit(t *testing.T) {
	tc := newTestCluster(t, 1, withBehavior(0, Behavior{Equivocate: true}))
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	// No replica can gather 2f+1 matching prepares for any digest, so no
	// batch is ever delivered: safety holds, liveness stalls (view change
	// would recover in a full deployment).
	time.Sleep(300 * time.Millisecond)
	for r := int32(0); r < 4; r++ {
		if tc.deliveredCount(r) != 0 {
			t.Fatalf("replica %d delivered under equivocation", r)
		}
	}
}

func TestCorruptCertSigExcludedFromCertificate(t *testing.T) {
	tc := newTestCluster(t, 1, withBehavior(2, Behavior{CorruptCertSig: true}))
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	if !tc.waitDelivered(1, []int32{0, 1, 3}, 5*time.Second) {
		t.Fatal("cluster stalled with one corrupt-signature replica")
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, r := range []int32{0, 1, 3} {
		cb := tc.delivered[r][0]
		d := cb.Batch.Digest()
		if err := cryptoutil.VerifyCertificate(tc.ring, cb.Cert, d[:], tc.f+1); err != nil {
			t.Fatalf("replica %d assembled an invalid certificate: %v", r, err)
		}
		for _, s := range cb.Cert.Signatures {
			if s.Signer.Replica == 2 {
				t.Fatal("corrupt signature included in certificate")
			}
		}
	}
}

func TestContentValidationBlocksMaliciousLeader(t *testing.T) {
	reject := func(b *protocol.Batch) error {
		for _, txn := range b.Local {
			for _, w := range txn.Writes {
				if string(w.Value) == "evil" {
					return errors.New("invalid write")
				}
			}
		}
		return nil
	}
	// Tamper functions receive a memo-detached shallow copy and must
	// copy any segment slice they mutate: the original batch may sit in
	// the leader core's speculative chain behind its cached digest.
	tamper := func(b *protocol.Batch) {
		local := append([]protocol.Transaction(nil), b.Local...)
		writes := append([]protocol.WriteOp(nil), local[0].Writes...)
		writes[0].Value = []byte("evil")
		local[0].Writes = writes
		b.Local = local
	}
	tc := newTestCluster(t, 1, withValidate(reject), withBehavior(0, Behavior{TamperBatch: tamper}))
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	for r := int32(0); r < 4; r++ {
		if tc.deliveredCount(r) != 0 {
			t.Fatalf("replica %d committed a batch that fails validation", r)
		}
	}
	// Followers must have recorded the rejection.
	total := 0
	for _, r := range tc.replicas[1:] {
		total += r.Rejected()
	}
	if total == 0 {
		t.Fatal("no replica recorded a validation rejection")
	}
}

func TestForgedPrePrepareIgnored(t *testing.T) {
	tc := newTestCluster(t, 1)
	// A non-leader replica forges a proposal; followers must ignore it
	// because proposals are only accepted from the leader identity.
	b := testBatch(1, protocol.Digest{})
	d := b.Digest()
	forged := &PrePrepare{Batch: b, LeaderSig: make([]byte, 64)}
	tc.net.Send(NodeID{Cluster: 0, Replica: 2}, NodeID{Cluster: 0, Replica: 1}, forged)
	// Also from the leader's identity but with a bad signature: the
	// envelope From can't be forged in-process, so emulate a corrupted
	// leader signature instead.
	tc.net.Send(NodeID{Cluster: 0, Replica: 0}, NodeID{Cluster: 0, Replica: 1}, &PrePrepare{Batch: b, LeaderSig: make([]byte, 64)})
	_ = d
	time.Sleep(200 * time.Millisecond)
	if tc.deliveredCount(1) != 0 {
		t.Fatal("forged proposal progressed")
	}
}

func TestWithLatencyStillCommits(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.net.SetLatency(transport.ClusterLatency(2*time.Millisecond, 10*time.Millisecond))
	prev := protocol.Digest{}
	for i := int64(1); i <= 3; i++ {
		b := testBatch(i, prev)
		if err := tc.propose(b); err != nil {
			t.Fatal(err)
		}
		if !tc.waitDelivered(int(i), allReplicas(4), 10*time.Second) {
			t.Fatalf("batch %d not delivered under latency", i)
		}
		prev = b.Digest()
	}
}

// TestProposeWindow exercises the slot-window logic on a standalone
// replica engine (no event loops): up to MaxInFlight proposals are
// accepted back-to-back, the next one is refused, and sequence numbers
// must be consecutive.
func TestProposeWindow(t *testing.T) {
	ring := cryptoutil.NewKeyRing()
	id := NodeID{Cluster: 0, Replica: 0}
	kp := cryptoutil.DeriveKeyPair(id, 5)
	ring.Add(id, kp.Public)
	r := New(Config{
		Cluster: 0, Replica: 0, N: 4, F: 1,
		Keys: kp, Ring: ring, Net: transport.NewNetwork(),
		MaxInFlight: 3,
	})

	prev := protocol.Digest{}
	for i := int64(1); i <= 3; i++ {
		b := testBatch(i, prev)
		if err := r.Propose(b); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		prev = b.Digest()
	}
	if got := r.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	if err := r.Propose(testBatch(4, prev)); !errors.Is(err, ErrPipelineFull) {
		t.Fatalf("err = %v, want ErrPipelineFull", err)
	}
	if err := r.Propose(testBatch(7, prev)); !errors.Is(err, ErrBadBatchID) {
		t.Fatalf("err = %v, want ErrBadBatchID", err)
	}
}

// TestPipelinedProposalsDeliverInOrder proposes MaxInFlight batches
// back-to-back — without waiting for any delivery — and checks every
// replica delivers all of them, in order, properly chained and
// certified.
func TestPipelinedProposalsDeliverInOrder(t *testing.T) {
	tc := newTestCluster(t, 1, func(i int32, cfg *Config) { cfg.MaxInFlight = 3 })
	tc.net.SetLatency(transport.ClusterLatency(2*time.Millisecond, 0))

	prev := protocol.Digest{}
	batches := make([]*protocol.Batch, 0, 3)
	for i := int64(1); i <= 3; i++ {
		b := testBatch(i, prev)
		if err := tc.propose(b); err != nil {
			t.Fatalf("pipelined propose %d: %v", i, err)
		}
		prev = b.Digest()
		batches = append(batches, b)
	}

	if !tc.waitDelivered(3, allReplicas(4), 10*time.Second) {
		t.Fatal("pipelined batches not delivered at all replicas")
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for r := int32(0); r < 4; r++ {
		for i := 0; i < 3; i++ {
			cb := tc.delivered[r][i]
			if cb.Batch.ID != int64(i+1) {
				t.Fatalf("replica %d delivered ID %d at position %d", r, cb.Batch.ID, i)
			}
			if cb.Batch.Digest() != batches[i].Digest() {
				t.Fatalf("replica %d: batch %d content differs from proposal", r, i+1)
			}
			if i > 0 && cb.Batch.PrevDigest != tc.delivered[r][i-1].Batch.Digest() {
				t.Fatalf("replica %d: batch %d does not chain", r, i+1)
			}
			d := cb.Batch.Digest()
			if err := cryptoutil.VerifyCertificate(tc.ring, cb.Cert, d[:], tc.f+1); err != nil {
				t.Fatalf("replica %d: batch %d certificate invalid: %v", r, i+1, err)
			}
		}
	}
}

func TestNextIDAdvances(t *testing.T) {
	tc := newTestCluster(t, 1)
	if got := tc.replicas[0].NextID(); got != 1 {
		t.Fatalf("NextID = %d, want 1", got)
	}
	if err := tc.propose(testBatch(1, protocol.Digest{})); err != nil {
		t.Fatal(err)
	}
	if !tc.waitDelivered(1, []int32{0}, 5*time.Second) {
		t.Fatal("not delivered")
	}
	// NextID is read by the leader loop after delivery; synchronize via
	// the delivered record rather than racing on internals.
	tc.mu.Lock()
	got := tc.delivered[0][0].Batch.ID
	tc.mu.Unlock()
	if got != 1 {
		t.Fatalf("delivered ID = %d", got)
	}
}
