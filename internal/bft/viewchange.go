package bft

// PBFT-style view change (Castro & Liskov Sec. 4.4, adapted to the
// TransEdge batch log; safety argument in DESIGN.md §7).
//
// The enclosing node suspects a stalled leader and calls SuspectLeader.
// The replica stops accepting proposals, signs a ViewChange vote carrying
// its certified tip (newest delivered header + f+1 certificate) and its
// prepared frontier (every validated-but-undelivered slot with the
// prepare signatures it verified), and broadcasts it. The leader of the
// target view assembles any 2f+1 verified votes into a NewView
// certificate and broadcasts it; every receiver re-verifies the votes and
// independently recomputes the re-proposal frontier from them, so a
// byzantine new leader cannot add or drop slots. Frontier slots install
// directly as validated instances (their 2f+1 prepare certificates prove
// a quorum already validated the content) and go through a fresh
// prepare/commit round in the new view; because batches chain PrevDigest,
// the frontier is always a gap-free prefix extension and PBFT's nil-fill
// for holes never arises.

import (
	"sort"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
)

// SuspectLeader votes to replace the current leader: it targets the view
// after the highest one this replica has already voted for, so repeated
// timeouts (e.g. a run of crashed successors) keep advancing.
func (r *Replica) SuspectLeader() {
	next := r.view + 1
	if r.votedFor >= next {
		next = r.votedFor + 1
	}
	r.voteViewChange(next)
}

// voteViewChange casts this replica's vote to enter view v. Voting
// deactivates the current view — no further proposals are accepted until
// a NewView installs — but prepares and commits for already-validated
// slots still flow, so slots that reached their quorums mid-suspicion
// deliver normally.
func (r *Replica) voteViewChange(v uint64) {
	if v <= r.view || v <= r.votedFor {
		return
	}
	r.votedFor = v
	r.viewActive = false
	vc := r.buildViewChange(v)
	r.recordViewChange(vc)
	r.broadcast(vc)
	r.maybeAssembleNewView(v)
}

// buildViewChange assembles and signs this replica's vote for view v:
// the certified tip plus every validated undelivered slot with the
// prepare signatures verified for (slot view, digest).
func (r *Replica) buildViewChange(v uint64) *protocol.ViewChange {
	vc := &protocol.ViewChange{
		Cluster:   r.cfg.Cluster,
		Replica:   r.cfg.Replica,
		View:      v,
		TipHeader: r.lastHeader,
		TipCert:   r.lastCert,
	}
	ids := make([]int64, 0, len(r.instances))
	for id, in := range r.instances {
		if id >= r.nextDeliver && in.validated {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		in := r.instances[id]
		e := protocol.PreparedEntry{ID: id, View: in.view, Digest: in.digest, Batch: in.batch}
		for rep, pv := range in.prepares {
			if pv.digest == in.digest && pv.view == in.view {
				e.Prepares = append(e.Prepares, protocol.PrepareSig{Replica: rep, Sig: pv.sig})
			}
		}
		sort.Slice(e.Prepares, func(i, j int) bool { return e.Prepares[i].Replica < e.Prepares[j].Replica })
		vc.Entries = append(vc.Entries, e)
	}
	vcd := protocol.ViewChangeDigest(vc)
	vc.Sig = r.cfg.Keys.Sign(vcd[:])
	return vc
}

// onViewChange verifies and records a peer's vote, joins the view change
// once f+1 distinct peers vote past our view (so one faulty timer cannot
// drag the cluster through view changes), and assembles a NewView if we
// lead the target view.
func (r *Replica) onViewChange(from NodeID, m *protocol.ViewChange) {
	if m == nil || from.Cluster != r.cfg.Cluster || from.Replica != m.Replica {
		return
	}
	if m.View <= r.view {
		return
	}
	if !r.verifyViewChange(m) {
		return
	}
	if !r.recordViewChange(m) {
		return
	}
	r.maybeJoinViewChange()
	r.maybeAssembleNewView(m.View)
}

// verifyViewChange checks a vote's structure, its signature, and its tip
// certificate. Prepare signatures inside entries are NOT verified here —
// computeFrontier verifies exactly the ones it counts.
func (r *Replica) verifyViewChange(m *protocol.ViewChange) bool {
	if m.Cluster != r.cfg.Cluster || m.TipHeader.Cluster != r.cfg.Cluster {
		return false
	}
	pub := r.cfg.Ring.PublicKey(NodeID{Cluster: r.cfg.Cluster, Replica: m.Replica})
	if pub == nil {
		return false
	}
	vcd := protocol.ViewChangeDigest(m)
	if !cryptoutil.Verify(pub, vcd[:], m.Sig) {
		return false
	}
	tip := m.TipHeader.Digest()
	if err := cryptoutil.VerifyCertificate(r.cfg.Ring, m.TipCert, tip[:], r.cfg.F+1); err != nil {
		return false
	}
	lastID := m.TipHeader.ID
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.ID <= lastID {
			return false // entries must strictly ascend above the tip
		}
		lastID = e.ID
		if e.Batch != nil && (e.Batch.ID != e.ID || e.Batch.Digest() != e.Digest) {
			return false // body does not match the claimed entry
		}
	}
	return true
}

// recordViewChange stores a verified vote, keeping at most one vote per
// replica — its newest target view — so the vote store is O(n) no matter
// how long a faulty peer spams view changes. Returns false if the vote
// did not advance that replica's recorded position.
func (r *Replica) recordViewChange(m *protocol.ViewChange) bool {
	for v, byRep := range r.vcVotes {
		if _, ok := byRep[m.Replica]; ok {
			if v >= m.View {
				return false
			}
			delete(byRep, m.Replica)
			if len(byRep) == 0 {
				delete(r.vcVotes, v)
			}
		}
	}
	byRep := r.vcVotes[m.View]
	if byRep == nil {
		byRep = make(map[int32]*protocol.ViewChange)
		r.vcVotes[m.View] = byRep
	}
	byRep[m.Replica] = m
	return true
}

// maybeJoinViewChange applies PBFT's join rule: once f+1 distinct other
// replicas have voted for views above ours, at least one honest replica
// suspects the leader, so we join with the smallest such view — keeping
// a lone faulty suspecter from moving anyone while letting an honest
// majority converge quickly.
func (r *Replica) maybeJoinViewChange() {
	voters := make(map[int32]uint64)
	for v, byRep := range r.vcVotes {
		if v <= r.view {
			continue
		}
		for rep := range byRep {
			if rep == r.cfg.Replica {
				continue
			}
			if v > voters[rep] {
				voters[rep] = v
			}
		}
	}
	if len(voters) <= r.cfg.F {
		return
	}
	var lowest uint64
	for _, v := range voters {
		if lowest == 0 || v < lowest {
			lowest = v
		}
	}
	if lowest > r.votedFor {
		r.voteViewChange(lowest)
	}
}

// maybeAssembleNewView builds and broadcasts the NewView certificate if
// this replica leads view v and holds 2f+1 votes for it, then installs
// the new view locally.
func (r *Replica) maybeAssembleNewView(v uint64) {
	if v <= r.view || r.leaderAt(v) != r.cfg.Replica {
		return
	}
	byRep := r.vcVotes[v]
	quorum := 2*r.cfg.F + 1
	if len(byRep) < quorum {
		return
	}
	reps := make([]int32, 0, len(byRep))
	for rep := range byRep {
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	nv := &protocol.NewView{Cluster: r.cfg.Cluster, View: v}
	for _, rep := range reps[:quorum] {
		nv.Votes = append(nv.Votes, byRep[rep])
	}
	r.broadcast(nv)
	r.adoptNewView(nv)
}

// onNewView handles the new leader's certificate for a higher view.
func (r *Replica) onNewView(from NodeID, m *protocol.NewView) {
	if m == nil || from.Cluster != r.cfg.Cluster || m.Cluster != r.cfg.Cluster {
		return
	}
	if m.View <= r.view || from.Replica != r.leaderAt(m.View) {
		return
	}
	r.adoptNewView(m)
}

// adoptNewView re-verifies a NewView certificate, recomputes the
// re-proposal frontier from its votes, and installs the new view: the
// frontier slots become validated instances (their embedded 2f+1 prepare
// certificates substitute for re-running Validate) and a fresh prepare
// round starts for each in the new view. Per-slot state from the old
// view is carried over where it is still sound — without this, replicas
// that already delivered or committed a frontier slot before the view
// change would never re-vote it and the slot could stall short of its
// quorums. If this replica's delivery point trails the certificate's
// global tip, installation parks on pendingNewView until delivery or
// state transfer catches up.
func (r *Replica) adoptNewView(nv *protocol.NewView) {
	if nv.View <= r.view {
		if r.pendingNewView == nv {
			r.pendingNewView = nil
		}
		return
	}
	votes := r.vetNewViewVotes(nv)
	if votes == nil {
		if r.pendingNewView == nv {
			r.pendingNewView = nil
		}
		return
	}
	globalTip := votes[0].TipHeader.ID
	for _, v := range votes[1:] {
		if v.TipHeader.ID > globalTip {
			globalTip = v.TipHeader.ID
		}
	}
	if r.nextDeliver-1 < globalTip {
		// Some quorum member certified deliveries we have not made; we
		// cannot chain the frontier yet. Park the NewView and push the
		// high-water mark so the enclosing node's Lagging check starts a
		// state transfer.
		r.pendingNewView = nv
		r.viewActive = false
		if nv.View > r.votedFor {
			r.votedFor = nv.View
		}
		if ahead := r.maxAhead(); ahead >= 0 {
			if hs := r.nextDeliver + ahead; hs > r.highestSeen {
				r.highestSeen = hs
			}
		} else if globalTip > r.highestSeen {
			r.highestSeen = globalTip
		}
		return
	}

	frontier := computeFrontier(r.cfg.Ring, r.cfg.Cluster, r.cfg.F, votes)
	var entries []protocol.PreparedEntry
	prev := r.lastDigest
	for i := range frontier {
		e := frontier[i]
		if e.ID < r.nextDeliver {
			continue // already delivered here
		}
		if e.ID != r.nextDeliver+int64(len(entries)) || e.Batch.PrevDigest != prev {
			break // defensive: frontier must extend our delivered chain
		}
		entries = append(entries, e)
		prev = e.Digest
	}

	old := r.instances
	r.view = nv.View
	r.currentView.Store(nv.View)
	r.viewActive = true
	if nv.View > r.votedFor {
		r.votedFor = nv.View
	}
	r.pendingNewView = nil
	r.viewChanges.Add(1)
	r.instances = make(map[int64]*instance)
	r.pendingPrePrepare = make(map[int64]*PrePrepare)
	r.proposedDigest = make(map[int64]protocol.Digest)
	r.nextValidate = r.nextDeliver
	r.lastValidated = r.lastDigest
	for v := range r.vcVotes {
		if v <= nv.View {
			delete(r.vcVotes, v)
		}
	}

	if r.cfg.Rebase != nil {
		batches := make([]*protocol.Batch, len(entries))
		for i := range entries {
			batches[i] = entries[i].Batch
		}
		r.cfg.Rebase(nv.View, batches)
	}

	for i := range entries {
		e := &entries[i]
		in := r.inst(e.ID)
		if prevIn, ok := old[e.ID]; ok {
			// Carry verified prepares (per-replica newest view), commit
			// votes — valid only if cast for the same digest — and
			// commits buffered before validation.
			for rep, pv := range prevIn.prepares {
				in.prepares[rep] = pv
			}
			if prevIn.validated && prevIn.digest == e.Digest {
				for rep, sig := range prevIn.commits {
					in.commits[rep] = sig
				}
			}
			for rep, c := range prevIn.pendingCommits {
				in.pendingCommits[rep] = c
			}
		}
		in.batch = e.Batch
		in.digest = e.Digest
		in.view = nv.View
		in.validated = true
		r.proposedDigest[e.ID] = e.Digest
		r.lastValidated = e.Digest
		r.nextValidate = e.ID + 1
		r.broadcastPrepare(in)
		r.replayPendingCommits(in)
		r.maybeCommit(in)
	}
	r.nextPropose = r.nextValidate

	if in, ok := r.instances[r.nextDeliver]; ok {
		r.maybeDeliver(in)
	}
}

// vetNewViewVotes re-verifies a NewView's votes (each receiver trusts
// only what it checks itself) and returns them when they form a valid
// 2f+1 quorum of distinct replicas for exactly nv.View.
func (r *Replica) vetNewViewVotes(nv *protocol.NewView) []*protocol.ViewChange {
	if nv.Cluster != r.cfg.Cluster {
		return nil
	}
	seen := make(map[int32]bool)
	var votes []*protocol.ViewChange
	for _, v := range nv.Votes {
		if v == nil || v.View != nv.View || v.Replica < 0 || seen[v.Replica] {
			continue
		}
		if !r.verifyViewChange(v) {
			continue
		}
		seen[v.Replica] = true
		votes = append(votes, v)
	}
	if len(votes) < 2*r.cfg.F+1 {
		return nil
	}
	return votes
}

// AdoptView fast-forwards the replica's view without a NewView
// certificate. The enclosing node calls it after a state transfer, using
// the responder's reported view: the transferred tip is certified, so
// the only risk of a lying responder is a liveness hiccup (we sit in a
// view nobody leads until the progress timer votes us onward).
func (r *Replica) AdoptView(v uint64) {
	if v <= r.view {
		return
	}
	r.view = v
	r.currentView.Store(v)
	r.viewActive = true
	if v > r.votedFor {
		r.votedFor = v
	}
	if nv := r.pendingNewView; nv != nil && nv.View <= v {
		r.pendingNewView = nil
	}
	for vv := range r.vcVotes {
		if vv <= v {
			delete(r.vcVotes, vv)
		}
	}
}

// computeFrontier derives the re-proposal frontier from a verified 2f+1
// set of view-change votes: starting above the highest certified tip any
// vote carries, walk slot by slot; a slot survives if some (digest, view)
// candidate gathers 2f+1 valid prepare signatures from distinct replicas
// across all votes, carries its batch body, and chains PrevDigest onto
// the previous surviving slot. The highest-view candidate wins a slot;
// the walk stops at the first slot with no surviving candidate.
//
// Why this is exactly the safe frontier: a slot delivered anywhere had
// 2f+1 commit votes, each cast only after holding 2f+1 verified prepare
// signatures for one (view, digest); any 2f+1 vote subset intersects
// those committers in at least f+1 replicas, so at least one honest
// committer's vote carries the full prepare certificate and the body —
// the slot qualifies (no committed slot lost). Conversely a candidate
// needs f+1 honest prepare signatures for its (view, digest), and honest
// replicas sign at most one digest per slot per view — so a digest
// conflicting with a prepared one can never also reach 2f+1 in that view
// (no unprepared slot resurrected over a prepared one).
func computeFrontier(ring *cryptoutil.KeyRing, cluster int32, f int, votes []*protocol.ViewChange) []protocol.PreparedEntry {
	var tip *protocol.BatchHeader
	for _, v := range votes {
		if tip == nil || v.TipHeader.ID > tip.ID {
			tip = &v.TipHeader
		}
	}
	if tip == nil {
		return nil
	}
	prev := tip.Digest()
	quorum := 2*f + 1
	var out []protocol.PreparedEntry
	for id := tip.ID + 1; ; id++ {
		type candKey struct {
			digest protocol.Digest
			view   uint64
		}
		type candidate struct {
			batch *protocol.Batch
			sigs  []protocol.PrepareSig
		}
		cands := make(map[candKey]*candidate)
		found := false
		for _, v := range votes {
			for i := range v.Entries {
				e := &v.Entries[i]
				if e.ID != id {
					continue
				}
				found = true
				k := candKey{e.Digest, e.View}
				c := cands[k]
				if c == nil {
					c = &candidate{}
					cands[k] = c
				}
				if c.batch == nil && e.Batch != nil && e.Batch.ID == id && e.Batch.Digest() == e.Digest {
					c.batch = e.Batch
				}
				c.sigs = append(c.sigs, e.Prepares...)
			}
		}
		if !found {
			break
		}
		var best *candidate
		var bestKey candKey
		haveBest := false
		for k, c := range cands {
			if c.batch == nil || c.batch.PrevDigest != prev {
				continue
			}
			psd := protocol.PrepareSigDigest(cluster, k.view, id, k.digest)
			checks := make([]cryptoutil.SigCheck, 0, len(c.sigs))
			reps := make([]int32, 0, len(c.sigs))
			for _, s := range c.sigs {
				pub := ring.PublicKey(NodeID{Cluster: cluster, Replica: s.Replica})
				if pub == nil {
					continue
				}
				checks = append(checks, cryptoutil.SigCheck{Pub: pub, Msg: psd[:], Sig: s.Sig})
				reps = append(reps, s.Replica)
			}
			valid := make(map[int32]bool)
			for i, ok := range cryptoutil.VerifyEach(checks) {
				if ok {
					valid[reps[i]] = true
				}
			}
			if len(valid) < quorum {
				continue
			}
			if !haveBest || k.view > bestKey.view {
				best, bestKey, haveBest = c, k, true
			}
		}
		if !haveBest {
			break
		}
		out = append(out, protocol.PreparedEntry{ID: id, View: bestKey.view, Digest: bestKey.digest, Batch: best.batch})
		prev = bestKey.digest
	}
	return out
}
