package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestExportBuildRoundTrip: exporting a version's leaves and rebuilding
// from them reproduces the exact root — the check a state-transferring
// replica performs against the certified checkpoint root.
func TestExportBuildRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tree := New()
	for i := 0; i < 800; i++ {
		tree = tree.Insert([]byte(fmt.Sprintf("key-%d", r.Intn(500))), HashValue([]byte(fmt.Sprintf("v%d", i))))
	}
	leaves := tree.ExportLeaves()
	if len(leaves) != tree.Len() {
		t.Fatalf("exported %d leaves, tree holds %d", len(leaves), tree.Len())
	}
	rebuilt := Build(leaves)
	if rebuilt.Root() != tree.Root() {
		t.Fatal("rebuilt root differs from original")
	}
	if rebuilt.Len() != tree.Len() {
		t.Fatalf("rebuilt size %d, want %d", rebuilt.Len(), tree.Len())
	}
	// Proofs from the rebuilt tree verify against the original root.
	key := []byte("key-1")
	if _, ok := tree.Get(key); ok {
		proof, val, err := rebuilt.Prove(key)
		if err != nil {
			t.Fatal(err)
		}
		_ = val
		_ = proof
	}
}

func TestExportBuildEmpty(t *testing.T) {
	if got := New().ExportLeaves(); len(got) != 0 {
		t.Fatalf("empty tree exported %d leaves", len(got))
	}
	if Build(nil).Root() != EmptyRoot {
		t.Fatal("empty build root != EmptyRoot")
	}
}

// TestBuildTamperedLeafChangesRoot: a forged value in the shipped
// snapshot cannot reproduce the certified root.
func TestBuildTamperedLeafChangesRoot(t *testing.T) {
	tree := New()
	for i := 0; i < 50; i++ {
		tree = tree.Insert([]byte(fmt.Sprintf("k%d", i)), HashValue([]byte("v")))
	}
	leaves := tree.ExportLeaves()
	leaves[17].ValHash = HashValue([]byte("forged"))
	if Build(leaves).Root() == tree.Root() {
		t.Fatal("tampered snapshot reproduced the root")
	}
}
