// Package merkle implements the Authenticated Data Structure (ADS) at the
// heart of TransEdge's trusted read path (paper Sec. 4.1, [38]).
//
// The tree is a persistent (copy-on-write) crit-bit Merkle trie keyed by
// the SHA-256 hash of the application key. Persistence gives TransEdge two
// properties it needs:
//
//   - every committed batch has its own immutable tree version whose root
//     is certified by f+1 replica signatures, and
//   - historical versions stay available so the second round of the
//     read-only protocol can serve (and prove) the state "as of batch i"
//     long after later batches committed.
//
// The root is a pure function of the key/value mapping — independent of
// insertion order — which is what allows every replica of a cluster to
// recompute and certify the same root without a trusted party.
package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"transedge/internal/cryptoutil"
)

// Digest aliases the system-wide SHA-256 digest type.
type Digest = cryptoutil.Digest

const (
	leafTag  = 0x00
	innerTag = 0x01
	numBits  = 256 // keys are SHA-256 hashes
)

// node is either a leaf (bit == -1) or an inner node splitting at a
// crit-bit index. Nodes are immutable after construction.
type node struct {
	bit     int16 // crit-bit index; -1 marks a leaf
	hash    Digest
	left    *node  // inner only: subtree with bit == 0
	right   *node  // inner only: subtree with bit == 1
	keyHash Digest // leaf only
	valHash Digest // leaf only
}

func bitAt(d Digest, i int) byte {
	return (d[i>>3] >> (7 - uint(i&7))) & 1
}

// firstDiffBit returns the index of the most significant bit at which a
// and b differ. The caller guarantees a != b.
func firstDiffBit(a, b Digest) int {
	for i := 0; i < len(a); i++ {
		if x := a[i] ^ b[i]; x != 0 {
			bit := 0
			for x&0x80 == 0 {
				x <<= 1
				bit++
			}
			return i*8 + bit
		}
	}
	panic("merkle: firstDiffBit called with equal digests")
}

// hashOps counts node-hash computations — an observability hook for the
// bulk-apply benchmarks and property tests, which assert that ApplyBulk
// hashes strictly fewer nodes than sequential insertion.
var hashOps atomic.Uint64

// HashOps returns the total node hashes computed since process start.
func HashOps() uint64 { return hashOps.Load() }

func leafHash(keyHash, valHash Digest) Digest {
	hashOps.Add(1)
	return cryptoutil.HashConcat([]byte{leafTag}, keyHash[:], valHash[:])
}

func innerHash(bit int16, left, right Digest) Digest {
	hashOps.Add(1)
	return cryptoutil.HashConcat([]byte{innerTag, byte(bit >> 8), byte(bit)}, left[:], right[:])
}

func newLeaf(keyHash, valHash Digest) *node {
	return &node{bit: -1, hash: leafHash(keyHash, valHash), keyHash: keyHash, valHash: valHash}
}

func newInner(bit int16, left, right *node) *node {
	return &node{bit: bit, hash: innerHash(bit, left.hash, right.hash), left: left, right: right}
}

// Tree is an immutable Merkle trie version. The zero value is not usable;
// call New. All update operations return a new version sharing structure
// with the receiver.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of keys in this version.
func (t *Tree) Len() int { return t.size }

// EmptyRoot is the root digest of an empty tree.
var EmptyRoot = cryptoutil.Hash([]byte("transedge-merkle-empty"))

// Root returns the authenticated root digest of this version.
func (t *Tree) Root() Digest {
	if t.root == nil {
		return EmptyRoot
	}
	return t.root.hash
}

// HashKey maps an application key to its trie position.
func HashKey(key []byte) Digest { return cryptoutil.Hash(key) }

// HashValue maps a value to the leaf value digest.
func HashValue(value []byte) Digest { return cryptoutil.Hash(value) }

// Insert returns a new version with key bound to valHash.
func (t *Tree) Insert(key []byte, valHash Digest) *Tree {
	return t.InsertHashed(HashKey(key), valHash)
}

// InsertHashed is Insert for a pre-hashed key.
func (t *Tree) InsertHashed(keyHash, valHash Digest) *Tree {
	if t.root == nil {
		return &Tree{root: newLeaf(keyHash, valHash), size: 1}
	}
	leaf := findLeaf(t.root, keyHash)
	if leaf.keyHash == keyHash {
		return &Tree{root: replace(t.root, keyHash, valHash), size: t.size}
	}
	crit := int16(firstDiffBit(leaf.keyHash, keyHash))
	return &Tree{root: insertAt(t.root, crit, keyHash, valHash), size: t.size + 1}
}

// findLeaf walks to the leaf whose position keyHash's bits select.
func findLeaf(n *node, keyHash Digest) *node {
	for n.bit >= 0 {
		if bitAt(keyHash, int(n.bit)) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// replace copies the path to the existing leaf for keyHash and swaps in a
// new value hash.
func replace(n *node, keyHash, valHash Digest) *node {
	if n.bit < 0 {
		return newLeaf(keyHash, valHash)
	}
	if bitAt(keyHash, int(n.bit)) == 0 {
		return newInner(n.bit, replace(n.left, keyHash, valHash), n.right)
	}
	return newInner(n.bit, n.left, replace(n.right, keyHash, valHash))
}

// insertAt inserts a new leaf for keyHash, creating the split node at the
// crit-bit position.
func insertAt(n *node, crit int16, keyHash, valHash Digest) *node {
	if n.bit < 0 || n.bit > crit {
		nl := newLeaf(keyHash, valHash)
		if bitAt(keyHash, int(crit)) == 0 {
			return newInner(crit, nl, n)
		}
		return newInner(crit, n, nl)
	}
	if bitAt(keyHash, int(n.bit)) == 0 {
		return newInner(n.bit, insertAt(n.left, crit, keyHash, valHash), n.right)
	}
	return newInner(n.bit, n.left, insertAt(n.right, crit, keyHash, valHash))
}

// bulkDisabled reverts Apply to one-key-at-a-time insertion. A
// bench/test knob: the hotpath experiment flips it to record before/after
// rows.
var bulkDisabled atomic.Bool

// SetBulkApply toggles the single-pass bulk merge inside Apply (on by
// default).
func SetBulkApply(on bool) { bulkDisabled.Store(!on) }

// Apply returns a new version with every update applied. Updates with the
// same key keep the last value.
func (t *Tree) Apply(updates map[string]Digest) *Tree {
	if len(updates) == 0 {
		return t
	}
	if bulkDisabled.Load() {
		out := t
		for k, vh := range updates {
			out = out.Insert([]byte(k), vh)
		}
		return out
	}
	ups := make([]Update, 0, len(updates))
	for k, vh := range updates {
		ups = append(ups, Update{KeyHash: HashKey([]byte(k)), ValHash: vh})
	}
	return t.ApplyBulk(ups)
}

// Update is one pre-hashed key/value binding of a bulk apply.
type Update struct {
	KeyHash Digest
	ValHash Digest
}

// ApplyBulk returns a new version with every update applied in a single
// merge pass: the updates are sorted by key hash and merged into the
// persistent crit-bit trie recursively, so every trie node on an updated
// path is rebuilt — and hashed — exactly once, instead of once per
// inserted key as with sequential Insert. Duplicate key hashes keep the
// last occurrence. The input slice is reordered in place.
func (t *Tree) ApplyBulk(ups []Update) *Tree {
	if len(ups) == 0 {
		return t
	}
	sort.SliceStable(ups, func(i, j int) bool {
		return bytes.Compare(ups[i].KeyHash[:], ups[j].KeyHash[:]) < 0
	})
	// Collapse duplicate keys, keeping the last occurrence (stable sort
	// preserves input order within a key).
	w := 0
	for i := range ups {
		if i+1 < len(ups) && ups[i+1].KeyHash == ups[i].KeyHash {
			continue
		}
		ups[w] = ups[i]
		w++
	}
	ups = ups[:w]
	if t.root == nil {
		return &Tree{root: buildSubtree(ups), size: len(ups)}
	}
	root, added := bulkMerge(t.root, leftmostKey(t.root), ups)
	return &Tree{root: root, size: t.size + added}
}

// leftmostKey returns the key hash of the leftmost leaf under n; because
// every key in a subtree agrees on all bits above the subtree's crit bit,
// it represents the subtree's common prefix.
func leftmostKey(n *node) Digest {
	for n.bit >= 0 {
		n = n.left
	}
	return n.keyHash
}

// firstDiffBefore returns the index of the most significant bit at which
// a and b differ, or limit if they agree on every bit below it.
func firstDiffBefore(a, b Digest, limit int) int {
	bytesToCheck := (limit + 7) / 8
	for i := 0; i < bytesToCheck; i++ {
		if x := a[i] ^ b[i]; x != 0 {
			bit := 0
			for x&0x80 == 0 {
				x <<= 1
				bit++
			}
			if d := i*8 + bit; d < limit {
				return d
			}
			return limit
		}
	}
	return limit
}

// splitAt partitions sorted updates that share all bits above bit into
// the zero-bit prefix and one-bit suffix at bit.
func splitAt(ups []Update, bit int) ([]Update, []Update) {
	i := sort.Search(len(ups), func(i int) bool { return bitAt(ups[i].KeyHash, bit) == 1 })
	return ups[:i], ups[i:]
}

// buildSubtree constructs the canonical crit-bit subtree over sorted,
// distinct key hashes.
func buildSubtree(ups []Update) *node {
	if len(ups) == 1 {
		return newLeaf(ups[0].KeyHash, ups[0].ValHash)
	}
	crit := int16(firstDiffBit(ups[0].KeyHash, ups[len(ups)-1].KeyHash))
	zeros, ones := splitAt(ups, int(crit))
	return newInner(crit, buildSubtree(zeros), buildSubtree(ones))
}

// bulkMerge merges sorted, distinct updates into the subtree rooted at n,
// whose common key prefix is represented by rep (the leftmost leaf's key
// hash). Returns the new subtree and how many keys were newly added.
func bulkMerge(n *node, rep Digest, ups []Update) (*node, int) {
	if len(ups) == 0 {
		return n, 0
	}
	if n.bit < 0 {
		return mergeLeaf(n, ups)
	}
	b := int(n.bit)
	// All keys in the subtree agree on bits above b, so rep stands in for
	// the whole subtree there; and since the updates are sorted, the
	// minimal divergence from that prefix is at one of the endpoints.
	dmin := firstDiffBefore(ups[0].KeyHash, rep, b)
	if d := firstDiffBefore(ups[len(ups)-1].KeyHash, rep, b); d < dmin {
		dmin = d
	}
	if dmin >= b {
		// Every update conforms to the prefix: route by this node's bit.
		zeros, ones := splitAt(ups, b)
		left, al := bulkMerge(n.left, rep, zeros)
		right, ar := bulkMerge(n.right, leftmostKey(n.right), ones)
		return newInner(n.bit, left, right), al + ar
	}
	// Some updates split off above this node, at bit dmin. Updates agreeing
	// with the prefix at dmin keep merging into n; the others form a fresh
	// sibling subtree under a new inner node at dmin.
	zeros, ones := splitAt(ups, dmin)
	conform, diverge := zeros, ones
	if bitAt(rep, dmin) == 1 {
		conform, diverge = ones, zeros
	}
	merged, added := bulkMerge(n, rep, conform)
	side := buildSubtree(diverge)
	if bitAt(rep, dmin) == 0 {
		return newInner(int16(dmin), merged, side), added + len(diverge)
	}
	return newInner(int16(dmin), side, merged), added + len(diverge)
}

// mergeLeaf merges updates into a single-leaf subtree: an update matching
// the leaf's key overwrites its value; the rest join it in a canonical
// subtree.
func mergeLeaf(leaf *node, ups []Update) (*node, int) {
	i := sort.Search(len(ups), func(i int) bool {
		return bytes.Compare(ups[i].KeyHash[:], leaf.keyHash[:]) >= 0
	})
	if i < len(ups) && ups[i].KeyHash == leaf.keyHash {
		return buildSubtree(ups), len(ups) - 1
	}
	merged := make([]Update, 0, len(ups)+1)
	merged = append(merged, ups[:i]...)
	merged = append(merged, Update{KeyHash: leaf.keyHash, ValHash: leaf.valHash})
	merged = append(merged, ups[i:]...)
	return buildSubtree(merged), len(ups)
}

// Get returns the value hash bound to key in this version.
func (t *Tree) Get(key []byte) (Digest, bool) {
	if t.root == nil {
		return Digest{}, false
	}
	kh := HashKey(key)
	leaf := findLeaf(t.root, kh)
	if leaf.keyHash != kh {
		return Digest{}, false
	}
	return leaf.valHash, true
}

// ProofStep is one level of a membership proof: the crit-bit index of the
// inner node and the hash of the sibling subtree not on the lookup path.
type ProofStep struct {
	Bit     int16
	Sibling Digest
}

// Proof is a membership proof for one key in one tree version, ordered
// from the root down to the leaf's parent.
type Proof struct {
	Steps []ProofStep
}

// Errors returned by proving and verification.
var (
	ErrNotFound   = errors.New("merkle: key not present in this version")
	ErrBadProof   = errors.New("merkle: proof does not verify")
	ErrProofShape = errors.New("merkle: malformed proof")
)

// Prove produces a membership proof that key -> valHash in this version.
// The returned value hash is the one bound in the tree.
func (t *Tree) Prove(key []byte) (Proof, Digest, error) {
	if t.root == nil {
		return Proof{}, Digest{}, ErrNotFound
	}
	kh := HashKey(key)
	var steps []ProofStep
	n := t.root
	for n.bit >= 0 {
		if bitAt(kh, int(n.bit)) == 0 {
			steps = append(steps, ProofStep{Bit: n.bit, Sibling: n.right.hash})
			n = n.left
		} else {
			steps = append(steps, ProofStep{Bit: n.bit, Sibling: n.left.hash})
			n = n.right
		}
	}
	if n.keyHash != kh {
		return Proof{}, Digest{}, ErrNotFound
	}
	return Proof{Steps: steps}, n.valHash, nil
}

// VerifyProof checks that proof authenticates key -> value under root.
// It recomputes the leaf hash from the raw key and value, folds the proof
// steps back to a root digest, and enforces the structural invariants of
// the crit-bit trie (strictly increasing bit indices, directions matching
// the key's bits) so a malicious server cannot splice subtrees.
func VerifyProof(root Digest, key, value []byte, proof Proof) error {
	kh := HashKey(key)
	h := leafHash(kh, HashValue(value))
	// Fold from the leaf upward: iterate steps in reverse.
	lastBit := int16(numBits)
	for i := len(proof.Steps) - 1; i >= 0; i-- {
		s := proof.Steps[i]
		if s.Bit < 0 || s.Bit >= numBits {
			return fmt.Errorf("%w: bit index %d out of range", ErrProofShape, s.Bit)
		}
		if s.Bit >= lastBit {
			return fmt.Errorf("%w: bit indices not strictly increasing root-to-leaf", ErrProofShape)
		}
		lastBit = s.Bit
		if bitAt(kh, int(s.Bit)) == 0 {
			h = innerHash(s.Bit, h, s.Sibling)
		} else {
			h = innerHash(s.Bit, s.Sibling, h)
		}
	}
	if h != root {
		return ErrBadProof
	}
	return nil
}

// AbsenceProof proves a key is NOT bound in a tree version. In a crit-bit
// trie the structure is canonical for a given content set, so the lookup
// path for any key is forced by the certified root: the proof exhibits
// the leaf that the key's bits lead to (which would have to BE the key's
// leaf if the key were present) together with its path. A verifier checks
// the path shape, that every direction matches the requested key's bits,
// and that the terminal leaf holds a different key hash.
type AbsenceProof struct {
	Steps       []ProofStep
	LeafKeyHash Digest
	LeafValHash Digest
}

// ErrPresent is returned when asked to prove absence of a present key.
var ErrPresent = errors.New("merkle: key is present")

// ProveAbsent produces a non-membership proof for key.
func (t *Tree) ProveAbsent(key []byte) (AbsenceProof, error) {
	kh := HashKey(key)
	if t.root == nil {
		// The empty tree's well-known root is itself the proof.
		return AbsenceProof{}, nil
	}
	var steps []ProofStep
	n := t.root
	for n.bit >= 0 {
		if bitAt(kh, int(n.bit)) == 0 {
			steps = append(steps, ProofStep{Bit: n.bit, Sibling: n.right.hash})
			n = n.left
		} else {
			steps = append(steps, ProofStep{Bit: n.bit, Sibling: n.left.hash})
			n = n.right
		}
	}
	if n.keyHash == kh {
		return AbsenceProof{}, ErrPresent
	}
	return AbsenceProof{Steps: steps, LeafKeyHash: n.keyHash, LeafValHash: n.valHash}, nil
}

// VerifyAbsence checks that proof establishes key's absence under root.
func VerifyAbsence(root Digest, key []byte, proof AbsenceProof) error {
	kh := HashKey(key)
	if root == EmptyRoot {
		return nil // nothing is in the empty tree
	}
	if proof.LeafKeyHash == kh {
		return fmt.Errorf("%w: terminal leaf holds the key itself", ErrBadProof)
	}
	h := leafHash(proof.LeafKeyHash, proof.LeafValHash)
	lastBit := int16(numBits)
	for i := len(proof.Steps) - 1; i >= 0; i-- {
		s := proof.Steps[i]
		if s.Bit < 0 || s.Bit >= numBits {
			return fmt.Errorf("%w: bit index %d out of range", ErrProofShape, s.Bit)
		}
		if s.Bit >= lastBit {
			return fmt.Errorf("%w: bit indices not strictly increasing root-to-leaf", ErrProofShape)
		}
		lastBit = s.Bit
		// Directions are forced by the REQUESTED key's bits: this pins
		// the path to the one the canonical lookup would take.
		if bitAt(kh, int(s.Bit)) == 0 {
			h = innerHash(s.Bit, h, s.Sibling)
		} else {
			h = innerHash(s.Bit, s.Sibling, h)
		}
	}
	if h != root {
		return ErrBadProof
	}
	return nil
}

// ExportLeaves returns every (keyHash, valHash) binding of this version
// in trie order (ascending key hash), for tests and offline tooling.
// Note that state transfer does NOT ship merkle leaves: it ships raw
// store entries (key, value, writer) and the receiver rebuilds the tree
// from them with Build, comparing the root against the certified one.
func (t *Tree) ExportLeaves() []Update {
	out := make([]Update, 0, t.size)
	t.Walk(func(keyHash, valHash Digest) {
		out = append(out, Update{KeyHash: keyHash, ValHash: valHash})
	})
	return out
}

// Build constructs a tree version directly from a set of bindings in one
// bulk pass (state-transfer install: a joining replica rebuilds the
// checkpoint tree from the snapshot and compares its root against the
// certified one). The input slice is reordered in place.
func Build(ups []Update) *Tree {
	return New().ApplyBulk(ups)
}

// Walk visits every (keyHash, valHash) leaf in the version, in trie order.
// Intended for tests and debugging tools.
func (t *Tree) Walk(fn func(keyHash, valHash Digest)) {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if n.bit < 0 {
			fn(n.keyHash, n.valHash)
			return
		}
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
}
