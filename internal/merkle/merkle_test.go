package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree returned a value")
	}
	if _, _, err := tr.Prove([]byte("x")); err != ErrNotFound {
		t.Fatalf("Prove on empty tree: err = %v, want ErrNotFound", err)
	}
	if tr.Root() != EmptyRoot {
		t.Fatal("empty tree root is not EmptyRoot")
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	tr = tr.Insert([]byte("x"), HashValue([]byte("1")))
	tr = tr.Insert([]byte("y"), HashValue([]byte("2")))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	vh, ok := tr.Get([]byte("x"))
	if !ok || vh != HashValue([]byte("1")) {
		t.Fatal("Get(x) wrong")
	}
	if _, ok := tr.Get([]byte("z")); ok {
		t.Fatal("Get(z) found absent key")
	}
}

func TestOverwriteKeepsSize(t *testing.T) {
	tr := New().Insert([]byte("k"), HashValue([]byte("a")))
	tr2 := tr.Insert([]byte("k"), HashValue([]byte("b")))
	if tr2.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", tr2.Len())
	}
	if vh, _ := tr2.Get([]byte("k")); vh != HashValue([]byte("b")) {
		t.Fatal("overwrite did not update value")
	}
	// Old version unchanged (persistence).
	if vh, _ := tr.Get([]byte("k")); vh != HashValue([]byte("a")) {
		t.Fatal("old version mutated by overwrite")
	}
}

func TestPersistenceAcrossVersions(t *testing.T) {
	versions := []*Tree{New()}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		versions = append(versions, versions[len(versions)-1].Insert(k, HashValue(k)))
	}
	for i, v := range versions {
		if v.Len() != i {
			t.Fatalf("version %d: Len = %d, want %d", i, v.Len(), i)
		}
		// Keys inserted later must be invisible in earlier versions.
		for j := 0; j < 50; j++ {
			k := []byte(fmt.Sprintf("key-%d", j))
			_, ok := v.Get(k)
			if want := j < i; ok != want {
				t.Fatalf("version %d: Get(key-%d) = %v, want %v", i, j, ok, want)
			}
		}
	}
}

func TestRootOrderIndependence(t *testing.T) {
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	build := func(perm []int) Digest {
		tr := New()
		for _, i := range perm {
			tr = tr.Insert(keys[i], HashValue(keys[i]))
		}
		return tr.Root()
	}
	base := make([]int, len(keys))
	for i := range base {
		base[i] = i
	}
	want := build(base)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(keys))
		if got := build(perm); got != want {
			t.Fatalf("trial %d: root differs under permuted insertion order", trial)
		}
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := New().Insert([]byte("k"), HashValue([]byte("v1")))
	b := New().Insert([]byte("k"), HashValue([]byte("v2")))
	if a.Root() == b.Root() {
		t.Fatal("different values produced the same root")
	}
	c := a.Insert([]byte("k2"), HashValue([]byte("v")))
	if a.Root() == c.Root() {
		t.Fatal("adding a key did not change the root")
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	tr := New()
	n := 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue([]byte(fmt.Sprintf("val-%d", i))))
	}
	root := tr.Root()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		proof, vh, err := tr.Prove(k)
		if err != nil {
			t.Fatalf("Prove(%s): %v", k, err)
		}
		if vh != HashValue(v) {
			t.Fatalf("Prove(%s) returned wrong value hash", k)
		}
		if err := VerifyProof(root, k, v, proof); err != nil {
			t.Fatalf("VerifyProof(%s): %v", k, err)
		}
	}
}

func TestVerifyRejectsWrongValue(t *testing.T) {
	tr := New().Insert([]byte("k"), HashValue([]byte("real")))
	proof, _, err := tr.Prove([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(tr.Root(), []byte("k"), []byte("forged"), proof) == nil {
		t.Fatal("proof accepted for a value not in the tree")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	tr := New().
		Insert([]byte("a"), HashValue([]byte("1"))).
		Insert([]byte("b"), HashValue([]byte("2")))
	proof, _, err := tr.Prove([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(tr.Root(), []byte("b"), []byte("1"), proof) == nil {
		t.Fatal("proof for key a accepted for key b")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tr := New().Insert([]byte("k"), HashValue([]byte("v")))
	tr2 := tr.Insert([]byte("k"), HashValue([]byte("v2")))
	proof, _, err := tr.Prove([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(tr2.Root(), []byte("k"), []byte("v"), proof) == nil {
		t.Fatal("stale proof accepted against a newer root")
	}
}

func TestVerifyRejectsTamperedSibling(t *testing.T) {
	tr := New()
	for i := 0; i < 16; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
	}
	proof, _, err := tr.Prove([]byte("key-3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Steps) == 0 {
		t.Fatal("expected non-trivial proof")
	}
	proof.Steps[0].Sibling[5] ^= 1
	if VerifyProof(tr.Root(), []byte("key-3"), []byte("key-3"), proof) == nil {
		t.Fatal("tampered sibling accepted")
	}
}

func TestVerifyRejectsMalformedShape(t *testing.T) {
	tr := New()
	for i := 0; i < 16; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
	}
	proof, _, err := tr.Prove([]byte("key-3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Steps) < 2 {
		t.Skip("proof too short to permute")
	}
	// Swap two steps: bit indices no longer increase root-to-leaf.
	bad := Proof{Steps: append([]ProofStep(nil), proof.Steps...)}
	bad.Steps[0], bad.Steps[1] = bad.Steps[1], bad.Steps[0]
	if VerifyProof(tr.Root(), []byte("key-3"), []byte("key-3"), bad) == nil {
		t.Fatal("shape-violating proof accepted")
	}
	// Out-of-range bit index.
	bad2 := Proof{Steps: append([]ProofStep(nil), proof.Steps...)}
	bad2.Steps[0].Bit = 300
	if VerifyProof(tr.Root(), []byte("key-3"), []byte("key-3"), bad2) == nil {
		t.Fatal("out-of-range bit accepted")
	}
}

func TestApplyBatch(t *testing.T) {
	tr := New().Insert([]byte("a"), HashValue([]byte("0")))
	tr2 := tr.Apply(map[string]Digest{
		"a": HashValue([]byte("1")),
		"b": HashValue([]byte("2")),
	})
	if tr2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr2.Len())
	}
	if vh, _ := tr2.Get([]byte("a")); vh != HashValue([]byte("1")) {
		t.Fatal("Apply did not overwrite a")
	}
	if vh, _ := tr.Get([]byte("a")); vh != HashValue([]byte("0")) {
		t.Fatal("Apply mutated the receiver")
	}
}

func TestWalkVisitsAllLeaves(t *testing.T) {
	tr := New()
	want := map[Digest]bool{}
	for i := 0; i < 33; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
		want[HashKey(k)] = true
	}
	got := 0
	tr.Walk(func(kh, vh Digest) {
		if !want[kh] {
			t.Fatalf("Walk visited unexpected leaf %x", kh[:4])
		}
		got++
	})
	if got != len(want) {
		t.Fatalf("Walk visited %d leaves, want %d", got, len(want))
	}
}

// TestAgainstMapModel drives the tree with random operations and checks it
// against a plain map model, including proof verification at every version.
func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	model := map[string][]byte{}
	keyspace := 128
	for step := 0; step < 1000; step++ {
		k := fmt.Sprintf("key-%d", rng.Intn(keyspace))
		v := []byte(fmt.Sprintf("val-%d", rng.Int63()))
		tr = tr.Insert([]byte(k), HashValue(v))
		model[k] = v
		if tr.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model = %d", step, tr.Len(), len(model))
		}
		// Spot-check a random model key with a full prove/verify cycle.
		probe := fmt.Sprintf("key-%d", rng.Intn(keyspace))
		mv, inModel := model[probe]
		proof, vh, err := tr.Prove([]byte(probe))
		if inModel {
			if err != nil {
				t.Fatalf("step %d: Prove(%s): %v", step, probe, err)
			}
			if vh != HashValue(mv) {
				t.Fatalf("step %d: value hash mismatch for %s", step, probe)
			}
			if err := VerifyProof(tr.Root(), []byte(probe), mv, proof); err != nil {
				t.Fatalf("step %d: VerifyProof(%s): %v", step, probe, err)
			}
		} else if err != ErrNotFound {
			t.Fatalf("step %d: Prove(absent %s): err = %v, want ErrNotFound", step, probe, err)
		}
	}
}

// TestRootIsFunctionOfContentProperty: two trees built from the same final
// mapping (regardless of intermediate overwrites) share a root.
func TestRootIsFunctionOfContentProperty(t *testing.T) {
	f := func(keys []uint8, seed int64) bool {
		if len(keys) == 0 {
			return true
		}
		final := map[string]Digest{}
		for _, k := range keys {
			key := fmt.Sprintf("k%d", k%32)
			final[key] = HashValue([]byte{k})
		}
		// Build 1: straight from the final mapping.
		a := New()
		for k, vh := range final {
			a = a.Insert([]byte(k), vh)
		}
		// Build 2: replay the full history (with overwrites) then fix up
		// to the final mapping in random order.
		b := New()
		for _, k := range keys {
			key := fmt.Sprintf("k%d", k%32)
			b = b.Insert([]byte(key), HashValue([]byte{k ^ 0x55}))
		}
		rng := rand.New(rand.NewSource(seed))
		order := make([]string, 0, len(final))
		for k := range final {
			order = append(order, k)
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, k := range order {
			b = b.Insert([]byte(k), final[k])
		}
		return a.Root() == b.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("bench-%d", i))
		tr.Insert(k, HashValue(k))
	}
}

func BenchmarkProve(b *testing.B) {
	tr := New()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Prove([]byte(fmt.Sprintf("key-%d", i%10000))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProveAbsentRoundTrip(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
	}
	root := tr.Root()
	for i := 50; i < 80; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		proof, err := tr.ProveAbsent(k)
		if err != nil {
			t.Fatalf("ProveAbsent(%s): %v", k, err)
		}
		if err := VerifyAbsence(root, k, proof); err != nil {
			t.Fatalf("VerifyAbsence(%s): %v", k, err)
		}
	}
}

func TestProveAbsentRejectsPresentKey(t *testing.T) {
	tr := New().Insert([]byte("k"), HashValue([]byte("v")))
	if _, err := tr.ProveAbsent([]byte("k")); err != ErrPresent {
		t.Fatalf("err = %v, want ErrPresent", err)
	}
}

func TestVerifyAbsenceRejectsForgery(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		tr = tr.Insert(k, HashValue(k))
	}
	root := tr.Root()

	// An absence proof for an absent key must not verify for a PRESENT
	// key (hiding attack).
	proof, err := tr.ProveAbsent([]byte("missing"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if VerifyAbsence(root, k, proof) == nil {
			t.Fatalf("absence of present key %s accepted", k)
		}
	}
	// Tampered terminal leaf.
	bad := proof
	bad.LeafKeyHash[0] ^= 1
	if VerifyAbsence(root, []byte("missing"), bad) == nil {
		t.Fatal("tampered absence proof accepted")
	}
	// Wrong root.
	tr2 := tr.Insert([]byte("missing"), HashValue([]byte("now present")))
	if VerifyAbsence(tr2.Root(), []byte("missing"), proof) == nil {
		t.Fatal("stale absence proof accepted after insertion")
	}
}

func TestVerifyAbsenceEmptyTree(t *testing.T) {
	tr := New()
	proof, err := tr.ProveAbsent([]byte("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAbsence(tr.Root(), []byte("anything"), proof); err != nil {
		t.Fatalf("empty-tree absence: %v", err)
	}
}

func TestAbsenceAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New()
	present := map[string]bool{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%d", rng.Intn(200))
		tr = tr.Insert([]byte(k), HashValue([]byte(k)))
		present[k] = true
		probe := fmt.Sprintf("key-%d", rng.Intn(400))
		proof, err := tr.ProveAbsent([]byte(probe))
		if present[probe] {
			if err != ErrPresent {
				t.Fatalf("ProveAbsent(present %s) err = %v", probe, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ProveAbsent(%s): %v", probe, err)
		}
		if err := VerifyAbsence(tr.Root(), []byte(probe), proof); err != nil {
			t.Fatalf("VerifyAbsence(%s): %v", probe, err)
		}
	}
}
