package merkle

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// buildTestTree returns a tree with n deterministic keys and the key list.
func buildTestTree(n int, seed int64) (*Tree, [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	t := New()
	keys := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d-%d", i, rng.Intn(1000)))
		keys = append(keys, k)
		t = t.Insert(k, HashValue([]byte(fmt.Sprintf("val-%d", i))))
	}
	return t, keys
}

// valueFor reproduces buildTestTree's value binding for key index i.
func valueFor(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

// answersFor builds the honest answers for a query set against a tree
// built by buildTestTree, given the present-key index map.
func answersFor(tr *Tree, query [][]byte, valueOf map[string][]byte) []KeyAnswer {
	out := make([]KeyAnswer, 0, len(query))
	for _, k := range query {
		if v, ok := valueOf[string(k)]; ok {
			if _, present := tr.Get(k); present {
				out = append(out, KeyAnswer{Key: k, Value: v, Found: true})
				continue
			}
		}
		out = append(out, KeyAnswer{Key: k, Found: false})
	}
	return out
}

func TestMultiProofEquivalenceWithSingleProofs(t *testing.T) {
	tr, keys := buildTestTree(500, 1)
	valueOf := make(map[string][]byte, len(keys))
	for i, k := range keys {
		valueOf[string(k)] = valueFor(i)
	}
	rng := rand.New(rand.NewSource(2))
	root := tr.Root()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		query := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				query = append(query, []byte(fmt.Sprintf("absent-%d-%d", trial, i)))
			} else {
				query = append(query, keys[rng.Intn(len(keys))])
			}
		}
		mp, err := tr.ProveMulti(query)
		if err != nil {
			t.Fatalf("ProveMulti: %v", err)
		}
		answers := answersFor(tr, query, valueOf)
		if err := VerifyMulti(root, answers, mp); err != nil {
			t.Fatalf("VerifyMulti trial %d: %v", trial, err)
		}
		// Per-key equivalence: every answer the multi-proof certifies is
		// exactly what Prove/ProveAbsent certify.
		for _, a := range answers {
			if a.Found {
				p, vh, err := tr.Prove(a.Key)
				if err != nil {
					t.Fatalf("Prove(%q): %v", a.Key, err)
				}
				if vh != HashValue(a.Value) {
					t.Fatalf("value hash mismatch for %q", a.Key)
				}
				if err := VerifyProof(root, a.Key, a.Value, p); err != nil {
					t.Fatalf("VerifyProof(%q): %v", a.Key, err)
				}
			} else {
				ap, err := tr.ProveAbsent(a.Key)
				if err != nil {
					t.Fatalf("ProveAbsent(%q): %v", a.Key, err)
				}
				if err := VerifyAbsence(root, a.Key, ap); err != nil {
					t.Fatalf("VerifyAbsence(%q): %v", a.Key, err)
				}
			}
		}
	}
}

// TestMultiProofHashCountProperty: verifying a multi-proof hashes at most
// as many nodes as verifying N independent proofs, and strictly fewer for
// two or more distinct keys (the shared root is hashed once, not N times).
func TestMultiProofHashCountProperty(t *testing.T) {
	tr, keys := buildTestTree(1000, 3)
	valueOf := make(map[string][]byte, len(keys))
	for i, k := range keys {
		valueOf[string(k)] = valueFor(i)
	}
	root := tr.Root()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		seen := map[string]bool{}
		query := make([][]byte, 0, n)
		for len(query) < n {
			var k []byte
			if rng.Intn(5) == 0 {
				k = []byte(fmt.Sprintf("absent-%d-%d", trial, len(query)))
			} else {
				k = keys[rng.Intn(len(keys))]
			}
			if !seen[string(k)] {
				seen[string(k)] = true
				query = append(query, k)
			}
		}
		answers := answersFor(tr, query, valueOf)
		mp, err := tr.ProveMulti(query)
		if err != nil {
			t.Fatal(err)
		}

		start := HashOps()
		if err := VerifyMulti(root, answers, mp); err != nil {
			t.Fatal(err)
		}
		multiHashes := HashOps() - start

		start = HashOps()
		for _, a := range answers {
			if a.Found {
				p, _, _ := tr.Prove(a.Key)
				if err := VerifyProof(root, a.Key, a.Value, p); err != nil {
					t.Fatal(err)
				}
			} else {
				ap, _ := tr.ProveAbsent(a.Key)
				if err := VerifyAbsence(root, a.Key, ap); err != nil {
					t.Fatal(err)
				}
			}
		}
		singleHashes := HashOps() - start

		if multiHashes > singleHashes {
			t.Fatalf("n=%d: multi-proof hashed %d nodes, independent proofs %d", n, multiHashes, singleHashes)
		}
		if n >= 2 && multiHashes >= singleHashes {
			t.Fatalf("n=%d: expected strictly fewer hashes, got %d vs %d", n, multiHashes, singleHashes)
		}
	}
}

func TestMultiProofMixedMembershipAbsence(t *testing.T) {
	tr, keys := buildTestTree(64, 5)
	valueOf := make(map[string][]byte, len(keys))
	for i, k := range keys {
		valueOf[string(k)] = valueFor(i)
	}
	root := tr.Root()
	query := [][]byte{keys[0], []byte("nope-1"), keys[10], []byte("nope-2"), keys[63]}
	mp, err := tr.ProveMulti(query)
	if err != nil {
		t.Fatal(err)
	}
	answers := answersFor(tr, query, valueOf)
	if err := VerifyMulti(root, answers, mp); err != nil {
		t.Fatalf("mixed proof rejected: %v", err)
	}
	// Both kinds of leaves must be present: refs for the three present
	// keys, others as absence terminals.
	var refs, others int
	for _, nd := range mp.Nodes {
		switch nd.Kind {
		case MultiLeafRef:
			refs++
		case MultiLeafOther:
			others++
		}
	}
	if refs != 3 {
		t.Fatalf("expected 3 ref leaves, got %d", refs)
	}
	if others == 0 {
		t.Fatal("expected at least one absence-terminal leaf")
	}
}

func TestMultiProofTamperRejection(t *testing.T) {
	tr, keys := buildTestTree(128, 6)
	valueOf := make(map[string][]byte, len(keys))
	for i, k := range keys {
		valueOf[string(k)] = valueFor(i)
	}
	root := tr.Root()
	query := [][]byte{keys[1], keys[2], []byte("missing-a"), keys[70]}
	mp, err := tr.ProveMulti(query)
	if err != nil {
		t.Fatal(err)
	}
	honest := answersFor(tr, query, valueOf)
	if err := VerifyMulti(root, honest, mp); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
	clone := func() MultiProof {
		return MultiProof{Nodes: append([]MultiNode(nil), mp.Nodes...)}
	}

	t.Run("swapped sibling", func(t *testing.T) {
		p := clone()
		// Swap the first two pruned sibling hashes.
		var idx []int
		for i, nd := range p.Nodes {
			if nd.Kind == MultiPrunedLeft || nd.Kind == MultiPrunedRight {
				idx = append(idx, i)
			}
		}
		if len(idx) < 2 {
			t.Skip("proof has fewer than two pruned siblings")
		}
		p.Nodes[idx[0]].Sibling, p.Nodes[idx[1]].Sibling = p.Nodes[idx[1]].Sibling, p.Nodes[idx[0]].Sibling
		if err := VerifyMulti(root, honest, p); err == nil {
			t.Fatal("swapped siblings accepted")
		}
	})

	t.Run("corrupt sibling", func(t *testing.T) {
		p := clone()
		for i := range p.Nodes {
			if p.Nodes[i].Kind == MultiPrunedLeft || p.Nodes[i].Kind == MultiPrunedRight {
				p.Nodes[i].Sibling[0] ^= 0xff
				break
			}
		}
		if err := VerifyMulti(root, honest, p); err == nil {
			t.Fatal("corrupted sibling accepted")
		}
	})

	t.Run("truncated", func(t *testing.T) {
		p := clone()
		p.Nodes = p.Nodes[:len(p.Nodes)-1]
		if err := VerifyMulti(root, honest, p); !errors.Is(err, ErrProofShape) {
			t.Fatalf("truncated proof: got %v", err)
		}
	})

	t.Run("trailing nodes", func(t *testing.T) {
		p := clone()
		p.Nodes = append(p.Nodes, MultiNode{Kind: MultiLeafRef})
		if err := VerifyMulti(root, honest, p); !errors.Is(err, ErrProofShape) {
			t.Fatalf("trailing node: got %v", err)
		}
	})

	t.Run("dropped key (hidden membership)", func(t *testing.T) {
		// The server claims a present key is absent. Its leaf is a ref
		// leaf in the proof, which no Found answer then resolves.
		lying := append([]KeyAnswer(nil), honest...)
		for i := range lying {
			if string(lying[i].Key) == string(keys[1]) {
				lying[i] = KeyAnswer{Key: lying[i].Key, Found: false}
			}
		}
		if err := VerifyMulti(root, lying, mp); err == nil {
			t.Fatal("hidden membership accepted")
		}
	})

	t.Run("forged absence as membership", func(t *testing.T) {
		// The server claims an absent key is present with some value.
		lying := append([]KeyAnswer(nil), honest...)
		for i := range lying {
			if !lying[i].Found {
				lying[i] = KeyAnswer{Key: lying[i].Key, Value: []byte("forged"), Found: true}
			}
		}
		if err := VerifyMulti(root, lying, mp); err == nil {
			t.Fatal("forged membership accepted")
		}
	})

	t.Run("wrong value", func(t *testing.T) {
		lying := append([]KeyAnswer(nil), honest...)
		for i := range lying {
			if lying[i].Found {
				lying[i].Value = []byte("tampered")
				break
			}
		}
		if err := VerifyMulti(root, lying, mp); err == nil {
			t.Fatal("tampered value accepted")
		}
	})

	t.Run("bit order violation", func(t *testing.T) {
		p := clone()
		// Force a child's crit bit at or below its parent's.
		var parent int16 = -1
		for i := range p.Nodes {
			k := p.Nodes[i].Kind
			if k == MultiInner || k == MultiPrunedLeft || k == MultiPrunedRight {
				if parent >= 0 {
					p.Nodes[i].Bit = parent
					break
				}
				parent = p.Nodes[i].Bit
			}
		}
		if parent < 0 {
			t.Skip("no nested inner nodes")
		}
		if err := VerifyMulti(root, honest, p); err == nil {
			t.Fatal("non-increasing crit bits accepted")
		}
	})

	t.Run("wrong root", func(t *testing.T) {
		other := tr.Insert([]byte("one-more"), HashValue([]byte("v")))
		if err := VerifyMulti(other.Root(), honest, mp); !errors.Is(err, ErrBadProof) {
			t.Fatalf("wrong root: got %v", err)
		}
	})
}

func TestMultiProofEmptyAndTinyTrees(t *testing.T) {
	// Empty tree: the empty proof certifies any absence set.
	mp, err := New().ProveMulti([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	answers := []KeyAnswer{{Key: []byte("a")}, {Key: []byte("b")}}
	if err := VerifyMulti(EmptyRoot, answers, mp); err != nil {
		t.Fatalf("empty-tree absence rejected: %v", err)
	}
	if err := VerifyMulti(EmptyRoot, []KeyAnswer{{Key: []byte("a"), Value: []byte("v"), Found: true}}, mp); err == nil {
		t.Fatal("membership in empty tree accepted")
	}
	// An empty proof must not verify against a non-empty root.
	one := New().Insert([]byte("a"), HashValue([]byte("v")))
	if err := VerifyMulti(one.Root(), answers, mp); !errors.Is(err, ErrProofShape) {
		t.Fatalf("empty proof for non-empty root: got %v", err)
	}

	// Single-leaf tree, membership and absence.
	mp, err = one.ProveMulti([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	got := []KeyAnswer{
		{Key: []byte("a"), Value: []byte("v"), Found: true},
		{Key: []byte("b")},
	}
	if err := VerifyMulti(one.Root(), got, mp); err != nil {
		t.Fatalf("single-leaf proof rejected: %v", err)
	}

	// Zero keys is an explicit error.
	if _, err := one.ProveMulti(nil); !errors.Is(err, ErrNoKeys) {
		t.Fatalf("zero keys: got %v", err)
	}
}

func TestMultiProofDuplicateKeysCollapse(t *testing.T) {
	tr, keys := buildTestTree(32, 7)
	query := [][]byte{keys[3], keys[3], keys[3]}
	mp, err := tr.ProveMulti(query)
	if err != nil {
		t.Fatal(err)
	}
	answers := []KeyAnswer{
		{Key: keys[3], Value: valueFor(3), Found: true},
		{Key: keys[3], Value: valueFor(3), Found: true},
	}
	if err := VerifyMulti(tr.Root(), answers, mp); err != nil {
		t.Fatalf("duplicate keys rejected: %v", err)
	}
	// Same key claimed with two different values must conflict.
	answers[1].Value = []byte("different")
	if err := VerifyMulti(tr.Root(), answers, mp); err == nil {
		t.Fatal("conflicting duplicate bindings accepted")
	}
}

// FuzzMultiProofDifferential builds a deterministic tree and query set
// from the fuzz input and checks that ProveMulti/VerifyMulti accept
// exactly what per-key Prove/ProveAbsent + VerifyProof/VerifyAbsence
// accept — the multi-proof is a compression of the single-proof relation,
// never a relaxation.
func FuzzMultiProofDifferential(f *testing.F) {
	f.Add([]byte{5, 3, 0, 1, 2}, int64(1))
	f.Add([]byte{0, 0}, int64(2))
	f.Add([]byte{200, 199, 198, 7, 7, 7}, int64(3))
	f.Fuzz(func(t *testing.T, sel []byte, seed int64) {
		if len(sel) == 0 || len(sel) > 64 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(200)
		tr := New()
		valueOf := make(map[string][]byte, size)
		for i := 0; i < size; i++ {
			k := fmt.Sprintf("fz-%d", i)
			v := []byte(fmt.Sprintf("v-%d-%d", i, seed))
			valueOf[k] = v
			tr = tr.Insert([]byte(k), HashValue(v))
		}
		root := tr.Root()
		// Each selector byte picks a key: < 208 → an existing key (mod
		// size), else a fresh absent key.
		query := make([][]byte, 0, len(sel))
		for i, b := range sel {
			if int(b) < 208 {
				query = append(query, []byte(fmt.Sprintf("fz-%d", int(b)%size)))
			} else {
				query = append(query, []byte(fmt.Sprintf("absent-%d-%d", b, i)))
			}
		}
		mp, err := tr.ProveMulti(query)
		if err != nil {
			t.Fatalf("ProveMulti: %v", err)
		}
		answers := make([]KeyAnswer, 0, len(query))
		for _, k := range query {
			if _, ok := tr.Get(k); ok {
				answers = append(answers, KeyAnswer{Key: k, Value: valueOf[string(k)], Found: true})
			} else {
				answers = append(answers, KeyAnswer{Key: k, Found: false})
			}
		}
		if err := VerifyMulti(root, answers, mp); err != nil {
			t.Fatalf("honest multi-proof rejected: %v", err)
		}
		// Differential: per-key proofs agree on every verdict.
		for _, a := range answers {
			if a.Found {
				p, vh, err := tr.Prove(a.Key)
				if err != nil || vh != HashValue(a.Value) {
					t.Fatalf("Prove disagrees for %q: %v", a.Key, err)
				}
				if err := VerifyProof(root, a.Key, a.Value, p); err != nil {
					t.Fatalf("VerifyProof disagrees for %q: %v", a.Key, err)
				}
			} else {
				ap, err := tr.ProveAbsent(a.Key)
				if err != nil {
					t.Fatalf("ProveAbsent disagrees for %q: %v", a.Key, err)
				}
				if err := VerifyAbsence(root, a.Key, ap); err != nil {
					t.Fatalf("VerifyAbsence disagrees for %q: %v", a.Key, err)
				}
			}
		}
		// Flipping one answer's verdict must be rejected.
		flipped := append([]KeyAnswer(nil), answers...)
		i := rng.Intn(len(flipped))
		if flipped[i].Found {
			flipped[i] = KeyAnswer{Key: flipped[i].Key, Found: false}
		} else {
			flipped[i] = KeyAnswer{Key: flipped[i].Key, Value: []byte("forged"), Found: true}
		}
		if err := VerifyMulti(root, flipped, mp); err == nil {
			t.Fatalf("flipped verdict for %q accepted", flipped[i].Key)
		}
	})
}
