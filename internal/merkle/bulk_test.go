package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

// applySequential is the reference implementation: one Insert per update.
func applySequential(t *Tree, updates map[string]Digest) *Tree {
	out := t
	for k, vh := range updates {
		out = out.Insert([]byte(k), vh)
	}
	return out
}

// TestApplyBulkMatchesSequentialProperty: for randomized update sets over
// randomized base trees — including same-key overwrites, keys already in
// the base, and empty update sets — the bulk merge produces bit-identical
// roots and sizes to sequential insertion.
func TestApplyBulkMatchesSequentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		base := New()
		for i, n := 0, rng.Intn(60); i < n; i++ {
			base = base.Insert(
				[]byte(fmt.Sprintf("key-%d", rng.Intn(80))),
				HashValue([]byte{byte(rng.Intn(256))}),
			)
		}
		updates := make(map[string]Digest)
		for i, n := 0, rng.Intn(50); i < n; i++ {
			// Overlapping key ranges provoke overwrites of both base keys
			// and other updates.
			updates[fmt.Sprintf("key-%d", rng.Intn(120))] = HashValue([]byte{byte(rng.Intn(256))})
		}
		seq := applySequential(base, updates)
		bulk := base.Apply(updates)
		if seq.Root() != bulk.Root() {
			t.Fatalf("trial %d: bulk root differs from sequential (base %d keys, %d updates)",
				trial, base.Len(), len(updates))
		}
		if seq.Len() != bulk.Len() {
			t.Fatalf("trial %d: bulk size %d, sequential %d", trial, bulk.Len(), seq.Len())
		}
		if len(updates) == 0 && bulk != base {
			t.Fatalf("trial %d: empty update set must return the receiver", trial)
		}
		// The base version must be untouched (persistence).
		if got := applySequential(New(), nil); got.Len() != 0 {
			t.Fatal("sanity")
		}
	}
}

// TestApplyBulkDuplicateKeysKeepLast: ApplyBulk on a raw update slice with
// duplicate key hashes keeps the last occurrence, like sequential
// insertion in slice order.
func TestApplyBulkDuplicateKeysKeepLast(t *testing.T) {
	kh := HashKey([]byte("dup"))
	first, last := HashValue([]byte("first")), HashValue([]byte("last"))
	got := New().ApplyBulk([]Update{{kh, first}, {kh, last}})
	want := New().InsertHashed(kh, first).InsertHashed(kh, last)
	if got.Root() != want.Root() {
		t.Fatal("duplicate key did not keep the last value")
	}
	if got.Len() != 1 {
		t.Fatalf("size %d after duplicate-key bulk apply, want 1", got.Len())
	}
}

// TestApplyBulkProofsVerify: membership and absence proofs issued by
// bulk-built versions verify against their roots — the bulk merge must
// produce the same canonical structure the proof verifier assumes.
func TestApplyBulkProofsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := New()
	for i := 0; i < 40; i++ {
		base = base.Insert([]byte(fmt.Sprintf("base-%d", i)), HashValue([]byte("old")))
	}
	updates := make(map[string]Digest)
	values := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("bulk-%d", rng.Intn(120))
		v := []byte(fmt.Sprintf("v-%d", i))
		updates[k] = HashValue(v)
		values[k] = v
	}
	tree := base.Apply(updates)
	root := tree.Root()
	for k, v := range values {
		proof, vh, err := tree.Prove([]byte(k))
		if err != nil {
			t.Fatalf("prove %q: %v", k, err)
		}
		if vh != HashValue(v) {
			t.Fatalf("value hash mismatch for %q", k)
		}
		if err := VerifyProof(root, []byte(k), v, proof); err != nil {
			t.Fatalf("verify %q: %v", k, err)
		}
	}
	for _, absent := range []string{"never-written", "bulk-99999", "base-40"} {
		ap, err := tree.ProveAbsent([]byte(absent))
		if err != nil {
			t.Fatalf("prove absent %q: %v", absent, err)
		}
		if err := VerifyAbsence(root, []byte(absent), ap); err != nil {
			t.Fatalf("verify absence %q: %v", absent, err)
		}
	}
}

// TestApplyBulkHashesFewerNodes: for a 100-key batch over a populated
// tree, the single-pass merge computes strictly fewer node hashes than
// sequential insertion — the point of the optimization.
func TestApplyBulkHashesFewerNodes(t *testing.T) {
	base := New()
	for i := 0; i < 1000; i++ {
		base = base.Insert([]byte(fmt.Sprintf("base-%d", i)), HashValue([]byte("v")))
	}
	updates := make(map[string]Digest, 100)
	for i := 0; i < 100; i++ {
		updates[fmt.Sprintf("hot-%d", i)] = HashValue([]byte("w"))
	}
	start := HashOps()
	_ = applySequential(base, updates)
	seqOps := HashOps() - start

	start = HashOps()
	_ = base.Apply(updates)
	bulkOps := HashOps() - start

	if bulkOps >= seqOps {
		t.Fatalf("bulk apply hashed %d nodes, sequential %d — expected strictly fewer", bulkOps, seqOps)
	}
	t.Logf("hash ops for 100-key batch: sequential=%d bulk=%d (%.1fx fewer)",
		seqOps, bulkOps, float64(seqOps)/float64(bulkOps))
}
