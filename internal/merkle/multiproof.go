package merkle

import (
	"errors"
	"fmt"
)

// MultiProof is a compact proof for N keys in one tree version: the union
// of the keys' lookup paths, pruned — every subtree no path enters is
// replaced by its single hash, so a sibling shared by several paths is
// shipped (and re-hashed by the verifier) once instead of once per key.
// Membership and absence are co-proved by the same structure: the proof
// pins the full pruned shape of the certified tree along every path, so a
// key either terminates at its own leaf (membership) or at the leaf the
// canonical trie forces its bits to (absence).
//
// The proof is a preorder flattening. Leaves holding a REQUESTED key carry
// no digests at all (MultiLeafRef): the verifier recomputes the leaf hash
// from the raw key and served value, which is what binds the answer to the
// certified root. Leaves off the requested set (absence terminals) ship
// their key and value hashes like AbsenceProof does.
type MultiProof struct {
	Nodes []MultiNode
}

// MultiNode kinds. An inner node on ≥1 lookup path is materialized; when
// only one of its children is entered, the other is pruned to its hash and
// packed into the same node, so a single-key path costs exactly one
// (bit, sibling) pair per level — the same as a ProofStep.
const (
	// MultiInner: both children are entered; they follow in preorder,
	// left then right. Bit is valid.
	MultiInner uint8 = 1
	// MultiPrunedLeft: the left child is pruned to Sibling; the right
	// child follows. Bit is valid.
	MultiPrunedLeft uint8 = 2
	// MultiPrunedRight: the right child is pruned to Sibling; the left
	// child follows. Bit is valid.
	MultiPrunedRight uint8 = 3
	// MultiLeafRef: a leaf holding one of the requested keys. No payload;
	// the verifier resolves its hashes from the served answer.
	MultiLeafRef uint8 = 4
	// MultiLeafOther: a leaf holding an unrequested key (an absence
	// terminal). KeyHash/ValHash are valid.
	MultiLeafOther uint8 = 5
)

// MultiNode is one node of the flattened pruned subtree. Which fields are
// meaningful depends on Kind (see the kind constants).
type MultiNode struct {
	Kind    uint8
	Bit     int16
	Sibling Digest
	KeyHash Digest
	ValHash Digest
}

// ErrNoKeys is returned by ProveMulti for an empty key set.
var ErrNoKeys = errors.New("merkle: multi-proof over zero keys")

// ProveMulti produces one MultiProof covering every key (duplicates
// collapse). No hashing happens here: the proof collects hashes the tree
// already holds. The empty tree yields an empty proof — EmptyRoot is
// well known, so the proof that nothing is present is the root itself.
func (t *Tree) ProveMulti(keys [][]byte) (MultiProof, error) {
	if len(keys) == 0 {
		return MultiProof{}, ErrNoKeys
	}
	if t.root == nil {
		return MultiProof{}, nil
	}
	khs := make([]Digest, 0, len(keys))
	requested := make(map[Digest]bool, len(keys))
	for _, k := range keys {
		kh := HashKey(k)
		if !requested[kh] {
			requested[kh] = true
			khs = append(khs, kh)
		}
	}
	nodes := make([]MultiNode, 0, 2*len(khs))
	var rec func(n *node, reach []Digest)
	rec = func(n *node, reach []Digest) {
		if n.bit < 0 {
			if requested[n.keyHash] {
				nodes = append(nodes, MultiNode{Kind: MultiLeafRef})
			} else {
				nodes = append(nodes, MultiNode{Kind: MultiLeafOther, KeyHash: n.keyHash, ValHash: n.valHash})
			}
			return
		}
		// Partition the reaching keys by this node's crit bit. Unlike
		// ApplyBulk's splitAt, absent keys routed through the node need
		// not share the subtree's prefix, so partition by the bit itself.
		var zeros, ones []Digest
		for _, kh := range reach {
			if bitAt(kh, int(n.bit)) == 0 {
				zeros = append(zeros, kh)
			} else {
				ones = append(ones, kh)
			}
		}
		switch {
		case len(ones) == 0:
			nodes = append(nodes, MultiNode{Kind: MultiPrunedRight, Bit: n.bit, Sibling: n.right.hash})
			rec(n.left, zeros)
		case len(zeros) == 0:
			nodes = append(nodes, MultiNode{Kind: MultiPrunedLeft, Bit: n.bit, Sibling: n.left.hash})
			rec(n.right, ones)
		default:
			nodes = append(nodes, MultiNode{Kind: MultiInner, Bit: n.bit})
			rec(n.left, zeros)
			rec(n.right, ones)
		}
	}
	rec(t.root, khs)
	return MultiProof{Nodes: nodes}, nil
}

// KeyAnswer is one key's claimed outcome, as served: the raw key, the
// value (meaningful when Found), and whether the key exists in the
// snapshot. VerifyMulti checks every answer against one proof.
type KeyAnswer struct {
	Key   []byte
	Value []byte
	Found bool
}

// mpNode is the parsed form of a MultiProof during verification.
type mpNode struct {
	bit         int16
	pruned      bool
	leaf        bool
	ref         bool // leaf bound to a requested key; hashes resolved from answers
	assigned    bool
	hash        Digest
	keyHash     Digest
	valHash     Digest
	left, right *mpNode
}

// VerifyMulti checks that proof authenticates every answer under root.
// Structure first: the flattened nodes must parse to exactly one tree with
// strictly increasing crit-bit indices root-to-leaf (the invariant that
// stops subtree splicing, as in VerifyProof). Then each answer walks the
// parsed tree by its key's bits; entering a pruned subtree is a
// verification failure (the proof does not cover that key). Found answers
// bind their key/value hashes to the leaf they land on; absent answers
// must land on a leaf holding a different key. Finally the pruned tree is
// folded bottom-up — each materialized node hashed exactly once — and
// compared against the certified root.
func VerifyMulti(root Digest, answers []KeyAnswer, proof MultiProof) error {
	if len(proof.Nodes) == 0 {
		// Only the empty tree is proven by an empty proof.
		if root != EmptyRoot {
			return fmt.Errorf("%w: empty multi-proof for non-empty root", ErrProofShape)
		}
		for _, a := range answers {
			if a.Found {
				return fmt.Errorf("%w: membership of %q claimed in empty tree", ErrBadProof, a.Key)
			}
		}
		return nil
	}
	top, rest, err := parseMulti(proof.Nodes, 0)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing nodes", ErrProofShape, len(rest))
	}
	// Resolve leaves from the answers: Found answers assign hashes to the
	// ref leaves they land on; absent answers are checked afterwards so a
	// later assignment cannot retroactively invalidate them.
	for _, a := range answers {
		if !a.Found {
			continue
		}
		kh := HashKey(a.Key)
		leaf := walkMulti(top, kh)
		if leaf == nil {
			return fmt.Errorf("%w: path for key %q pruned from proof", ErrBadProof, a.Key)
		}
		vh := HashValue(a.Value)
		if !leaf.ref {
			// A leaf shipped with explicit hashes can still prove
			// membership — but only of exactly this binding.
			if leaf.keyHash != kh || leaf.valHash != vh {
				return fmt.Errorf("%w: leaf does not bind %q to the served value", ErrBadProof, a.Key)
			}
			continue
		}
		if leaf.assigned && (leaf.keyHash != kh || leaf.valHash != vh) {
			return fmt.Errorf("%w: one leaf claimed for two bindings", ErrBadProof)
		}
		leaf.assigned = true
		leaf.keyHash, leaf.valHash = kh, vh
	}
	for _, a := range answers {
		if a.Found {
			continue
		}
		kh := HashKey(a.Key)
		leaf := walkMulti(top, kh)
		if leaf == nil {
			return fmt.Errorf("%w: path for key %q pruned from proof", ErrBadProof, a.Key)
		}
		if leaf.ref && !leaf.assigned {
			// An unresolved ref leaf has no hashes to fold; the server
			// must ship absence terminals as MultiLeafOther.
			return fmt.Errorf("%w: absence of %q rests on an unresolved leaf", ErrProofShape, a.Key)
		}
		if leaf.keyHash == kh {
			return fmt.Errorf("%w: terminal leaf holds %q itself", ErrBadProof, a.Key)
		}
	}
	h, err := foldMulti(top)
	if err != nil {
		return err
	}
	if h != root {
		return ErrBadProof
	}
	return nil
}

// parseMulti consumes one subtree from the flattened preorder, enforcing
// kind validity and strictly increasing crit-bit indices (minBit). It
// returns the parsed subtree and the unconsumed tail.
func parseMulti(nodes []MultiNode, minBit int16) (*mpNode, []MultiNode, error) {
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("%w: truncated multi-proof", ErrProofShape)
	}
	nd := nodes[0]
	rest := nodes[1:]
	switch nd.Kind {
	case MultiLeafRef:
		return &mpNode{bit: -1, leaf: true, ref: true}, rest, nil
	case MultiLeafOther:
		return &mpNode{bit: -1, leaf: true, keyHash: nd.KeyHash, valHash: nd.ValHash}, rest, nil
	case MultiInner, MultiPrunedLeft, MultiPrunedRight:
		if nd.Bit < minBit || nd.Bit >= numBits {
			return nil, nil, fmt.Errorf("%w: crit bit %d out of order", ErrProofShape, nd.Bit)
		}
		n := &mpNode{bit: nd.Bit}
		var err error
		switch nd.Kind {
		case MultiInner:
			if n.left, rest, err = parseMulti(rest, nd.Bit+1); err != nil {
				return nil, nil, err
			}
			if n.right, rest, err = parseMulti(rest, nd.Bit+1); err != nil {
				return nil, nil, err
			}
		case MultiPrunedLeft:
			n.left = &mpNode{bit: -1, pruned: true, hash: nd.Sibling}
			if n.right, rest, err = parseMulti(rest, nd.Bit+1); err != nil {
				return nil, nil, err
			}
		case MultiPrunedRight:
			n.right = &mpNode{bit: -1, pruned: true, hash: nd.Sibling}
			if n.left, rest, err = parseMulti(rest, nd.Bit+1); err != nil {
				return nil, nil, err
			}
		}
		return n, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown node kind %d", ErrProofShape, nd.Kind)
	}
}

// walkMulti descends by the key hash's bits to the terminal node, or nil
// when the path enters a pruned subtree.
func walkMulti(n *mpNode, kh Digest) *mpNode {
	for !n.leaf {
		if n.pruned {
			return nil
		}
		if bitAt(kh, int(n.bit)) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// foldMulti computes the subtree hash bottom-up; every materialized node
// is hashed exactly once (via leafHash/innerHash, so HashOps counts the
// verification work).
func foldMulti(n *mpNode) (Digest, error) {
	if n.pruned {
		return n.hash, nil
	}
	if n.leaf {
		if n.ref && !n.assigned {
			// Shape error, not a hash mismatch: the server shipped a leaf
			// it claimed was a requested key's, but no served answer
			// resolves it.
			return Digest{}, fmt.Errorf("%w: unresolved leaf in multi-proof", ErrProofShape)
		}
		return leafHash(n.keyHash, n.valHash), nil
	}
	l, err := foldMulti(n.left)
	if err != nil {
		return Digest{}, err
	}
	r, err := foldMulti(n.right)
	if err != nil {
		return Digest{}, err
	}
	return innerHash(n.bit, l, r), nil
}
