package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testRing(t *testing.T, clusters, replicas int, seed uint64) (*KeyRing, map[NodeID]KeyPair) {
	t.Helper()
	ring := NewKeyRing()
	pairs := make(map[NodeID]KeyPair)
	for c := 0; c < clusters; c++ {
		for r := 0; r < replicas; r++ {
			id := NodeID{Cluster: int32(c), Replica: int32(r)}
			kp := DeriveKeyPair(id, seed)
			ring.Add(id, kp.Public)
			pairs[id] = kp
		}
	}
	return ring, pairs
}

func TestDeriveKeyPairDeterministic(t *testing.T) {
	id := NodeID{Cluster: 3, Replica: 1}
	a := DeriveKeyPair(id, 42)
	b := DeriveKeyPair(id, 42)
	if !bytes.Equal(a.Public, b.Public) {
		t.Fatal("same id and seed must derive the same key")
	}
	c := DeriveKeyPair(id, 43)
	if bytes.Equal(a.Public, c.Public) {
		t.Fatal("different system seeds must derive different keys")
	}
	d := DeriveKeyPair(NodeID{Cluster: 3, Replica: 2}, 42)
	if bytes.Equal(a.Public, d.Public) {
		t.Fatal("different nodes must derive different keys")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	kp := DeriveKeyPair(NodeID{}, 7)
	msg := []byte("batch header")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("other"), sig) {
		t.Fatal("signature over different message accepted")
	}
	sig[0] ^= 0xff
	if Verify(kp.Public, msg, sig) {
		t.Fatal("tampered signature accepted")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	kp := DeriveKeyPair(NodeID{}, 7)
	if Verify(kp.Public[:10], []byte("m"), make([]byte, 64)) {
		t.Fatal("short public key accepted")
	}
	if Verify(kp.Public, []byte("m"), make([]byte, 10)) {
		t.Fatal("short signature accepted")
	}
}

func TestCertificateQuorum(t *testing.T) {
	ring, pairs := testRing(t, 2, 4, 1)
	msg := []byte("root r2 | cd [2,0] | lce 0")

	cert := Certificate{Cluster: 0}
	for r := 0; r < 2; r++ {
		id := NodeID{Cluster: 0, Replica: int32(r)}
		cert.Signatures = append(cert.Signatures, SignCertificate(pairs[id], id, msg))
	}
	// f=1 for a 4-replica cluster: threshold f+1 = 2.
	if err := VerifyCertificate(ring, cert, msg, 2); err != nil {
		t.Fatalf("valid f+1 certificate rejected: %v", err)
	}
	if err := VerifyCertificate(ring, cert, msg, 3); err == nil {
		t.Fatal("certificate below threshold accepted")
	}
}

func TestCertificateRejectsDuplicateSigners(t *testing.T) {
	ring, pairs := testRing(t, 1, 4, 1)
	msg := []byte("m")
	id := NodeID{Cluster: 0, Replica: 0}
	sig := SignCertificate(pairs[id], id, msg)
	cert := Certificate{Cluster: 0, Signatures: []Signature{sig, sig}}
	if err := VerifyCertificate(ring, cert, msg, 2); err == nil {
		t.Fatal("duplicate signer accepted toward quorum")
	}
}

func TestCertificateRejectsWrongCluster(t *testing.T) {
	ring, pairs := testRing(t, 2, 4, 1)
	msg := []byte("m")
	id0 := NodeID{Cluster: 0, Replica: 0}
	id1 := NodeID{Cluster: 1, Replica: 0}
	cert := Certificate{Cluster: 0, Signatures: []Signature{
		SignCertificate(pairs[id0], id0, msg),
		SignCertificate(pairs[id1], id1, msg), // foreign cluster
	}}
	if err := VerifyCertificate(ring, cert, msg, 2); err == nil {
		t.Fatal("cross-cluster signature accepted")
	}
}

func TestCertificateRejectsUnknownSigner(t *testing.T) {
	ring, _ := testRing(t, 1, 4, 1)
	msg := []byte("m")
	ghost := NodeID{Cluster: 0, Replica: 99}
	kp := DeriveKeyPair(ghost, 1)
	cert := Certificate{Cluster: 0, Signatures: []Signature{SignCertificate(kp, ghost, msg)}}
	if err := VerifyCertificate(ring, cert, msg, 1); err == nil {
		t.Fatal("unregistered signer accepted")
	}
}

func TestCertificateRejectsForgedSignature(t *testing.T) {
	ring, pairs := testRing(t, 1, 4, 1)
	msg := []byte("m")
	id := NodeID{Cluster: 0, Replica: 0}
	sig := SignCertificate(pairs[id], id, msg)
	sig.Sig[3] ^= 1
	cert := Certificate{Cluster: 0, Signatures: []Signature{sig}}
	if err := VerifyCertificate(ring, cert, msg, 1); err == nil {
		t.Fatal("forged signature accepted")
	}
}

func TestCertificateRejectsEmptyMessage(t *testing.T) {
	ring, _ := testRing(t, 1, 4, 1)
	if err := VerifyCertificate(ring, Certificate{Cluster: 0}, nil, 0); err == nil {
		t.Fatal("empty message accepted")
	}
}

func TestKeyRingClusterSize(t *testing.T) {
	ring, _ := testRing(t, 3, 7, 9)
	if got := ring.ClusterSize(1); got != 7 {
		t.Fatalf("ClusterSize = %d, want 7", got)
	}
	if got := ring.ClusterSize(42); got != 0 {
		t.Fatalf("ClusterSize for absent cluster = %d, want 0", got)
	}
}

func TestHashConcatFraming(t *testing.T) {
	// The framing must distinguish part boundaries: ("ab","c") != ("a","bc").
	if HashConcat([]byte("ab"), []byte("c")) == HashConcat([]byte("a"), []byte("bc")) {
		t.Fatal("HashConcat is ambiguous across part boundaries")
	}
	if HashConcat([]byte("abc")) == HashConcat([]byte("ab"), []byte("c")) {
		t.Fatal("HashConcat ignores part count")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	kp := DeriveKeyPair(NodeID{Cluster: 1}, 99)
	other := DeriveKeyPair(NodeID{Cluster: 2}, 99)
	f := func(msg []byte) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		sig := kp.Sign(msg)
		return Verify(kp.Public, msg, sig) && !Verify(other.Public, msg, sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashConcatProperty(t *testing.T) {
	// Equal inputs hash equal; appending a part changes the digest.
	f := func(a, b []byte) bool {
		h1 := HashConcat(a, b)
		h2 := HashConcat(a, b)
		h3 := HashConcat(a, b, []byte{1})
		return h1 == h2 && h1 != h3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
