// Package cryptoutil provides the cryptographic substrate for TransEdge:
// per-node Ed25519 identities, signed messages, and quorum certificates.
//
// Every edge node owns a public/private key pair used in all inter-node
// communication (paper Sec. 2, "Interface"). Batch certificates are sets of
// f+1 replica signatures over the canonical encoding of a batch header,
// which is what lets a single untrusted node convince a client that a
// Merkle root (and the CD vector and LCE attached to it) was agreed upon
// by the cluster.
package cryptoutil

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"
)

// NodeID identifies a replica within the whole system.
type NodeID struct {
	Cluster int32 // partition / cluster index
	Replica int32 // replica index within the cluster
}

func (n NodeID) String() string {
	return fmt.Sprintf("c%d/r%d", n.Cluster, n.Replica)
}

// KeyPair is a node's Ed25519 identity.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewKeyPairFromSeed derives a key pair deterministically from a 32-byte
// seed. The simulation derives seeds from node IDs so that a system can be
// reconstructed reproducibly; real deployments would use crypto/rand.
func NewKeyPairFromSeed(seed [32]byte) KeyPair {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// DeriveKeyPair builds the deterministic simulation identity for a node.
func DeriveKeyPair(id NodeID, systemSeed uint64) KeyPair {
	var buf [48]byte
	copy(buf[:], "transedge-node-key")
	binary.BigEndian.PutUint64(buf[18:], systemSeed)
	binary.BigEndian.PutUint32(buf[26:], uint32(id.Cluster))
	binary.BigEndian.PutUint32(buf[30:], uint32(id.Replica))
	return NewKeyPairFromSeed(sha256.Sum256(buf[:]))
}

// Sign signs msg with the node's private key.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// KeyRing holds the public keys of every replica in the system, indexed by
// cluster and replica. Clients and clusters use it to validate signatures
// and certificates coming from any partition.
type KeyRing struct {
	keys map[NodeID]ed25519.PublicKey
	// replicasPerCluster records cluster sizes so quorum thresholds can be
	// validated per cluster.
	replicasPerCluster map[int32]int32
}

// NewKeyRing creates an empty key ring.
func NewKeyRing() *KeyRing {
	return &KeyRing{
		keys:               make(map[NodeID]ed25519.PublicKey),
		replicasPerCluster: make(map[int32]int32),
	}
}

// Add registers a node's public key.
func (r *KeyRing) Add(id NodeID, pub ed25519.PublicKey) {
	r.keys[id] = pub
	if id.Replica+1 > r.replicasPerCluster[id.Cluster] {
		r.replicasPerCluster[id.Cluster] = id.Replica + 1
	}
}

// PublicKey returns the registered key for id, or nil if unknown.
func (r *KeyRing) PublicKey(id NodeID) ed25519.PublicKey {
	return r.keys[id]
}

// ClusterSize returns the number of registered replicas in a cluster.
func (r *KeyRing) ClusterSize(cluster int32) int {
	return int(r.replicasPerCluster[cluster])
}

// Errors returned by certificate verification.
var (
	ErrTooFewSignatures  = errors.New("cryptoutil: certificate has too few signatures")
	ErrUnknownSigner     = errors.New("cryptoutil: certificate signed by unknown node")
	ErrWrongCluster      = errors.New("cryptoutil: signer from wrong cluster")
	ErrDuplicateSigner   = errors.New("cryptoutil: duplicate signer in certificate")
	ErrInvalidSignature  = errors.New("cryptoutil: invalid signature in certificate")
	ErrEmptyMessage      = errors.New("cryptoutil: empty message")
	ErrMalformedEncoding = errors.New("cryptoutil: malformed certificate encoding")
)

// Signature is a single replica's signature over some canonical message.
type Signature struct {
	Signer NodeID
	Sig    []byte
}

// Certificate is a quorum certificate: a set of signatures by distinct
// replicas of one cluster over the same message. TransEdge attaches an
// f+1 certificate to every committed batch header; because at most f
// replicas are byzantine, f+1 matching signatures prove at least one
// honest replica vouches for the content.
type Certificate struct {
	Cluster    int32
	Signatures []Signature
}

// SignCertificate produces a single-signature certificate fragment.
func SignCertificate(kp KeyPair, id NodeID, msg []byte) Signature {
	return Signature{Signer: id, Sig: kp.Sign(msg)}
}

// fastVerifyDisabled reverts VerifyCertificate to the pre-optimization
// behavior (serial, every signature verified). A bench/test knob: the
// hotpath experiment flips it to record before/after rows.
var fastVerifyDisabled atomic.Bool

// SetFastVerify toggles the early-exit/parallel certificate verification
// fast path (on by default).
func SetFastVerify(on bool) { fastVerifyDisabled.Store(!on) }

// maxVerifyWorkers bounds the signature-verification worker pool.
var maxVerifyWorkers = runtime.GOMAXPROCS(0)

// parallelVerifyMin is the smallest signature batch worth fanning out;
// below it the goroutine handoff costs more than a serial loop.
const parallelVerifyMin = 3

// SigCheck is one independent Ed25519 verification job.
type SigCheck struct {
	Pub ed25519.PublicKey
	Msg []byte
	Sig []byte
}

// VerifyEach verifies independent signatures, fanning out across a
// bounded worker pool when the batch is large enough, and reports each
// signature's validity. The input order is preserved in the result.
func VerifyEach(checks []SigCheck) []bool {
	ok := make([]bool, len(checks))
	workers := maxVerifyWorkers
	if workers > len(checks) {
		workers = len(checks)
	}
	if len(checks) < parallelVerifyMin || workers < 2 {
		for i, c := range checks {
			ok[i] = Verify(c.Pub, c.Msg, c.Sig)
		}
		return ok
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(checks) {
					return
				}
				c := checks[i]
				ok[i] = Verify(c.Pub, c.Msg, c.Sig)
			}
		}()
	}
	wg.Wait()
	return ok
}

// VerifyCertificate checks that cert carries at least threshold valid
// signatures over msg by distinct replicas of cert.Cluster, all registered
// in the key ring.
//
// Signatures are examined in order and verification stops as soon as
// threshold valid signatures are counted. This is a deliberate relaxation
// over the legacy path: signatures past the threshold prefix are neither
// verified nor structurally checked, so a certificate whose first
// threshold entries are valid is accepted even if trailing entries are
// malformed — the quorum proof the protocol needs is already in hand.
// When the threshold is large enough, the Ed25519 checks fan out across
// a bounded worker pool.
func VerifyCertificate(ring *KeyRing, cert Certificate, msg []byte, threshold int) error {
	if fastVerifyDisabled.Load() {
		return verifyCertificateLegacy(ring, cert, msg, threshold)
	}
	if len(msg) == 0 {
		return ErrEmptyMessage
	}
	if len(cert.Signatures) < threshold {
		return fmt.Errorf("%w: got %d, need %d", ErrTooFewSignatures, len(cert.Signatures), threshold)
	}
	if threshold <= 0 {
		return nil
	}
	// Structural pass over the prefix needed to reach the threshold:
	// cluster membership, distinct signers, registered keys. Cheap map
	// work compared to Ed25519, so it runs serially.
	seen := make(map[NodeID]bool, threshold)
	checks := make([]SigCheck, 0, threshold)
	signers := make([]NodeID, 0, threshold)
	for _, s := range cert.Signatures {
		if len(checks) == threshold {
			break
		}
		if s.Signer.Cluster != cert.Cluster {
			return fmt.Errorf("%w: %v in certificate for cluster %d", ErrWrongCluster, s.Signer, cert.Cluster)
		}
		if seen[s.Signer] {
			return fmt.Errorf("%w: %v", ErrDuplicateSigner, s.Signer)
		}
		seen[s.Signer] = true
		pub := ring.PublicKey(s.Signer)
		if pub == nil {
			return fmt.Errorf("%w: %v", ErrUnknownSigner, s.Signer)
		}
		checks = append(checks, SigCheck{Pub: pub, Msg: msg, Sig: s.Sig})
		signers = append(signers, s.Signer)
	}
	if len(checks) < threshold {
		return fmt.Errorf("%w: %d valid, need %d", ErrTooFewSignatures, len(checks), threshold)
	}
	for i, ok := range VerifyEach(checks) {
		if !ok {
			return fmt.Errorf("%w: from %v", ErrInvalidSignature, signers[i])
		}
	}
	return nil
}

// verifyCertificateLegacy is the original serial implementation that
// verifies every signature in the certificate, kept for before/after
// benchmarking.
func verifyCertificateLegacy(ring *KeyRing, cert Certificate, msg []byte, threshold int) error {
	if len(msg) == 0 {
		return ErrEmptyMessage
	}
	if len(cert.Signatures) < threshold {
		return fmt.Errorf("%w: got %d, need %d", ErrTooFewSignatures, len(cert.Signatures), threshold)
	}
	seen := make(map[NodeID]bool, len(cert.Signatures))
	valid := 0
	for _, s := range cert.Signatures {
		if s.Signer.Cluster != cert.Cluster {
			return fmt.Errorf("%w: %v in certificate for cluster %d", ErrWrongCluster, s.Signer, cert.Cluster)
		}
		if seen[s.Signer] {
			return fmt.Errorf("%w: %v", ErrDuplicateSigner, s.Signer)
		}
		seen[s.Signer] = true
		pub := ring.PublicKey(s.Signer)
		if pub == nil {
			return fmt.Errorf("%w: %v", ErrUnknownSigner, s.Signer)
		}
		if !Verify(pub, msg, s.Sig) {
			return fmt.Errorf("%w: from %v", ErrInvalidSignature, s.Signer)
		}
		valid++
	}
	if valid < threshold {
		return fmt.Errorf("%w: %d valid, need %d", ErrTooFewSignatures, valid, threshold)
	}
	return nil
}

// Digest is a SHA-256 content digest used throughout the protocol.
type Digest [32]byte

// Hash computes the digest of data.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// hasherPool recycles SHA-256 states so the hashing hot paths (batch
// section digests, Merkle node hashes) do not allocate one per call.
var hasherPool = sync.Pool{New: func() any { return sha256.New() }}

// HashConcat hashes the concatenation of parts with length framing, so the
// result is unambiguous with respect to part boundaries.
func HashConcat(parts ...[]byte) Digest {
	h := hasherPool.Get().(hash.Hash)
	h.Reset()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	hasherPool.Put(h)
	return d
}

// ConcatHasher streams length-framed parts into one digest, producing the
// same result as HashConcat over the same parts without materializing the
// part list. Obtain with NewConcatHasher, finish with Sum (which recycles
// the underlying state — the hasher must not be reused afterwards).
type ConcatHasher struct {
	h hash.Hash
}

// NewConcatHasher returns a hasher backed by the shared pool.
func NewConcatHasher() ConcatHasher {
	h := hasherPool.Get().(hash.Hash)
	h.Reset()
	return ConcatHasher{h: h}
}

// Part frames and absorbs one part.
func (c ConcatHasher) Part(p []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
	c.h.Write(lenBuf[:])
	c.h.Write(p)
}

// Sum finalizes the digest and returns the hash state to the pool.
func (c ConcatHasher) Sum() Digest {
	var d Digest
	c.h.Sum(d[:0])
	hasherPool.Put(c.h)
	return d
}
