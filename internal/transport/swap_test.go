package transport

import (
	"sync"
	"testing"
	"time"
)

// TestSwapUnderLoad hammers SetLatency/SetFilter/Stop against concurrent
// senders with delayed deliveries in flight. Run under -race it pins the
// dispatch/Stop ordering: the delayed-delivery WaitGroup increment must
// never race Stop's Wait (the bug this test was written against), and
// mid-run filter/latency swaps must never tear.
func TestSwapUnderLoad(t *testing.T) {
	for round := 0; round < 8; round++ {
		n := NewNetwork()
		a := NodeID{Cluster: 0, Replica: 0}
		b := NodeID{Cluster: 0, Replica: 1}
		n.Register(a)
		inbox := n.Register(b)

		// Consume deliveries so mailbox pumps never back up.
		var drained sync.WaitGroup
		drained.Add(1)
		go func() {
			defer drained.Done()
			for range inbox {
			}
		}()

		var senders sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			senders.Add(1)
			go func() {
				defer senders.Done()
				for {
					select {
					case <-stop:
						return
					default:
						n.Send(a, b, "ping")
						n.Broadcast(a, []NodeID{b}, "pong")
					}
				}
			}()
		}
		// Swap the latency model and filter while sends are in flight.
		for i := 0; i < 50; i++ {
			if i%2 == 0 {
				n.SetLatency(func(NodeID, NodeID) time.Duration { return 50 * time.Microsecond })
				n.SetFilter(func(e Envelope) bool { return e.To == b })
			} else {
				n.SetLatency(nil)
				n.SetFilter(nil)
			}
		}
		// Stop while senders still run: dispatch must not register timers
		// after Stop begins waiting on them.
		n.Stop()
		close(stop)
		senders.Wait()
		n.Deregister(b)
		drained.Wait()

		sent := n.Stats.Sent.Load()
		if got := n.Stats.Delivered.Load() + n.Stats.Dropped.Load(); got > sent {
			t.Fatalf("accounting: delivered+dropped %d > sent %d", got, sent)
		}
	}
}
