package transport

import (
	"sync"
	"testing"
	"time"
)

func id(c, r int32) NodeID { return NodeID{Cluster: c, Replica: r} }

func TestSendDeliver(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	in := n.Register(id(0, 1))
	n.Send(id(0, 0), id(0, 1), "hello")
	select {
	case e := <-in:
		if e.Payload != "hello" || e.From != id(0, 0) || e.To != id(0, 1) {
			t.Fatalf("bad envelope: %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestSendToUnregisteredIsDropped(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	n.Send(id(0, 0), id(9, 9), "lost")
	if got := n.Stats.Dropped.Load(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestFIFOWithinLink(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	in := n.Register(id(0, 1))
	const count = 500
	for i := 0; i < count; i++ {
		n.Send(id(0, 0), id(0, 1), i)
	}
	for i := 0; i < count; i++ {
		e := <-in
		if e.Payload.(int) != i {
			t.Fatalf("out of order: got %v at position %d", e.Payload, i)
		}
	}
}

func TestUnboundedMailboxDoesNotBlockSender(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	n.Register(id(0, 1)) // registered but never read until later
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100000; i++ {
			n.Send(id(0, 0), id(0, 1), i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sender blocked on unread mailbox")
	}
}

func TestLatencyInjection(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	n.SetLatency(ClusterLatency(0, 50*time.Millisecond))
	in := n.Register(id(1, 0))
	start := time.Now()
	n.Send(id(0, 0), id(1, 0), "x") // inter-cluster
	<-in
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("inter-cluster delivery took %v, want >= ~50ms", elapsed)
	}
}

func TestClusterLatencyModel(t *testing.T) {
	f := ClusterLatency(time.Millisecond, 100*time.Millisecond)
	if d := f(id(0, 0), id(0, 3)); d != time.Millisecond {
		t.Fatalf("intra-cluster latency = %v", d)
	}
	if d := f(id(0, 0), id(1, 0)); d != 100*time.Millisecond {
		t.Fatalf("inter-cluster latency = %v", d)
	}
	// Client links are treated as remote.
	if d := f(NodeID{Cluster: ClientCluster, Replica: 0}, id(0, 0)); d != 100*time.Millisecond {
		t.Fatalf("client latency = %v", d)
	}
	// Two clients share the pseudo-cluster but are still remote.
	if d := f(NodeID{Cluster: ClientCluster}, NodeID{Cluster: ClientCluster, Replica: 1}); d != 100*time.Millisecond {
		t.Fatalf("client-client latency = %v", d)
	}
}

func TestFilterDropsSilently(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	in := n.Register(id(0, 1))
	n.SetFilter(func(e Envelope) bool { return e.From != id(0, 2) })
	n.Send(id(0, 2), id(0, 1), "dropped")
	n.Send(id(0, 0), id(0, 1), "kept")
	e := <-in
	if e.Payload != "kept" {
		t.Fatalf("filter failed, got %v", e.Payload)
	}
	if got := n.Stats.Dropped.Load(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestBroadcast(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	var ins []<-chan Envelope
	var tos []NodeID
	for r := int32(0); r < 4; r++ {
		tos = append(tos, id(0, r))
		ins = append(ins, n.Register(id(0, r)))
	}
	n.Broadcast(id(1, 0), tos, "b")
	for i, in := range ins {
		select {
		case <-in:
		case <-time.After(time.Second):
			t.Fatalf("replica %d missed broadcast", i)
		}
	}
}

func TestStopCancelsPendingDeliveries(t *testing.T) {
	n := NewNetwork()
	n.SetLatency(func(NodeID, NodeID) time.Duration { return 20 * time.Millisecond })
	in := n.Register(id(0, 1))
	n.Send(id(0, 0), id(0, 1), "late")
	n.Stop()
	// After Stop the mailbox channel must eventually close without panics.
	deadline := time.After(time.Second)
	for {
		select {
		case _, ok := <-in:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("mailbox never closed after Stop")
		}
	}
}

func TestConcurrentSendersRace(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	in := n.Register(id(0, 0))
	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				n.Send(id(1, int32(s)), id(0, 0), i)
			}
		}(s)
	}
	wg.Wait()
	for i := 0; i < senders*perSender; i++ {
		select {
		case <-in:
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d messages delivered", i, senders*perSender)
		}
	}
}

func TestRegisterTwiceReturnsSameChannel(t *testing.T) {
	n := NewNetwork()
	defer n.Stop()
	a := n.Register(id(0, 0))
	b := n.Register(id(0, 0))
	if a != b {
		t.Fatal("Register is not idempotent")
	}
}

// TestMailboxQueueReleasesBackingStorage pins the two-slice queue's
// memory behavior: after a large burst fully drains, neither queue slice
// still grows (pops recycle the arrays instead of resclicing them away),
// and FIFO order holds across the head/tail swaps.
func TestMailboxQueueReleasesBackingStorage(t *testing.T) {
	m := newMailbox()
	const burst = 10000
	for i := 0; i < burst; i++ {
		m.push(Envelope{Payload: i})
	}
	for i := 0; i < burst; i++ {
		e := <-m.out
		if e.Payload.(int) != i {
			t.Fatalf("message %d out of order: got %v", i, e.Payload)
		}
	}
	// Drained: popped slots must hold no payload references (popped
	// envelopes are zeroed so the queue retains nothing), and a second
	// burst must reuse the same arrays without another big growth.
	m.mu.Lock()
	for i := 0; i < m.headPos; i++ {
		if m.head[i].Payload != nil {
			m.mu.Unlock()
			t.Fatalf("popped slot %d still references its payload", i)
		}
	}
	capBefore := cap(m.head) + cap(m.tail)
	m.mu.Unlock()
	for i := 0; i < burst; i++ {
		m.push(Envelope{Payload: i})
	}
	for i := 0; i < burst; i++ {
		if e := <-m.out; e.Payload.(int) != i {
			t.Fatalf("second burst message %d out of order", i)
		}
	}
	m.mu.Lock()
	capAfter := cap(m.head) + cap(m.tail)
	m.mu.Unlock()
	if capAfter > 4*capBefore {
		t.Fatalf("queue arrays not recycled: cap %d -> %d", capBefore, capAfter)
	}
	m.close()
}
