// Package transport provides the simulated network substrate for the
// TransEdge reproduction.
//
// The paper evaluates on five geo-distributed clusters and injects
// 0–500 ms of additional inter-cluster latency (Figs. 8, 12, 13). This
// package reproduces that environment in-process: every node owns an
// unbounded mailbox, and a pluggable latency function delays delivery
// between nodes. A drop filter supports byzantine fault injection
// (silent nodes, partitioned links).
//
// A production deployment would place a TCP/gRPC implementation behind the
// same Send/mailbox interface; the protocol layers above never assume
// in-process delivery.
package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/cryptoutil"
)

// NodeID aliases the system-wide node identity. Clients are addressed with
// Cluster == ClientCluster.
type NodeID = cryptoutil.NodeID

// ClientCluster is the pseudo-cluster index used to address clients.
const ClientCluster int32 = -1

// Envelope is one delivered message.
type Envelope struct {
	From    NodeID
	To      NodeID
	SentAt  time.Time
	Payload any
}

// LatencyFunc returns the one-way delivery delay from one node to another.
type LatencyFunc func(from, to NodeID) time.Duration

// FilterFunc inspects an envelope before delivery; returning false drops
// it. Used to simulate silent byzantine nodes and network partitions.
type FilterFunc func(Envelope) bool

// ClusterLatency builds the latency model used throughout the evaluation:
// a small uniform intra-cluster delay and a larger inter-cluster delay.
// Client links use the inter-cluster delay (clients are remote).
func ClusterLatency(intra, inter time.Duration) LatencyFunc {
	return func(from, to NodeID) time.Duration {
		if from.Cluster == to.Cluster && from.Cluster != ClientCluster {
			return intra
		}
		return inter
	}
}

// ComposeFilters ANDs drop filters: a message is delivered only if every
// non-nil filter passes it. Useful to layer a partition on top of an
// existing byzantine filter without losing either.
func ComposeFilters(filters ...FilterFunc) FilterFunc {
	return func(e Envelope) bool {
		for _, f := range filters {
			if f != nil && !f(e) {
				return false
			}
		}
		return true
	}
}

// SilenceOutbound builds an asymmetric partition around one node: its
// outbound messages to destinations matched by to are dropped while all
// inbound links stay up — the node keeps hearing a cluster that can no
// longer hear it (the nastiest shape for a leader, which keeps believing
// it leads while the rest of the cluster times out on it).
func SilenceOutbound(node NodeID, to func(NodeID) bool) FilterFunc {
	return func(e Envelope) bool {
		return !(e.From == node && to(e.To))
	}
}

// SlowLinks wraps a latency model, adding extra delay on every link
// matched by slow — targeted link degradation rather than a clean cut.
func SlowLinks(base LatencyFunc, extra time.Duration, slow func(from, to NodeID) bool) LatencyFunc {
	return func(from, to NodeID) time.Duration {
		d := base(from, to)
		if slow(from, to) {
			d += extra
		}
		return d
	}
}

// Stats counts network traffic; tests use it to validate the message
// complexity claims (e.g., read-only transactions touch one node per
// partition).
type Stats struct {
	Sent      atomic.Int64
	Delivered atomic.Int64
	Dropped   atomic.Int64
}

// mailbox is an unbounded FIFO queue pumped into a channel, so senders
// never block and protocol logic cannot deadlock on full buffers.
//
// The queue is two slices: pushes append to tail, pops walk head. When
// head is exhausted the slices swap, reusing both backing arrays — O(1)
// amortized with no per-pop reslicing (the seed's `queue = queue[1:]`
// kept the whole backing array, and every popped envelope's payload,
// reachable until the next append reallocated).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	head    []Envelope // pop side: head[headPos:] is the front of the queue
	headPos int
	tail    []Envelope // push side
	out     chan Envelope
	closed  bool
}

func newMailbox() *mailbox {
	m := &mailbox{out: make(chan Envelope, 64)}
	m.cond = sync.NewCond(&m.mu)
	go m.pump()
	return m
}

func (m *mailbox) push(e Envelope) {
	m.mu.Lock()
	if !m.closed {
		m.tail = append(m.tail, e)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// empty reports whether the queue holds no envelopes; callers hold mu.
func (m *mailbox) empty() bool {
	return m.headPos == len(m.head) && len(m.tail) == 0
}

// pop removes the front envelope; callers hold mu and ensure !empty().
func (m *mailbox) pop() Envelope {
	if m.headPos == len(m.head) {
		m.head, m.tail = m.tail, m.head[:0]
		m.headPos = 0
	}
	e := m.head[m.headPos]
	m.head[m.headPos] = Envelope{} // release the payload reference now
	m.headPos++
	return e
}

func (m *mailbox) pump() {
	for {
		m.mu.Lock()
		for m.empty() && !m.closed {
			m.cond.Wait()
		}
		if m.closed && m.empty() {
			m.mu.Unlock()
			close(m.out)
			return
		}
		e := m.pop()
		m.mu.Unlock()
		m.out <- e
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	// Drop whatever is still queued: a closed mailbox models a crashed
	// (or stopped) node, whose undelivered messages are lost.
	m.head, m.tail, m.headPos = nil, nil, 0
	m.cond.Signal()
	m.mu.Unlock()
	// Drain the delivery channel so the pump exits even when the owning
	// event loop already stopped reading (the crash/deregister path);
	// out is closed by the pump once the queue is empty, ending this
	// goroutine too.
	go func() {
		for range m.out {
		}
	}()
}

// Network routes envelopes between registered nodes with configurable
// latency and fault injection. All methods are safe for concurrent use.
type Network struct {
	mu      sync.RWMutex
	boxes   map[NodeID]*mailbox
	latency LatencyFunc
	filter  FilterFunc
	stopped bool
	timers  sync.WaitGroup

	// Stats is exported for tests and the benchmark harness.
	Stats Stats
}

// NewNetwork creates a network with zero latency and no fault filter.
func NewNetwork() *Network {
	return &Network{
		boxes:   make(map[NodeID]*mailbox),
		latency: func(NodeID, NodeID) time.Duration { return 0 },
	}
}

// SetLatency installs the latency model. Safe to call while running.
func (n *Network) SetLatency(f LatencyFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == nil {
		f = func(NodeID, NodeID) time.Duration { return 0 }
	}
	n.latency = f
}

// SetFilter installs a drop filter. Pass nil to clear.
func (n *Network) SetFilter(f FilterFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.filter = f
}

// Register creates the mailbox for id and returns its delivery channel.
// Registering the same id twice returns the existing channel.
func (n *Network) Register(id NodeID) <-chan Envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	if b, ok := n.boxes[id]; ok {
		return b.out
	}
	b := newMailbox()
	n.boxes[id] = b
	return b.out
}

// Deregister tears a node's mailbox down, simulating a crash: queued and
// in-flight envelopes addressed to it are dropped, and a subsequent
// Register(id) starts from an empty mailbox — exactly the message loss a
// real process crash implies, which is what forces a restarted replica
// through the state-transfer path instead of replaying a conveniently
// preserved queue. The old delivery channel is closed once drained.
func (n *Network) Deregister(id NodeID) {
	n.mu.Lock()
	box := n.boxes[id]
	delete(n.boxes, id)
	n.mu.Unlock()
	if box != nil {
		box.close()
	}
}

// Send delivers payload from one node to another, subject to the latency
// model and drop filter. Sends to unregistered nodes are counted as drops.
func (n *Network) Send(from, to NodeID, payload any) {
	n.mu.RLock()
	if n.stopped {
		n.mu.RUnlock()
		return
	}
	box := n.boxes[to]
	lat := n.latency(from, to)
	filter := n.filter
	n.mu.RUnlock()

	env := Envelope{From: from, To: to, SentAt: time.Now(), Payload: payload}
	n.dispatch(env, box, lat, filter)
}

// Broadcast sends payload from one node to every listed destination. The
// network lock is taken and the envelope built once; only the To field
// varies per destination.
func (n *Network) Broadcast(from NodeID, tos []NodeID, payload any) {
	if len(tos) == 0 {
		return
	}
	n.mu.RLock()
	if n.stopped {
		n.mu.RUnlock()
		return
	}
	boxes := make([]*mailbox, len(tos))
	lats := make([]time.Duration, len(tos))
	for i, to := range tos {
		boxes[i] = n.boxes[to]
		lats[i] = n.latency(from, to)
	}
	filter := n.filter
	n.mu.RUnlock()

	env := Envelope{From: from, SentAt: time.Now(), Payload: payload}
	for i, to := range tos {
		env.To = to
		n.dispatch(env, boxes[i], lats[i], filter)
	}
}

// dispatch applies stats, the drop filter, and the latency model to one
// resolved envelope.
func (n *Network) dispatch(env Envelope, box *mailbox, lat time.Duration, filter FilterFunc) {
	n.Stats.Sent.Add(1)
	if box == nil || (filter != nil && !filter(env)) {
		n.Stats.Dropped.Add(1)
		return
	}
	deliver := func() {
		box.push(env)
		n.Stats.Delivered.Add(1)
	}
	if lat <= 0 {
		deliver()
		return
	}
	// The WaitGroup increment must be ordered against Stop: Stop sets
	// stopped under the write lock and then Waits, so checking stopped and
	// Adding under the read lock guarantees no timer is registered after
	// Wait has begun (Add-after-Wait is a WaitGroup violation; the old
	// unlocked Add raced exactly that way with a concurrent Stop).
	n.mu.RLock()
	if n.stopped {
		n.mu.RUnlock()
		n.Stats.Dropped.Add(1)
		return
	}
	n.timers.Add(1)
	n.mu.RUnlock()
	time.AfterFunc(lat, func() {
		defer n.timers.Done()
		n.mu.RLock()
		stopped := n.stopped
		n.mu.RUnlock()
		if !stopped {
			deliver()
		}
	})
}

// Stop shuts the network down: pending deliveries are cancelled and all
// mailboxes are drained and closed.
func (n *Network) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	boxes := make([]*mailbox, 0, len(n.boxes))
	for _, b := range n.boxes {
		boxes = append(boxes, b)
	}
	n.mu.Unlock()

	n.timers.Wait()
	for _, b := range boxes {
		b.close()
	}
}
