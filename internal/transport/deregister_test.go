package transport

import (
	"testing"
	"time"

	"transedge/internal/cryptoutil"
)

// TestDeregisterDropsQueueAndAllowsReRegister: deregistering a node
// simulates a crash — queued messages are lost, the old channel closes,
// and a re-registration starts from an empty mailbox.
func TestDeregisterDropsQueueAndAllowsReRegister(t *testing.T) {
	net := NewNetwork()
	defer net.Stop()
	a := cryptoutil.NodeID{Cluster: 0, Replica: 0}
	b := cryptoutil.NodeID{Cluster: 0, Replica: 1}
	net.Register(a)
	old := net.Register(b)

	net.Send(a, b, "before-crash")
	net.Deregister(b)

	// The old channel must close (possibly after draining in-flight
	// pumps) rather than hang its consumer.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-old:
			if !ok {
				goto closed
			}
		case <-deadline:
			t.Fatal("old mailbox channel never closed")
		}
	}
closed:

	// Messages sent while deregistered are dropped, not buffered.
	net.Send(a, b, "while-down")

	fresh := net.Register(b)
	net.Send(a, b, "after-restart")
	select {
	case env := <-fresh:
		if env.Payload != "after-restart" {
			t.Fatalf("fresh mailbox delivered %v, want the post-restart message", env.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fresh mailbox delivered nothing")
	}
	select {
	case env := <-fresh:
		t.Fatalf("unexpected extra delivery %v", env.Payload)
	case <-time.After(50 * time.Millisecond):
	}
}
