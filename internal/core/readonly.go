package core

import (
	"sort"
	"time"

	"transedge/internal/protocol"
)

// Server side of the snapshot read-only transaction protocol (Sec. 4).
//
// Commit-freedom: a single node serves the whole per-partition answer —
// values, Merkle membership proofs, the certified batch header carrying
// the Merkle root, the CD vector and the LCE — with no coordination.
//
// Non-interference: serving never touches the transaction pipeline; it
// reads immutable log entries and persistent tree versions, so concurrent
// read-write transactions are never blocked or aborted by readers.

// onReadRequest serves a single-key committed read for a read-write
// transaction's read set. Any replica can answer.
func (n *Node) onReadRequest(m *protocol.ReadRequest) {
	v, writer, ok := n.st.Get(m.Key)
	reply := protocol.ReadReply{Key: m.Key, Found: ok}
	if ok {
		reply.Value = v
		reply.Version = writer
	}
	select {
	case m.ReplyTo <- reply:
	default:
	}
}

// onRORequest serves one round of a snapshot read-only transaction.
// Round one (AsOfLCE < 0) answers from the newest committed batch. Round
// two asks for the state whose LCE covers an unsatisfied dependency; if
// that batch has not committed here yet, the request parks until it does
// (the dependency's group is guaranteed to commit — its 2PC decision is
// already final).
func (n *Node) onRORequest(m *protocol.RORequest) {
	target := n.lastBatchID()
	if m.AsOfLCE >= 0 {
		target = n.findBatchWithLCE(m.AsOfLCE)
		if target < 0 {
			n.parked = append(n.parked, parkedRO{
				req:      *m,
				deadline: time.Now().Add(n.cfg.ROParkTimeout),
			})
			return
		}
		n.Metrics.ROSecondRound++
	}
	if target < n.oldestSnapshot {
		// The exact snapshot was pruned; the oldest retained one is
		// newer, so its LCE still covers the requested dependency.
		target = n.oldestSnapshot
	}
	n.serveRO(m, target)
}

// findBatchWithLCE returns the earliest batch whose LCE is at least p, or
// -1 if no such batch has committed yet. LCE is monotone over the log, so
// binary search applies.
func (n *Node) findBatchWithLCE(p int64) int64 {
	i := sort.Search(len(n.log), func(i int) bool { return n.log[i].header.LCE >= p })
	if i == len(n.log) {
		return -1
	}
	return int64(i)
}

// serveRO answers a read-only request from the snapshot of one batch.
func (n *Node) serveRO(m *protocol.RORequest, batchID int64) {
	if n.cfg.ROBehavior.ServeStaleBatch {
		// Byzantine: an old-but-consistent snapshot. Clients bound this
		// with the freshness timestamp (Sec. 4.4.2).
		batchID = 0
	}
	if batchID < n.oldestSnapshot {
		batchID = n.oldestSnapshot
	}
	entry := n.log[batchID]
	tree := n.trees[batchID]
	reply := protocol.ROReply{
		Cluster: n.cfg.Cluster,
		BatchID: batchID,
		Header:  entry.header,
		Cert:    entry.cert,
	}
	for _, k := range m.Keys {
		if n.cfg.Part.Of(k) != n.cfg.Cluster {
			reply.Values = append(reply.Values, protocol.ROValue{Key: k})
			continue
		}
		v, _, ok := n.st.GetAsOf(k, batchID)
		if !ok {
			// Absent in this snapshot: prove it.
			val := protocol.ROValue{Key: k}
			if ap, err := tree.ProveAbsent([]byte(k)); err == nil {
				val.Absence = &ap
			}
			reply.Values = append(reply.Values, val)
			continue
		}
		proof, _, err := tree.Prove([]byte(k))
		if err != nil {
			reply.Values = append(reply.Values, protocol.ROValue{Key: k})
			continue
		}
		if n.cfg.ROBehavior.CorruptValues {
			v = append(append([]byte(nil), v...), 0xff)
		}
		if n.cfg.ROBehavior.CorruptProofs && len(proof.Steps) > 0 {
			proof.Steps = proof.Steps[:len(proof.Steps)-1]
		}
		reply.Values = append(reply.Values, protocol.ROValue{Key: k, Value: v, Found: true, Proof: proof})
	}
	n.Metrics.ROServed++
	select {
	case m.ReplyTo <- reply:
	default:
	}
}

// serveParked retries parked second-round requests after each delivery.
func (n *Node) serveParked() {
	if len(n.parked) == 0 {
		return
	}
	remaining := n.parked[:0]
	for _, p := range n.parked {
		target := n.findBatchWithLCE(p.req.AsOfLCE)
		if target < 0 {
			remaining = append(remaining, p)
			continue
		}
		n.Metrics.ROSecondRound++
		req := p.req
		n.serveRO(&req, target)
	}
	n.parked = remaining
}

// expireParked times out parked requests whose dependency never arrived
// (e.g. the remote cluster stalled); the client surfaces the error.
func (n *Node) expireParked() {
	if len(n.parked) == 0 {
		return
	}
	now := time.Now()
	remaining := n.parked[:0]
	for _, p := range n.parked {
		if now.After(p.deadline) {
			n.Metrics.ROParkedExpired++
			select {
			case p.req.ReplyTo <- protocol.ROReply{Cluster: n.cfg.Cluster, Err: "read-only dependency wait timed out"}:
			default:
			}
			continue
		}
		remaining = append(remaining, p)
	}
	n.parked = remaining
}
