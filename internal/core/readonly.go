package core

import (
	"sync/atomic"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
)

// Server side of the snapshot read-only transaction protocol (Sec. 4).
//
// Commit-freedom: a single node serves the whole per-partition answer —
// values, Merkle membership proofs, the certified batch header carrying
// the Merkle root, the CD vector and the LCE — with no coordination.
//
// Non-interference: serving never touches the transaction pipeline; it
// reads immutable log entries and persistent tree versions, so concurrent
// read-write transactions are never blocked or aborted by readers.
//
// Off-loop serving: the event loop only RESOLVES a request — which batch
// snapshot answers it (LCE binary search, prune clamping, parking) — and
// captures that batch's immutable state (header, certificate, Merkle tree
// version). The per-key fan-out against the sharded store and the proof
// construction run on the read-executor pool, so read CPU scales with
// cores and adds no latency to consensus. Safety argument: DESIGN.md §5.

// onReadRequest serves a single-key committed read for a read-write
// transaction's read set. Any replica can answer. The read goes straight
// to an executor: it touches only the sharded store (whose newest
// versions are never pruned), so nothing needs resolving on-loop.
func (n *Node) onReadRequest(m *protocol.ReadRequest) {
	task := func() {
		v, writer, ok := n.st.Get(m.Key)
		reply := protocol.ReadReply{Key: m.Key, Found: ok}
		if ok {
			reply.Value = v
			reply.Version = writer
		}
		select {
		case m.ReplyTo <- reply:
		default:
		}
	}
	if !n.readers.trySubmit(-1, task) {
		task()
	}
}

// onRORequest serves one round of a snapshot read-only transaction.
// Round one (AsOfLCE < 0) answers from the newest committed batch. Round
// two asks for the state whose LCE covers an unsatisfied dependency; if
// that batch has not committed here yet, the request parks until it does
// (the dependency's group is guaranteed to commit — its 2PC decision is
// already final). A session floor (MinBatch) parks the same way: the
// client only pins batches it has evidence exist, so an honest cluster
// commits the floor and unparks the request.
func (n *Node) onRORequest(m *protocol.RORequest) {
	target, ok := n.resolveROTarget(m)
	if !ok {
		n.parked = append(n.parked, parkedRO{
			req:      *m,
			deadline: time.Now().Add(n.cfg.ROParkTimeout),
		})
		return
	}
	n.serveRO(m, target)
}

// resolveROTarget picks the batch snapshot answering m, or reports that
// the request must park (the dependency or session floor has not
// committed here yet). Serving a newer batch than asked is always safe:
// LCE is monotone over the log, so a newer snapshot still satisfies the
// dependency, and a newer batch trivially satisfies a session floor.
func (n *Node) resolveROTarget(m *protocol.RORequest) (int64, bool) {
	target := n.lastBatchID()
	second := false
	if m.AsOfLCE >= 0 {
		target = n.findBatchWithLCE(m.AsOfLCE)
		if target < 0 {
			return 0, false
		}
		second = true
	}
	if target < m.MinBatch {
		if n.lastBatchID() < m.MinBatch {
			return 0, false
		}
		target = m.MinBatch
	}
	if target < n.oldestSnapshot {
		// The exact snapshot was pruned; the oldest retained one is
		// newer, so its LCE still covers the requested dependency.
		target = n.oldestSnapshot
	}
	if second {
		n.Metrics.ROSecondRound++
	}
	return target, true
}

// findBatchWithLCE returns the earliest retained batch whose LCE is at
// least p, or -1 if no such batch has committed yet. LCE is monotone
// over the log, so binary search applies; a dependency satisfied only by
// a truncated prefix resolves to the window base, which is at least as
// new and therefore still dependency-satisfying.
func (n *Node) findBatchWithLCE(p int64) int64 {
	return n.log.searchLCE(p)
}

// roSnapshot is everything an executor needs to answer from one batch's
// snapshot: the certified header and the Merkle tree version are captured
// on the event loop, after which they are immutable — the tree is a
// persistent structure and log entries never change once appended — so
// executors read them without synchronization. Store versions at batchID
// are pinned against pruning by the executor's target tracking.
type roSnapshot struct {
	batchID int64
	header  protocol.BatchHeader
	cert    cryptoutil.Certificate
	tree    *merkle.Tree
}

// serveRO resolves a read-only request's snapshot on the event loop and
// hands the key fan-out to the read-executor pool (inline when the pool
// is saturated, preserving liveness at the seed's behavior).
func (n *Node) serveRO(m *protocol.RORequest, batchID int64) {
	if n.cfg.ROBehavior.ServeStaleBatch {
		// Byzantine: an old-but-consistent snapshot. Clients bound this
		// with the freshness timestamp (Sec. 4.4.2).
		batchID = 0
	}
	// oldestSnapshot >= log base is an invariant (truncation raises both
	// together and pruning only ever raises oldestSnapshot), so this
	// clamp alone keeps batchID inside the retained window.
	if batchID < n.oldestSnapshot {
		batchID = n.oldestSnapshot
	}
	entry := n.log.get(batchID)
	snap := roSnapshot{batchID: batchID, header: entry.header, cert: entry.cert, tree: n.trees[batchID]}
	req := *m
	task := func() { n.serveROSnapshot(&req, snap) }
	if !n.readers.trySubmit(batchID, task) {
		task()
	}
}

// serveROSnapshot answers a read-only request from a resolved snapshot.
// It runs on a read executor (or inline on the loop when the pool is
// full) and touches only executor-safe state: the immutable snapshot, the
// sharded store at a batch <= StableBatch, the node's immutable config,
// and atomic metrics.
func (n *Node) serveROSnapshot(m *protocol.RORequest, snap roSnapshot) {
	reply := protocol.ROReply{
		Cluster: n.cfg.Cluster,
		BatchID: snap.batchID,
		Header:  snap.header,
		Cert:    snap.cert,
	}
	// One sharded pass for every local key's value, then proofs per key.
	// local and vals share m.Keys' ascending order, so a cursor maps
	// results back without a per-request allocation.
	local := make([]int, 0, len(m.Keys))
	localKeys := make([]string, 0, len(m.Keys))
	for i, k := range m.Keys {
		if n.cfg.Part.Of(k) == n.cfg.Cluster {
			local = append(local, i)
			localKeys = append(localKeys, k)
		}
	}
	vals := n.st.MultiGetAsOf(localKeys, snap.batchID)
	if !n.cfg.DisableMultiProofRO && len(m.Keys) > 0 {
		// One pruned-subtree proof covers every key — membership and
		// absence alike — so shared path prefixes ship and re-hash once
		// per request instead of once per key. Non-local keys (absent
		// from this partition's tree) are co-proved absent for free.
		next := 0
		for i, k := range m.Keys {
			if next == len(local) || local[next] != i {
				reply.Values = append(reply.Values, protocol.ROValue{Key: k})
				continue
			}
			v := vals[next]
			next++
			if !v.Found {
				reply.Values = append(reply.Values, protocol.ROValue{Key: k})
				continue
			}
			value := v.Value
			if n.cfg.ROBehavior.CorruptValues {
				value = append(append([]byte(nil), value...), 0xff)
			}
			reply.Values = append(reply.Values, protocol.ROValue{Key: k, Value: value, Found: true})
		}
		keys := make([][]byte, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = []byte(k)
		}
		if mp, err := snap.tree.ProveMulti(keys); err == nil {
			if n.cfg.ROBehavior.CorruptProofs && len(mp.Nodes) > 0 {
				mp.Nodes = mp.Nodes[:len(mp.Nodes)-1]
			}
			reply.Multi = &mp
		} else {
			// Unreachable today (ProveMulti only errors on zero keys,
			// guarded above), but a reply with values and no proof would
			// only fail client verification with a confusing proof error —
			// surface an explicit server error instead.
			reply = protocol.ROReply{Cluster: n.cfg.Cluster, Err: "multi-proof: " + err.Error()}
		}
		mutateROReply(&reply, n.cfg.ROBehavior)
		atomic.AddInt64(&n.Metrics.ROServed, 1)
		select {
		case m.ReplyTo <- reply:
		default:
		}
		return
	}
	next := 0
	for i, k := range m.Keys {
		if next == len(local) || local[next] != i {
			reply.Values = append(reply.Values, protocol.ROValue{Key: k})
			continue
		}
		v := vals[next]
		next++
		if !v.Found {
			// Absent in this snapshot: prove it.
			val := protocol.ROValue{Key: k}
			if ap, err := snap.tree.ProveAbsent([]byte(k)); err == nil {
				val.Absence = &ap
			}
			reply.Values = append(reply.Values, val)
			continue
		}
		proof, _, err := snap.tree.Prove([]byte(k))
		if err != nil {
			reply.Values = append(reply.Values, protocol.ROValue{Key: k})
			continue
		}
		value := v.Value
		if n.cfg.ROBehavior.CorruptValues {
			value = append(append([]byte(nil), value...), 0xff)
		}
		if n.cfg.ROBehavior.CorruptProofs && len(proof.Steps) > 0 {
			proof.Steps = proof.Steps[:len(proof.Steps)-1]
		}
		reply.Values = append(reply.Values, protocol.ROValue{Key: k, Value: value, Found: true, Proof: proof})
	}
	mutateROReply(&reply, n.cfg.ROBehavior)
	atomic.AddInt64(&n.Metrics.ROServed, 1)
	select {
	case m.ReplyTo <- reply:
	default:
	}
}

// mutateROReply applies byzantine reply rewrites that operate on the
// finished answer regardless of proof mode. DuplicateOmitKey overwrites
// the last answer with a copy of the first: both copies verify
// individually, so the rewrite is only caught by a client enforcing
// exactly-once key coverage.
func mutateROReply(reply *protocol.ROReply, b ROBehavior) {
	if b.DuplicateOmitKey && len(reply.Values) >= 2 {
		reply.Values[len(reply.Values)-1] = reply.Values[0]
	}
}

// serveParked retries parked requests (second-round dependency waits and
// session-floor waits) after each delivery.
func (n *Node) serveParked() {
	if len(n.parked) == 0 {
		return
	}
	remaining := n.parked[:0]
	for _, p := range n.parked {
		target, ok := n.resolveROTarget(&p.req)
		if !ok {
			remaining = append(remaining, p)
			continue
		}
		req := p.req
		n.serveRO(&req, target)
	}
	n.parked = remaining
}

// expireParked times out parked requests whose dependency never arrived
// (e.g. the remote cluster stalled); the client surfaces the error.
func (n *Node) expireParked() {
	if len(n.parked) == 0 {
		return
	}
	now := time.Now()
	remaining := n.parked[:0]
	for _, p := range n.parked {
		if now.After(p.deadline) {
			n.Metrics.ROParkedExpired++
			select {
			case p.req.ReplyTo <- protocol.ROReply{Cluster: n.cfg.Cluster, Err: "read-only dependency wait timed out"}:
			default:
			}
			continue
		}
		remaining = append(remaining, p)
	}
	n.parked = remaining
}
