package core

import (
	"runtime"
	"sync"
)

// readExecutor is the bounded worker pool that serves read requests off
// the consensus event loop. The loop resolves WHAT to serve (the target
// batch, after LCE lookup, clamping, and parking); executors do the
// expensive part — the per-key store fan-out and Merkle proofs — against
// immutable snapshot state, so read CPU scales with cores instead of
// competing with consensus for the single loop.
//
// Submission is non-blocking: when the queue is full the caller serves
// inline (degrading to the seed's on-loop behavior) rather than ever
// blocking consensus. Only the event loop submits and stops the pool.
//
// The pool also underpins prune safety: every task pinned to a snapshot
// batch is tracked until it finishes, and minActive reports the oldest
// batch still being served, which the incremental store pruner refuses to
// prune past (see Node.pruneStoreStep and DESIGN.md §5).
type readExecutor struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	active map[int64]int // snapshot batch -> in-flight task count
}

// newReadExecutor starts a pool of `workers` goroutines (0 selects
// GOMAXPROCS) with a queue of `queue` pending tasks (0 selects 8 per
// worker).
func newReadExecutor(workers, queue int) *readExecutor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 8 * workers
	}
	p := &readExecutor{
		tasks:  make(chan func(), queue),
		active: make(map[int64]int),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *readExecutor) worker() {
	defer p.wg.Done()
	for fn := range p.tasks {
		fn()
	}
}

// trySubmit enqueues fn. A non-negative target pins that snapshot batch
// against store pruning until the task completes; pass a negative target
// for reads of the latest state (the newest version of a key is never
// pruned). Returns false — having done nothing — when the queue is full;
// the caller then runs the task inline.
func (p *readExecutor) trySubmit(target int64, fn func()) bool {
	if target < 0 {
		select {
		case p.tasks <- fn:
			return true
		default:
			return false
		}
	}
	p.retain(target)
	wrapped := func() {
		defer p.release(target)
		fn()
	}
	select {
	case p.tasks <- wrapped:
		return true
	default:
		p.release(target)
		return false
	}
}

func (p *readExecutor) retain(target int64) {
	p.mu.Lock()
	p.active[target]++
	p.mu.Unlock()
}

func (p *readExecutor) release(target int64) {
	p.mu.Lock()
	if n := p.active[target]; n > 1 {
		p.active[target] = n - 1
	} else {
		delete(p.active, target)
	}
	p.mu.Unlock()
}

// minActive returns the oldest snapshot batch an in-flight task is still
// serving, or -1 when none is. The map holds at most queue+workers
// entries, so the scan is trivially cheap.
func (p *readExecutor) minActive() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	min := int64(-1)
	for t := range p.active {
		if min < 0 || t < min {
			min = t
		}
	}
	return min
}

// stop drains the queue and waits for every worker to exit. Call exactly
// once, after the event loop has stopped submitting.
func (p *readExecutor) stop() {
	close(p.tasks)
	p.wg.Wait()
}
