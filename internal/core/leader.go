package core

import (
	"time"

	"transedge/internal/merkle"
	"transedge/internal/protocol"
)

// Leader-side transaction processing: admission (Sec. 3.2), batch
// construction (Sec. 3.4), and the 2PC message handlers (Sec. 3.3).

// leaderEnv builds the conflict environment for admission decisions.
func (n *Node) leaderEnv() *conflictEnv {
	return &conflictEnv{
		lastWriter:     n.st.LastWriter,
		pendingReads:   n.pendingReads,
		pendingWrites:  n.pendingWrites,
		preparedReads:  n.preparedReads,
		preparedWrites: n.preparedWrites,
	}
}

// onCommitRequest admits a client transaction: local transactions join the
// local segment of the in-progress batch; distributed transactions are
// 2PC-prepared with this cluster as coordinator (Sec. 3.3.1).
func (n *Node) onCommitRequest(m *protocol.CommitRequest) {
	if !n.IsLeader() {
		// Followers forward commit requests to their current leader so a
		// client may contact any replica without tracking leadership —
		// and arm the progress watchdog: having handed the leader work,
		// this follower now expects to see it delivered.
		n.cfg.Net.Send(n.self, n.consensus.LeaderID(), m)
		n.armProgressTimer()
		return
	}
	t := m.Txn
	// A client that timed out and retried (possibly via another replica
	// after a view change) may resubmit a transaction this leader already
	// admitted or inherited. Re-admitting it would double-commit: just
	// repoint the reply channel at the newest attempt.
	if _, known := n.waiters[t.ID]; known {
		n.waiters[t.ID] = m.ReplyTo
		return
	}
	if dt := n.distTxns[t.ID]; dt != nil {
		n.waiters[t.ID] = m.ReplyTo
		if dt.isCoord {
			dt.replyTo = m.ReplyTo
		}
		return
	}
	reads, writes := n.localReads(&t), n.localWrites(&t)
	if err := n.leaderEnv().check(reads, writes); err != nil {
		n.Metrics.AdmissionAborts++
		n.reply(m.ReplyTo, protocol.CommitReply{
			TxnID: t.ID, Status: protocol.StatusAborted, Reason: err.Error(),
		})
		return
	}
	n.leaderEnv().reserve(reads, writes)

	if t.IsLocal() {
		n.pendingLocal = append(n.pendingLocal, t)
		n.waiters[t.ID] = m.ReplyTo
	} else {
		rec := protocol.PrepareRecord{Txn: t, CoordCluster: n.cfg.Cluster}
		n.pendingPrepared = append(n.pendingPrepared, rec)
		n.distTxns[t.ID] = &distTxn{
			rec:          rec,
			prepareBatch: -1,
			isCoord:      true,
			votesByPart:  make(map[int32]*protocol.PreparedVote),
			replyTo:      m.ReplyTo,
		}
		n.waiters[t.ID] = m.ReplyTo
	}
	n.maybeBuildBatch(false)
}

// onCoordinatorPrepare handles step 3→4 of Fig. 3: another cluster asks us
// to 2PC-prepare a distributed transaction. We verify the coordinator's
// SMR-log inclusion proof, run conflict detection on our shard's
// footprint, and either queue a prepare record or vote abort immediately.
func (n *Node) onCoordinatorPrepare(from NodeID, m *protocol.CoordinatorPrepare) {
	if !n.IsLeader() {
		// The sender's view of our leadership is stale (it addresses the
		// view-0 leader). Relay once to the leader we follow; a relayed
		// copy that still misses is dropped to bound hops.
		if !m.Forwarded {
			fwd := *m
			fwd.Forwarded = true
			n.cfg.Net.Send(n.self, n.consensus.LeaderID(), &fwd)
			n.armProgressTimer()
		}
		return
	}
	if dt, dup := n.distTxns[m.TxnID]; dup {
		// Retransmission — often a new coordinator leader rebuilding its
		// vote set after a view change. If our prepare record is already
		// durable and undecided, re-send the vote it is waiting for.
		if dt.rec.CoordCluster == m.CoordCluster && dt.prepareBatch >= 0 &&
			dt.decision == protocol.DecisionPending && !dt.isCoord {
			if e := n.log.get(dt.prepareBatch); e != nil && e.batch != nil {
				n.cfg.Net.Send(n.self, leaderOf(m.CoordCluster), &protocol.PreparedVote{
					TxnID: m.TxnID, FromCluster: n.cfg.Cluster,
					Vote: protocol.DecisionCommit,
					Proof: protocol.PrepareProof{
						Header: e.header, Cert: e.cert, Prepared: e.batch.Prepared,
					},
				})
			}
		}
		return
	}
	if !n.verifyHeaderCert(&m.Proof.Header, m.Proof.Cert) ||
		m.Proof.Header.Cluster != m.CoordCluster {
		return // unauthentic prepare: drop silently
	}
	if protocol.PreparedSectionDigest(m.Proof.Prepared) != m.Proof.Header.PreparedDigest {
		return
	}
	var rec *protocol.PrepareRecord
	for i := range m.Proof.Prepared {
		if m.Proof.Prepared[i].Txn.ID == m.TxnID {
			rec = &m.Proof.Prepared[i]
			break
		}
	}
	if rec == nil {
		return
	}
	t := rec.Txn
	reads, writes := n.localReads(&t), n.localWrites(&t)
	if err := n.leaderEnv().check(reads, writes); err != nil {
		n.Metrics.AdmissionAborts++
		n.cfg.Net.Send(n.self, leaderOf(m.CoordCluster), &protocol.PreparedVote{
			TxnID: t.ID, FromCluster: n.cfg.Cluster, Vote: protocol.DecisionAbort,
		})
		return
	}
	n.leaderEnv().reserve(reads, writes)
	prec := protocol.PrepareRecord{Txn: t, CoordCluster: m.CoordCluster}
	n.pendingPrepared = append(n.pendingPrepared, prec)
	proof := m.Proof
	n.pendingEvidence[t.ID] = &proof
	n.distTxns[t.ID] = &distTxn{rec: prec, prepareBatch: -1}
}

// onPreparedVote handles step 5 of Fig. 3 at the coordinator: collect one
// vote per participant; once all partitions voted, decide and distribute.
func (n *Node) onPreparedVote(from NodeID, m *protocol.PreparedVote) {
	if !n.IsLeader() {
		if !m.Forwarded {
			fwd := *m
			fwd.Forwarded = true
			n.cfg.Net.Send(n.self, n.consensus.LeaderID(), &fwd)
			n.armProgressTimer()
		}
		return
	}
	dt := n.distTxns[m.TxnID]
	if dt == nil || !dt.isCoord {
		return
	}
	if dt.decision != protocol.DecisionPending {
		// A vote re-sent after the decision usually means the sender's
		// cluster lost the decision to a leader crash and its new leader
		// is rebuilding 2PC state: repeat the outcome instead of
		// dropping the conversation.
		if dt.decisionSent && m.FromCluster != n.cfg.Cluster {
			n.cfg.Net.Send(n.self, leaderOf(m.FromCluster), &protocol.CommitDecision{
				TxnID: dt.rec.Txn.ID, CoordCluster: n.cfg.Cluster,
				Decision: dt.decision, Votes: dt.votes,
			})
		}
		return
	}
	if _, dup := dt.votesByPart[m.FromCluster]; dup {
		return
	}
	if m.Vote == protocol.DecisionCommit {
		if !n.validVote(m, &dt.rec.Txn) {
			return // forged or mismatched vote; ignore
		}
	}
	vote := *m
	dt.votesByPart[m.FromCluster] = &vote
	n.maybeDecide(dt)
}

// validVote checks a commit vote's proof: certified header, intact
// prepared segment, and the prepared transaction matching ours bit for
// bit.
func (n *Node) validVote(v *protocol.PreparedVote, want *protocol.Transaction) bool {
	if v.Proof.Header.Cluster != v.FromCluster {
		return false
	}
	if !n.verifyHeaderCert(&v.Proof.Header, v.Proof.Cert) {
		return false
	}
	if protocol.PreparedSectionDigest(v.Proof.Prepared) != v.Proof.Header.PreparedDigest {
		return false
	}
	for i := range v.Proof.Prepared {
		if v.Proof.Prepared[i].Txn.ID == v.TxnID {
			return protocol.TransactionDigest(&v.Proof.Prepared[i].Txn) == protocol.TransactionDigest(want)
		}
	}
	return false
}

// maybeDecide finalizes 2PC once every accessed partition has voted: the
// transaction commit point (TCP) of Sec. 3.6. The decision and its vote
// evidence are sent to every other participant leader (the paper sends
// them with f+1 signatures; the votes' f+1-certified prepare proofs carry
// equivalent authority, see DESIGN.md).
func (n *Node) maybeDecide(dt *distTxn) {
	if dt.decision != protocol.DecisionPending || dt.decisionSent {
		return
	}
	decision := protocol.DecisionCommit
	var votes []protocol.PreparedVote
	for _, part := range dt.rec.Txn.Partitions {
		v := dt.votesByPart[part]
		if v == nil {
			return // still waiting
		}
		if v.Vote != protocol.DecisionCommit {
			decision = protocol.DecisionAbort
		}
		votes = append(votes, *v)
	}
	dt.decision = decision
	dt.votes = votes
	dt.decisionSent = true
	msg := &protocol.CommitDecision{
		TxnID:        dt.rec.Txn.ID,
		CoordCluster: n.cfg.Cluster,
		Decision:     decision,
		Votes:        votes,
	}
	for _, part := range dt.rec.Txn.Partitions {
		if part != n.cfg.Cluster {
			n.cfg.Net.Send(n.self, leaderOf(part), msg)
		}
	}
	n.maybeBuildBatch(false)
}

// onCommitDecision handles step 7→8 of Fig. 3 at a participant: validate
// the coordinator's decision against the vote evidence and mark the
// transaction decided inside its prepare group.
func (n *Node) onCommitDecision(from NodeID, m *protocol.CommitDecision) {
	if !n.IsLeader() {
		if !m.Forwarded {
			fwd := *m
			fwd.Forwarded = true
			n.cfg.Net.Send(n.self, n.consensus.LeaderID(), &fwd)
			n.armProgressTimer()
		}
		return
	}
	dt := n.distTxns[m.TxnID]
	if dt == nil {
		// Either we voted abort (no state was kept) or this is a stale
		// retransmission; both are safe to ignore.
		return
	}
	if dt.decision != protocol.DecisionPending {
		return
	}
	if !n.decisionJustified(m, &dt.rec.Txn) {
		return
	}
	if dt.prepareBatch < 0 {
		// Our prepare batch is still in flight; apply on delivery.
		n.pendingDecisions[m.TxnID] = m
		return
	}
	n.applyDecision(dt, m)
}

// decisionJustified validates a coordinator's verdict: a commit needs a
// verified positive vote from every accessed partition; an abort needs at
// least one abort vote (an unjustified abort is a liveness, not a safety,
// failure — see DESIGN.md).
func (n *Node) decisionJustified(m *protocol.CommitDecision, txn *protocol.Transaction) bool {
	return n.justified(m.Decision, m.Votes, txn)
}

func (n *Node) applyDecision(dt *distTxn, m *protocol.CommitDecision) {
	dt.decision = m.Decision
	dt.votes = m.Votes
	n.maybeBuildBatch(false)
}

// frontGroupReady reports whether the oldest prepare group not already
// committed by an in-flight batch has a decision for every member
// (Def. 4.1: groups commit or abort strictly in order). skip is the
// number of front groups consumed by in-flight committed segments.
func (n *Node) frontGroupReady(skip int) *group {
	if skip >= len(n.groups) {
		return nil
	}
	g := n.groups[skip]
	for _, id := range g.ids {
		dt := n.distTxns[id]
		if dt == nil || dt.decision == protocol.DecisionPending {
			return nil
		}
	}
	return g
}

// specTail returns the state the next speculative batch chains off: the
// newest spec slot's header, header digest, and tree, or the last
// delivered batch when the chain is empty. The digest rides along so
// chaining PrevDigest never re-hashes a header.
func (n *Node) specTail() (protocol.BatchHeader, protocol.Digest, *merkle.Tree) {
	if k := len(n.spec); k > 0 {
		s := n.spec[k-1]
		return s.header, s.digest, s.tree
	}
	e := n.log.last()
	return e.header, e.digest, n.curTree
}

// specGroupsConsumed counts the open prepare groups already committed by
// batches of the speculative chain.
func (n *Node) specGroupsConsumed() int {
	consumed := 0
	for _, s := range n.spec {
		consumed += s.groups
	}
	return consumed
}

// maybeBuildBatch assembles and proposes the next batch when the pipeline
// has a free slot and either the size threshold fired, the flush interval
// passed, or force is set. Mirrors the paper's event 6 (timer/size
// trigger), except that up to PipelineDepth batches may be in flight at
// once: each new batch chains PrevDigest, CD vector, LCE, and Merkle tree
// off the newest speculative slot, so proposal never waits for delivery.
func (n *Node) maybeBuildBatch(force bool) {
	// CanPropose also refuses mid-view-change windows: proposing into a
	// dying view would only feed rollbacks.
	if !n.consensus.CanPropose() {
		return
	}
	if len(n.spec) >= n.cfg.PipelineDepth {
		if len(n.pendingLocal)+len(n.pendingPrepared) > 0 {
			n.Metrics.PipelineStalls++
		}
		return
	}
	prevHeader, prevDigest, prevTree := n.specTail()
	ready := n.frontGroupReady(n.specGroupsConsumed())
	pending := len(n.pendingLocal) + len(n.pendingPrepared)
	if pending == 0 && ready == nil {
		return
	}
	if !force && pending < n.cfg.BatchMaxSize && time.Since(n.lastFlush) < n.cfg.BatchInterval && ready == nil {
		return
	}

	b := &protocol.Batch{
		Cluster:    n.cfg.Cluster,
		ID:         prevHeader.ID + 1,
		PrevDigest: prevDigest,
		Timestamp:  time.Now().UnixNano(),
		Local:      n.pendingLocal,
		Prepared:   n.pendingPrepared,
		LCE:        prevHeader.LCE,
	}

	// Committed segment: the oldest fully-decided prepare group, whole
	// and in order.
	if ready != nil {
		b.CommitEvidence = make(map[protocol.TxnID][]protocol.PreparedVote, len(ready.ids))
		for _, id := range ready.ids {
			dt := n.distTxns[id]
			rec := protocol.CommitRecord{Txn: dt.rec.Txn, Decision: dt.decision}
			if dt.decision == protocol.DecisionCommit {
				for i := range dt.votes {
					rec.ReportedCDs = append(rec.ReportedCDs, dt.votes[i].Proof.Header.CD.Clone())
				}
			}
			b.Committed = append(b.Committed, rec)
			b.CommitEvidence[id] = dt.votes
		}
		b.LCE = ready.prepareBatch
	}

	// Evidence for prepare records coordinated elsewhere.
	if len(n.pendingPrepared) > 0 {
		b.PrepareEvidence = make(map[protocol.TxnID]*protocol.PrepareProof)
		for i := range n.pendingPrepared {
			id := n.pendingPrepared[i].Txn.ID
			if ev := n.pendingEvidence[id]; ev != nil {
				b.PrepareEvidence[id] = ev
			}
		}
	}

	// Read-only segment: CD vector via Algorithm 1, then the Merkle root
	// over the post-batch database state — both derived from the
	// speculative predecessor, never the (possibly older) delivered one.
	b.CD = n.deriveCD(prevHeader.CD, b)
	tree := n.applyBatchToTree(prevTree, b)
	b.MerkleRoot = tree.Root()

	// The batch is complete: seal it so the header and digest computed
	// for this slot are the ones reused at leader sign, follower
	// validation, and delivery.
	b.Seal()
	slot := &specSlot{batch: b, header: b.Header(), digest: b.Digest(), tree: tree}
	if ready != nil {
		slot.groups = 1
	}

	// Reset accumulation; reserved footprints stay until delivery.
	n.pendingLocal = nil
	n.pendingPrepared = nil
	n.lastFlush = time.Now()

	if err := n.consensus.Propose(b); err != nil {
		// Cannot happen in a healthy pipeline; abort the batch's
		// transactions cleanly rather than leak their reservations.
		n.rollbackBatch(b)
		return
	}
	n.spec = append(n.spec, slot)
}

// rollbackBatch undoes the admission effects of a speculative batch that
// will never reach the log: reserved OCC footprints are released, waiting
// clients receive aborts, and coordinator state for prepares that never
// became durable is dropped. Committed-segment decisions are left intact
// in distTxns — the group is still decided and a later batch re-proposes
// it.
func (n *Node) rollbackBatch(b *protocol.Batch) {
	for i := range b.Local {
		t := &b.Local[i]
		n.releasePending(t.Reads, t.Writes)
		n.failWaiter(t.ID, "pipeline rollback")
	}
	for i := range b.Prepared {
		t := &b.Prepared[i].Txn
		n.releasePending(n.localReads(t), n.localWrites(t))
		delete(n.pendingEvidence, t.ID)
		if dt := n.distTxns[t.ID]; dt != nil && dt.prepareBatch < 0 {
			delete(n.distTxns, t.ID)
			delete(n.pendingDecisions, t.ID)
		}
		n.failWaiter(t.ID, "pipeline rollback")
	}
	n.Metrics.PipelineRollbacks++
}

// rollbackSpec rolls back every speculative slot from index from onward
// (newest first): once a predecessor fails to reach the log, every
// successor chained off it is invalid too.
func (n *Node) rollbackSpec(from int) {
	for i := len(n.spec) - 1; i >= from; i-- {
		n.rollbackBatch(n.spec[i].batch)
		n.spec[i] = nil
	}
	n.spec = n.spec[:from]
}

// failWaiter aborts a waiting client, if any.
func (n *Node) failWaiter(id protocol.TxnID, reason string) {
	if ch, ok := n.waiters[id]; ok {
		delete(n.waiters, id)
		n.reply(ch, protocol.CommitReply{TxnID: id, Status: protocol.StatusAborted, Reason: reason})
	}
}

// deriveCD implements Algorithm 1: fold the predecessor batch's CD vector
// (speculative for in-flight predecessors, delivered otherwise) with
// every reported CD vector of the committed segment, then pin the self
// entry to the new batch ID.
func (n *Node) deriveCD(base protocol.CDVector, b *protocol.Batch) protocol.CDVector {
	cd := base.Clone()
	for i := range b.Committed {
		rec := &b.Committed[i]
		if rec.Decision != protocol.DecisionCommit {
			continue
		}
		for _, reported := range rec.ReportedCDs {
			cd.MaxInto(reported)
		}
	}
	cd[n.cfg.Cluster] = b.ID
	return cd
}

func (n *Node) reply(ch chan protocol.CommitReply, r protocol.CommitReply) {
	if ch == nil {
		return
	}
	select {
	case ch <- r:
	default:
		// Client went away; do not block the event loop.
	}
}
