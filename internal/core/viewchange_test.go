package core_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"transedge/internal/bft"
	"transedge/internal/client"
	"transedge/internal/core"
)

// pokeUntilCommit retries single-key commits until one succeeds. Each
// failed attempt still does protocol work: it lands on some replica,
// which forwards to the (dead or byzantine) leader and arms its
// leader-progress timer — exactly how real client traffic drives the
// cluster into a view change.
func pokeUntilCommit(t *testing.T, c *client.Client, keys []string, deadline time.Duration) {
	t.Helper()
	limit := time.Now().Add(deadline)
	var lastErr error
	for i := 0; time.Now().Before(limit); i++ {
		txn := c.Begin()
		txn.Write(keys[i%len(keys)], []byte(fmt.Sprintf("poke-%d", i)))
		if lastErr = txn.Commit(); lastErr == nil {
			return
		}
	}
	t.Fatalf("no commit succeeded before the deadline; last error: %v", lastErr)
}

// TestCrashedLeaderFailover is the acceptance scenario of the issue: the
// view-0 leader is killed mid-run and commits RESUME — the survivors
// time out on leader progress, vote a view change, elect replica 1, and
// serve the client again, all without operator intervention.
func TestCrashedLeaderFailover(t *testing.T) {
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = 8
		cfg.ViewTimeout = 30 * time.Millisecond
	})
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 1, Timeout: 2 * time.Second,
	})
	keys := keysOn(sys, 0, 8)

	commitN(t, c, keys, 0, 10)
	sys.StopReplica(core.NodeID{Cluster: 0, Replica: 0})

	pokeUntilCommit(t, c, keys, 20*time.Second)

	// The cluster must have moved past view 0 and off the dead leader.
	if lead := sys.Leader(0); lead.Replica == 0 {
		t.Fatalf("cluster still routed to the crashed view-0 leader: %v", lead)
	}
	views := 0
	for r := int32(1); r < 4; r++ {
		if v := sys.Node(core.NodeID{Cluster: 0, Replica: r}).CurrentView(); v > 0 {
			views++
		}
	}
	if views < 3 {
		t.Fatalf("only %d/3 survivors installed a new view", views)
	}

	// Failover is stable: a run of ordinary commits flows through the new
	// leader without retry loops.
	commitN(t, c, keys, 100, 20)
}

// TestEquivocatingLeaderDeposed: a leader that equivocates (different
// proposal content per follower) can never gather a prepare quorum, so
// the cluster stalls — until the progress timers fire and depose it. The
// satellite's integration claim: byzantine leadership is survived, not
// just crash faults.
func TestEquivocatingLeaderDeposed(t *testing.T) {
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = 8
		cfg.ViewTimeout = 30 * time.Millisecond
		cfg.Byzantine = map[core.NodeID]bft.Behavior{
			{Cluster: 0, Replica: 0}: {Equivocate: true},
		}
	})
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 1, Timeout: 2 * time.Second,
	})
	keys := keysOn(sys, 0, 8)

	pokeUntilCommit(t, c, keys, 20*time.Second)

	honestInNewView := 0
	for r := int32(1); r < 4; r++ {
		if sys.Node(core.NodeID{Cluster: 0, Replica: r}).CurrentView() > 0 {
			honestInNewView++
		}
	}
	if honestInNewView < 3 {
		t.Fatalf("only %d/3 honest replicas deposed the equivocating leader", honestInNewView)
	}

	// With the byzantine node demoted to follower (f=1 tolerated), the
	// cluster commits normally. A commit racing a still-settling view
	// transition may abort with "leader changed"; ErrAborted is the
	// client's documented retry-with-fresh-reads signal, so retry it —
	// what must hold is that commits make progress, not that the first
	// attempt after deposal never collides with a view handoff.
	for i := 0; i < 20; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			txn := c.Begin()
			txn.Write(keys[i%len(keys)], []byte(fmt.Sprintf("v-%d", 100+i)))
			err := txn.Commit()
			if err == nil {
				break
			}
			if !errors.Is(err, client.ErrAborted) || time.Now().After(deadline) {
				t.Fatalf("commit %d: %v", 100+i, err)
			}
		}
	}
}

// TestViewTimeoutDisabledKeepsSeedBehavior: with ViewTimeout zero
// (the default), a crashed leader stalls the cluster — requests time out
// and no replica ever leaves view 0. Pins that failover is strictly
// opt-in and the seed semantics are unchanged.
func TestViewTimeoutDisabledKeepsSeedBehavior(t *testing.T) {
	sys := testSystem(t, 1, 1, 100)
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: 1, Timeout: 500 * time.Millisecond,
	})
	keys := keysOn(sys, 0, 4)
	commitN(t, c, keys, 0, 3)

	sys.StopReplica(core.NodeID{Cluster: 0, Replica: 0})
	txn := c.Begin()
	txn.Write(keys[0], []byte("stalled"))
	if err := txn.Commit(); err == nil {
		t.Fatal("commit succeeded with the leader dead and failover disabled")
	}
	for r := int32(1); r < 4; r++ {
		if v := sys.Node(core.NodeID{Cluster: 0, Replica: r}).CurrentView(); v != 0 {
			t.Fatalf("replica %d moved to view %d with failover disabled", r, v)
		}
	}
}
