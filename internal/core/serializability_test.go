package core_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/histcheck"
)

// TestExecutionHistoryIsSerializable records a real concurrent execution
// — distributed writers plus snapshot readers — and runs the
// serializability-graph test (the formal tool behind Theorems 3.4/4.5) on
// the committed history. Each key has one designated writer, so per-key
// version orders are ground truth, and every read can be attributed to
// the transaction that installed the value it observed.
func TestExecutionHistoryIsSerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const writers = 3
	const keysPerWriter = 4
	data := make(map[string][]byte)
	owned := make([][]string, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPerWriter; i++ {
			k := fmt.Sprintf("ser-%d-%d", w, i)
			owned[w] = append(owned[w], k)
			data[k] = []byte("0")
		}
	}
	var all []string
	for _, ks := range owned {
		all = append(all, ks...)
	}

	sys := core.NewSystem(core.SystemConfig{
		Clusters: 3, F: 1, Seed: 11,
		BatchInterval: time.Millisecond, BatchMaxSize: 100,
		InitialData: data,
	})
	sys.Start()
	t.Cleanup(sys.Stop)

	var (
		mu     sync.Mutex
		events []histcheck.Event
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	record := func(e histcheck.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}

	// Writers: each transaction reads two of the writer's own keys and
	// writes both with bumped sequence numbers. Keys hash across
	// clusters, so most of these are distributed 2PC transactions.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testClient(sys, uint32(10+w))
			seqs := make(map[string]int64, keysPerWriter)
			rng := newRand(int64(w) * 77)
			for !stop.Load() {
				a := owned[w][rng.Intn(keysPerWriter)]
				b := owned[w][rng.Intn(keysPerWriter)]
				if a == b {
					continue
				}
				txn := c.Begin()
				av, err := txn.Read(a)
				if err != nil {
					continue
				}
				bv, err := txn.Read(b)
				if err != nil {
					continue
				}
				aSeq, _ := strconv.ParseInt(string(av), 10, 64)
				bSeq, _ := strconv.ParseInt(string(bv), 10, 64)
				txn.Write(a, []byte(strconv.FormatInt(seqs[a]+1, 10)))
				txn.Write(b, []byte(strconv.FormatInt(seqs[b]+1, 10)))
				if err := txn.Commit(); err != nil {
					if errors.Is(err, client.ErrAborted) {
						continue // stale read due to 2PC lag; retry
					}
					if !stop.Load() {
						t.Errorf("writer %d: %v", w, err)
					}
					return
				}
				seqs[a]++
				seqs[b]++
				record(histcheck.Event{
					TxnID: fmt.Sprintf("w%d-%d-%d", w, seqs[a], seqs[b]),
					Reads: []histcheck.ReadOb{{Key: a, Seq: aSeq}, {Key: b, Seq: bSeq}},
					Writes: []histcheck.WriteOb{
						{Key: a, Seq: seqs[a]}, {Key: b, Seq: seqs[b]},
					},
				})
			}
		}(w)
	}

	// Readers: full snapshot reads over every key.
	roCount := atomic.Int64{}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := testClient(sys, uint32(100+r))
			i := 0
			for !stop.Load() {
				res, err := c.ReadOnly(all)
				if err != nil {
					if !stop.Load() {
						t.Errorf("reader %d: %v", r, err)
					}
					return
				}
				e := histcheck.Event{TxnID: fmt.Sprintf("ro%d-%d", r, i), ReadOnly: true}
				for _, k := range all {
					seq, _ := strconv.ParseInt(string(res.Values[k]), 10, 64)
					e.Reads = append(e.Reads, histcheck.ReadOb{Key: k, Seq: seq})
				}
				record(e)
				roCount.Add(1)
				i++
			}
		}(r)
	}

	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	// Writer TxnIDs must be unique; make them so before checking.
	seen := make(map[string]int)
	for i := range events {
		seen[events[i].TxnID]++
		if seen[events[i].TxnID] > 1 {
			events[i].TxnID = fmt.Sprintf("%s#%d", events[i].TxnID, seen[events[i].TxnID])
		}
	}
	if err := histcheck.CheckSerializable(events); err != nil {
		t.Fatalf("execution history not serializable: %v", err)
	}
	writes := 0
	for _, e := range events {
		if !e.ReadOnly {
			writes++
		}
	}
	if writes < 20 || roCount.Load() < 10 {
		t.Fatalf("history too thin to be meaningful: %d writes, %d reads", writes, roCount.Load())
	}
	t.Logf("serializability verified over %d write txns and %d snapshot reads", writes, roCount.Load())
}

// TestPipelineDepthsSerializableAndEquivalent is the pipelining
// regression property: under a mixed local/distributed workload, the
// histories produced at PipelineDepth 1, 2, and 4 must all be
// serializable, and a fixed-seed deterministic workload must leave
// exactly the same final state at every depth (speculative chaining must
// never change what commits, only when it commits).
func TestPipelineDepthsSerializableAndEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, depth := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("depth=%d/serializable", depth), func(t *testing.T) {
			runDepthHistory(t, depth)
		})
	}

	// Deterministic phase: one sequential client replays the same seeded
	// transaction sequence at every depth. Values are a function of the
	// transaction index only, so the expected final state is computable
	// up front and must be reached at every depth.
	const txns = 60
	const keyCount = 8
	keys := make([]string, keyCount)
	data := make(map[string][]byte)
	for i := range keys {
		keys[i] = fmt.Sprintf("det-%d", i)
		data[keys[i]] = []byte("seed")
	}
	expected := make(map[string]string)
	for _, k := range keys {
		expected[k] = "seed"
	}
	plan := make([][2]int, txns) // key indices written by txn j
	rng := newRand(1234)
	for j := range plan {
		a := rng.Intn(keyCount)
		b := rng.Intn(keyCount)
		plan[j] = [2]int{a, b}
		expected[keys[a]] = fmt.Sprintf("txn-%d-a", j)
		expected[keys[b]] = fmt.Sprintf("txn-%d-b", j)
		if a == b { // single write set entry wins with the b value
			expected[keys[a]] = fmt.Sprintf("txn-%d-b", j)
		}
	}

	for _, depth := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("depth=%d/final-state", depth), func(t *testing.T) {
			sys := core.NewSystem(core.SystemConfig{
				Clusters: 3, F: 1, Seed: 11,
				BatchInterval: time.Millisecond, BatchMaxSize: 100,
				PipelineDepth: depth,
				InitialData:   data,
			})
			sys.Start()
			t.Cleanup(sys.Stop)
			c := testClient(sys, 1)

			for j, p := range plan {
				// Retry on abort (a prior distributed commit may not have
				// reached every participant yet): the write values depend
				// only on j, so retries cannot change the final state.
				for {
					txn := c.Begin()
					if _, err := txn.Read(keys[p[0]]); err != nil {
						t.Fatalf("txn %d read: %v", j, err)
					}
					if _, err := txn.Read(keys[p[1]]); err != nil {
						t.Fatalf("txn %d read: %v", j, err)
					}
					txn.Write(keys[p[0]], []byte(fmt.Sprintf("txn-%d-a", j)))
					txn.Write(keys[p[1]], []byte(fmt.Sprintf("txn-%d-b", j)))
					err := txn.Commit()
					if err == nil {
						break
					}
					if !errors.Is(err, client.ErrAborted) {
						t.Fatalf("txn %d commit: %v", j, err)
					}
				}
			}

			// The snapshot served may trail the last commit briefly; poll
			// until it matches the precomputed expectation.
			deadline := time.Now().Add(5 * time.Second)
			for {
				res, err := c.ReadOnly(keys)
				if err != nil {
					t.Fatalf("final read-only: %v", err)
				}
				diff := ""
				for _, k := range keys {
					if got := string(res.Values[k]); got != expected[k] {
						diff = fmt.Sprintf("%s = %q, want %q", k, got, expected[k])
						break
					}
				}
				if diff == "" {
					return
				}
				if time.Now().After(deadline) {
					t.Fatalf("final state at depth %d never converged: %s", depth, diff)
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

// runDepthHistory drives the concurrent mixed workload at one pipeline
// depth and checks the committed history is serializable.
func runDepthHistory(t *testing.T, depth int) {
	const writers = 3
	const keysPerWriter = 3
	data := make(map[string][]byte)
	owned := make([][]string, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPerWriter; i++ {
			k := fmt.Sprintf("pd-%d-%d", w, i)
			owned[w] = append(owned[w], k)
			data[k] = []byte("0")
		}
	}
	var all []string
	for _, ks := range owned {
		all = append(all, ks...)
	}

	sys := core.NewSystem(core.SystemConfig{
		Clusters: 3, F: 1, Seed: 11,
		BatchInterval: time.Millisecond, BatchMaxSize: 100,
		PipelineDepth: depth,
		InitialData:   data,
	})
	sys.Start()
	t.Cleanup(sys.Stop)

	var (
		mu     sync.Mutex
		events []histcheck.Event
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	record := func(e histcheck.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}

	// Writers: mixed shapes — two-key transactions usually span clusters
	// (distributed 2PC), single-key ones are local.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testClient(sys, uint32(10+w))
			seqs := make(map[string]int64, keysPerWriter)
			rng := newRand(int64(depth)*1000 + int64(w)*77)
			commits := 0
			for !stop.Load() {
				ks := []string{owned[w][rng.Intn(keysPerWriter)]}
				if rng.Intn(3) > 0 { // 2/3 two-key (mostly distributed)
					b := owned[w][rng.Intn(keysPerWriter)]
					if b != ks[0] {
						ks = append(ks, b)
					}
				}
				txn := c.Begin()
				var reads []histcheck.ReadOb
				ok := true
				for _, k := range ks {
					v, err := txn.Read(k)
					if err != nil {
						ok = false
						break
					}
					seq, _ := strconv.ParseInt(string(v), 10, 64)
					reads = append(reads, histcheck.ReadOb{Key: k, Seq: seq})
				}
				if !ok {
					continue
				}
				var writesOb []histcheck.WriteOb
				for _, k := range ks {
					txn.Write(k, []byte(strconv.FormatInt(seqs[k]+1, 10)))
					writesOb = append(writesOb, histcheck.WriteOb{Key: k, Seq: seqs[k] + 1})
				}
				if err := txn.Commit(); err != nil {
					if errors.Is(err, client.ErrAborted) {
						continue
					}
					if !stop.Load() {
						t.Errorf("writer %d: %v", w, err)
					}
					return
				}
				for _, k := range ks {
					seqs[k]++
				}
				commits++
				record(histcheck.Event{
					TxnID:  fmt.Sprintf("d%d-w%d-%d", depth, w, commits),
					Reads:  reads,
					Writes: writesOb,
				})
			}
		}(w)
	}

	// One snapshot reader over every key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := testClient(sys, 100)
		i := 0
		for !stop.Load() {
			res, err := c.ReadOnly(all)
			if err != nil {
				if !stop.Load() {
					t.Errorf("reader: %v", err)
				}
				return
			}
			e := histcheck.Event{TxnID: fmt.Sprintf("d%d-ro-%d", depth, i), ReadOnly: true}
			for _, k := range all {
				seq, _ := strconv.ParseInt(string(res.Values[k]), 10, 64)
				e.Reads = append(e.Reads, histcheck.ReadOb{Key: k, Seq: seq})
			}
			record(e)
			i++
		}
	}()

	time.Sleep(700 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	seen := make(map[string]int)
	for i := range events {
		seen[events[i].TxnID]++
		if seen[events[i].TxnID] > 1 {
			events[i].TxnID = fmt.Sprintf("%s#%d", events[i].TxnID, seen[events[i].TxnID])
		}
	}
	if err := histcheck.CheckSerializable(events); err != nil {
		t.Fatalf("depth %d history not serializable: %v", depth, err)
	}
	writes := 0
	for _, e := range events {
		if !e.ReadOnly {
			writes++
		}
	}
	if writes < 10 {
		t.Fatalf("depth %d history too thin: %d writes", depth, writes)
	}
	t.Logf("depth %d: %d write txns, %d events serializable", depth, writes, len(events))
}
