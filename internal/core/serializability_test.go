package core_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/histcheck"
)

// TestExecutionHistoryIsSerializable records a real concurrent execution
// — distributed writers plus snapshot readers — and runs the
// serializability-graph test (the formal tool behind Theorems 3.4/4.5) on
// the committed history. Each key has one designated writer, so per-key
// version orders are ground truth, and every read can be attributed to
// the transaction that installed the value it observed.
func TestExecutionHistoryIsSerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const writers = 3
	const keysPerWriter = 4
	data := make(map[string][]byte)
	owned := make([][]string, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPerWriter; i++ {
			k := fmt.Sprintf("ser-%d-%d", w, i)
			owned[w] = append(owned[w], k)
			data[k] = []byte("0")
		}
	}
	var all []string
	for _, ks := range owned {
		all = append(all, ks...)
	}

	sys := core.NewSystem(core.SystemConfig{
		Clusters: 3, F: 1, Seed: 11,
		BatchInterval: time.Millisecond, BatchMaxSize: 100,
		InitialData: data,
	})
	sys.Start()
	t.Cleanup(sys.Stop)

	var (
		mu     sync.Mutex
		events []histcheck.Event
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	record := func(e histcheck.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}

	// Writers: each transaction reads two of the writer's own keys and
	// writes both with bumped sequence numbers. Keys hash across
	// clusters, so most of these are distributed 2PC transactions.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testClient(sys, uint32(10+w))
			seqs := make(map[string]int64, keysPerWriter)
			rng := newRand(int64(w) * 77)
			for !stop.Load() {
				a := owned[w][rng.Intn(keysPerWriter)]
				b := owned[w][rng.Intn(keysPerWriter)]
				if a == b {
					continue
				}
				txn := c.Begin()
				av, err := txn.Read(a)
				if err != nil {
					continue
				}
				bv, err := txn.Read(b)
				if err != nil {
					continue
				}
				aSeq, _ := strconv.ParseInt(string(av), 10, 64)
				bSeq, _ := strconv.ParseInt(string(bv), 10, 64)
				txn.Write(a, []byte(strconv.FormatInt(seqs[a]+1, 10)))
				txn.Write(b, []byte(strconv.FormatInt(seqs[b]+1, 10)))
				if err := txn.Commit(); err != nil {
					if errors.Is(err, client.ErrAborted) {
						continue // stale read due to 2PC lag; retry
					}
					if !stop.Load() {
						t.Errorf("writer %d: %v", w, err)
					}
					return
				}
				seqs[a]++
				seqs[b]++
				record(histcheck.Event{
					TxnID: fmt.Sprintf("w%d-%d-%d", w, seqs[a], seqs[b]),
					Reads: []histcheck.ReadOb{{Key: a, Seq: aSeq}, {Key: b, Seq: bSeq}},
					Writes: []histcheck.WriteOb{
						{Key: a, Seq: seqs[a]}, {Key: b, Seq: seqs[b]},
					},
				})
			}
		}(w)
	}

	// Readers: full snapshot reads over every key.
	roCount := atomic.Int64{}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := testClient(sys, uint32(100+r))
			i := 0
			for !stop.Load() {
				res, err := c.ReadOnly(all)
				if err != nil {
					if !stop.Load() {
						t.Errorf("reader %d: %v", r, err)
					}
					return
				}
				e := histcheck.Event{TxnID: fmt.Sprintf("ro%d-%d", r, i), ReadOnly: true}
				for _, k := range all {
					seq, _ := strconv.ParseInt(string(res.Values[k]), 10, 64)
					e.Reads = append(e.Reads, histcheck.ReadOb{Key: k, Seq: seq})
				}
				record(e)
				roCount.Add(1)
				i++
			}
		}(r)
	}

	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	// Writer TxnIDs must be unique; make them so before checking.
	seen := make(map[string]int)
	for i := range events {
		seen[events[i].TxnID]++
		if seen[events[i].TxnID] > 1 {
			events[i].TxnID = fmt.Sprintf("%s#%d", events[i].TxnID, seen[events[i].TxnID])
		}
	}
	if err := histcheck.CheckSerializable(events); err != nil {
		t.Fatalf("execution history not serializable: %v", err)
	}
	writes := 0
	for _, e := range events {
		if !e.ReadOnly {
			writes++
		}
	}
	if writes < 20 || roCount.Load() < 10 {
		t.Fatalf("history too thin to be meaningful: %d writes, %d reads", writes, roCount.Load())
	}
	t.Logf("serializability verified over %d write txns and %d snapshot reads", writes, roCount.Load())
}
