package core_test

import (
	"errors"
	"testing"
	"time"

	"transedge/internal/core"
)

// auditLog asks one replica for its certified log.
func auditLog(t *testing.T, sys *core.System, node core.NodeID) []core.LogRecord {
	t.Helper()
	replyTo := make(chan core.AuditReply, 1)
	client := core.NodeID{Cluster: -1, Replica: 999}
	sys.Net.Register(client)
	sys.Net.Send(client, node, &core.AuditRequest{ReplyTo: replyTo})
	select {
	case r := <-replyTo:
		return r.Records
	case <-time.After(5 * time.Second):
		t.Fatal("audit request timed out")
		return nil
	}
}

// runTraffic commits a handful of local and distributed transactions.
func runTraffic(t *testing.T, sys *core.System) {
	t.Helper()
	c := testClient(sys, 50)
	k0 := keysOn(sys, 0, 3)
	k1 := keysOn(sys, 1, 3)
	for i := 0; i < 3; i++ {
		txn := c.Begin()
		if _, err := txn.Read(k0[i]); err != nil {
			t.Fatal(err)
		}
		txn.Write(k0[i], []byte("local"))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		txn2 := c.Begin()
		if _, err := txn2.Read(k0[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := txn2.Read(k1[i]); err != nil {
			t.Fatal(err)
		}
		txn2.Write(k0[i], []byte("dist-a"))
		txn2.Write(k1[i], []byte("dist-b"))
		if err := txn2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let participant commits land
}

func TestAuditAcceptsHonestLog(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	runTraffic(t, sys)

	for _, node := range []core.NodeID{{Cluster: 0, Replica: 0}, {Cluster: 1, Replica: 2}} {
		rec := auditLog(t, sys, node)
		if len(rec) < 3 {
			t.Fatalf("node %v exported only %d records", node, len(rec))
		}
		if err := core.VerifyLog(sys.Ring, sys.Cfg.Clusters, rec); err != nil {
			t.Fatalf("honest log from %v rejected: %v", node, err)
		}
	}
}

func TestAuditDetectsTampering(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	runTraffic(t, sys)
	rec := auditLog(t, sys, core.NodeID{Cluster: 0, Replica: 0})
	if len(rec) < 3 {
		t.Fatalf("only %d records", len(rec))
	}

	mutations := []struct {
		name string
		mut  func([]core.LogRecord)
		want error
	}{
		{"forged merkle root", func(r []core.LogRecord) { r[1].Header.MerkleRoot[0] ^= 1 }, core.ErrAuditCert},
		{"bumped LCE", func(r []core.LogRecord) { r[1].Header.LCE = r[1].Header.ID + 5 }, core.ErrAuditSegment},
		{"dropped record", nil, core.ErrAuditChain},
		{"regressed CD", func(r []core.LogRecord) {
			last := len(r) - 1
			r[last].Header.CD[1] = -1
		}, core.ErrAuditCert}, // any CD edit also breaks the certificate
	}
	for _, m := range mutations {
		cp := append([]core.LogRecord(nil), rec...)
		for i := range cp {
			cp[i].Header.CD = cp[i].Header.CD.Clone()
		}
		if m.mut != nil {
			m.mut(cp)
		} else {
			cp = append(cp[:1], cp[2:]...) // drop record 1
		}
		if err := core.VerifyLog(sys.Ring, sys.Cfg.Clusters, cp); err == nil {
			t.Fatalf("%s: tampered log accepted", m.name)
		} else if !errors.Is(err, m.want) {
			t.Fatalf("%s: err = %v, want %v", m.name, err, m.want)
		}
	}
}

func TestAuditEmptyAndPartial(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	if err := core.VerifyLog(sys.Ring, 2, nil); !errors.Is(err, core.ErrAuditEmpty) {
		t.Fatalf("empty log: %v", err)
	}
	runTraffic(t, sys)
	rec := auditLog(t, sys, core.NodeID{Cluster: 0, Replica: 0})
	// A suffix of the log (anchored at a later batch) must also verify:
	// auditors can do incremental audits.
	if len(rec) < 3 {
		t.Fatalf("only %d records", len(rec))
	}
	if err := core.VerifyLog(sys.Ring, sys.Cfg.Clusters, rec[1:]); err != nil {
		t.Fatalf("suffix audit rejected: %v", err)
	}
}

func TestSnapshotRetentionBoundsStateAndKeepsServing(t *testing.T) {
	sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
		cfg.RetainBatches = 4
	})
	c := testClient(sys, 1)
	key := keysOn(sys, 0, 1)[0]
	other := keysOn(sys, 1, 1)[0]

	// Drive enough batches to trigger pruning several times over.
	for i := 0; i < 25; i++ {
		txn := c.Begin()
		if _, err := txn.Read(key); err != nil {
			t.Fatal(err)
		}
		txn.Write(key, []byte{byte(i)})
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Read-only transactions (including cross-partition ones that may
	// need round 2) still work against the retained window.
	res, err := c.ReadOnly([]string{key, other})
	if err != nil {
		t.Fatalf("read-only after pruning: %v", err)
	}
	if res.Values[key] == nil {
		t.Fatal("missing value after pruning")
	}
	// The audit trail survives pruning (headers are kept).
	rec := auditLog(t, sys, core.NodeID{Cluster: 0, Replica: 0})
	if err := core.VerifyLog(sys.Ring, sys.Cfg.Clusters, rec); err != nil {
		t.Fatalf("audit after pruning: %v", err)
	}
	if len(rec) < 10 {
		t.Fatalf("audit trail truncated to %d records", len(rec))
	}
}
