package core

import (
	"testing"

	"transedge/internal/protocol"
)

func wlEntry(id, lce int64) *logEntry {
	return &logEntry{header: protocol.BatchHeader{ID: id, LCE: lce}}
}

func TestWindowedLogBasics(t *testing.T) {
	var l windowedLog
	l.init(0, wlEntry(0, -1))
	for id := int64(1); id <= 10; id++ {
		l.append(wlEntry(id, id-2))
	}
	if l.baseID() != 0 || l.lastID() != 10 || l.len() != 11 {
		t.Fatalf("base=%d last=%d len=%d", l.baseID(), l.lastID(), l.len())
	}
	if e := l.get(7); e == nil || e.header.ID != 7 {
		t.Fatal("get(7) failed")
	}
	if l.get(11) != nil || l.get(-1) != nil {
		t.Fatal("out-of-window get returned an entry")
	}

	if n := l.truncate(4); n != 4 {
		t.Fatalf("truncate dropped %d, want 4", n)
	}
	if l.baseID() != 4 || l.lastID() != 10 || l.len() != 7 {
		t.Fatalf("after truncate: base=%d last=%d len=%d", l.baseID(), l.lastID(), l.len())
	}
	if l.get(3) != nil {
		t.Fatal("truncated entry still reachable")
	}
	if e := l.get(4); e == nil || e.header.ID != 4 {
		t.Fatal("base entry lost")
	}
	// Truncating past the end clamps: the newest entry survives.
	l.truncate(99)
	if l.len() != 1 || l.get(10) == nil {
		t.Fatalf("clamped truncate: len=%d", l.len())
	}
	// Idempotent / no-op truncations.
	if l.truncate(3) != 0 {
		t.Fatal("stale truncate dropped entries")
	}
}

func TestWindowedLogSearchLCE(t *testing.T) {
	var l windowedLog
	l.init(5, wlEntry(5, 2))
	l.append(wlEntry(6, 2))
	l.append(wlEntry(7, 6))
	l.append(wlEntry(8, 6))

	if got := l.searchLCE(2); got != 5 {
		t.Fatalf("searchLCE(2) = %d, want 5 (base clamp)", got)
	}
	if got := l.searchLCE(5); got != 7 {
		t.Fatalf("searchLCE(5) = %d, want 7", got)
	}
	if got := l.searchLCE(7); got != -1 {
		t.Fatalf("searchLCE(7) = %d, want -1 (park)", got)
	}
	// A dependency below the window resolves to the base entry.
	if got := l.searchLCE(0); got != 5 {
		t.Fatalf("searchLCE(0) = %d, want 5", got)
	}
}
