package core_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

// The bank test: accounts hold integer balances summing to a constant;
// read-write transactions transfer amounts between accounts on different
// partitions; read-only transactions read *all* accounts and check the
// sum. Any torn (non-serializable) snapshot breaks the invariant, so this
// exercises the paper's central claim — consistent distributed read-only
// transactions under concurrent distributed writes — end to end,
// including the dependency-repair second round.

const (
	bankAccounts = 24
	bankInitial  = 1000
)

func bankKeys() []string {
	keys := make([]string, bankAccounts)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct-%02d", i)
	}
	return keys
}

func bankSystem(t testing.TB, clusters int) *core.System {
	t.Helper()
	data := make(map[string][]byte, bankAccounts)
	for _, k := range bankKeys() {
		data[k] = []byte(strconv.Itoa(bankInitial))
	}
	cfg := core.SystemConfig{
		Clusters:      clusters,
		F:             1,
		Seed:          7,
		BatchInterval: time.Millisecond,
		BatchMaxSize:  200,
		InitialData:   data,
	}
	sys := core.NewSystem(cfg)
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func TestSnapshotConsistencyUnderConcurrentTransfers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys := bankSystem(t, 3)
	keys := bankKeys()

	var (
		stop         atomic.Bool
		wg           sync.WaitGroup
		commits      atomic.Int64
		aborts       atomic.Int64
		roChecks     atomic.Int64
		secondRounds atomic.Int64
	)

	// Writers: random cross-partition transfers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testClient(sys, uint32(10+w))
			rng := newRand(int64(w))
			for !stop.Load() {
				a := keys[rng.Intn(len(keys))]
				b := keys[rng.Intn(len(keys))]
				if a == b {
					continue
				}
				txn := c.Begin()
				av, err := txn.Read(a)
				if err != nil {
					continue
				}
				bv, err := txn.Read(b)
				if err != nil {
					continue
				}
				ai, _ := strconv.Atoi(string(av))
				bi, _ := strconv.Atoi(string(bv))
				amount := 1 + rng.Intn(10)
				txn.Write(a, []byte(strconv.Itoa(ai-amount)))
				txn.Write(b, []byte(strconv.Itoa(bi+amount)))
				if err := txn.Commit(); err != nil {
					if errors.Is(err, client.ErrAborted) {
						aborts.Add(1)
						continue
					}
					if !stop.Load() {
						t.Errorf("writer %d: %v", w, err)
					}
					return
				}
				commits.Add(1)
			}
		}(w)
	}

	// Readers: full-ledger snapshot reads; the sum must never waver.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := testClient(sys, uint32(100+r))
			for !stop.Load() {
				res, err := c.ReadOnly(keys)
				if err != nil {
					if !stop.Load() {
						t.Errorf("reader %d: %v", r, err)
					}
					return
				}
				sum := 0
				for _, k := range keys {
					v, _ := strconv.Atoi(string(res.Values[k]))
					sum += v
				}
				if sum != bankAccounts*bankInitial {
					t.Errorf("reader %d: snapshot sum %d, want %d (rounds=%d, batches=%v)",
						r, sum, bankAccounts*bankInitial, res.Rounds, res.Batches)
					stop.Store(true)
					return
				}
				roChecks.Add(1)
				if res.Rounds == 2 {
					secondRounds.Add(1)
				}
			}
		}(r)
	}

	time.Sleep(3 * time.Second)
	stop.Store(true)
	wg.Wait()

	if commits.Load() < 20 {
		t.Fatalf("only %d transfers committed; system unhealthy", commits.Load())
	}
	if roChecks.Load() < 20 {
		t.Fatalf("only %d snapshot checks ran", roChecks.Load())
	}
	t.Logf("transfers: %d committed, %d aborted; snapshots: %d verified, %d needed round 2",
		commits.Load(), aborts.Load(), roChecks.Load(), secondRounds.Load())
}

// TestReadOnlyNeverInterferesWithWriters verifies non-interference
// directly (Table 1): with continuous full-ledger read-only load, writer
// aborts can come only from genuine transaction conflicts, never from
// readers. Each writer transfers between accounts of a single cluster it
// owns exclusively (local transactions, so no 2PC visibility lag and no
// write-write conflicts are possible): zero aborts expected.
func TestReadOnlyNeverInterferesWithWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys := bankSystem(t, 3)
	keys := bankKeys()

	// Partition the accounts by owning cluster.
	byCluster := make(map[int32][]string)
	for _, k := range keys {
		cl := sys.Part.Of(k)
		byCluster[cl] = append(byCluster[cl], k)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var aborts, commits atomic.Int64

	// One writer per cluster, each confined to that cluster's accounts.
	for w := 0; w < 3; w++ {
		mine := byCluster[int32(w)]
		if len(mine) < 2 {
			continue
		}
		wg.Add(1)
		go func(w int, mine []string) {
			defer wg.Done()
			c := testClient(sys, uint32(10+w))
			rng := newRand(int64(w))
			for !stop.Load() {
				a, b := mine[rng.Intn(len(mine))], mine[rng.Intn(len(mine))]
				if a == b {
					continue
				}
				txn := c.Begin()
				av, err := txn.Read(a)
				if err != nil {
					continue
				}
				bv, err := txn.Read(b)
				if err != nil {
					continue
				}
				ai, _ := strconv.Atoi(string(av))
				bi, _ := strconv.Atoi(string(bv))
				txn.Write(a, []byte(strconv.Itoa(ai-1)))
				txn.Write(b, []byte(strconv.Itoa(bi+1)))
				if err := txn.Commit(); err != nil {
					if errors.Is(err, client.ErrAborted) {
						aborts.Add(1)
					}
					continue
				}
				commits.Add(1)
			}
		}(w, mine)
	}
	// Heavy read-only pressure over every account.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := testClient(sys, uint32(100+r))
			for !stop.Load() {
				if _, err := c.ReadOnly(keys); err != nil && !stop.Load() {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}

	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	if commits.Load() == 0 {
		t.Fatal("no writer progress under read-only load")
	}
	if aborts.Load() != 0 {
		t.Fatalf("%d writer aborts with disjoint write sets: read-only transactions interfered", aborts.Load())
	}
	t.Logf("%d disjoint-key transfers committed with zero aborts under read-only pressure", commits.Load())
}
