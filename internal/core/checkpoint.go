package core

import (
	"fmt"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
	"transedge/internal/store"
)

// Checkpointing and state transfer (DESIGN.md §6).
//
// Every CheckpointInterval batches each replica derives a checkpoint
// digest from its post-delivery state, signs it, and broadcasts a vote.
// 2f+1 matching votes establish a *stable checkpoint*: the log window,
// Merkle versions, and store versions below it are truncated, and a
// lagging or restarted replica installs the checkpoint wholesale from
// any single (untrusted) peer, verifying every component against the
// checkpoint and consensus certificates.

// checkpointState is one checkpoint this replica has derived: the
// position, the signed state digest, the material a joiner needs
// (header, consensus certificate, open prepare groups), and the vote
// set. Once 2f+1 votes match, cert holds the relayable quorum.
type checkpointState struct {
	id         int64
	digest     protocol.Digest
	header     protocol.BatchHeader
	headerCert cryptoutil.Certificate
	groups     []protocol.CheckpointGroup
	// entries is the store snapshot captured at derivation (or received
	// at install). Versions visible at the checkpoint are immutable and
	// prune-clamped, so the capture equals a fresh export — retaining it
	// makes serving a StateRequest O(1) instead of an O(keys) export on
	// the consensus loop per (unauthenticated, retry-happy) request.
	entries []protocol.SnapshotEntry
	votes   map[int32][]byte // replica -> verified signature over digest
	cert    cryptoutil.Certificate
	stable  bool
}

// chkQuorum is the checkpoint quorum size: 2f+1 matching votes guarantee
// at least f+1 honest replicas hold this exact state, so at least one
// honest replica can always serve it (and the certificate can never be
// assembled for a state no honest replica has).
func (n *Node) chkQuorum() int { return 2*n.cfg.F + 1 }

// openGroups snapshots the open prepare groups (and their records, from
// distTxns) in queue order — the protocol metadata a checkpoint must
// carry beyond the store content.
func (n *Node) openGroups() []protocol.CheckpointGroup {
	out := make([]protocol.CheckpointGroup, 0, len(n.groups))
	for _, g := range n.groups {
		cg := protocol.CheckpointGroup{PrepareBatch: g.prepareBatch}
		for _, id := range g.ids {
			if dt := n.distTxns[id]; dt != nil {
				cg.Recs = append(cg.Recs, dt.rec)
			}
		}
		out = append(out, cg)
	}
	return out
}

// snapshotEntries exports the store at asOf as protocol snapshot
// entries (key-sorted, the canonical digest order).
func (n *Node) snapshotEntries(asOf int64) []protocol.SnapshotEntry {
	kvs := n.st.ExportAsOf(asOf)
	out := make([]protocol.SnapshotEntry, len(kvs))
	for i, kv := range kvs {
		out[i] = protocol.SnapshotEntry{Key: kv.Key, Value: kv.Value, Writer: kv.Writer}
	}
	return out
}

// maybeCheckpoint runs after delivering batch id: at every checkpoint
// interval it derives this replica's checkpoint, votes for it, and
// replays any buffered peer votes. The store scan happens synchronously
// on the loop — delivery order is what makes the derived state
// deterministic across replicas — and costs O(keys) once per interval.
func (n *Node) maybeCheckpoint(id int64) {
	interval := int64(n.cfg.CheckpointInterval)
	if interval <= 0 || id%interval != 0 || id == 0 {
		return
	}
	// Not during state-transfer replay: every interval the suffix
	// crosses would otherwise pay a full store scan and broadcast votes
	// for checkpoints the live peers are already past (they discard them
	// as stale, and no quorum can ever form). The gate is the replay
	// flag, NOT the broader syncing flag: live deliveries must keep
	// checkpointing even while a sync is pending, or a byzantine peer
	// whose forged sequence numbers keep the lagging signal lit could
	// suppress checkpoint formation cluster-wide.
	if n.replaying {
		return
	}
	entry := n.log.get(id)
	if entry == nil {
		return
	}
	groups := n.openGroups()
	entries := n.snapshotEntries(id)
	digest := protocol.CheckpointDigest(n.cfg.Cluster, id, entry.digest,
		protocol.SnapshotDigest(entries), protocol.GroupsDigest(groups))
	cs := &checkpointState{
		id:         id,
		digest:     digest,
		header:     entry.header,
		headerCert: entry.cert,
		groups:     groups,
		entries:    entries,
		votes:      map[int32][]byte{},
	}
	n.chk = cs

	sig := n.cfg.Keys.Sign(digest[:])
	cs.votes[n.cfg.Replica] = sig
	n.cfg.Net.Broadcast(n.self, n.peers, &protocol.Checkpoint{
		Cluster: n.cfg.Cluster, BatchID: id,
		StateDigest: digest, Replica: n.cfg.Replica, Sig: sig,
	})

	// Replay buffered votes for this checkpoint; drop buffers at or
	// below it (they can never become relevant again).
	for bid, votes := range n.chkVotes {
		if bid > id {
			continue
		}
		if bid == id {
			for _, v := range votes {
				n.recordChkVote(cs, v)
			}
		}
		delete(n.chkVotes, bid)
	}
	n.maybeStabilize(cs)
}

// onCheckpoint handles a peer's checkpoint vote. Votes for checkpoints
// we have not reached yet are buffered (bounded); votes for older
// checkpoints are stale and dropped.
func (n *Node) onCheckpoint(from NodeID, m *protocol.Checkpoint) {
	if from.Cluster != n.cfg.Cluster || m.Cluster != n.cfg.Cluster || from.Replica != m.Replica {
		return
	}
	if n.chk != nil && m.BatchID == n.chk.id {
		n.recordChkVote(n.chk, m)
		n.maybeStabilize(n.chk)
		return
	}
	// The stale floor is the newest checkpoint position we know of —
	// derived or installed. Without the stable clamp, a byzantine peer
	// could buffer one unverified vote map per interval of the whole
	// history whenever chk is nil (e.g. right after an install).
	cur := int64(0)
	if n.chk != nil {
		cur = n.chk.id
	}
	if n.stable != nil && n.stable.id > cur {
		cur = n.stable.id
	}
	interval := int64(n.cfg.CheckpointInterval)
	if interval <= 0 || m.BatchID <= cur || m.BatchID%interval != 0 {
		return
	}
	// Ahead of us: buffer until we deliver that batch ourselves, bounded
	// to the plausible near future so a byzantine peer cannot grow the
	// buffer without limit.
	if m.BatchID > n.lastBatchID()+4*interval {
		return
	}
	votes := n.chkVotes[m.BatchID]
	if votes == nil {
		votes = make(map[int32]*protocol.Checkpoint)
		n.chkVotes[m.BatchID] = votes
	}
	if _, dup := votes[m.Replica]; !dup {
		votes[m.Replica] = m
	}
}

// recordChkVote verifies and records one vote for the checkpoint this
// replica derived. Only signatures over OUR digest count — a vote for a
// different digest at the same position is simply ignored (with up to f
// faulty replicas it cannot form a quorum for a divergent state).
func (n *Node) recordChkVote(cs *checkpointState, m *protocol.Checkpoint) {
	if cs.stable || m.StateDigest != cs.digest {
		return
	}
	if _, dup := cs.votes[m.Replica]; dup {
		return
	}
	pub := n.cfg.Ring.PublicKey(NodeID{Cluster: n.cfg.Cluster, Replica: m.Replica})
	if pub == nil || !cryptoutil.Verify(pub, cs.digest[:], m.Sig) {
		return
	}
	cs.votes[m.Replica] = m.Sig
}

// maybeStabilize promotes a checkpoint to stable once it holds a 2f+1
// vote quorum, assembles the relayable certificate, and truncates
// everything below it.
func (n *Node) maybeStabilize(cs *checkpointState) {
	if cs.stable || len(cs.votes) < n.chkQuorum() {
		return
	}
	cs.stable = true
	cs.cert = cryptoutil.Certificate{Cluster: n.cfg.Cluster}
	for r := int32(0); int(r) < n.cfg.N; r++ {
		if sig, ok := cs.votes[r]; ok {
			cs.cert.Signatures = append(cs.cert.Signatures, cryptoutil.Signature{
				Signer: NodeID{Cluster: n.cfg.Cluster, Replica: r}, Sig: sig,
			})
		}
	}
	n.stable = cs
	n.stableID.Store(cs.id)
	n.Metrics.CheckpointsStable++
	n.truncateBelow(cs.id)
	// Persist the quorum-backed checkpoint and truncate the WAL below it:
	// from here on a cold restart rebuilds from this state instead of
	// replaying history from genesis.
	n.persistCheckpoint(cs)
}

// truncateBelow drops log entries, Merkle versions, and (via the
// incremental pruner's clamp) store versions below the stable
// checkpoint. The serving floor (oldestSnapshot) rises with the window
// base: requests for pruned snapshots are answered with the base, which
// is at least as new and still dependency-satisfying.
func (n *Node) truncateBelow(id int64) {
	dropped := n.log.truncate(id)
	n.Metrics.LogTruncated += int64(dropped)
	base := n.log.baseID()
	for tid := range n.trees {
		if tid < base {
			delete(n.trees, tid)
		}
	}
	if base > n.oldestSnapshot {
		n.oldestSnapshot = base
	}
	// Consensus bookkeeping below the stable base — equivocation evidence,
	// stale pre-prepares, dead instances — can never matter again either.
	n.consensus.TruncateBelow(id)
}

// ---- State transfer ----

// startStateSync begins (or rotates) a state-transfer request to the
// next cluster peer.
func (n *Node) startStateSync() {
	n.syncing = true
	n.syncDeadline = time.Now().Add(n.cfg.StateTransferTimeout)
	// Rotate through peers, skipping ourselves.
	for {
		n.syncPeer = (n.syncPeer + 1) % int32(n.cfg.N)
		if n.syncPeer != n.cfg.Replica {
			break
		}
	}
	n.cfg.Net.Send(n.self, NodeID{Cluster: n.cfg.Cluster, Replica: n.syncPeer},
		&protocol.StateRequest{From: n.self, HaveBatch: n.lastBatchID()})
}

// maybeStateSync (tick) starts a sync when consensus traffic shows we
// are beyond live catch-up — messages are being dropped past the
// buffering window, so only a state transfer can restore liveness — and
// retries a stuck sync past its deadline.
func (n *Node) maybeStateSync() {
	if n.cfg.CheckpointInterval <= 0 {
		return // no checkpoints anywhere: nothing to transfer
	}
	if n.syncing {
		if time.Now().After(n.syncDeadline) {
			// Stop retrying once nothing newer than our tip has been
			// observed — but a recovering replica must first hear
			// "nothing newer" from f+1 distinct peers: at least one of
			// them is honest, and silence alone (the polled peer may be
			// down, or byzantine and replying empty) does not mean the
			// quiet cluster is at genesis with us.
			caughtUp := n.consensus.HighestSeen() <= n.lastBatchID()
			if caughtUp && (!n.cfg.Recovering || len(n.syncHeard) > n.cfg.F) {
				n.syncing = false
			} else {
				n.startStateSync()
			}
		}
		return
	}
	if n.consensus.Lagging() {
		n.startStateSync()
	}
}

// onStateRequest serves a peer's catch-up material. A requester behind
// the stable checkpoint gets the checkpoint (with its full snapshot)
// plus the suffix above it; a requester at or past it (the repeated-gap
// sync after an install) gets only the suffix above HaveBatch — no
// O(keys) export. Before any stable checkpoint exists, the retained
// suffix above HaveBatch is served on its own (CheckpointID stays < 0);
// if the needed bodies were body-pruned the suffix will not chain and
// the requester retries after the next checkpoint forms.
func (n *Node) onStateRequest(m *protocol.StateRequest) {
	if m.From.Cluster != n.cfg.Cluster {
		return // state transfer is intra-cluster
	}
	resp := &protocol.StateResponse{Cluster: n.cfg.Cluster, CheckpointID: -1,
		Tip: n.lastBatchID(), View: n.consensus.CurrentView()}
	start := m.HaveBatch + 1
	if cs := n.stable; cs != nil {
		resp.CheckpointID = cs.id
		resp.Header = cs.header
		resp.HeaderCert = cs.headerCert
		resp.Cert = cs.cert
		if m.HaveBatch < cs.id {
			resp.Entries = cs.entries // captured at derivation; immutable
			resp.Groups = cs.groups
			start = cs.id + 1
		}
	}
	if start < n.oldestSnapshot {
		// The bodies the requester would need were pruned (only possible
		// before the first stable checkpoint, whose clamp keeps bodies
		// above it). Nothing chains for them: send no suffix and let the
		// retry land after a checkpoint forms.
		start = n.lastBatchID() + 1
	}
	for id := start; id <= n.lastBatchID(); id++ {
		e := n.log.get(id)
		if e == nil || e.batch == nil {
			resp.Suffix = nil // cannot happen given the clamps; stay safe
			break
		}
		resp.Suffix = append(resp.Suffix, protocol.CertifiedBatch{Batch: e.batch, Cert: e.cert})
	}
	n.cfg.Net.Send(n.self, m.From, resp)
}

// errSync annotates a rejected state response.
func errSync(format string, args ...any) error {
	return fmt.Errorf("core: state transfer rejected: "+format, args...)
}

// onStateResponse verifies and applies a state transfer: install the
// stable checkpoint if it is ahead of us, then replay the certified
// suffix. A response that fails any check is discarded; the retry
// deadline rotates us to another peer.
func (n *Node) onStateResponse(from NodeID, m *protocol.StateResponse) {
	if !n.syncing || m.Cluster != n.cfg.Cluster || from.Cluster != n.cfg.Cluster {
		return
	}
	// Only the peer this round actually polled may answer it. Anyone in
	// the cluster can see a sync is likely under way; accepting
	// unsolicited responses would let one byzantine replica flood empty
	// answers that close every round before the honest responder's data
	// arrives.
	if from.Replica != n.syncPeer {
		return
	}
	advanced := false
	if m.CheckpointID > n.lastBatchID() {
		if err := n.installCheckpoint(m); err != nil {
			// The snapshot failed certificate or Merkle verification: this
			// responder is useless (or lying). Rotate to another peer right
			// away instead of burning the whole deadline on it.
			n.startStateSync()
			return
		}
		advanced = true
	}
	n.replaying = true
	for i := range m.Suffix {
		cb := m.Suffix[i]
		if cb.Batch == nil || cb.Batch.ID <= n.lastBatchID() {
			continue
		}
		if err := n.replayCertified(cb); err != nil {
			break
		}
		advanced = true
	}
	n.replaying = false
	if !advanced && m.Tip > n.lastBatchID() {
		// The responder has newer history it could not serve — bodies
		// pruned before the first stable checkpoint formed, or a suffix
		// that failed to verify. Not evidence of being caught up: rotate
		// to another peer immediately rather than burning the rest of the
		// deadline on this one. A byzantine responder lying about its tip
		// merely keeps us politely retrying until an honest peer answers.
		n.startStateSync()
		return
	}
	if !advanced {
		// The round fetched nothing newer than our tip: whatever raised
		// the lagging signal beyond it (a forged sequence number, or
		// traffic the transfer already superseded) is not fetchable.
		// Settle the high-water mark so the signal heals instead of
		// re-triggering sync forever (genuine traffic re-raises it), and
		// close the round right away — staying in `syncing` until the
		// deadline would hand a forger a standing window in which this
		// replica skips work. A recovering replica still waits for f+1
		// distinct "nothing newer" answers (this response is exactly
		// that — a verification failure returned above, so only honest
		// emptiness or an un-actionable lie counts, and among any f+1
		// distinct answerers one is honest) before concluding the quiet
		// cluster really is at its tip.
		n.syncHeard[from.Replica] = true
		n.consensus.SettleHighestSeen(n.lastBatchID())
		if !n.cfg.Recovering || len(n.syncHeard) > n.cfg.F {
			n.syncing = false
		}
		return
	}
	// The tip moved: earlier "nothing newer" answers are stale evidence
	// for any later round, so the quorum restarts from scratch.
	clear(n.syncHeard)
	// Re-base consensus at the new tip and resume live operation. Any
	// speculative slot left over (validated ahead of the old delivery
	// point but superseded by the replay) is rolled back — revalidation
	// after the reset rebuilds the chain from the new tip. Any remaining
	// gap (batches delivered after the responder built the response
	// whose messages we missed) re-triggers a sync via the lagging
	// signal.
	n.rollbackSpec(0)
	tipEntry := n.log.last()
	n.consensus.Reset(n.log.lastID(), tipEntry.digest, tipEntry.header, tipEntry.cert)
	// Rejoin at the view the responder runs in, not view 0: without this a
	// recovered replica would reject the current leader's proposals until
	// the next view change swept it along. The field is unauthenticated —
	// a lying responder costs at most one timeout (DESIGN §7).
	n.consensus.AdoptView(m.View)
	n.syncing = false
	n.serveParked()
}

// installCheckpoint verifies and installs a stable checkpoint received
// from a peer, then persists it locally (it is the newest durable state
// this replica can prove).
func (n *Node) installCheckpoint(m *protocol.StateResponse) error {
	if err := n.installCheckpointParts(m.CheckpointID, m.Header, m.HeaderCert,
		m.Cert, m.Entries, m.Groups); err != nil {
		return err
	}
	n.Metrics.StateTransfers++
	n.persistCheckpoint(n.stable)
	return nil
}

// installCheckpointParts verifies a stable checkpoint against its two
// certificates and replaces this replica's state with it:
//
//  1. the f+1 consensus certificate authenticates the batch header
//     (Merkle root, CD vector, LCE) at the checkpoint position;
//  2. the 2f+1 checkpoint certificate authenticates the state digest,
//     which binds the header digest, every key's writer batch, and the
//     open prepare groups;
//  3. rebuilding the Merkle tree from the shipped entries must
//     reproduce the certified root, authenticating the values.
//
// Only after every check passes is any local state touched. Both sources
// of checkpoints — a peer's StateResponse and the local checkpoint file
// of a cold restart — go through this exact chain: disk is verified like
// an untrusted peer.
func (n *Node) installCheckpointParts(id int64, header protocol.BatchHeader,
	headerCert, cert cryptoutil.Certificate,
	entries []protocol.SnapshotEntry, groups []protocol.CheckpointGroup) error {

	h := &header
	if h.Cluster != n.cfg.Cluster || h.ID != id {
		return errSync("header position mismatch")
	}
	headerDigest := h.Digest()
	if err := cryptoutil.VerifyCertificate(n.cfg.Ring, headerCert, headerDigest[:], n.cfg.F+1); err != nil {
		return errSync("header certificate: %v", err)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			return errSync("snapshot entries not strictly key-sorted")
		}
	}
	for i := 1; i < len(groups); i++ {
		if groups[i-1].PrepareBatch >= groups[i].PrepareBatch {
			return errSync("groups out of order")
		}
	}
	digest := protocol.CheckpointDigest(n.cfg.Cluster, id, headerDigest,
		protocol.SnapshotDigest(entries), protocol.GroupsDigest(groups))
	if err := cryptoutil.VerifyCertificate(n.cfg.Ring, cert, digest[:], n.chkQuorum()); err != nil {
		return errSync("checkpoint certificate: %v", err)
	}
	ups := make([]merkle.Update, len(entries))
	for i := range entries {
		ups[i] = merkle.Update{
			KeyHash: merkle.HashKey([]byte(entries[i].Key)),
			ValHash: merkle.HashValue(entries[i].Value),
		}
	}
	tree := merkle.Build(ups)
	if tree.Root() != h.MerkleRoot {
		return errSync("snapshot does not reproduce the certified merkle root")
	}

	// Everything verified: install. Speculative and 2PC state derived
	// from the abandoned prefix is discarded wholesale (a recovering
	// replica has none; a lagging one rebuilds from the checkpoint).
	n.rollbackSpec(0)
	kvs := make([]store.KV, len(entries))
	for i := range entries {
		kvs[i] = store.KV{Key: entries[i].Key, Value: entries[i].Value, Writer: entries[i].Writer}
	}
	n.st.ImportAsOf(id, kvs)
	n.curTree = tree
	n.trees = map[int64]*merkle.Tree{id: tree}
	n.log.init(id, &logEntry{header: header, digest: headerDigest, cert: headerCert})
	n.tip.Store(id)
	n.oldestSnapshot = id
	n.pruneCursor, n.pruneBoundary, n.prunedThrough = 0, 0, 0

	n.groups = n.groups[:0]
	n.preparedReads = make(keyRefs)
	n.preparedWrites = make(keyRefs)
	n.distTxns = make(map[protocol.TxnID]*distTxn)
	n.pendingDecisions = make(map[protocol.TxnID]*protocol.CommitDecision)
	for _, cg := range groups {
		g := &group{prepareBatch: cg.PrepareBatch}
		for i := range cg.Recs {
			rec := cg.Recs[i]
			tid := rec.Txn.ID
			g.ids = append(g.ids, tid)
			n.distTxns[tid] = &distTxn{rec: rec, prepareBatch: cg.PrepareBatch}
			for _, r := range n.localReads(&rec.Txn) {
				n.preparedReads.add(r.Key)
			}
			for _, w := range n.localWrites(&rec.Txn) {
				n.preparedWrites.add(w.Key)
			}
		}
		n.groups = append(n.groups, g)
	}

	// The installed checkpoint is our stable checkpoint now: we hold its
	// certificate, so we can serve state transfers ourselves.
	n.chk = nil
	n.stable = &checkpointState{
		id: id, digest: digest, header: header,
		headerCert: headerCert, groups: groups, entries: entries,
		cert: cert, stable: true,
	}
	n.stableID.Store(id)
	return nil
}

// replayCertified applies one certified batch from a state-transfer
// suffix: it must extend our log position exactly (ID and PrevDigest
// chain) and carry a valid f+1 certificate over its digest; application
// then follows the exact delivery path consensus would have taken.
func (n *Node) replayCertified(cb protocol.CertifiedBatch) error {
	b := cb.Batch
	tip := n.log.last()
	if b.ID != tip.header.ID+1 {
		return errSync("suffix gap: got %d after %d", b.ID, tip.header.ID)
	}
	if b.PrevDigest != tip.digest {
		return errSync("suffix batch %d does not chain", b.ID)
	}
	d := b.Digest()
	if err := cryptoutil.VerifyCertificate(n.cfg.Ring, cb.Cert, d[:], n.cfg.F+1); err != nil {
		return errSync("suffix batch %d certificate: %v", b.ID, err)
	}
	n.Metrics.SuffixReplayed++
	n.onDeliver(cb)
	return nil
}
