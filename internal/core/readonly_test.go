package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"transedge/internal/bft"
	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// TestSecondRoundRepairsInconsistency reproduces the paper's Fig. 1
// scenario deterministically: the coordinator commits a distributed
// transaction but the participant's commit is delayed by a slow
// inter-leader link, so a read-only transaction issued in that window sees
// a dependency gap and must run the second round.
func TestSecondRoundRepairsInconsistency(t *testing.T) {
	sys := testSystem(t, 2, 1, 200)
	c := testClient(sys, 1)
	k0 := keysOn(sys, 0, 1)[0] // cluster 0
	k1 := keysOn(sys, 1, 1)[0] // cluster 1

	// Pick the coordinator deterministically by routing the commit to
	// cluster 0's leader ourselves — the client chooses randomly, so
	// instead we delay decisions in BOTH directions between leaders.
	leader0 := core.NodeID{Cluster: 0, Replica: 0}
	leader1 := core.NodeID{Cluster: 1, Replica: 0}
	var gate sync.Mutex
	slow := false
	sys.Net.SetLatency(func(from, to transport.NodeID) time.Duration {
		gate.Lock()
		defer gate.Unlock()
		if slow && from.Cluster != to.Cluster &&
			from.Cluster != transport.ClientCluster && to.Cluster != transport.ClientCluster &&
			(from == leader0 || from == leader1) {
			return 80 * time.Millisecond
		}
		return 0
	})

	txn := c.Begin()
	if _, err := txn.Read(k0); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(k1); err != nil {
		t.Fatal(err)
	}
	txn.Write(k0, []byte("A"))
	txn.Write(k1, []byte("B"))

	// Slow the inter-leader links only after the transaction prepared
	// everywhere, so just the CommitDecision is delayed. We cannot hook
	// the exact moment, so enable the delay and commit: prepares and
	// votes cross the slow link too, which merely stretches the window.
	gate.Lock()
	slow = true
	gate.Unlock()
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// The coordinator has committed; the other cluster's decision is
	// still in flight for up to 80ms. A read-only transaction now must
	// still return a consistent snapshot (possibly via round 2).
	sawSecondRound := false
	for i := 0; i < 20; i++ {
		res, err := c.ReadOnly([]string{k0, k1})
		if err != nil {
			t.Fatalf("read-only: %v", err)
		}
		a, b := string(res.Values[k0]), string(res.Values[k1])
		newA, newB := a == "A", b == "B"
		if newA != newB {
			t.Fatalf("inconsistent snapshot %q/%q (rounds=%d)", a, b, res.Rounds)
		}
		if res.Rounds == 2 {
			sawSecondRound = true
		}
		if newA && newB && sawSecondRound {
			break
		}
	}
	if !sawSecondRound {
		t.Fatal("delayed participant commit never forced a second round")
	}
}

// TestCDVectorsTrackDependencies checks the Fig. 3 bookkeeping: once a
// distributed transaction is visible on both partitions, each partition's
// CD entry for the other is covered by that partition's LCE, and both
// point at the prepare batches of the transaction.
func TestCDVectorsTrackDependencies(t *testing.T) {
	sys := testSystem(t, 2, 1, 200)
	c := testClient(sys, 1)
	k0 := keysOn(sys, 0, 1)[0]
	k1 := keysOn(sys, 1, 1)[0]

	txn := c.Begin()
	if _, err := txn.Read(k0); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(k1); err != nil {
		t.Fatal(err)
	}
	txn.Write(k0, []byte("A"))
	txn.Write(k1, []byte("B"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.ReadOnly([]string{k0, k1})
		if err != nil {
			t.Fatal(err)
		}
		h0, h1 := res.Headers[0], res.Headers[1]
		if string(res.Values[k0]) == "A" && string(res.Values[k1]) == "B" {
			// Both partitions committed the transaction: cross
			// dependencies must now be recorded and satisfied.
			if h0.CD[1] < 0 || h1.CD[0] < 0 {
				t.Fatalf("missing cross dependencies: CD0=%v CD1=%v", h0.CD, h1.CD)
			}
			if h0.CD[1] > h1.LCE || h1.CD[0] > h0.LCE {
				t.Fatalf("unsatisfied dependencies returned: CD0=%v LCE1=%d, CD1=%v LCE0=%d",
					h0.CD, h1.LCE, h1.CD, h0.LCE)
			}
			// The self entry always equals the batch ID.
			if h0.CD[0] != h0.ID || h1.CD[1] != h1.ID {
				t.Fatalf("self CD entries wrong: %v/%d, %v/%d", h0.CD, h0.ID, h1.CD, h1.ID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("distributed commit never fully visible")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestByzantineROServerCorruptValuesDetected(t *testing.T) {
	sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
		cfg.ROByzantine = map[core.NodeID]core.ROBehavior{
			{Cluster: 0, Replica: 0}: {CorruptValues: true},
		}
	})
	c := testClient(sys, 1)
	ks := keysOn(sys, 0, 2)
	_, err := c.ReadOnly(ks)
	if !errors.Is(err, client.ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestByzantineROServerCorruptProofsDetected(t *testing.T) {
	sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
		cfg.ROByzantine = map[core.NodeID]core.ROBehavior{
			{Cluster: 0, Replica: 0}: {CorruptProofs: true},
		}
	})
	c := testClient(sys, 1)
	ks := keysOn(sys, 0, 2)
	_, err := c.ReadOnly(ks)
	if !errors.Is(err, client.ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

// TestByzantineRODuplicateOmitKeyDetected: a server that answers one
// requested key twice (each copy validly proven) while omitting another
// must be rejected — otherwise the omitted key would silently read as
// absent with no absence proof. Exercised on both proof paths, since the
// exactly-once coverage check is the only defense on either.
func TestByzantineRODuplicateOmitKeyDetected(t *testing.T) {
	for _, disableMulti := range []bool{false, true} {
		name := "multiproof"
		if disableMulti {
			name = "perkey"
		}
		t.Run(name, func(t *testing.T) {
			sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
				cfg.DisableMultiProofRO = disableMulti
				cfg.ROByzantine = map[core.NodeID]core.ROBehavior{
					{Cluster: 0, Replica: 0}: {DuplicateOmitKey: true},
				}
			})
			c := testClient(sys, 1)
			ks := keysOn(sys, 0, 2)
			_, err := c.ReadOnly(ks)
			if !errors.Is(err, client.ErrVerification) {
				t.Fatalf("err = %v, want ErrVerification", err)
			}
		})
	}
}

func TestByzantineStaleSnapshotDetectedWithFreshnessBound(t *testing.T) {
	sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
		cfg.ROByzantine = map[core.NodeID]core.ROBehavior{
			{Cluster: 0, Replica: 0}: {ServeStaleBatch: true},
		}
	})
	// Age the genesis snapshot past the staleness bound.
	time.Sleep(120 * time.Millisecond)

	strict := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 5 * time.Second,
		MaxStaleness: 100 * time.Millisecond,
	})
	ks := keysOn(sys, 0, 1)
	if _, err := strict.ReadOnly(ks); !errors.Is(err, client.ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}

	// Without a bound the stale-but-consistent snapshot verifies: this is
	// exactly the freshness limitation the paper concedes in Sec. 4.4.2.
	lax := testClient(sys, 2)
	if _, err := lax.ReadOnly(ks); err != nil {
		t.Fatalf("stale snapshot with valid proofs rejected: %v", err)
	}
}

func TestClusterSurvivesByzantineFollowers(t *testing.T) {
	sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
		cfg.Byzantine = map[core.NodeID]bft.Behavior{
			{Cluster: 0, Replica: 3}: {Silent: true},
			{Cluster: 1, Replica: 2}: {CorruptCertSig: true},
		}
	})
	c := testClient(sys, 1)
	k0 := keysOn(sys, 0, 1)[0]
	k1 := keysOn(sys, 1, 1)[0]

	txn := c.Begin()
	if _, err := txn.Read(k0); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(k1); err != nil {
		t.Fatal(err)
	}
	txn.Write(k0, []byte("X"))
	txn.Write(k1, []byte("Y"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit with byzantine followers: %v", err)
	}
	if _, err := c.ReadOnly([]string{k0, k1}); err != nil {
		t.Fatalf("read-only with byzantine followers: %v", err)
	}
}

// TestByzantineLeaderTimestampRejected shows the freshness window in
// action on the write path: a leader that backdates batch timestamps
// (trying to widen the stale-snapshot attack window) cannot get anything
// certified, because honest replicas reject out-of-window timestamps
// before voting (Sec. 4.4.2).
func TestByzantineLeaderTimestampRejected(t *testing.T) {
	sys := testSystem(t, 1, 1, 50, func(cfg *core.SystemConfig) {
		cfg.FreshnessWindow = time.Minute
		cfg.Byzantine = map[core.NodeID]bft.Behavior{
			{Cluster: 0, Replica: 0}: {TamperBatch: func(b *protocol.Batch) {
				b.Timestamp -= (10 * time.Minute).Nanoseconds()
			}},
		}
	})
	c := client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 500 * time.Millisecond,
	})
	key := keysOn(sys, 0, 1)[0]
	txn := c.Begin()
	txn.Write(key, []byte("v"))
	if err := txn.Commit(); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("commit under backdating leader: err = %v, want timeout (no progress, no bad commit)", err)
	}
}

// TestReadOnlyAbsentKeysAreProven: "not found" answers carry verified
// non-membership proofs, so a byzantine server cannot hide keys by
// claiming absence.
func TestReadOnlyAbsentKeysAreProven(t *testing.T) {
	sys := testSystem(t, 2, 1, 50)
	c := testClient(sys, 1)
	present := keysOn(sys, 0, 1)[0]

	res, err := c.ReadOnly([]string{present, "never-loaded-key-1", "never-loaded-key-2"})
	if err != nil {
		t.Fatalf("read-only with absent keys: %v", err)
	}
	if res.Values[present] == nil {
		t.Fatal("present key missing")
	}
	if res.Values["never-loaded-key-1"] != nil {
		t.Fatal("absent key returned a value")
	}

	// A byzantine server claiming absence WITHOUT a proof is rejected:
	// strip proofs by serving from a node configured to corrupt proofs
	// is covered elsewhere; here we check the client-side requirement by
	// direct request manipulation.
	absent := ""
	for i := 0; absent == ""; i++ {
		k := fmt.Sprintf("absent-%d", i)
		if sys.Part.Of(k) == 0 {
			absent = k
		}
	}
	from := core.NodeID{Cluster: transport.ClientCluster, Replica: 88}
	sys.Net.Register(from)
	replyTo := make(chan protocol.ROReply, 1)
	sys.Net.Send(from, core.NodeID{Cluster: 0, Replica: 0}, &protocol.RORequest{
		Keys: []string{absent}, AsOfLCE: -1, ReplyTo: replyTo,
	})
	select {
	case r := <-replyTo:
		if len(r.Values) != 1 || r.Values[0].Found {
			t.Fatalf("unexpected reply: %+v", r.Values)
		}
		// The default reply proves absence through the request-wide
		// multi-proof; the per-key path must attach an absence proof.
		if r.Multi != nil {
			answers := []merkle.KeyAnswer{{Key: []byte(absent), Found: false}}
			if err := merkle.VerifyMulti(r.Header.MerkleRoot, answers, *r.Multi); err != nil {
				t.Fatalf("multi-proof does not prove absence: %v", err)
			}
		} else if r.Values[0].Absence == nil {
			t.Fatal("server did not attach an absence proof")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}
