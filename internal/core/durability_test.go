package core_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

// durableConfig is the shared shape of the durability tests: one cluster
// of 4 replicas, checkpoints every 4 batches, durability rooted at dir.
func durableConfig(dir string, keys int) core.SystemConfig {
	data := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("init-%d", i))
	}
	return core.SystemConfig{
		Clusters:             1,
		F:                    1,
		Seed:                 42,
		BatchInterval:        time.Millisecond,
		BatchMaxSize:         500,
		CheckpointInterval:   4,
		RetainBatches:        8,
		StateTransferTimeout: 25 * time.Millisecond,
		DataDir:              dir,
		InitialData:          data,
	}
}

// settleTips waits until every replica of cluster 0 has delivered through
// the leader's tip, so each disk image contains everything committed.
func settleTips(t *testing.T, sys *core.System) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lead := sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip()
		ok := true
		for r := int32(0); r < 4; r++ {
			if sys.Node(core.NodeID{Cluster: 0, Replica: r}).Tip() < lead {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replicas never converged on the leader's tip")
}

// TestColdRestartServesCommittedWritesFromDiskAlone is the acceptance
// scenario: a 4-replica cluster is killed mid-run — all replicas at once,
// after at least two stable checkpoints plus a WAL suffix — and a fresh
// System over the same DataDir must rebuild committed state from disk
// alone (no live peer holds it), replay the suffix through delivery, and
// serve verified reads that include the pre-crash committed writes.
func TestColdRestartServesCommittedWritesFromDiskAlone(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 100)
	sys := core.NewSystem(cfg)
	sys.Start()

	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)
	expected := make(map[string][]byte)
	// 22 commits: five checkpoint intervals of 4, plus a suffix above the
	// last stable checkpoint that only the WAL holds.
	for i := 0; i < 22; i++ {
		k, v := keys[i%len(keys)], []byte(fmt.Sprintf("v-%d", i))
		txn := c.Begin()
		txn.Write(k, v)
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		expected[k] = v
	}
	settleTips(t, sys)

	tips := make(map[core.NodeID]int64)
	for r := int32(0); r < 4; r++ {
		id := core.NodeID{Cluster: 0, Replica: r}
		n := sys.Node(id)
		tips[id] = n.Tip()
		if stable := n.StableCheckpoint(); stable < 2*int64(cfg.CheckpointInterval) {
			t.Fatalf("replica %d: stable checkpoint %d, want >= 2 intervals", r, stable)
		}
		if n.Tip() <= n.StableCheckpoint() {
			t.Fatalf("replica %d: no WAL suffix above the stable checkpoint", r)
		}
	}

	// Kill everything. Nothing in memory survives this.
	sys.Stop()

	sys2 := core.NewSystem(cfg)
	sys2.Start()
	t.Cleanup(sys2.Stop)

	for id, tip := range tips {
		if got := sys2.Node(id).Tip(); got < tip {
			t.Fatalf("replica %d: recovered tip %d < pre-crash tip %d", id.Replica, got, tip)
		}
	}

	// Verified reads against the recovered state, pointed at each replica
	// in turn: Merkle proofs must check out against the certified roots
	// recovered from disk, and values must be the pre-crash committed ones.
	for r := int32(0); r < 4; r++ {
		target := core.NodeID{Cluster: 0, Replica: r}
		roc := client.New(client.Config{
			ID: uint32(10 + r), Net: sys2.Net, Ring: sys2.Ring, Part: sys2.Part,
			Clusters: 1, Timeout: 5 * time.Second,
			ROTarget: func(int32) core.NodeID { return target },
		})
		res, err := roc.ReadOnly(keys)
		if err != nil {
			t.Fatalf("verified read via recovered replica %d: %v", r, err)
		}
		for k, want := range expected {
			if string(res.Values[k]) != string(want) {
				t.Fatalf("replica %d: key %q = %q after restart, want %q",
					r, k, res.Values[k], want)
			}
		}
	}

	sys2.Stop()
	for r := int32(0); r < 4; r++ {
		n := sys2.Node(core.NodeID{Cluster: 0, Replica: r})
		if n.Metrics.ColdRestarts != 1 {
			t.Fatalf("replica %d: ColdRestarts = %d, want 1", r, n.Metrics.ColdRestarts)
		}
		if n.Metrics.WALReplayed == 0 {
			t.Fatalf("replica %d: WALReplayed = 0, the suffix was not replayed from disk", r)
		}
		// Disk-only recovery: every byte came from the local checkpoint
		// and WAL, never from a peer.
		if n.Metrics.StateTransfers != 0 {
			t.Fatalf("replica %d: StateTransfers = %d, want 0 (disk-only recovery)",
				r, n.Metrics.StateTransfers)
		}
	}
}

// TestRestartReplicaRecoversFromDiskBeforePeers: a single replica stopped
// gracefully and restarted rebuilds from its own WAL and checkpoints
// (ColdRestarts/WALReplayed fire) and rejoins the live cluster.
func TestRestartReplicaRecoversFromDiskBeforePeers(t *testing.T) {
	dir := t.TempDir()
	sys := core.NewSystem(durableConfig(dir, 100))
	sys.Start()
	t.Cleanup(sys.Stop)

	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)
	commitN(t, c, keys, 0, 10)
	settleTips(t, sys)

	victim := core.NodeID{Cluster: 0, Replica: 3}
	sys.StopReplica(victim)
	commitN(t, c, keys, 10, 10)

	restarted := sys.RestartReplica(victim)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		commitN(t, c, keys, 20+i, 1)
		lead := sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip()
		if got := restarted.Tip(); got >= lead-1 && got > 20 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if lead := sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip(); restarted.Tip() < lead-1 {
		t.Fatalf("restarted replica never caught up: tip %d vs leader %d", restarted.Tip(), lead)
	}

	sys.Stop()
	if restarted.Metrics.ColdRestarts != 1 {
		t.Fatalf("ColdRestarts = %d, want 1", restarted.Metrics.ColdRestarts)
	}
	if restarted.Metrics.WALReplayed == 0 {
		t.Fatal("WALReplayed = 0: the replica ignored its own disk")
	}
}

// TestWALCrashBeforeSyncLosesTailAndPeersCoverIt injects the
// power-cut-before-fsync crash on one replica's WAL mid-run: the unsynced
// tail is physically truncated, the WAL goes dead (consensus keeps
// committing — durability degrades, liveness does not), and after a
// restart the replica recovers its surviving prefix from disk and the
// lost tail from live peers.
func TestWALCrashBeforeSyncLosesTailAndPeersCoverIt(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 100)
	cfg.CheckpointInterval = 8
	sys := core.NewSystem(cfg)
	sys.Start()
	t.Cleanup(sys.Stop)

	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)
	commitN(t, c, keys, 0, 5)

	victim := core.NodeID{Cluster: 0, Replica: 2}
	old := sys.Node(victim)
	w := old.WAL()
	if w == nil {
		t.Fatal("victim has no WAL despite DataDir")
	}
	w.CrashBeforeSync()

	// Commits must keep flowing while the victim's WAL dies underneath it.
	commitN(t, c, keys, 5, 20)
	if !w.Crashed() {
		t.Fatal("injected crash never fired (no sync happened in 20 commits)")
	}

	sys.StopReplica(victim)
	// The pre-crash incarnation accounted the failure (its loop is
	// quiescent now; RestartReplica below replaces it in the system).
	if old.Metrics.WALErrors == 0 {
		t.Fatal("WALErrors = 0: the injected crash was not accounted")
	}
	restarted := sys.RestartReplica(victim)
	deadline := time.Now().Add(10 * time.Second)
	caught := false
	for i := 0; time.Now().Before(deadline); i++ {
		commitN(t, c, keys, 25+i, 1)
		lead := sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip()
		if got := restarted.Tip(); got >= lead-1 && got > 25 {
			caught = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !caught {
		t.Fatalf("replica with crashed WAL never caught up: tip %d", restarted.Tip())
	}
}

// TestWALCrashAfterNBytesLeavesTornTail injects the fail-after-N-bytes
// crash: the victim's WAL dies mid-frame, leaving a torn record on disk.
// The restarted replica must truncate the torn tail on open (never
// replaying a damaged record) and still recover.
func TestWALCrashAfterNBytesLeavesTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 100)
	sys := core.NewSystem(cfg)
	sys.Start()
	t.Cleanup(sys.Stop)

	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)
	commitN(t, c, keys, 0, 6)

	victim := core.NodeID{Cluster: 0, Replica: 1}
	w := sys.Node(victim).WAL()
	if w == nil {
		t.Fatal("victim has no WAL despite DataDir")
	}
	w.CrashAfter(8) // dies 8 bytes into the next frame: a torn header

	commitN(t, c, keys, 6, 12)
	if !w.Crashed() {
		t.Fatal("injected crash never fired")
	}

	sys.StopReplica(victim)
	restarted := sys.RestartReplica(victim)
	deadline := time.Now().Add(10 * time.Second)
	caught := false
	for i := 0; time.Now().Before(deadline); i++ {
		commitN(t, c, keys, 18+i, 1)
		lead := sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip()
		if got := restarted.Tip(); got >= lead-1 && got > 18 {
			caught = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !caught {
		t.Fatalf("replica with torn WAL never caught up: tip %d", restarted.Tip())
	}
}

// TestNoDataDirWritesNothing pins the default: without a DataDir the
// durability layer stays entirely off — no WAL, no persisted checkpoints,
// no metrics movement — preserving the seed's in-memory semantics.
func TestNoDataDirWritesNothing(t *testing.T) {
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = 4
	})
	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 4)
	commitN(t, c, keys, 0, 12)

	if w := sys.Node(core.NodeID{Cluster: 0, Replica: 0}).WAL(); w != nil {
		t.Fatal("a WAL exists without a DataDir")
	}
	sys.Stop()
	for _, metric := range []struct {
		name string
		get  func(*core.Metrics) int64
	}{
		{"WALAppended", func(m *core.Metrics) int64 { return m.WALAppended }},
		{"CheckpointsPersisted", func(m *core.Metrics) int64 { return m.CheckpointsPersisted }},
		{"ColdRestarts", func(m *core.Metrics) int64 { return m.ColdRestarts }},
	} {
		if v := sys.NodeMetrics(metric.get); v != 0 {
			t.Fatalf("%s = %d without a DataDir, want 0", metric.name, v)
		}
	}
}
