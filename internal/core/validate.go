package core

import (
	"errors"
	"fmt"
	"time"

	"transedge/internal/merkle"
	"transedge/internal/protocol"
)

// Validation errors (wrapped with context).
var (
	ErrBadBatch    = errors.New("core: invalid batch")
	ErrBadEvidence = errors.New("core: invalid commit evidence")
	ErrBadSegment  = errors.New("core: read-only segment mismatch")
)

// validateBatch is the consensus content check: every replica re-derives
// the batch's effects from its own state before voting, so a byzantine
// leader cannot certify a batch that violates conflict detection, the
// ordering constraint, Algorithm 1, or the Merkle root (paper Sec. 3.2:
// "other replicas ... ensure that the local transactions are in fact
// allowed to commit using the rules above").
func (n *Node) validateBatch(b *protocol.Batch) error {
	// Leader fast path: this is our own speculative proposal, already
	// derived from the very state we would re-check against. Matching the
	// full header digest — not just the Merkle root — guarantees the
	// proposal is bit-for-bit the batch we built. Both digests are
	// memoized (the slot stored its own, and b is the sealed batch we
	// proposed), so the comparison costs nothing.
	if n.IsLeader() {
		for _, slot := range n.spec {
			if slot.batch.ID != b.ID {
				continue
			}
			if slot.digest == b.Digest() {
				return nil
			}
			break
		}
	}

	// Validation runs ahead of delivery: the batch is checked against the
	// state at the end of the speculative chain, not the delivered state,
	// so pipelined slots validate (and vote) without waiting for their
	// predecessors to commit.
	prev, _, prevTree := n.specTail()

	if b.Cluster != n.cfg.Cluster {
		return fmt.Errorf("%w: foreign cluster %d", ErrBadBatch, b.Cluster)
	}
	if want := prev.ID + 1; b.ID != want {
		return fmt.Errorf("%w: batch ID %d, want %d", ErrBadBatch, b.ID, want)
	}
	if len(b.CD) != n.cfg.Clusters {
		return fmt.Errorf("%w: CD vector has %d entries, want %d", ErrBadSegment, len(b.CD), n.cfg.Clusters)
	}
	if w := n.cfg.FreshnessWindow; w > 0 {
		// Freshness (Sec. 4.4.2): a leader cannot timestamp batches
		// outside the configured window of the replicas' clocks.
		skew := time.Duration(time.Now().UnixNano() - b.Timestamp)
		if skew < 0 {
			skew = -skew
		}
		if skew > w {
			return fmt.Errorf("%w: timestamp outside freshness window (%v)", ErrBadBatch, skew)
		}
	}

	// --- Committed segment: ordering constraint + decision evidence ---
	if len(b.Committed) > 0 {
		groups := n.specGroupView()
		if len(groups) == 0 {
			return fmt.Errorf("%w: committed segment without an open prepare group", ErrBadBatch)
		}
		g := &groups[0]
		if len(b.Committed) != len(g.ids) {
			return fmt.Errorf("%w: committed segment has %d records, oldest group has %d",
				ErrBadBatch, len(b.Committed), len(g.ids))
		}
		if b.LCE != g.prepareBatch {
			return fmt.Errorf("%w: LCE %d, want prepare batch %d", ErrBadSegment, b.LCE, g.prepareBatch)
		}
		for i := range b.Committed {
			rec := &b.Committed[i]
			if rec.Txn.ID != g.ids[i] {
				return fmt.Errorf("%w: committed record %d is %v, group expects %v (Def. 4.1 order)",
					ErrBadBatch, i, rec.Txn.ID, g.ids[i])
			}
			var prepared *protocol.Transaction
			if g.recs != nil {
				prepared = &g.recs[i].Txn
			} else if dt := n.distTxns[rec.Txn.ID]; dt != nil {
				prepared = &dt.rec.Txn
			} else {
				return fmt.Errorf("%w: committed record for unknown %v", ErrBadBatch, rec.Txn.ID)
			}
			if protocol.TransactionDigest(&rec.Txn) != protocol.TransactionDigest(prepared) {
				return fmt.Errorf("%w: committed record content differs from prepared %v", ErrBadBatch, rec.Txn.ID)
			}
			if err := n.validateCommitRecord(rec, b.CommitEvidence[rec.Txn.ID]); err != nil {
				return err
			}
		}
	} else if b.LCE != prev.LCE {
		return fmt.Errorf("%w: LCE changed to %d without a committed segment", ErrBadSegment, b.LCE)
	}

	// --- Local and prepared segments: conflict detection (Def. 3.1) ---
	env := n.specConflictEnv(n.prefetchWriters(b))
	for i := range b.Local {
		t := &b.Local[i]
		if !t.IsLocal() {
			return fmt.Errorf("%w: distributed txn %v in local segment", ErrBadBatch, t.ID)
		}
		for _, r := range t.Reads {
			if n.cfg.Part.Of(r.Key) != n.cfg.Cluster {
				return fmt.Errorf("%w: local txn %v reads foreign key %q", ErrBadBatch, t.ID, r.Key)
			}
		}
		for _, w := range t.Writes {
			if n.cfg.Part.Of(w.Key) != n.cfg.Cluster {
				return fmt.Errorf("%w: local txn %v writes foreign key %q", ErrBadBatch, t.ID, w.Key)
			}
		}
		if err := env.check(t.Reads, t.Writes); err != nil {
			return err
		}
		env.reserve(t.Reads, t.Writes)
	}
	for i := range b.Prepared {
		rec := &b.Prepared[i]
		if rec.Txn.IsLocal() {
			return fmt.Errorf("%w: local txn %v in prepared segment", ErrBadBatch, rec.Txn.ID)
		}
		reads, writes := n.localReads(&rec.Txn), n.localWrites(&rec.Txn)
		if err := env.check(reads, writes); err != nil {
			return err
		}
		env.reserve(reads, writes)
		if rec.CoordCluster != n.cfg.Cluster {
			// Authenticity of foreign-coordinated prepares (Sec. 3.3.3:
			// "each replica ... verifies the authenticity of the prepare
			// record").
			ev := b.PrepareEvidence[rec.Txn.ID]
			if ev == nil {
				return fmt.Errorf("%w: prepare %v lacks coordinator evidence", ErrBadEvidence, rec.Txn.ID)
			}
			if ev.Header.Cluster != rec.CoordCluster || !n.verifyHeaderCert(&ev.Header, ev.Cert) {
				return fmt.Errorf("%w: prepare %v coordinator proof invalid", ErrBadEvidence, rec.Txn.ID)
			}
			if protocol.PreparedSectionDigest(ev.Prepared) != ev.Header.PreparedDigest {
				return fmt.Errorf("%w: prepare %v evidence segment tampered", ErrBadEvidence, rec.Txn.ID)
			}
			found := false
			for j := range ev.Prepared {
				if ev.Prepared[j].Txn.ID == rec.Txn.ID {
					if protocol.TransactionDigest(&ev.Prepared[j].Txn) != protocol.TransactionDigest(&rec.Txn) {
						return fmt.Errorf("%w: prepare %v content differs from coordinator's", ErrBadEvidence, rec.Txn.ID)
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: prepare %v not in coordinator evidence", ErrBadEvidence, rec.Txn.ID)
			}
		}
	}

	// --- Read-only segment: Algorithm 1 and the Merkle root ---
	wantCD := n.deriveCD(prev.CD, b)
	for i, x := range wantCD {
		if b.CD[i] != x {
			return fmt.Errorf("%w: CD vector %v, want %v", ErrBadSegment, b.CD, wantCD)
		}
	}
	tree := n.applyBatchToTree(prevTree, b)
	if tree.Root() != b.MerkleRoot {
		return fmt.Errorf("%w: merkle root mismatch", ErrBadSegment)
	}

	// Extend the speculative chain so the next pipelined slot validates
	// against this batch's post-state. The leader's chain is extended at
	// proposal time instead (its fast path returned above; reaching here
	// as leader means the log diverged from our ring, handled at
	// delivery).
	if !n.IsLeader() {
		slot := &specSlot{batch: b, header: b.Header(), digest: b.Digest(), tree: tree}
		if len(b.Committed) > 0 {
			slot.groups = 1
		}
		n.spec = append(n.spec, slot)
	}
	return nil
}

// specGroup is one entry of the prepare-group queue as of the end of the
// speculative chain: either a delivered group (recs nil; prepared
// content lives in distTxns) or a group opened by a speculative prepared
// segment (recs holds the prepare records themselves).
type specGroup struct {
	prepareBatch int64
	ids          []protocol.TxnID
	recs         []protocol.PrepareRecord
}

// specGroupView builds the effective prepare-group queue at the end of
// the speculative chain: delivered groups minus those consumed by
// speculative committed segments, plus groups opened by speculative
// prepared segments (Def. 4.1 order is preserved — groups still commit
// strictly in prepare-batch order).
func (n *Node) specGroupView() []specGroup {
	all := make([]specGroup, 0, len(n.groups)+len(n.spec))
	for _, g := range n.groups {
		all = append(all, specGroup{prepareBatch: g.prepareBatch, ids: g.ids})
	}
	for _, s := range n.spec {
		if len(s.batch.Prepared) == 0 {
			continue
		}
		sg := specGroup{prepareBatch: s.batch.ID, recs: s.batch.Prepared}
		for i := range s.batch.Prepared {
			sg.ids = append(sg.ids, s.batch.Prepared[i].Txn.ID)
		}
		all = append(all, sg)
	}
	return all[min(n.specGroupsConsumed(), len(all)):]
}

// prefetchWriters resolves the last-writer batch of every read key the
// batch validates against in one sharded pass (each store shard locked
// once), so the per-key checks below never take a lock. Keys outside the
// prefetch fall back to single-key lookups.
func (n *Node) prefetchWriters(b *protocol.Batch) func(string) int64 {
	var keys []string
	for i := range b.Local {
		for _, r := range b.Local[i].Reads {
			keys = append(keys, r.Key)
		}
	}
	for i := range b.Prepared {
		for _, r := range n.localReads(&b.Prepared[i].Txn) {
			keys = append(keys, r.Key)
		}
	}
	if len(keys) == 0 {
		return n.st.LastWriter
	}
	writers := n.st.LastWriters(keys)
	m := make(map[string]int64, len(keys))
	for i, k := range keys {
		m[k] = writers[i]
	}
	return func(key string) int64 {
		if w, ok := m[key]; ok {
			return w
		}
		return n.st.LastWriter(key)
	}
}

// specConflictEnv builds the conflict environment as of the end of the
// speculative chain: the delivered store (read through storeWriter,
// typically a prefetched batch of last-writer lookups) overlaid with
// speculative writes, and the prepared footprints adjusted by speculative
// prepared and committed segments. With an empty chain this is exactly
// the delivered state.
func (n *Node) specConflictEnv(storeWriter func(string) int64) *conflictEnv {
	if storeWriter == nil {
		storeWriter = n.st.LastWriter
	}
	env := &conflictEnv{
		lastWriter:     storeWriter,
		pendingReads:   make(keyRefs),
		pendingWrites:  make(keyRefs),
		preparedReads:  n.preparedReads,
		preparedWrites: n.preparedWrites,
	}
	if len(n.spec) == 0 {
		return env
	}
	writer := make(map[string]int64)
	prepReads, prepWrites := n.preparedReads.clone(), n.preparedWrites.clone()
	for _, s := range n.spec {
		sb := s.batch
		for i := range sb.Local {
			for _, w := range sb.Local[i].Writes {
				writer[w.Key] = sb.ID
			}
		}
		for i := range sb.Committed {
			rec := &sb.Committed[i]
			for _, r := range n.localReads(&rec.Txn) {
				prepReads.release(r.Key)
			}
			for _, w := range n.localWrites(&rec.Txn) {
				prepWrites.release(w.Key)
				if rec.Decision == protocol.DecisionCommit {
					writer[w.Key] = sb.ID
				}
			}
		}
		for i := range sb.Prepared {
			t := &sb.Prepared[i].Txn
			for _, r := range n.localReads(t) {
				prepReads.add(r.Key)
			}
			for _, w := range n.localWrites(t) {
				prepWrites.add(w.Key)
			}
		}
	}
	env.lastWriter = func(key string) int64 {
		if v, ok := writer[key]; ok {
			return v
		}
		return storeWriter(key)
	}
	env.preparedReads, env.preparedWrites = prepReads, prepWrites
	return env
}

// validateCommitRecord checks one committed-segment record against its
// vote evidence: a commit needs a verified positive vote from every
// accessed partition, and the declared ReportedCDs must be exactly the CD
// vectors of those votes' prepare-batch headers (which Algorithm 1 then
// folds into the batch CD vector).
func (n *Node) validateCommitRecord(rec *protocol.CommitRecord, votes []protocol.PreparedVote) error {
	if rec.Decision == protocol.DecisionAbort {
		if len(rec.ReportedCDs) != 0 {
			return fmt.Errorf("%w: aborted %v declares dependencies", ErrBadEvidence, rec.Txn.ID)
		}
		for i := range votes {
			if votes[i].Vote == protocol.DecisionAbort {
				return nil
			}
		}
		return fmt.Errorf("%w: abort of %v without an abort vote", ErrBadEvidence, rec.Txn.ID)
	}
	if !n.justified(rec.Decision, votes, &rec.Txn) {
		return fmt.Errorf("%w: commit of %v not justified by votes", ErrBadEvidence, rec.Txn.ID)
	}
	if len(rec.ReportedCDs) != len(votes) {
		return fmt.Errorf("%w: %v reports %d CDs for %d votes", ErrBadEvidence, rec.Txn.ID, len(rec.ReportedCDs), len(votes))
	}
	for i := range votes {
		want := votes[i].Proof.Header.CD
		got := rec.ReportedCDs[i]
		if len(want) != len(got) {
			return fmt.Errorf("%w: %v reported CD %d length mismatch", ErrBadEvidence, rec.Txn.ID, i)
		}
		for j := range want {
			if want[j] != got[j] {
				return fmt.Errorf("%w: %v reported CD %d differs from vote header", ErrBadEvidence, rec.Txn.ID, i)
			}
		}
	}
	return nil
}

// justified reports whether a decision is supported by the votes; shared
// by participant leaders (onCommitDecision) and batch validation.
func (n *Node) justified(decision protocol.Decision, votes []protocol.PreparedVote, txn *protocol.Transaction) bool {
	if decision == protocol.DecisionAbort {
		for i := range votes {
			if votes[i].Vote == protocol.DecisionAbort {
				return true
			}
		}
		return false
	}
	byPart := make(map[int32]*protocol.PreparedVote, len(votes))
	for i := range votes {
		byPart[votes[i].FromCluster] = &votes[i]
	}
	for _, part := range txn.Partitions {
		v := byPart[part]
		if v == nil || v.Vote != protocol.DecisionCommit || v.TxnID != txn.ID {
			return false
		}
		if part == n.cfg.Cluster {
			continue // our own prepare group is local ground truth
		}
		if !n.validVote(v, txn) {
			return false
		}
	}
	return true
}

// applyBatchToTree returns the Merkle tree version after this batch: the
// previous version plus the write sets of local transactions and of
// committed (positively decided) distributed transactions on this shard,
// merged in one bulk pass so each touched trie node hashes exactly once.
// Later writes of the same key within the batch win, matching the
// insertion order the sequential path used.
func (n *Node) applyBatchToTree(tree *merkle.Tree, b *protocol.Batch) *merkle.Tree {
	updates := make(map[string]merkle.Digest)
	for i := range b.Local {
		for _, w := range b.Local[i].Writes {
			updates[w.Key] = merkle.HashValue(w.Value)
		}
	}
	for i := range b.Committed {
		rec := &b.Committed[i]
		if rec.Decision != protocol.DecisionCommit {
			continue
		}
		for _, w := range n.localWrites(&rec.Txn) {
			updates[w.Key] = merkle.HashValue(w.Value)
		}
	}
	return tree.Apply(updates)
}
