package core

// White-box tests of the leader's speculative batch pipeline: chaining,
// the depth cap, delivery retirement, and rollback of reserved OCC
// footprints. The node is never started, so every internal method runs
// synchronously on the test goroutine.

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// newSpecLeader builds an unstarted single-cluster leader whose pipeline
// can be driven synchronously. Consensus messages go to an empty network
// and vanish; delivery is simulated by calling onDeliver directly.
func newSpecLeader(t *testing.T, depth int, data map[string][]byte) *Node {
	t.Helper()
	const replicas = 4
	keys := make(map[NodeID]cryptoutil.KeyPair)
	ring := cryptoutil.NewKeyRing()
	for r := 0; r < replicas; r++ {
		id := NodeID{Cluster: 0, Replica: int32(r)}
		kp := cryptoutil.DeriveKeyPair(id, 99)
		keys[id] = kp
		ring.Add(id, kp.Public)
	}
	header, cert := genesis(0, 1, data, time.Now().UnixNano(), keys, replicas)
	return NewNode(NodeConfig{
		Cluster: 0, Replica: 0, Clusters: 1, N: replicas, F: 1,
		Keys:          keys[NodeID{Cluster: 0, Replica: 0}],
		Ring:          ring,
		Net:           transport.NewNetwork(),
		Part:          protocol.Partitioner{N: 1},
		PipelineDepth: depth,
		InitialData:   data,
		GenesisHeader: header,
		GenesisCert:   cert,
	})
}

func specKeys(n int) map[string][]byte {
	data := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		data[fmt.Sprintf("k%d", i)] = []byte("0")
	}
	return data
}

// submitLocal admits one write-only local transaction and returns the
// client's reply channel.
func submitLocal(n *Node, seq uint32, key string) chan protocol.CommitReply {
	ch := make(chan protocol.CommitReply, 1)
	n.onCommitRequest(&protocol.CommitRequest{
		Txn: protocol.Transaction{
			ID:         protocol.MakeTxnID(1, seq),
			Writes:     []protocol.WriteOp{{Key: key, Value: []byte(fmt.Sprintf("v%d", seq))}},
			Partitions: []int32{0},
		},
		ReplyTo: ch,
	})
	return ch
}

func TestPipelineChainsSpeculativeBatches(t *testing.T) {
	n := newSpecLeader(t, 3, specKeys(8))

	for i := 0; i < 5; i++ {
		submitLocal(n, uint32(i), fmt.Sprintf("k%d", i))
		n.maybeBuildBatch(true)
	}

	if len(n.spec) != 3 {
		t.Fatalf("spec chain has %d slots, want PipelineDepth=3", len(n.spec))
	}
	if n.Metrics.PipelineStalls == 0 {
		t.Fatal("no pipeline stall recorded with a full ring and pending work")
	}
	if len(n.pendingLocal) != 2 {
		t.Fatalf("%d transactions pending, want the 2 that missed the ring", len(n.pendingLocal))
	}

	// Slots carry consecutive IDs and chain PrevDigest off the
	// predecessor's speculative header (slot 0 off the delivered log).
	if got := n.spec[0].batch.PrevDigest; got != n.log.get(0).header.Digest() {
		t.Fatal("first slot does not chain off the delivered log")
	}
	for i, s := range n.spec {
		if s.batch.ID != int64(i+1) {
			t.Fatalf("slot %d has batch ID %d", i, s.batch.ID)
		}
		if i > 0 && s.batch.PrevDigest != n.spec[i-1].header.Digest() {
			t.Fatalf("slot %d does not chain off slot %d's speculative header", i, i-1)
		}
	}

	// Every admitted write is still reserved (in-flight and pending).
	for i := 0; i < 5; i++ {
		if !n.pendingWrites.has(fmt.Sprintf("k%d", i)) {
			t.Fatalf("k%d not reserved", i)
		}
	}

	// A conflicting admission must abort immediately.
	ch := submitLocal(n, 99, "k0")
	select {
	case r := <-ch:
		if r.Status != protocol.StatusAborted {
			t.Fatalf("conflicting txn got %v, want aborted", r.Status)
		}
	default:
		t.Fatal("conflicting txn got no immediate abort")
	}
}

func TestPipelineDepthOneIsStopAndWait(t *testing.T) {
	n := newSpecLeader(t, 1, specKeys(4))

	submitLocal(n, 0, "k0")
	n.maybeBuildBatch(true)
	submitLocal(n, 1, "k1")
	n.maybeBuildBatch(true)

	if len(n.spec) != 1 {
		t.Fatalf("depth 1 has %d slots in flight, want 1", len(n.spec))
	}
	if len(n.pendingLocal) != 1 {
		t.Fatalf("second txn should wait for delivery; pending=%d", len(n.pendingLocal))
	}
}

func TestPipelineDeliveryRetiresSlot(t *testing.T) {
	n := newSpecLeader(t, 4, specKeys(4))

	ch := submitLocal(n, 0, "k0")
	n.maybeBuildBatch(true)
	if len(n.spec) != 1 {
		t.Fatalf("spec chain has %d slots, want 1", len(n.spec))
	}

	n.onDeliver(protocol.CertifiedBatch{Batch: n.spec[0].batch})

	if len(n.spec) != 0 {
		t.Fatal("delivered slot not retired from the chain")
	}
	select {
	case r := <-ch:
		if r.Status != protocol.StatusCommitted || r.CommitBatch != 1 {
			t.Fatalf("reply = %+v, want committed in batch 1", r)
		}
	default:
		t.Fatal("client not notified on delivery")
	}
	if n.pendingWrites.has("k0") {
		t.Fatal("footprint not released on delivery")
	}
	if got := n.st.LastWriter("k0"); got != 1 {
		t.Fatalf("store writer = %d, want 1", got)
	}
	if n.curTree != n.trees[1] {
		t.Fatal("speculative tree not installed as the delivered version")
	}
}

func TestPipelineRollbackReleasesReservations(t *testing.T) {
	n := newSpecLeader(t, 4, specKeys(8))

	var chans []chan protocol.CommitReply
	for i := 0; i < 3; i++ {
		chans = append(chans, submitLocal(n, uint32(i), fmt.Sprintf("k%d", i)))
		n.maybeBuildBatch(true)
	}
	if len(n.spec) != 3 {
		t.Fatalf("spec chain has %d slots, want 3", len(n.spec))
	}

	n.rollbackSpec(0)

	if len(n.spec) != 0 {
		t.Fatal("rollback left slots in the chain")
	}
	if len(n.pendingWrites) != 0 || len(n.pendingReads) != 0 {
		t.Fatalf("rollback leaked reservations: %d writes, %d reads",
			len(n.pendingWrites), len(n.pendingReads))
	}
	if n.Metrics.PipelineRollbacks != 3 {
		t.Fatalf("PipelineRollbacks = %d, want 3", n.Metrics.PipelineRollbacks)
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Status != protocol.StatusAborted {
				t.Fatalf("txn %d got %v, want aborted", i, r.Status)
			}
		default:
			t.Fatalf("txn %d got no abort on rollback", i)
		}
	}

	// The keys are free again: a new transaction admits cleanly.
	ch := submitLocal(n, 50, "k0")
	select {
	case r := <-ch:
		t.Fatalf("re-admission after rollback aborted: %+v", r)
	default:
	}
	if len(n.pendingLocal) != 1 {
		t.Fatal("re-admitted transaction not pending")
	}
}

// TestPipelineDivergentDeliveryRollsBack delivers a batch the leader
// never proposed for an occupied slot: the whole speculative chain must
// roll back (the leadership-change / foreign-proposal defense).
func TestPipelineDivergentDeliveryRollsBack(t *testing.T) {
	n := newSpecLeader(t, 4, specKeys(8))

	var chans []chan protocol.CommitReply
	for i := 0; i < 2; i++ {
		chans = append(chans, submitLocal(n, uint32(i), fmt.Sprintf("k%d", i)))
		n.maybeBuildBatch(true)
	}

	genesisHeader := n.log.get(0).header
	cd := genesisHeader.CD.Clone()
	cd[0] = 1
	foreign := &protocol.Batch{
		Cluster:    0,
		ID:         1,
		PrevDigest: genesisHeader.Digest(),
		Timestamp:  time.Now().UnixNano(),
		CD:         cd,
		LCE:        genesisHeader.LCE,
	}
	n.onDeliver(protocol.CertifiedBatch{Batch: foreign})

	if len(n.spec) != 0 {
		t.Fatalf("divergent delivery left %d speculative slots", len(n.spec))
	}
	if n.Metrics.PipelineRollbacks != 2 {
		t.Fatalf("PipelineRollbacks = %d, want 2", n.Metrics.PipelineRollbacks)
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Status != protocol.StatusAborted {
				t.Fatalf("txn %d got %v, want aborted", i, r.Status)
			}
		default:
			t.Fatalf("txn %d not aborted on divergence", i)
		}
	}
	if len(n.pendingWrites) != 0 {
		t.Fatal("divergence rollback leaked write reservations")
	}
}
