// Package core implements the TransEdge protocol (paper Secs. 3 and 4):
// the per-cluster batch pipeline with the four-segment SMR log, OCC
// conflict detection (Def. 3.1), Two-Phase Commit layered over BFT
// consensus, prepare groups with the ordering constraint (Def. 4.1),
// Conflict-Dependency vectors (Algorithm 1), Last-Committed-Epoch numbers,
// and the server side of the snapshot read-only transaction protocol.
//
// Every replica runs a Node with a single event-loop goroutine; all
// protocol state is confined to that goroutine, so the package needs no
// locks beyond the thread-safe substrates (store, network).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"transedge/internal/bft"
	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
	"transedge/internal/store"
	_ "transedge/internal/store/lsm" // registers the "lsm" engine
	"transedge/internal/transport"
	"transedge/internal/wal"
)

// NodeID aliases the system-wide identity.
type NodeID = cryptoutil.NodeID

// NodeConfig assembles one replica.
type NodeConfig struct {
	Cluster    int32
	Replica    int32
	Clusters   int // number of partitions in the system
	N          int // replicas per cluster (3f+1)
	F          int
	Keys       cryptoutil.KeyPair
	Ring       *cryptoutil.KeyRing
	Net        *transport.Network
	Part       protocol.Partitioner
	Behavior   bft.Behavior
	ROBehavior ROBehavior

	// BatchInterval is how often the leader flushes pending work into a
	// batch (the paper's batch-processing timer, Fig. 2 event 6).
	BatchInterval time.Duration
	// BatchMaxSize triggers an immediate batch once this many
	// transactions are pending (the paper's size trigger).
	BatchMaxSize int
	// PipelineDepth is how many proposed batches the leader may keep in
	// flight between proposal and SMR delivery (default
	// DefaultPipelineDepth; 1 restores the stop-and-wait pipeline where
	// consensus latency caps commit throughput). Each in-flight batch
	// chains PrevDigest off its predecessor's speculative header, so
	// admission and Merkle derivation never block on delivery.
	PipelineDepth int
	// FreshnessWindow bounds how far a proposed batch timestamp may
	// deviate from a validating replica's clock (Sec. 4.4.2). Zero
	// disables the check.
	FreshnessWindow time.Duration
	// ROParkTimeout bounds how long a second-round read-only request may
	// wait for a dependency batch to commit.
	ROParkTimeout time.Duration
	// DisableMultiProofRO restores the per-key proof path for read-only
	// replies (one membership/absence proof per key). The zero value
	// serves one compact multi-proof per request.
	DisableMultiProofRO bool
	// RetainBatches bounds how many historical snapshot versions (Merkle
	// trees + store versions + batch bodies) a replica keeps for
	// second-round serving. Zero keeps everything. Requests for pruned
	// snapshots are answered with the oldest retained one, which is
	// always at least as new and therefore still dependency-satisfying
	// (LCE is monotone).
	RetainBatches int
	// StoreShards is the shard count of the versioned store, rounded up
	// to a power of two (0 = store.DefaultShards; 1 restores a
	// single-lock store, the readscale experiment's baseline).
	StoreShards int
	// ReadExecutors sizes the pool serving read-only and read-set
	// requests off the consensus loop (0 = GOMAXPROCS). Read serving
	// never blocks consensus: when the pool saturates, requests fall
	// back to inline serving on the loop.
	ReadExecutors int
	// CheckpointInterval is how many batches apart replicas sign
	// checkpoints; a 2f+1 checkpoint quorum becomes a stable checkpoint
	// that truncates the log window below it and anchors state transfer
	// (0 = DefaultCheckpointInterval, negative disables checkpointing —
	// the seed's unbounded-log behavior).
	CheckpointInterval int
	// StateTransferTimeout bounds how long a syncing replica waits for a
	// StateResponse before retrying the next peer (0 = a second).
	StateTransferTimeout time.Duration
	// ViewTimeout bounds how long a replica waits for leader progress on
	// pending work before voting a view change (PBFT leader failover,
	// DESIGN.md §7). Zero disables failover — the seed's fixed-leader
	// behavior, which some byzantine tests rely on (a stalling leader then
	// means client timeouts, not a new leader).
	ViewTimeout time.Duration
	// Recovering marks a node restarted after a crash: it starts from
	// genesis state and immediately requests a state transfer instead of
	// waiting to observe that it is behind.
	Recovering bool

	// Engine overrides the storage backend with a caller-built instance
	// (nil = build EngineName via the engine registry). Any store.Engine
	// works; the durability layer sits above it. The node does not
	// manage an injected engine's lifecycle — the caller closes it.
	Engine store.Engine
	// EngineName selects a registered storage backend by name when
	// Engine is nil ("" = store.DefaultEngine, the sharded in-memory
	// MVCC store with StoreShards shards). Unknown names panic in
	// NewNode; public entry points (transedge.Start, the -engine flags)
	// validate first and surface the error listing valid backends.
	EngineName string
	// DataDir enables the durability layer: certified batches are
	// WAL-appended before delivery applies them, stable checkpoints are
	// persisted atomically, and a restarted node cold-starts from this
	// directory before falling back to peer state transfer. Empty
	// disables durability (the seed's in-memory-only semantics).
	DataDir string
	// WALSyncEvery is the group-commit width: fsync after this many
	// appended batches (0 = wal.DefaultSyncEvery; wal.SyncNever disables
	// fsync entirely — the benchmarking mode, where the page cache is the
	// only durability).
	WALSyncEvery int
	// WALSyncInterval bounds how stale an unsynced WAL tail may get: a
	// partial group is fsynced at the next tick once this much time has
	// passed since its first unsynced append (0 = wal.DefaultSyncInterval).
	WALSyncInterval time.Duration

	// Genesis state shared by every replica of the cluster.
	InitialData   map[string][]byte
	GenesisHeader protocol.BatchHeader
	GenesisCert   cryptoutil.Certificate
}

// ROBehavior injects byzantine behavior into the read-only serving path.
type ROBehavior struct {
	// ServeStaleBatch makes the replica always answer read-only requests
	// from the genesis snapshot (an old-but-consistent snapshot attack;
	// clients detect it via the freshness timestamp, Sec. 4.4.2).
	ServeStaleBatch bool
	// CorruptValues flips served values without fixing proofs; clients
	// must reject via Merkle verification.
	CorruptValues bool
	// CorruptProofs truncates served proofs.
	CorruptProofs bool
	// DuplicateOmitKey rewrites the reply to answer one requested key
	// twice and omit another; every copy carries valid proofs (the
	// multi-proof covers a superset, the per-key copy reuses the first
	// key's proof), so only the client's exactly-once coverage check
	// stops the omitted key from silently reading as absent.
	DuplicateOmitKey bool
}

// logEntry is one committed batch as retained by a replica: the header,
// its digest (the certified message — kept so chaining and serving never
// re-hash the header), the consensus certificate, and the full batch for
// segment serving.
type logEntry struct {
	batch  *protocol.Batch
	header protocol.BatchHeader
	digest protocol.Digest
	cert   cryptoutil.Certificate
}

// distTxn tracks one distributed transaction at this node, in both the
// coordinator and participant roles.
type distTxn struct {
	rec          protocol.PrepareRecord
	prepareBatch int64 // batch holding our prepare record; -1 until written
	decision     protocol.Decision
	votes        []protocol.PreparedVote // evidence for the decision

	// Coordinator-only state.
	isCoord      bool
	votesByPart  map[int32]*protocol.PreparedVote
	replyTo      chan protocol.CommitReply
	decisionSent bool
}

// group is a prepare group (Def. 4.1): the distributed transactions whose
// prepare records share one batch. Groups commit in prepare-batch order.
type group struct {
	prepareBatch int64
	ids          []protocol.TxnID
}

// specSlot is one batch of the speculative chain ahead of SMR delivery.
// On the leader these are proposals in flight between Propose and
// delivery; on followers they are proposals validated ahead of delivery
// (consensus validates slot k+1 as soon as slot k validated, so the
// phases of pipelined slots overlap). The slot keeps everything its
// successor chains off — the header (PrevDigest, CD vector, LCE) and the
// post-batch Merkle version — plus what rollback needs to undo if the
// slot never reaches the log.
type specSlot struct {
	batch  *protocol.Batch
	header protocol.BatchHeader
	digest protocol.Digest // memoized header digest, for chaining and delivery matching
	tree   *merkle.Tree
	// groups is how many open prepare groups this batch's committed
	// segment consumes (0 or 1); successors skip that many when picking
	// their own committed segment.
	groups int
}

// parkedRO is a second-round read-only request waiting for a dependency
// batch to commit.
type parkedRO struct {
	req      protocol.RORequest
	deadline time.Time
}

// Node is one replica of one cluster.
type Node struct {
	cfg  NodeConfig
	self NodeID

	// peers lists the other replicas of this cluster, for broadcasts.
	peers []NodeID

	st store.Engine
	// ownsEngine marks engines the node built itself (via the registry)
	// and must therefore shut down when its loop exits; injected
	// engines belong to the caller.
	ownsEngine bool
	curTree    *merkle.Tree
	trees      map[int64]*merkle.Tree
	// log is the retained window of committed batches: everything below
	// the latest stable checkpoint is truncated (entry 0 starts as
	// genesis; after a state transfer the base is the installed
	// checkpoint).
	log windowedLog

	consensus *bft.Replica

	// preparedReads/preparedWrites hold the footprints reserved by
	// prepared-but-undecided distributed transactions (rule 3 of
	// Def. 3.1), maintained identically by every replica from delivered
	// batches.
	preparedReads  keyRefs
	preparedWrites keyRefs
	// groups is the prepared-batches structure of Fig. 2, oldest first.
	groups []*group
	// distTxns indexes distributed-transaction state by ID.
	distTxns map[protocol.TxnID]*distTxn
	// pendingDecisions buffers decisions that arrived before our own
	// prepare batch was written.
	pendingDecisions map[protocol.TxnID]*protocol.CommitDecision

	// certCache memoizes batch-header certificate verifications keyed by
	// header digest: all transactions of one prepare group share the same
	// proof header, so this collapses O(txns) signature checks per batch
	// into O(groups).
	certCache map[protocol.Digest]bool

	// Leader-only pipeline state.
	pendingLocal    []protocol.Transaction
	pendingPrepared []protocol.PrepareRecord
	pendingEvidence map[protocol.TxnID]*protocol.PrepareProof
	pendingReads    keyRefs // reads reserved by in-progress/in-flight batches
	pendingWrites   keyRefs // writes reserved by in-progress/in-flight batches
	waiters         map[protocol.TxnID]chan protocol.CommitReply
	lastFlush       time.Time

	// spec is the speculative chain, oldest first: on the leader up to
	// PipelineDepth proposals between Propose and delivery, on followers
	// the batches validated ahead of delivery. Slot i+1 chains off slot
	// i's speculative header and Merkle tree, so batch construction and
	// validation never wait for consensus. Delivery pops the front.
	spec []*specSlot

	parked []parkedRO

	// readers is the off-loop pool serving read requests; only the event
	// loop submits to it.
	readers *readExecutor

	// Checkpoint state (DESIGN.md §6). chk is the newest checkpoint this
	// replica has derived and voted for; stable is the newest checkpoint
	// with a 2f+1 quorum, which bounds the log window and serves state
	// transfers. chkVotes buffers votes for checkpoints we have not
	// reached yet.
	chk      *checkpointState
	stable   *checkpointState
	chkVotes map[int64]map[int32]*protocol.Checkpoint

	// State-transfer client state: whether a sync is in flight, its
	// retry deadline, the peer rotation cursor, and which distinct peers
	// have ever responded — a recovering replica keeps rotating until
	// f+1 distinct peers answered, so no single (possibly byzantine or
	// equally-amnesiac) responder can talk it into staying at genesis.
	syncing      bool
	syncDeadline time.Time
	syncPeer     int32
	syncHeard    map[int32]bool
	// replaying is set only around state-transfer suffix replay, gating
	// checkpoint derivation for batches this replica did not deliver
	// live (peers are past them; no quorum could form).
	replaying bool

	// Durability layer (DESIGN.md §8), active only with a DataDir. wal is
	// the group-commit log certified batches append to before delivery
	// applies them; walReplay gates re-appending while the cold-restart
	// path replays the suffix out of the very same log. A WAL that errors
	// (disk full, injected crash) is closed and dropped — the replica
	// degrades to in-memory operation (counted in Metrics.WALErrors)
	// rather than halting consensus.
	wal       *wal.Log
	walReplay bool
	// walHandle mirrors wal for the WAL() accessor: crash-injection tests
	// grab the handle while the loop runs, so the pointer is published
	// atomically.
	walHandle atomic.Pointer[wal.Log]
	// persistedChk is the newest checkpoint ID written to disk; persists
	// are skipped at or below it.
	persistedChk int64

	// Leader-progress watchdog (DESIGN.md §7). progressDeadline is when
	// the current leader is suspected if no delivery lands first (zero =
	// disarmed); suspects counts consecutive expiries, backing the timeout
	// off exponentially; forwarded marks that this follower relayed client
	// or 2PC traffic to the leader and therefore expects progress even
	// though it holds no local pending work.
	progressDeadline time.Time
	suspects         int
	forwarded        bool

	// tip mirrors the newest committed batch ID atomically so the
	// harness can watch catch-up progress while the loop runs.
	tip atomic.Int64
	// stableID mirrors the newest stable checkpoint's batch ID (-1 until
	// one forms) for the same reason: fault harnesses poll it live.
	stableID atomic.Int64

	// oldestSnapshot is the earliest batch still servable after pruning.
	oldestSnapshot int64
	// Incremental store-prune pass state (see pruneStoreStep): the shard
	// cursor of the in-progress pass, that pass's keep-from boundary, and
	// the boundary every shard has already been pruned to.
	pruneCursor   int
	pruneBoundary int64
	prunedThrough int64

	inbox    <-chan transport.Envelope
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// Metrics consumed by the harness.
	Metrics Metrics
}

// Metrics counts node-level protocol events. The event loop writes all
// fields except ROServed, which read executors update atomically; read
// totals after Stop (which drains the executors) for exact values.
type Metrics struct {
	BatchesCommitted   int64
	LocalCommitted     int64
	DistCommitted      int64
	DistAborted        int64
	AdmissionAborts    int64
	ROServed           int64
	ROSecondRound      int64
	ROParkedExpired    int64
	DecisionsValidated int64
	// PipelineStalls counts batch-build attempts refused because
	// PipelineDepth proposals were already in flight.
	PipelineStalls int64
	// PipelineRollbacks counts speculative batches rolled back because a
	// predecessor never reached the log (Propose failure or log
	// divergence).
	PipelineRollbacks int64
	// CheckpointsStable counts stable checkpoints established (2f+1
	// checkpoint quorums observed).
	CheckpointsStable int64
	// LogTruncated counts log entries dropped below stable checkpoints.
	LogTruncated int64
	// StateTransfers counts checkpoint installs from peers (full
	// snapshot replacements, not suffix-only replays).
	StateTransfers int64
	// SuffixReplayed counts certified batches applied from state-transfer
	// suffixes instead of live consensus.
	SuffixReplayed int64
	// LeaderSuspects counts progress-timer expiries (view-change votes
	// cast by this replica).
	LeaderSuspects int64
	// ViewChanges counts new views this replica entered.
	ViewChanges int64
	// WALAppended counts certified batches appended to the write-ahead
	// log before delivery.
	WALAppended int64
	// WALReplayed counts batches replayed from the local WAL during a
	// cold restart (disk recovery, not peer transfer).
	WALReplayed int64
	// WALErrors counts WAL append/sync failures; on the first one the log
	// is dropped and the replica degrades to in-memory operation.
	WALErrors int64
	// ColdRestarts counts successful recoveries from the local data dir
	// (checkpoint install and/or WAL suffix replay before joining).
	ColdRestarts int64
	// CheckpointsPersisted counts stable checkpoints written to disk.
	CheckpointsPersisted int64
}

// DefaultPipelineDepth is how many batches a leader keeps in flight when
// NodeConfig.PipelineDepth is unset.
const DefaultPipelineDepth = 4

// DefaultCheckpointInterval is the checkpoint spacing when
// NodeConfig.CheckpointInterval is unset: frequent enough to bound
// steady-state memory to a modest window, rare enough that the per-
// checkpoint store scan stays invisible next to per-batch work.
const DefaultCheckpointInterval = 64

// NewNode builds (but does not start) a replica.
func NewNode(cfg NodeConfig) *Node {
	if cfg.BatchInterval <= 0 {
		cfg.BatchInterval = time.Millisecond
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = DefaultPipelineDepth
	}
	if cfg.BatchMaxSize <= 0 {
		cfg.BatchMaxSize = 2000
	}
	if cfg.ROParkTimeout <= 0 {
		cfg.ROParkTimeout = 5 * time.Second
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	if cfg.StateTransferTimeout <= 0 {
		cfg.StateTransferTimeout = time.Second
	}
	engine := cfg.Engine
	ownsEngine := false
	if engine == nil {
		var err error
		engine, err = store.NewEngine(cfg.EngineName, cfg.StoreShards)
		if err != nil {
			// Public entry points validate the name before building
			// nodes; reaching here is a programming error.
			panic(fmt.Sprintf("core: %v", err))
		}
		ownsEngine = true
	}
	n := &Node{
		cfg:              cfg,
		self:             NodeID{Cluster: cfg.Cluster, Replica: cfg.Replica},
		st:               engine,
		ownsEngine:       ownsEngine,
		readers:          newReadExecutor(cfg.ReadExecutors, 0),
		trees:            make(map[int64]*merkle.Tree),
		preparedReads:    make(keyRefs),
		preparedWrites:   make(keyRefs),
		distTxns:         make(map[protocol.TxnID]*distTxn),
		pendingDecisions: make(map[protocol.TxnID]*protocol.CommitDecision),
		certCache:        make(map[protocol.Digest]bool),
		pendingEvidence:  make(map[protocol.TxnID]*protocol.PrepareProof),
		pendingReads:     make(keyRefs),
		pendingWrites:    make(keyRefs),
		waiters:          make(map[protocol.TxnID]chan protocol.CommitReply),
		chkVotes:         make(map[int64]map[int32]*protocol.Checkpoint),
		syncHeard:        make(map[int32]bool),
		stop:             make(chan struct{}),
		done:             make(chan struct{}),
	}
	n.stableID.Store(-1)
	for r := int32(0); int(r) < cfg.N; r++ {
		if r != cfg.Replica {
			n.peers = append(n.peers, NodeID{Cluster: cfg.Cluster, Replica: r})
		}
	}

	// Install genesis: initial data load as batch 0.
	n.st.Load(cfg.InitialData)
	tree := newTreeFor(cfg.InitialData)
	n.curTree = tree
	n.trees[0] = tree
	genesisDigest := cfg.GenesisHeader.Digest()
	n.log.init(0, &logEntry{
		batch:  &protocol.Batch{Cluster: cfg.Cluster, ID: 0, CD: cfg.GenesisHeader.CD.Clone(), LCE: cfg.GenesisHeader.LCE, MerkleRoot: cfg.GenesisHeader.MerkleRoot, Timestamp: cfg.GenesisHeader.Timestamp},
		header: cfg.GenesisHeader,
		digest: genesisDigest,
		cert:   cfg.GenesisCert,
	})
	// Without checkpoints there is no state transfer, so a dropped
	// consensus message could never be recovered: keep the seed's
	// unbounded buffering in that configuration.
	bufferAhead := 0
	if cfg.CheckpointInterval < 0 {
		bufferAhead = -1
	}
	n.consensus = bft.New(bft.Config{
		Cluster:       cfg.Cluster,
		Replica:       cfg.Replica,
		N:             cfg.N,
		F:             cfg.F,
		Keys:          cfg.Keys,
		Ring:          cfg.Ring,
		Net:           cfg.Net,
		Behavior:      cfg.Behavior,
		GenesisDigest: genesisDigest,
		GenesisHeader: cfg.GenesisHeader,
		GenesisCert:   cfg.GenesisCert,
		MaxInFlight:   cfg.PipelineDepth,
		BufferAhead:   bufferAhead,
		Validate:      n.validateBatch,
		Deliver:       n.onDeliver,
		Rebase:        n.rebaseOnView,
	})
	return n
}

// Self returns this node's identity.
func (n *Node) Self() NodeID { return n.self }

// IsLeader reports whether this node leads its cluster in its current
// view.
func (n *Node) IsLeader() bool { return n.consensus.IsLeader() }

// CurrentView returns this node's consensus view, safe to read while the
// event loop runs (the harness and tests watch failover progress).
func (n *Node) CurrentView() uint64 { return n.consensus.CurrentView() }

// Start registers the node with the network and launches its event loop.
// With a DataDir it first recovers whatever local disk holds — the
// persisted stable checkpoint plus the WAL suffix — before any live
// message is processed (the event loop is not running yet, so recovery
// touches loop-confined state safely).
func (n *Node) Start() {
	n.inbox = n.cfg.Net.Register(n.self)
	n.lastFlush = time.Now()
	n.openDurability()
	if n.cfg.Recovering {
		// A restarted replica asks a peer for the latest stable
		// checkpoint before (not instead of) processing live traffic —
		// anything within the live window still applies. Disk recovery
		// already advanced us past everything local; the peer sync only
		// fills what local disk lacks (the unsynced tail, or batches
		// committed while we were down).
		n.startStateSync()
	}
	go n.run()
}

// Stop terminates the event loop and waits for it to exit. Safe to call
// more than once.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

func (n *Node) run() {
	defer close(n.done)
	// Engines with background machinery (the LSM compactor) stop with
	// the node — but only if the node built the engine; injected ones
	// are the caller's to close. Runs after the read executors drain
	// (LIFO), so no read is in flight when the engine shuts down.
	defer func() {
		if c, ok := n.st.(interface{ Close() }); ok && n.ownsEngine {
			c.Close()
		}
	}()
	// Close the WAL after the loop exits: the final sync makes everything
	// delivered before Stop durable (a graceful shutdown; crashes are
	// simulated with the wal crash hooks, which drop the unsynced tail).
	defer n.closeWAL()
	// Drain the read executors before done closes (LIFO), so metrics and
	// store state are quiescent once Stop returns.
	defer n.readers.stop()
	ticker := time.NewTicker(n.cfg.BatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case env, ok := <-n.inbox:
			if !ok {
				return
			}
			n.dispatch(env)
		case <-ticker.C:
			n.onTick()
		}
	}
}

func (n *Node) dispatch(env transport.Envelope) {
	if n.consensus.Handle(env.From, env.Payload) {
		return
	}
	switch m := env.Payload.(type) {
	case *protocol.CommitRequest:
		n.onCommitRequest(m)
	case *protocol.ReadRequest:
		n.onReadRequest(m)
	case *protocol.RORequest:
		n.onRORequest(m)
	case *protocol.CoordinatorPrepare:
		n.onCoordinatorPrepare(env.From, m)
	case *protocol.PreparedVote:
		n.onPreparedVote(env.From, m)
	case *protocol.CommitDecision:
		n.onCommitDecision(env.From, m)
	case *protocol.Checkpoint:
		n.onCheckpoint(env.From, m)
	case *protocol.StateRequest:
		n.onStateRequest(m)
	case *protocol.StateResponse:
		n.onStateResponse(env.From, m)
	case *AuditRequest:
		n.onAuditRequest(m)
	}
}

func (n *Node) onTick() {
	n.walMaybeSync()
	n.expireParked()
	n.pruneStoreStep()
	n.maybeStateSync()
	n.maybeSuspectLeader()
	if n.IsLeader() {
		n.maybeBuildBatch(false)
	}
}

// lastBatchID returns the newest committed batch ID.
func (n *Node) lastBatchID() int64 { return n.log.lastID() }

// Tip returns the newest committed batch ID, safe to read while the
// event loop runs (the harness polls it to measure catch-up).
func (n *Node) Tip() int64 { return n.tip.Load() }

// LogWindow returns the retained log window as (base, length). Owned by
// the event loop: read it only after Stop.
func (n *Node) LogWindow() (int64, int) { return n.log.baseID(), n.log.len() }

// StableCheckpoint returns the newest stable checkpoint's batch ID, or
// -1 if none formed yet. Safe to read while the event loop runs.
func (n *Node) StableCheckpoint() int64 { return n.stableID.Load() }

// leaderOf returns the presumed leader identity of a cluster: the view-0
// leader, since a remote cluster's current view is unknowable here. If
// that cluster has since changed views, whichever replica receives the
// message relays it to its actual leader (the Forwarded paths in
// leader.go), so cross-cluster 2PC survives remote failovers.
func leaderOf(cluster int32) NodeID {
	return NodeID{Cluster: cluster, Replica: bft.LeaderReplica}
}

// verifyHeaderCert checks an f+1 certificate over a batch header of any
// cluster, memoized by header digest.
func (n *Node) verifyHeaderCert(h *protocol.BatchHeader, cert cryptoutil.Certificate) bool {
	d := h.Digest()
	if ok, seen := n.certCache[d]; seen {
		return ok
	}
	size := n.cfg.Ring.ClusterSize(h.Cluster)
	if size == 0 {
		return false
	}
	f := (size - 1) / 3
	err := cryptoutil.VerifyCertificate(n.cfg.Ring, cert, d[:], f+1)
	n.certCache[d] = err == nil
	return err == nil
}

// ownedKeys filters the keys of a read/write set belonging to this
// cluster.
func (n *Node) localReads(t *protocol.Transaction) []protocol.ReadEntry {
	return t.ReadsFor(n.cfg.Part, n.cfg.Cluster)
}

func (n *Node) localWrites(t *protocol.Transaction) []protocol.WriteOp {
	return t.WritesFor(n.cfg.Part, n.cfg.Cluster)
}
