package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

// testSystem builds and starts a deployment with numbered keys
// ("key-000".."key-NNN") preloaded with "init-<i>" values.
func testSystem(t testing.TB, clusters, f, keys int, opts ...func(*core.SystemConfig)) *core.System {
	t.Helper()
	data := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("init-%d", i))
	}
	cfg := core.SystemConfig{
		Clusters:      clusters,
		F:             f,
		Seed:          42,
		BatchInterval: time.Millisecond,
		BatchMaxSize:  500,
		InitialData:   data,
	}
	for _, o := range opts {
		o(&cfg)
	}
	sys := core.NewSystem(cfg)
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func testClient(sys *core.System, id uint32) *client.Client {
	return client.New(client.Config{
		ID:       id,
		Net:      sys.Net,
		Ring:     sys.Ring,
		Part:     sys.Part,
		Clusters: sys.Cfg.Clusters,
		Timeout:  10 * time.Second,
	})
}

// keysOn returns n distinct preloaded keys owned by the given cluster.
func keysOn(sys *core.System, cluster int32, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 10000; i++ {
		k := fmt.Sprintf("key-%03d", i%1000)
		if i >= 1000 {
			k = fmt.Sprintf("extra-%04d", i)
		}
		if sys.Part.Of(k) == cluster {
			dup := false
			for _, e := range out {
				if e == k {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, k)
			}
		}
	}
	return out
}

func TestLocalTransactionCommit(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	c := testClient(sys, 1)
	key := keysOn(sys, 0, 1)[0]

	txn := c.Begin()
	if _, err := txn.Read(key); err != nil {
		t.Fatal(err)
	}
	txn.Write(key, []byte("updated"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("local commit failed: %v", err)
	}

	// A following transaction must see the new value.
	txn2 := c.Begin()
	v, err := txn2.Read(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "updated" {
		t.Fatalf("read %q after commit, want %q", v, "updated")
	}
}

func TestWriteOnlyTransaction(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	c := testClient(sys, 1)
	key := keysOn(sys, 0, 1)[0]

	txn := c.Begin()
	txn.Write(key, []byte("blind"))
	if err := txn.Commit(); err != nil {
		t.Fatalf("write-only commit failed: %v", err)
	}
	check := c.Begin()
	v, _ := check.Read(key)
	if string(v) != "blind" {
		t.Fatalf("got %q", v)
	}
}

func TestDistributedTransactionCommit(t *testing.T) {
	sys := testSystem(t, 3, 1, 200)
	c := testClient(sys, 1)
	k0 := keysOn(sys, 0, 1)[0]
	k1 := keysOn(sys, 1, 1)[0]
	k2 := keysOn(sys, 2, 1)[0]

	txn := c.Begin()
	for _, k := range []string{k0, k1, k2} {
		if _, err := txn.Read(k); err != nil {
			t.Fatal(err)
		}
		txn.Write(k, []byte("dist-"+k))
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("distributed commit failed: %v", err)
	}

	// The coordinator acknowledges when its own commit batch is written;
	// participants apply the group asynchronously moments later (Fig. 3
	// steps 7–8), so poll.
	for _, k := range []string{k0, k1, k2} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, err := c.Begin().Read(k)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) == "dist-"+k {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %q = %q, want %q", k, v, "dist-"+k)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestConflictAborts(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	c := testClient(sys, 1)
	key := keysOn(sys, 0, 1)[0]

	// Two transactions read the same version; the second to commit must
	// abort (rule 1 or rule 2 of Def. 3.1 depending on timing).
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Read(key); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(key); err != nil {
		t.Fatal(err)
	}
	t1.Write(key, []byte("one"))
	t2.Write(key, []byte("two"))
	err1 := t1.Commit()
	err2 := t2.Commit()
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one should commit: err1=%v err2=%v", err1, err2)
	}
	bad := err1
	if bad == nil {
		bad = err2
	}
	if !errors.Is(bad, client.ErrAborted) {
		t.Fatalf("loser error = %v, want ErrAborted", bad)
	}
}

func TestLocalReadOnlyTransaction(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	c := testClient(sys, 1)
	ks := keysOn(sys, 0, 3)

	res, err := c.ReadOnly(ks)
	if err != nil {
		t.Fatalf("read-only failed: %v", err)
	}
	if res.Rounds != 1 {
		t.Fatalf("local RO took %d rounds", res.Rounds)
	}
	for _, k := range ks {
		if res.Values[k] == nil {
			t.Fatalf("missing value for %q", k)
		}
	}
}

func TestDistributedReadOnlySeesCommittedWrites(t *testing.T) {
	sys := testSystem(t, 3, 1, 200)
	c := testClient(sys, 1)
	k0 := keysOn(sys, 0, 1)[0]
	k1 := keysOn(sys, 1, 1)[0]

	txn := c.Begin()
	if _, err := txn.Read(k0); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(k1); err != nil {
		t.Fatal(err)
	}
	txn.Write(k0, []byte("A"))
	txn.Write(k1, []byte("B"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Poll until both partitions' read-only state reflects the commit
	// (participant commit batches land asynchronously).
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.ReadOnly([]string{k0, k1})
		if err != nil {
			t.Fatalf("read-only failed: %v", err)
		}
		a, b := string(res.Values[k0]), string(res.Values[k1])
		if a == "A" && b == "B" {
			return
		}
		// Snapshot consistency: either both updates or neither.
		if (a == "A") != (b == "B") {
			t.Fatalf("inconsistent snapshot: %q/%q (rounds=%d)", a, b, res.Rounds)
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit never became visible: %q/%q", a, b)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newRand returns a deterministic PRNG for test goroutines.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
