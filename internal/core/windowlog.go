package core

import "sort"

// windowedLog is the replica's retained window of the SMR log: a
// contiguous run of committed batches starting at an explicit base
// offset. The seed kept the whole log in a slice indexed by batch ID;
// stable checkpoints (DESIGN.md §6) let replicas truncate everything
// below the checkpoint, so every access goes through the base-relative
// accessors here instead of raw indexing.
//
// Invariants: entries[i] holds batch base+i; the window is never empty
// after init (it always holds at least the newest batch, which the
// speculative chain and read path anchor on).
type windowedLog struct {
	base    int64
	entries []*logEntry
}

// init installs the first entry (genesis, or a state-transferred
// checkpoint) as the window's base. The backing array is NOT reused: a
// re-init after a checkpoint install must release every old entry (and
// its batch body) to the GC, not keep them reachable past the slice
// length.
func (l *windowedLog) init(base int64, e *logEntry) {
	l.base = base
	l.entries = []*logEntry{e}
}

// baseID returns the oldest retained batch ID.
func (l *windowedLog) baseID() int64 { return l.base }

// lastID returns the newest committed batch ID.
func (l *windowedLog) lastID() int64 { return l.base + int64(len(l.entries)) - 1 }

// len returns the number of retained entries.
func (l *windowedLog) len() int { return len(l.entries) }

// get returns the entry for a batch ID, or nil when it is outside the
// window (truncated below, or not delivered yet).
func (l *windowedLog) get(id int64) *logEntry {
	if id < l.base || id > l.lastID() {
		return nil
	}
	return l.entries[id-l.base]
}

// last returns the newest entry.
func (l *windowedLog) last() *logEntry { return l.entries[len(l.entries)-1] }

// append adds the next committed batch. The caller (delivery, which is
// strictly ordered) guarantees e.header.ID == lastID()+1.
func (l *windowedLog) append(e *logEntry) { l.entries = append(l.entries, e) }

// truncate drops every entry with ID < below, returning how many were
// dropped. The newest entry is never dropped (below is clamped), so the
// window stays non-empty.
func (l *windowedLog) truncate(below int64) int {
	if below > l.lastID() {
		below = l.lastID()
	}
	if below <= l.base {
		return 0
	}
	n := int(below - l.base)
	// Shift in place and nil the tail so dropped entries (and their
	// batch bodies) are released to the GC immediately.
	copy(l.entries, l.entries[n:])
	for i := len(l.entries) - n; i < len(l.entries); i++ {
		l.entries[i] = nil
	}
	l.entries = l.entries[:len(l.entries)-n]
	l.base = below
	return n
}

// searchLCE returns the earliest retained batch whose LCE is at least p,
// or -1 when no retained batch satisfies it yet. LCE is monotone over
// the log, so binary search applies; a dependency satisfied only by a
// truncated prefix resolves to the base entry, which is at least as new
// and therefore still dependency-satisfying.
func (l *windowedLog) searchLCE(p int64) int64 {
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].header.LCE >= p })
	if i == len(l.entries) {
		return -1
	}
	return l.base + int64(i)
}

// each visits the retained entries in batch order.
func (l *windowedLog) each(fn func(*logEntry)) {
	for _, e := range l.entries {
		fn(e)
	}
}
