package core_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

// commitN commits n sequential write-only local transactions on keys of
// cluster 0, failing the test on any error. Each commit forces a batch,
// driving the log forward deterministically.
func commitN(t *testing.T, c *client.Client, keys []string, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		txn := c.Begin()
		txn.Write(keys[(start+i)%len(keys)], []byte(fmt.Sprintf("v-%d", start+i)))
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", start+i, err)
		}
	}
}

// TestLogTruncationBoundsMemoryUnderLoad drives enough batches through a
// cluster that several checkpoint intervals pass, then asserts every
// replica actually truncated: the retained window stays below a small
// multiple of the checkpoint interval no matter how many batches
// committed, and the window base advanced past the early log.
func TestLogTruncationBoundsMemoryUnderLoad(t *testing.T) {
	const interval = 8
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = interval
		cfg.RetainBatches = 4
	})
	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)

	const commits = 80
	commitN(t, c, keys, 0, commits)

	sys.Stop()
	for r := int32(0); r < 4; r++ {
		n := sys.Node(core.NodeID{Cluster: 0, Replica: r})
		base, length := n.LogWindow()
		tip := n.Tip()
		if tip < commits/2 {
			t.Fatalf("replica %d: tip %d, expected sustained batch flow", r, tip)
		}
		if stable := n.StableCheckpoint(); stable <= 0 {
			t.Fatalf("replica %d: no stable checkpoint formed (tip %d)", r, tip)
		}
		// The window is bounded by the checkpoint spacing (plus the
		// in-flight slack between the last stable quorum and the tip),
		// never by the total number of batches committed.
		if maxLen := 2*interval + 8; length > maxLen {
			t.Fatalf("replica %d: log window %d entries (base %d, tip %d), want <= %d",
				r, length, base, tip, maxLen)
		}
		if base == 0 {
			t.Fatalf("replica %d: window base never advanced (truncation never happened)", r)
		}
		if n.Metrics.LogTruncated == 0 {
			t.Fatalf("replica %d: LogTruncated metric is zero", r)
		}
	}
}

// TestReplicaCrashRestartAndStateTransfer is the recovery scenario of
// the issue: a follower is killed mid-run (losing all state and every
// message sent while it is down), the cluster keeps committing without
// it, and after a restart the replica installs a stable checkpoint from
// a peer, replays the suffix, catches up to the live tip, and serves
// verified reads again.
func TestReplicaCrashRestartAndStateTransfer(t *testing.T) {
	const interval = 4
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = interval
		cfg.RetainBatches = 8
		cfg.StateTransferTimeout = 25 * time.Millisecond
	})
	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)
	crashed := core.NodeID{Cluster: 0, Replica: 3}
	leaderID := core.NodeID{Cluster: 0, Replica: 0}

	commitN(t, c, keys, 0, 20)

	// Crash a follower. Commits must keep flowing: 2f+1 = 3 replicas
	// remain, which is exactly a quorum.
	sys.StopReplica(crashed)
	commitN(t, c, keys, 20, 20)

	// Restart it and keep committing; the replica must state-transfer
	// and catch up to the moving tip.
	restarted := sys.RestartReplica(crashed)
	deadline := time.Now().Add(10 * time.Second)
	caughtUp := false
	for i := 0; time.Now().Before(deadline); i++ {
		commitN(t, c, keys, 40+i, 1)
		lead := sys.Node(leaderID).Tip()
		if got := restarted.Tip(); got >= lead-1 && got > 40 {
			caughtUp = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !caughtUp {
		t.Fatalf("restarted replica never caught up: tip %d vs leader %d",
			restarted.Tip(), sys.Node(leaderID).Tip())
	}

	// The recovered replica serves verified snapshot reads: point a
	// read-only client straight at it and check the latest committed
	// values round-trip with proof verification intact.
	commitN(t, c, keys, 100, 3)
	roc := client.New(client.Config{
		ID: 9, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 5 * time.Second,
		ROTarget: func(int32) core.NodeID { return crashed },
	})
	var res *client.ROResult
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		res, err = roc.ReadOnly(keys[:2])
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("read-only via recovered replica: %v", err)
	}
	for _, k := range keys[:2] {
		if _, ok := res.Values[k]; !ok {
			t.Fatalf("recovered replica answered without key %q", k)
		}
	}

	sys.Stop()
	if restarted.Metrics.StateTransfers == 0 {
		t.Fatal("recovered replica never installed a checkpoint (StateTransfers = 0)")
	}
	if restarted.StableCheckpoint() <= 0 {
		t.Fatal("recovered replica holds no stable checkpoint")
	}
	// It must have caught up via checkpoint + suffix, not by replaying
	// the whole history through consensus (those messages are gone).
	if base, _ := restarted.LogWindow(); base == 0 {
		t.Fatal("recovered replica's window still starts at genesis")
	}
}

// TestCrashedFollowerDoesNotStallCommits pins the liveness half of the
// acceptance criterion on its own: with a follower down, every commit
// still succeeds promptly (no quorum loss, no pipeline stall).
func TestCrashedFollowerDoesNotStallCommits(t *testing.T) {
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = 8
	})
	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 4)
	commitN(t, c, keys, 0, 5)

	sys.StopReplica(core.NodeID{Cluster: 0, Replica: 2})
	start := time.Now()
	commitN(t, c, keys, 5, 30)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("30 commits with a crashed follower took %v", elapsed)
	}
}

// TestRecoveryBeforeAnyStableCheckpoint: a replica crashed and restarted
// before the first checkpoint interval must still recover once the
// cluster reaches one (empty state responses re-arm the retry).
func TestRecoveryBeforeAnyStableCheckpoint(t *testing.T) {
	const interval = 8
	sys := testSystem(t, 1, 1, 100, func(cfg *core.SystemConfig) {
		cfg.CheckpointInterval = interval
		cfg.StateTransferTimeout = 25 * time.Millisecond
	})
	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 4)

	commitN(t, c, keys, 0, 2) // well before the first checkpoint
	crashed := core.NodeID{Cluster: 0, Replica: 1}
	sys.StopReplica(crashed)
	restarted := sys.RestartReplica(crashed)

	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		commitN(t, c, keys, 2+i, 1)
		if restarted.Tip() >= int64(interval) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica restarted pre-checkpoint never recovered (tip %d)", restarted.Tip())
}
