package core

import (
	"time"

	"transedge/internal/protocol"
)

// Leader failover (DESIGN.md §7): the progress watchdog that turns a
// stalled leader into a view-change vote, and the node-level rebase that
// runs when consensus installs a new view — re-pointing the speculative
// chain at the re-proposed frontier, rebuilding the new leader's
// admission state, and re-driving 2PC conversations the old leader left
// dangling.

// maxSuspectBackoff caps the exponential view-timeout backoff (2^6 = 64x
// the base timeout) so repeated failed view changes never push the retry
// horizon to minutes.
const maxSuspectBackoff = 6

// progressTimeout is the current watchdog window: the configured timeout
// backed off exponentially by consecutive unanswered suspicions, so a
// partitioned minority does not spin through views faster than the
// majority can complete one.
func (n *Node) progressTimeout() time.Duration {
	shift := n.suspects
	if shift > maxSuspectBackoff {
		shift = maxSuspectBackoff
	}
	return n.cfg.ViewTimeout << shift
}

// noteProgress resets the watchdog: a batch was delivered (or a new view
// installed), so whoever leads now is doing its job.
func (n *Node) noteProgress() {
	n.suspects = 0
	n.progressDeadline = time.Time{}
	n.forwarded = false
}

// armProgressTimer starts the watchdog after this follower relayed work
// to its leader: even with no local pending state, a delivery is now
// owed, and silence past the timeout means the leader is gone.
func (n *Node) armProgressTimer() {
	if n.cfg.ViewTimeout <= 0 {
		return
	}
	n.forwarded = true
	if n.progressDeadline.IsZero() {
		n.progressDeadline = time.Now().Add(n.progressTimeout())
	}
}

// maybeSuspectLeader (tick) fires the leader-progress timer: when work
// is pending and no delivery has landed within the timeout, vote to
// change views. Disabled while state transfer owns the replica's notion
// of progress — a syncing node cannot tell a dead leader from its own
// lag.
func (n *Node) maybeSuspectLeader() {
	if n.cfg.ViewTimeout <= 0 || n.syncing || n.replaying {
		return
	}
	if n.consensus.CanPropose() {
		// We lead a live view; stalls here are our own batch timer's
		// business, not grounds for deposing ourselves.
		n.noteProgress()
		return
	}
	pending := n.forwarded || n.consensus.PendingWork() ||
		len(n.waiters) > 0 || len(n.pendingLocal)+len(n.pendingPrepared) > 0
	if !pending {
		n.progressDeadline = time.Time{}
		return
	}
	if n.progressDeadline.IsZero() {
		n.progressDeadline = time.Now().Add(n.progressTimeout())
		return
	}
	if time.Now().Before(n.progressDeadline) {
		return
	}
	n.suspects++
	n.Metrics.LeaderSuspects++
	n.consensus.SuspectLeader()
	n.progressDeadline = time.Now().Add(n.progressTimeout())
}

// rebaseOnView is the consensus Rebase callback: a new view was
// installed and frontier is the exact chain of re-proposed batches above
// the delivered tip. The speculative chain must become exactly that
// frontier — any longer prefix this node validated or proposed in the
// old view is unprepared history the new view discarded.
func (n *Node) rebaseOnView(view uint64, frontier []*protocol.Batch) {
	// Keep the prefix that survived unchanged (same digest at the same
	// position): its reservations, trees, and waiters are still exact.
	j := 0
	for j < len(n.spec) && j < len(frontier) && n.spec[j].digest == frontier[j].Digest() {
		j++
	}
	n.rollbackSpec(j)
	for _, b := range frontier[j:] {
		_, _, prevTree := n.specTail()
		slot := &specSlot{batch: b, header: b.Header(), digest: b.Digest(),
			tree: n.applyBatchToTree(prevTree, b)}
		if len(b.Committed) > 0 {
			slot.groups = 1
		}
		n.spec = append(n.spec, slot)
	}

	if n.IsLeader() {
		n.rebuildReservations()
		n.rekindleDistTxns()
	} else {
		n.dropPendingAdmissions()
	}
	n.Metrics.ViewChanges++
	n.noteProgress()
}

// rebuildReservations reconstructs the leader's pending OCC footprints
// from scratch: everything the (possibly inherited) speculative chain
// has in flight plus the unbatched admissions. A new leader starts with
// empty pending sets; a retained leader's old sets may count slots the
// frontier dropped.
func (n *Node) rebuildReservations() {
	n.pendingReads = make(keyRefs)
	n.pendingWrites = make(keyRefs)
	reserve := func(reads []protocol.ReadEntry, writes []protocol.WriteOp) {
		for _, r := range reads {
			n.pendingReads.add(r.Key)
		}
		for _, w := range writes {
			n.pendingWrites.add(w.Key)
		}
	}
	for _, s := range n.spec {
		for i := range s.batch.Local {
			t := &s.batch.Local[i]
			reserve(t.Reads, t.Writes)
		}
		for i := range s.batch.Prepared {
			t := &s.batch.Prepared[i].Txn
			reserve(n.localReads(t), n.localWrites(t))
		}
	}
	for i := range n.pendingLocal {
		t := &n.pendingLocal[i]
		reserve(t.Reads, t.Writes)
	}
	for i := range n.pendingPrepared {
		t := &n.pendingPrepared[i].Txn
		reserve(n.localReads(t), n.localWrites(t))
	}
}

// dropPendingAdmissions aborts the unbatched admissions of a deposed
// leader: their footprints were never proposed to the new view, so the
// clients must retry (against the new leader). Waiters for transactions
// already inside the surviving speculative chain are kept — delivery
// answers them presence-based.
func (n *Node) dropPendingAdmissions() {
	for i := range n.pendingLocal {
		n.failWaiter(n.pendingLocal[i].ID, "leader changed")
	}
	for i := range n.pendingPrepared {
		id := n.pendingPrepared[i].Txn.ID
		delete(n.pendingEvidence, id)
		if dt := n.distTxns[id]; dt != nil && dt.prepareBatch < 0 {
			delete(n.distTxns, id)
			delete(n.pendingDecisions, id)
		}
		n.failWaiter(id, "leader changed")
	}
	n.pendingLocal = nil
	n.pendingPrepared = nil
	n.pendingReads = make(keyRefs)
	n.pendingWrites = make(keyRefs)
}

// rekindleDistTxns re-drives every undecided distributed transaction
// whose prepare record is already durable: the crashed leader may have
// died between writing the prepare and sending the 2PC messages it owed,
// and those sends are not in the log — only the new leader can repeat
// them. Idempotent on the receiving side (participants dedup prepares,
// coordinators dedup votes per cluster).
func (n *Node) rekindleDistTxns() {
	for _, g := range n.groups {
		for _, id := range g.ids {
			dt := n.distTxns[id]
			if dt == nil || dt.decision != protocol.DecisionPending {
				continue
			}
			e := n.log.get(dt.prepareBatch)
			if e == nil || e.batch == nil {
				continue // body pruned; peers must have moved past this group
			}
			proof := protocol.PrepareProof{Header: e.header, Cert: e.cert, Prepared: e.batch.Prepared}
			if dt.rec.CoordCluster == n.cfg.Cluster {
				dt.isCoord = true
				if dt.votesByPart == nil {
					dt.votesByPart = make(map[int32]*protocol.PreparedVote)
				}
				if dt.votesByPart[n.cfg.Cluster] == nil {
					self := protocol.PreparedVote{
						TxnID: id, FromCluster: n.cfg.Cluster,
						Vote: protocol.DecisionCommit, Proof: proof,
					}
					dt.votesByPart[n.cfg.Cluster] = &self
				}
				cp := &protocol.CoordinatorPrepare{TxnID: id, CoordCluster: n.cfg.Cluster, Proof: proof}
				for _, part := range dt.rec.Txn.Partitions {
					if part != n.cfg.Cluster {
						n.cfg.Net.Send(n.self, leaderOf(part), cp)
					}
				}
				n.maybeDecide(dt)
			} else {
				n.cfg.Net.Send(n.self, leaderOf(dt.rec.CoordCluster), &protocol.PreparedVote{
					TxnID: id, FromCluster: n.cfg.Cluster,
					Vote: protocol.DecisionCommit, Proof: proof,
				})
				if d := n.pendingDecisions[id]; d != nil {
					delete(n.pendingDecisions, id)
					n.applyDecision(dt, d)
				}
			}
		}
	}
}
