package core

import (
	"errors"
	"fmt"
	"maps"

	"transedge/internal/protocol"
)

// Conflict detection (paper Def. 3.1). A transaction is admitted to the
// in-progress batch only if
//
//	(1) none of its reads were overwritten by committed batches,
//	(2) it does not conflict with transactions already in the in-progress
//	    (or in-flight) batch, and
//	(3) it does not conflict with prepared-but-undecided distributed
//	    transactions.
//
// Conflicts are the standard rw/wr/ww intersections, so read keys and
// write keys are tracked separately: two concurrent readers of a key do
// not conflict, but a reader and a writer (or two writers) do.

// ErrConflict is returned when a transaction fails conflict detection.
var ErrConflict = errors.New("core: transaction conflicts")

// keyRefs is a refcounted key set (reads need refcounts: several pending
// transactions may read the same key).
type keyRefs map[string]int

func (r keyRefs) add(k string)      { r[k]++ }
func (r keyRefs) has(k string) bool { return r[k] > 0 }
func (r keyRefs) clone() keyRefs    { return maps.Clone(r) }
func (r keyRefs) release(k string) {
	if n := r[k]; n > 1 {
		r[k] = n - 1
	} else {
		delete(r, k)
	}
}

// conflictEnv is the environment a transaction's local footprint is
// checked against: the committed store plus the pending (in-progress /
// in-flight batch) and prepared (undecided 2PC) footprints.
type conflictEnv struct {
	lastWriter     func(key string) int64
	pendingReads   keyRefs
	pendingWrites  keyRefs
	preparedReads  keyRefs
	preparedWrites keyRefs
}

// check applies Def. 3.1 to the given local read and write footprint.
func (e *conflictEnv) check(reads []protocol.ReadEntry, writes []protocol.WriteOp) error {
	for _, r := range reads {
		// Rule 1: the version read must still be current.
		if got := e.lastWriter(r.Key); got != r.Version {
			return fmt.Errorf("%w: stale read of %q (read version %d, current %d)",
				ErrConflict, r.Key, r.Version, got)
		}
		// Rules 2+3: reading a key a pending or prepared txn writes (wr).
		if e.pendingWrites.has(r.Key) || e.preparedWrites.has(r.Key) {
			return fmt.Errorf("%w: read of %q overlaps an in-flight write", ErrConflict, r.Key)
		}
	}
	for _, w := range writes {
		// Rules 2+3: writing a key a pending or prepared txn reads (rw)
		// or writes (ww).
		if e.pendingWrites.has(w.Key) || e.preparedWrites.has(w.Key) {
			return fmt.Errorf("%w: write of %q overlaps an in-flight write", ErrConflict, w.Key)
		}
		if e.pendingReads.has(w.Key) || e.preparedReads.has(w.Key) {
			return fmt.Errorf("%w: write of %q overlaps an in-flight read", ErrConflict, w.Key)
		}
	}
	return nil
}

// reserve adds a footprint to the pending sets after admission.
func (e *conflictEnv) reserve(reads []protocol.ReadEntry, writes []protocol.WriteOp) {
	for _, r := range reads {
		e.pendingReads.add(r.Key)
	}
	for _, w := range writes {
		e.pendingWrites.add(w.Key)
	}
}
