package core_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transedge/internal/core"
)

// TestReadLoadDoesNotStallConsensus: snapshot reads are served by the
// read-executor pool, off the consensus event loop, so a replica drowning
// in read-only scans still delivers batches and commits read-write
// transactions promptly. The scan workers hammer cluster 0's leader (the
// default RO target) with wide scans for the whole window while a writer
// commits sequentially; every commit must finish, and the server must
// have been answering reads the whole time (not starving one side).
func TestReadLoadDoesNotStallConsensus(t *testing.T) {
	sys := testSystem(t, 1, 1, 400)
	writer := testClient(sys, 1)
	key := keysOn(sys, 0, 1)[0]
	scanKeys := keysOn(sys, 0, 200)

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		roServed atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testClient(sys, uint32(10+w))
			for !stop.Load() {
				if _, err := c.ReadOnly(scanKeys); err == nil {
					roServed.Add(1)
				}
			}
		}(w)
	}

	const commits = 15
	for i := 0; i < commits; i++ {
		start := time.Now()
		txn := writer.Begin()
		if _, err := txn.Read(key); err != nil {
			t.Fatalf("commit %d read under scan load: %v", i, err)
		}
		txn.Write(key, []byte{byte(i)})
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d under scan load: %v", i, err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("commit %d took %v under scan load", i, d)
		}
	}
	stop.Store(true)
	wg.Wait()
	if roServed.Load() == 0 {
		t.Fatal("no read-only scans completed during the write run")
	}

	// The leader really did serve reads from the executor pool while
	// committing: its ROServed count covers the scans above.
	leader := sys.Node(core.NodeID{Cluster: 0, Replica: 0})
	sys.Stop() // drain executors so metrics are final
	if leader.Metrics.ROServed == 0 {
		t.Fatal("leader served no read-only requests")
	}
	if leader.Metrics.BatchesCommitted == 0 {
		t.Fatal("leader committed no batches")
	}
}
