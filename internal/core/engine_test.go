package core_test

import (
	"fmt"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

// TestLSMEngineFullSystem runs the whole replica lifecycle on the LSM
// storage backend: commits through consensus, a follower crash with
// peer-assisted recovery, and finally a full-fleet kill with a cold
// restart from disk alone — the same acceptance scenario the sharded
// default passes, with Engine: "lsm" selecting the log-structured store
// on every replica. The durability layer sits above the engine
// interface, so nothing here should care which backend runs; this test
// is what makes that claim load-bearing.
func TestLSMEngineFullSystem(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 100)
	cfg.Engine = "lsm"
	sys := core.NewSystem(cfg)
	sys.Start()

	c := testClient(sys, 1)
	keys := keysOn(sys, 0, 8)
	expected := make(map[string][]byte)
	commit := func(i int) {
		k, v := keys[i%len(keys)], []byte(fmt.Sprintf("v-%d", i))
		txn := c.Begin()
		txn.Write(k, v)
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		expected[k] = v
	}
	for i := 0; i < 12; i++ {
		commit(i)
	}

	// Crash a follower mid-run; the remaining 2f+1 quorum keeps
	// committing, and the restarted replica must recover (disk + peer
	// state transfer) and catch back up to the moving tip.
	crashed := core.NodeID{Cluster: 0, Replica: 3}
	sys.StopReplica(crashed)
	for i := 12; i < 22; i++ {
		commit(i)
	}
	restarted := sys.RestartReplica(crashed)
	deadline := time.Now().Add(10 * time.Second)
	caught := false
	for i := 0; time.Now().Before(deadline) && !caught; i++ {
		commit(22 + i)
		time.Sleep(2 * time.Millisecond)
		caught = restarted.Tip() >= sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip()
	}
	if !caught {
		t.Fatalf("restarted replica never caught up: tip %d vs leader %d",
			restarted.Tip(), sys.Node(core.NodeID{Cluster: 0, Replica: 0}).Tip())
	}
	settleTips(t, sys)

	// Kill the whole fleet. Nothing in memory survives; the fresh system
	// over the same DataDir rebuilds LSM-backed state from checkpoints
	// and WAL replay alone.
	sys.Stop()
	sys2 := core.NewSystem(cfg)
	sys2.Start()
	defer sys2.Stop()

	for r := int32(0); r < 4; r++ {
		target := core.NodeID{Cluster: 0, Replica: r}
		roc := client.New(client.Config{
			ID: uint32(20 + r), Net: sys2.Net, Ring: sys2.Ring, Part: sys2.Part,
			Clusters: 1, Timeout: 5 * time.Second,
			ROTarget: func(int32) core.NodeID { return target },
		})
		res, err := roc.ReadOnly(keys)
		if err != nil {
			t.Fatalf("verified read via recovered replica %d: %v", r, err)
		}
		for k, want := range expected {
			if string(res.Values[k]) != string(want) {
				t.Fatalf("replica %d: key %q = %q after cold restart, want %q",
					r, k, res.Values[k], want)
			}
		}
	}
	cold := sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.ColdRestarts })
	if cold != 4 {
		t.Fatalf("ColdRestarts = %d, want 4 (every replica recovered from disk)", cold)
	}
	replayed := sys2.NodeMetrics(func(m *core.Metrics) int64 { return m.WALReplayed })
	if replayed == 0 {
		t.Fatal("WALReplayed = 0: no batch was replayed into the LSM engine")
	}
}

// TestNodeClosesOwnedEngineOnStop pins the engine lifecycle: stopping a
// system must stop every replica's self-built engine (the LSM compactor
// goroutine exits — the race detector and goroutine-leak checks in
// other tests would trip otherwise), and a second Stop stays safe.
func TestNodeClosesOwnedEngineOnStop(t *testing.T) {
	cfg := core.SystemConfig{
		Clusters:      1,
		F:             1,
		Seed:          7,
		BatchInterval: time.Millisecond,
		Engine:        "lsm",
		InitialData:   map[string][]byte{"k": []byte("v")},
	}
	sys := core.NewSystem(cfg)
	sys.Start()
	c := testClient(sys, 1)
	txn := c.Begin()
	txn.Write("k", []byte("v1"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	sys.Stop()
	sys.Stop()
}
