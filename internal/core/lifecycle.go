package core

import (
	"transedge/internal/merkle"
	"transedge/internal/protocol"
)

// onDeliver applies a consensus-committed batch to the replica's state:
// the storage and Merkle tree versions, the prepared-key reservations, the
// prepare-group queue, and — on the leader — the 2PC driving steps that
// become due once a batch is durably in the SMR log (steps 3, 5, and 7 of
// Fig. 3 all fire "after the batch is written").
func (n *Node) onDeliver(cb protocol.CertifiedBatch) {
	b := cb.Batch
	// Write-ahead: the certified batch reaches the log before any state
	// change below, so a crash at any point replays it on restart
	// (durability follows the group-commit fsync policy; DESIGN.md §8).
	n.walAppend(&cb)
	// Header and digest are memoized on the sealed batch: this re-reads
	// what consensus already computed instead of re-hashing the segments.
	entry := &logEntry{batch: b, header: b.Header(), digest: b.Digest(), cert: cb.Cert}

	// Retire the delivered batch from the speculative chain (the leader's
	// proposal ring / a follower's validated-ahead slots). If the log
	// diverged from the leader's chain (a slot delivered content it did
	// not propose — impossible with a healthy single leader, possible
	// across leadership changes), every speculative successor chained off
	// the divergent slot is invalid: roll the whole chain back so
	// reserved footprints are freed and clients abort instead of hanging.
	var specTree *merkle.Tree
	if len(n.spec) > 0 {
		head := n.spec[0]
		if head.batch.ID == b.ID && head.digest == entry.digest {
			specTree = head.tree
			n.spec[0] = nil
			n.spec = n.spec[1:]
		} else if n.IsLeader() {
			n.rollbackSpec(0)
		}
	}

	// Apply the batch's write sets to versioned storage.
	writes := make(map[string][]byte)
	for i := range b.Local {
		for _, w := range b.Local[i].Writes {
			writes[w.Key] = w.Value
		}
	}
	for i := range b.Committed {
		rec := &b.Committed[i]
		if rec.Decision != protocol.DecisionCommit {
			continue
		}
		for _, w := range n.localWrites(&rec.Txn) {
			writes[w.Key] = w.Value
		}
	}
	// One sharded pass per batch (each shard lock taken once); also for
	// empty write sets, so the store's StableBatch watermark tracks
	// delivery and off-loop snapshot reads at any committed batch are
	// guaranteed torn-free.
	n.st.ApplyAll(b.ID, writes)

	// Install the Merkle version computed speculatively at proposal
	// (leader) or validation (followers) time.
	if specTree != nil {
		n.curTree = specTree
	} else {
		n.curTree = n.applyBatchToTree(n.curTree, b)
	}
	n.trees[b.ID] = n.curTree
	n.log.append(entry)
	n.tip.Store(b.ID)
	n.Metrics.BatchesCommitted++

	// Local transactions are committed now (Sec. 3.2). Releases and
	// replies are NOT leader-gated: a leader deposed mid-pipeline still
	// holds the reply channels for batches it proposed (release is a
	// no-op on followers, whose pending sets are empty), and a new leader
	// that inherited the batch through a view change rebuilt the
	// reservations this delivery must drop.
	for i := range b.Local {
		t := &b.Local[i]
		n.Metrics.LocalCommitted++
		n.releasePending(t.Reads, t.Writes)
		if ch, ok := n.waiters[t.ID]; ok {
			delete(n.waiters, t.ID)
			n.reply(ch, protocol.CommitReply{
				TxnID: t.ID, Status: protocol.StatusCommitted, CommitBatch: b.ID,
			})
		}
	}

	// Prepared segment: open a new prepare group, reserve footprints, and
	// (leader) emit the 2PC messages that were gated on durability.
	if len(b.Prepared) > 0 {
		g := &group{prepareBatch: b.ID}
		proof := protocol.PrepareProof{Header: entry.header, Cert: entry.cert, Prepared: b.Prepared}
		for i := range b.Prepared {
			rec := b.Prepared[i]
			id := rec.Txn.ID
			reads, wr := n.localReads(&rec.Txn), n.localWrites(&rec.Txn)
			for _, r := range reads {
				n.preparedReads.add(r.Key)
			}
			for _, w := range wr {
				n.preparedWrites.add(w.Key)
			}
			dt := n.distTxns[id]
			if dt == nil {
				dt = &distTxn{rec: rec}
				n.distTxns[id] = dt
			}
			dt.prepareBatch = b.ID
			g.ids = append(g.ids, id)
			delete(n.pendingEvidence, id)
			n.releasePending(reads, wr) // moved into the prepared sets

			if !n.IsLeader() {
				continue
			}

			if rec.CoordCluster == n.cfg.Cluster {
				// Step 3: we coordinate — our prepare is durable, so ask
				// every other participant to prepare, and record our own
				// implicit positive vote. The coordinator fields are
				// lazily initialized: a leader that took over through a
				// view change inherits dt records created on the bare
				// follower path.
				dt.isCoord = true
				if dt.votesByPart == nil {
					dt.votesByPart = make(map[int32]*protocol.PreparedVote)
				}
				self := protocol.PreparedVote{
					TxnID: id, FromCluster: n.cfg.Cluster,
					Vote: protocol.DecisionCommit, Proof: proof,
				}
				dt.votesByPart[n.cfg.Cluster] = &self
				cp := &protocol.CoordinatorPrepare{TxnID: id, CoordCluster: n.cfg.Cluster, Proof: proof}
				for _, part := range rec.Txn.Partitions {
					if part != n.cfg.Cluster {
						n.cfg.Net.Send(n.self, leaderOf(part), cp)
					}
				}
				n.maybeDecide(dt)
			} else {
				// Step 5: we participate — send our certified vote to the
				// coordinator, and apply any decision that raced ahead.
				n.cfg.Net.Send(n.self, leaderOf(rec.CoordCluster), &protocol.PreparedVote{
					TxnID: id, FromCluster: n.cfg.Cluster,
					Vote: protocol.DecisionCommit, Proof: proof,
				})
				if d := n.pendingDecisions[id]; d != nil {
					delete(n.pendingDecisions, id)
					n.applyDecision(dt, d)
				}
			}
		}
		n.groups = append(n.groups, g)
	}

	// Committed segment: the oldest prepare group is decided; release its
	// reservations and finish the transactions (step 8 of Fig. 3).
	if len(b.Committed) > 0 {
		n.groups = n.groups[1:]
		for i := range b.Committed {
			rec := &b.Committed[i]
			id := rec.Txn.ID
			if dt := n.distTxns[id]; dt != nil {
				for _, r := range n.localReads(&dt.rec.Txn) {
					n.preparedReads.release(r.Key)
				}
				for _, w := range n.localWrites(&dt.rec.Txn) {
					n.preparedWrites.release(w.Key)
				}
				// Presence-based, not leader-gated: a deposed leader
				// still holds the client's channel and must answer.
				if ch, ok := n.waiters[id]; ok {
					delete(n.waiters, id)
					status := protocol.StatusCommitted
					if rec.Decision != protocol.DecisionCommit {
						status = protocol.StatusAborted
					}
					n.reply(ch, protocol.CommitReply{
						TxnID: id, Status: status, CommitBatch: b.ID,
						Reason: reasonFor(rec.Decision),
					})
				}
				delete(n.distTxns, id)
			}
			delete(n.pendingDecisions, id)
			if rec.Decision == protocol.DecisionCommit {
				n.Metrics.DistCommitted++
			} else {
				n.Metrics.DistAborted++
			}
		}
	}

	n.noteProgress() // a delivery is exactly what the watchdog waits for
	n.maybeCheckpoint(b.ID)
	n.pruneSnapshots()
	n.serveParked()
	if n.IsLeader() {
		n.maybeBuildBatch(false)
	}
}

// pruneSnapshots enforces RetainBatches: old Merkle versions and batch
// bodies are dropped; headers and certificates stay (they are tiny and
// keep audits possible). Store versions are NOT pruned here — that work
// is spread over the periodic pruneStoreStep so no delivery ever pays a
// whole-keyspace stall. In-flight read executors are unaffected: they
// hold the tree version and header by pointer, and the store versions
// they need stay pinned via the executor pool's target tracking.
func (n *Node) pruneSnapshots() {
	retain := n.cfg.RetainBatches
	if retain <= 0 {
		return
	}
	cutoff := n.lastBatchID() - int64(retain) + 1
	// Batch bodies above the stable checkpoint stay servable: they are
	// the suffix a state-transferring peer replays after installing the
	// checkpoint. The memory window is therefore bounded by
	// max(RetainBatches, CheckpointInterval), not RetainBatches alone.
	if n.stable != nil && cutoff > n.stable.id+1 {
		cutoff = n.stable.id + 1
	}
	if cutoff <= n.oldestSnapshot {
		return
	}
	for id := n.oldestSnapshot; id < cutoff; id++ {
		delete(n.trees, id)
		if e := n.log.get(id); e != nil {
			e.batch = nil
		}
	}
	n.oldestSnapshot = cutoff
}

// pruneShardsPerStep bounds how many store shards one tick prunes, so
// each tick's write-lock holds stay short and bounded.
const pruneShardsPerStep = 4

// pruneStoreStep incrementally prunes the versioned store from the
// periodic tick: a few shards per call, each holding only its own lock.
// The pass boundary is the oldest retained snapshot, clamped by the
// oldest snapshot an in-flight read executor is still serving, so
// off-loop reads never lose the versions under their feet (the
// linearizability argument is in DESIGN.md §5).
func (n *Node) pruneStoreStep() {
	if n.cfg.RetainBatches <= 0 {
		return
	}
	if n.pruneCursor == 0 {
		keep := n.oldestSnapshot
		if m := n.readers.minActive(); m >= 0 && m < keep {
			keep = m
		}
		// Versions visible at the stable checkpoint must survive: they
		// are what ExportAsOf serves to state-transferring peers.
		if n.stable != nil && n.stable.id < keep {
			keep = n.stable.id
		}
		if keep <= n.prunedThrough {
			return
		}
		n.pruneBoundary = keep
	}
	shards := n.st.ShardCount()
	for i := 0; i < pruneShardsPerStep && n.pruneCursor < shards; i++ {
		n.st.PruneShard(n.pruneCursor, n.pruneBoundary)
		n.pruneCursor++
	}
	if n.pruneCursor >= shards {
		n.pruneCursor = 0
		n.prunedThrough = n.pruneBoundary
	}
}

func reasonFor(d protocol.Decision) string {
	if d == protocol.DecisionCommit {
		return ""
	}
	return "2PC participant voted abort"
}

// releasePending drops a footprint from the leader's pending sets once the
// batch carrying it is durable.
func (n *Node) releasePending(reads []protocol.ReadEntry, writes []protocol.WriteOp) {
	for _, r := range reads {
		n.pendingReads.release(r.Key)
	}
	for _, w := range writes {
		n.pendingWrites.release(w.Key)
	}
}
