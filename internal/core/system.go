package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"transedge/internal/bft"
	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// SystemConfig describes a whole TransEdge deployment: a set of clusters
// (one per partition), each with 3f+1 replicas, connected by a simulated
// wide-area network.
type SystemConfig struct {
	Clusters int // number of partitions / clusters
	F        int // byzantine faults tolerated per cluster (n = 3f+1)
	Seed     uint64

	BatchInterval   time.Duration
	BatchMaxSize    int
	PipelineDepth   int           // in-flight batches per leader (default DefaultPipelineDepth)
	IntraLatency    time.Duration // replica-to-replica within a cluster
	InterLatency    time.Duration // cluster-to-cluster and client links
	FreshnessWindow time.Duration
	ROParkTimeout   time.Duration
	// DisableMultiProofRO restores per-key read-only proofs on every
	// replica (see NodeConfig.DisableMultiProofRO).
	DisableMultiProofRO bool
	RetainBatches       int
	StoreShards         int // versioned-store shard count (0 = store.DefaultShards)
	// Engine names every replica's storage backend, resolved through
	// the store engine registry ("" = store.DefaultEngine). Validate
	// with store.NewEngine before building a system: NewNode panics on
	// unknown names.
	Engine        string
	ReadExecutors int // off-loop read pool size per replica (0 = GOMAXPROCS)
	// CheckpointInterval spaces the stable checkpoints that bound every
	// replica's log window and anchor crash recovery (0 =
	// DefaultCheckpointInterval, negative disables).
	CheckpointInterval int
	// StateTransferTimeout bounds a syncing replica's wait for a
	// StateResponse before it retries another peer (0 = 1s).
	StateTransferTimeout time.Duration
	// ViewTimeout bounds each replica's wait for leader progress before
	// it votes a PBFT view change (0 disables leader failover).
	ViewTimeout time.Duration
	// DataDir enables the durability layer (DESIGN.md §8): each replica
	// gets <DataDir>/c<cluster>-r<replica> holding its WAL and persisted
	// checkpoints, and rebuilds from it on restart before asking peers.
	// Empty (the default) keeps the seed's in-memory-only semantics. The
	// genesis timestamp is persisted at <DataDir>/genesis.ts so a rebuilt
	// System reproduces the exact genesis header the on-disk chain hangs
	// off.
	DataDir string
	// WALSyncEvery is the group-commit width (0 = wal.DefaultSyncEvery,
	// wal.SyncNever disables fsync — the benchmarking mode).
	WALSyncEvery int
	// WALSyncInterval bounds the staleness of a partial commit group
	// (0 = wal.DefaultSyncInterval).
	WALSyncInterval time.Duration

	// InitialData is the global initial key space; each cluster loads the
	// subset the partitioner assigns to it.
	InitialData map[string][]byte

	// Byzantine assigns consensus-level fault behaviors to nodes.
	Byzantine map[NodeID]bft.Behavior
	// ROByzantine assigns read-only-path fault behaviors to nodes.
	ROByzantine map[NodeID]ROBehavior
}

func (c *SystemConfig) withDefaults() SystemConfig {
	out := *c
	if out.Clusters <= 0 {
		out.Clusters = 1
	}
	if out.F <= 0 {
		out.F = 1
	}
	if out.BatchInterval <= 0 {
		out.BatchInterval = time.Millisecond
	}
	if out.BatchMaxSize <= 0 {
		out.BatchMaxSize = 2000
	}
	if out.PipelineDepth <= 0 {
		out.PipelineDepth = DefaultPipelineDepth
	}
	if out.ROParkTimeout <= 0 {
		out.ROParkTimeout = 5 * time.Second
	}
	return out
}

// System is a running TransEdge deployment.
type System struct {
	Cfg  SystemConfig
	Net  *transport.Network
	Ring *cryptoutil.KeyRing
	Part protocol.Partitioner

	// mu guards nodes/nodeCfgs against concurrent replica restarts (the
	// recovery harness crashes and revives replicas while workers run).
	mu       sync.Mutex
	nodes    map[NodeID]*Node
	nodeCfgs map[NodeID]NodeConfig
}

// NewSystem builds all clusters, generates node identities, installs the
// trusted genesis (the initial data load, certified by every replica of
// each cluster), and wires the network. Call Start to launch event loops.
func NewSystem(cfg SystemConfig) *System {
	cfg = cfg.withDefaults()
	n := 3*cfg.F + 1
	part := protocol.Partitioner{N: int32(cfg.Clusters)}

	ring := cryptoutil.NewKeyRing()
	keys := make(map[NodeID]cryptoutil.KeyPair)
	for c := 0; c < cfg.Clusters; c++ {
		for r := 0; r < n; r++ {
			id := NodeID{Cluster: int32(c), Replica: int32(r)}
			kp := cryptoutil.DeriveKeyPair(id, cfg.Seed)
			keys[id] = kp
			ring.Add(id, kp.Public)
		}
	}

	net := transport.NewNetwork()
	net.SetLatency(transport.ClusterLatency(cfg.IntraLatency, cfg.InterLatency))

	// Split the initial data per cluster.
	perCluster := make([]map[string][]byte, cfg.Clusters)
	for c := range perCluster {
		perCluster[c] = make(map[string][]byte)
	}
	for k, v := range cfg.InitialData {
		perCluster[part.Of(k)][k] = v
	}

	sys := &System{Cfg: cfg, Net: net, Ring: ring, Part: part,
		nodes: make(map[NodeID]*Node), nodeCfgs: make(map[NodeID]NodeConfig)}
	genesisTime := genesisTimestamp(cfg.DataDir)
	for c := 0; c < cfg.Clusters; c++ {
		header, cert := genesis(int32(c), cfg.Clusters, perCluster[c], genesisTime, keys, n)
		for r := 0; r < n; r++ {
			id := NodeID{Cluster: int32(c), Replica: int32(r)}
			ncfg := NodeConfig{
				Cluster:              int32(c),
				Replica:              int32(r),
				Clusters:             cfg.Clusters,
				N:                    n,
				F:                    cfg.F,
				Keys:                 keys[id],
				Ring:                 ring,
				Net:                  net,
				Part:                 part,
				Behavior:             cfg.Byzantine[id],
				ROBehavior:           cfg.ROByzantine[id],
				BatchInterval:        cfg.BatchInterval,
				BatchMaxSize:         cfg.BatchMaxSize,
				PipelineDepth:        cfg.PipelineDepth,
				FreshnessWindow:      cfg.FreshnessWindow,
				ROParkTimeout:        cfg.ROParkTimeout,
				DisableMultiProofRO:  cfg.DisableMultiProofRO,
				RetainBatches:        cfg.RetainBatches,
				StoreShards:          cfg.StoreShards,
				EngineName:           cfg.Engine,
				ReadExecutors:        cfg.ReadExecutors,
				CheckpointInterval:   cfg.CheckpointInterval,
				StateTransferTimeout: cfg.StateTransferTimeout,
				ViewTimeout:          cfg.ViewTimeout,
				DataDir:              nodeDataDir(cfg.DataDir, int32(c), int32(r)),
				WALSyncEvery:         cfg.WALSyncEvery,
				WALSyncInterval:      cfg.WALSyncInterval,
				InitialData:          perCluster[c],
				GenesisHeader:        header,
				GenesisCert:          cert,
			}
			sys.nodeCfgs[id] = ncfg
			sys.nodes[id] = NewNode(ncfg)
		}
	}
	return sys
}

// StopReplica crashes one replica: its event loop stops and its mailbox
// is torn down, so every message sent while it is down is lost — exactly
// what a process crash implies. The rest of the cluster keeps committing
// as long as 2f+1 replicas remain.
func (s *System) StopReplica(id NodeID) {
	s.mu.Lock()
	node := s.nodes[id]
	s.mu.Unlock()
	if node == nil {
		return
	}
	node.Stop()
	s.Net.Deregister(id)
}

// RestartReplica rebuilds a crashed replica from its original
// configuration — fresh genesis state, empty mailbox — and starts it in
// recovery mode: it immediately requests a state transfer, installs the
// latest stable checkpoint, replays the suffix, and rejoins consensus.
func (s *System) RestartReplica(id NodeID) *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, ok := s.nodeCfgs[id]
	if !ok {
		return nil
	}
	cfg.Recovering = true
	node := NewNode(cfg)
	s.nodes[id] = node
	node.Start()
	return node
}

// nodeDataDir derives one replica's data directory (empty in = empty
// out: durability stays off without a DataDir).
func nodeDataDir(root string, cluster, replica int32) string {
	if root == "" {
		return ""
	}
	return filepath.Join(root, fmt.Sprintf("c%d-r%d", cluster, replica))
}

// genesisTimestamp returns the genesis wall-clock. With a DataDir the
// first system start persists it at <DataDir>/genesis.ts and every later
// start reuses it: the genesis header must be bit-identical across cold
// restarts or nothing persisted (which chains off that header's digest)
// would verify.
func genesisTimestamp(dataDir string) int64 {
	now := time.Now().UnixNano()
	if dataDir == "" {
		return now
	}
	path := filepath.Join(dataDir, "genesis.ts")
	if raw, err := os.ReadFile(path); err == nil {
		if ts, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64); err == nil {
			return ts
		}
	}
	if err := os.MkdirAll(dataDir, 0o755); err == nil {
		os.WriteFile(path, []byte(strconv.FormatInt(now, 10)), 0o644)
	}
	return now
}

// genesis builds the certified genesis batch of one cluster: batch 0
// holding the initial data's Merkle root, an empty-dependency CD vector,
// and LCE -1, signed by every replica (trusted setup, like the paper's
// permissioned cluster formation in Sec. 6.1).
func genesis(cluster int32, clusters int, data map[string][]byte, ts int64,
	keys map[NodeID]cryptoutil.KeyPair, n int) (protocol.BatchHeader, cryptoutil.Certificate) {

	tree := newTreeFor(data)
	cd := protocol.NewCDVector(clusters)
	cd[cluster] = 0
	b := &protocol.Batch{
		Cluster:    cluster,
		ID:         0,
		Timestamp:  ts,
		CD:         cd,
		LCE:        -1,
		MerkleRoot: tree.Root(),
	}
	header := b.Header()
	d := header.Digest()
	cert := cryptoutil.Certificate{Cluster: cluster}
	for r := 0; r < n; r++ {
		id := NodeID{Cluster: cluster, Replica: int32(r)}
		cert.Signatures = append(cert.Signatures, cryptoutil.SignCertificate(keys[id], id, d[:]))
	}
	return header, cert
}

// Start launches every replica's event loop.
func (s *System) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, node := range s.nodes {
		node.Start()
	}
}

// Stop shuts down all replicas and the network.
func (s *System) Stop() {
	s.mu.Lock()
	nodes := make([]*Node, 0, len(s.nodes))
	for _, node := range s.nodes {
		nodes = append(nodes, node)
	}
	s.mu.Unlock()
	for _, node := range nodes {
		node.Stop()
	}
	s.Net.Stop()
}

// Node returns a replica by identity (nil if absent); used by tests and
// the harness to read metrics.
func (s *System) Node(id NodeID) *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[id]
}

// Leader returns the current leader identity of a cluster: the leader of
// the highest view any of its live replicas runs in (replicas disagree
// only transiently, mid view change). With failover disabled this is
// always the view-0 leader.
func (s *System) Leader(cluster int32) NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 3*s.Cfg.F + 1
	var view uint64
	for r := 0; r < n; r++ {
		if node := s.nodes[NodeID{Cluster: cluster, Replica: int32(r)}]; node != nil {
			if v := node.CurrentView(); v > view {
				view = v
			}
		}
	}
	return NodeID{Cluster: cluster, Replica: int32(view % uint64(n))}
}

// ReplicasPerCluster returns the cluster size.
func (s *System) ReplicasPerCluster() int { return 3*s.Cfg.F + 1 }

// newTreeFor builds the Merkle tree of an initial data load in one bulk
// pass (initial loads are the largest tree builds in the system).
func newTreeFor(data map[string][]byte) *merkle.Tree {
	updates := make(map[string]merkle.Digest, len(data))
	for k, v := range data {
		updates[k] = merkle.HashValue(v)
	}
	return merkle.New().Apply(updates)
}

// NodeMetrics sums one metric across all replicas via the accessor. Node
// metrics are owned by each event loop; call this after Stop (or treat
// results as approximate while the system runs).
func (s *System) NodeMetrics(f func(*Metrics) int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, node := range s.nodes {
		total += f(&node.Metrics)
	}
	return total
}

// String describes the deployment.
func (s *System) String() string {
	return fmt.Sprintf("transedge: %d clusters x %d replicas (f=%d)",
		s.Cfg.Clusters, s.ReplicasPerCluster(), s.Cfg.F)
}
