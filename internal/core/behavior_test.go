package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/protocol"
	"transedge/internal/transport"
)

// TestCommitRequestViaFollowerIsForwarded: clients may contact any
// replica; followers forward commit requests to their leader (the paper's
// f+1-node submission strategy relies on this).
func TestCommitRequestViaFollowerIsForwarded(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	key := keysOn(sys, 0, 1)[0]

	replyTo := make(chan protocol.CommitReply, 1)
	txn := protocol.Transaction{
		ID:         protocol.MakeTxnID(77, 1),
		Writes:     []protocol.WriteOp{{Key: key, Value: []byte("via-follower")}},
		Partitions: []int32{0},
	}
	from := core.NodeID{Cluster: transport.ClientCluster, Replica: 77}
	sys.Net.Register(from)
	// Send to replica 2, not the leader.
	sys.Net.Send(from, core.NodeID{Cluster: 0, Replica: 2},
		&protocol.CommitRequest{Txn: txn, ReplyTo: replyTo})
	select {
	case r := <-replyTo:
		if r.Status != protocol.StatusCommitted {
			t.Fatalf("status = %v", r.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("forwarded commit never acknowledged")
	}
}

// TestPreparedKeysBlockConflictingTransactions exercises rule 3 of
// Def. 3.1 directly: while a distributed transaction is prepared but
// undecided (its decision delayed by a slow link), a local transaction
// touching its keys must abort rather than read or overwrite them.
func TestPreparedKeysBlockConflictingTransactions(t *testing.T) {
	sys := testSystem(t, 2, 1, 200)
	c := testClient(sys, 1)
	k0 := keysOn(sys, 0, 1)[0]
	k1 := keysOn(sys, 1, 1)[0]

	// Slow every inter-cluster leader link so the 2PC vote/decision for
	// the distributed transaction crawls, keeping it prepared for a
	// while.
	var mu sync.Mutex
	slow := false
	sys.Net.SetLatency(func(from, to transport.NodeID) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		if slow && from.Cluster != to.Cluster &&
			from.Cluster != transport.ClientCluster && to.Cluster != transport.ClientCluster {
			return 150 * time.Millisecond
		}
		return 0
	})

	// Launch the distributed transaction asynchronously (it will take
	// ~300ms+ to finish under the slowed links).
	mu.Lock()
	slow = true
	mu.Unlock()
	distDone := make(chan error, 1)
	go func() {
		d := testClient(sys, 2)
		txn := d.Begin()
		if _, err := txn.Read(k0); err != nil {
			distDone <- err
			return
		}
		if _, err := txn.Read(k1); err != nil {
			distDone <- err
			return
		}
		txn.Write(k0, []byte("dist"))
		txn.Write(k1, []byte("dist"))
		distDone <- txn.Commit()
	}()

	// Wait for the prepare to land at cluster 0 (prepare goes through the
	// local consensus quickly; only cross-cluster messages are slow).
	time.Sleep(60 * time.Millisecond)

	// A local transaction writing k0 must hit rule 3 and abort.
	local := c.Begin()
	if _, err := local.Read(k0); err != nil {
		t.Fatal(err)
	}
	local.Write(k0, []byte("local"))
	err := local.Commit()
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("local conflicting txn err = %v, want ErrAborted (rule 3)", err)
	}

	mu.Lock()
	slow = false
	mu.Unlock()
	if err := <-distDone; err != nil {
		t.Fatalf("distributed txn failed: %v", err)
	}
}

// TestPrepareGroupsCommitInOrder drives several distributed transactions
// through one coordinator and checks, via the exported log, that
// committed segments appear in prepare-batch order with monotonically
// increasing LCE values (Def. 4.1).
func TestPrepareGroupsCommitInOrder(t *testing.T) {
	sys := testSystem(t, 3, 1, 300)
	c := testClient(sys, 1)
	k0s := keysOn(sys, 0, 6)
	k1s := keysOn(sys, 1, 6)
	k2s := keysOn(sys, 2, 6)

	for i := 0; i < 6; i++ {
		txn := c.Begin()
		for _, k := range []string{k0s[i], k1s[i], k2s[i]} {
			if _, err := txn.Read(k); err != nil {
				t.Fatal(err)
			}
			txn.Write(k, []byte(fmt.Sprintf("v%d", i)))
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	time.Sleep(30 * time.Millisecond)

	for cl := int32(0); cl < 3; cl++ {
		rec := auditLog(t, sys, core.NodeID{Cluster: cl, Replica: 0})
		lastLCE := int64(-1)
		for i := range rec {
			h := rec[i].Header
			if h.LCE < lastLCE {
				t.Fatalf("cluster %d: LCE regressed %d -> %d at batch %d", cl, lastLCE, h.LCE, h.ID)
			}
			lastLCE = h.LCE
		}
		if lastLCE < 1 {
			t.Fatalf("cluster %d: no groups ever committed (LCE=%d)", cl, lastLCE)
		}
		if err := core.VerifyLog(sys.Ring, 3, rec); err != nil {
			t.Fatalf("cluster %d: %v", cl, err)
		}
	}
}

// TestParkedRequestExpires: a second-round request whose dependency never
// arrives must be answered with an error after ROParkTimeout, not held
// forever.
func TestParkedRequestExpires(t *testing.T) {
	sys := testSystem(t, 2, 1, 100, func(cfg *core.SystemConfig) {
		cfg.ROParkTimeout = 100 * time.Millisecond
		cfg.BatchInterval = 20 * time.Millisecond // ticks drive expiry
	})
	from := core.NodeID{Cluster: transport.ClientCluster, Replica: 55}
	sys.Net.Register(from)
	replyTo := make(chan protocol.ROReply, 1)
	// Ask for an LCE far beyond anything that will commit.
	sys.Net.Send(from, core.NodeID{Cluster: 0, Replica: 0}, &protocol.RORequest{
		Keys: keysOn(sys, 0, 1), AsOfLCE: 999999, ReplyTo: replyTo,
	})
	select {
	case r := <-replyTo:
		if r.Err == "" {
			t.Fatalf("expected an error reply, got batch %d", r.BatchID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked request never expired")
	}
}

// TestConcurrentDistributedCoordinators: transactions coordinated by
// different clusters at once (Sec. 3.3.5's multi-coordinator scenario)
// all commit and stay serializable.
func TestConcurrentDistributedCoordinators(t *testing.T) {
	sys := testSystem(t, 3, 1, 300)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testClient(sys, uint32(60+w)) // random coordinator choice per client
			a := keysOn(sys, int32(w%3), 8)[4+w]
			b := keysOn(sys, int32((w+1)%3), 8)[4+w]
			for i := 0; i < 3; i++ {
				txn := c.Begin()
				if _, err := txn.Read(a); err != nil {
					errs <- err
					return
				}
				if _, err := txn.Read(b); err != nil {
					errs <- err
					return
				}
				txn.Write(a, []byte(fmt.Sprintf("w%d-%d", w, i)))
				txn.Write(b, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err := txn.Commit(); err != nil && !errors.Is(err, client.ErrAborted) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMetricsAccounting: node metrics reflect the traffic that ran.
func TestMetricsAccounting(t *testing.T) {
	sys := testSystem(t, 2, 1, 100)
	c := testClient(sys, 1)
	key := keysOn(sys, 0, 1)[0]
	other := keysOn(sys, 1, 1)[0]

	txn := c.Begin()
	txn.Write(key, []byte("v"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	txn2 := c.Begin()
	if _, err := txn2.Read(key); err != nil {
		t.Fatal(err)
	}
	if _, err := txn2.Read(other); err != nil {
		t.Fatal(err)
	}
	txn2.Write(key, []byte("v2"))
	txn2.Write(other, []byte("v2"))
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadOnly([]string{key, other}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	sys.Stop()

	if got := sys.NodeMetrics(func(m *core.Metrics) int64 { return m.LocalCommitted }); got == 0 {
		t.Fatal("no local commits recorded")
	}
	if got := sys.NodeMetrics(func(m *core.Metrics) int64 { return m.DistCommitted }); got == 0 {
		t.Fatal("no distributed commits recorded")
	}
	if got := sys.NodeMetrics(func(m *core.Metrics) int64 { return m.ROServed }); got == 0 {
		t.Fatal("no read-only serves recorded")
	}
	if got := sys.NodeMetrics(func(m *core.Metrics) int64 { return m.BatchesCommitted }); got == 0 {
		t.Fatal("no batches recorded")
	}
}
