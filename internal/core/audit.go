package core

import (
	"errors"
	"fmt"

	"transedge/internal/cryptoutil"
	"transedge/internal/protocol"
)

// External log auditing: any party holding the system's key ring can ask
// a single (untrusted) replica for its certified log and verify offline
// that it is a well-formed TransEdge history — every batch certified by
// f+1 replicas, hash-chained to its predecessor, with monotone CD vectors
// and LCE numbers. This generalizes the paper's trust argument from
// single reads to whole histories and gives operators a cheap audit tool
// (cf. BlockchainDB's verification discussion, Sec. 6.3).

// LogRecord is one exported log entry: the certified batch header.
type LogRecord struct {
	Header protocol.BatchHeader
	Cert   cryptoutil.Certificate
}

// AuditRequest asks a replica for its certified log.
type AuditRequest struct {
	// FromBatch trims the response to entries with ID >= FromBatch.
	FromBatch int64
	ReplyTo   chan AuditReply
}

// AuditReply carries the exported log records in batch order.
type AuditReply struct {
	Cluster int32
	Records []LogRecord
}

// onAuditRequest exports the replica's retained log window (event-loop
// context). After checkpoint truncation the export — and therefore the
// audit — anchors at the window base instead of genesis; VerifyLog
// checks the chain from whichever record comes first.
func (n *Node) onAuditRequest(m *AuditRequest) {
	reply := AuditReply{Cluster: n.cfg.Cluster}
	n.log.each(func(e *logEntry) {
		if e.header.ID >= m.FromBatch {
			reply.Records = append(reply.Records, LogRecord{Header: e.header, Cert: e.cert})
		}
	})
	select {
	case m.ReplyTo <- reply:
	default:
	}
}

// Audit verification errors.
var (
	ErrAuditEmpty    = errors.New("core: audit log is empty")
	ErrAuditChain    = errors.New("core: audit log chain broken")
	ErrAuditCert     = errors.New("core: audit log certificate invalid")
	ErrAuditSegment  = errors.New("core: audit log read-only segment malformed")
	ErrAuditMonotone = errors.New("core: audit log metadata not monotone")
)

// VerifyLog checks an exported log against the key ring: sequential IDs,
// intact PrevDigest chain, a valid f+1 certificate on every entry, CD
// self-entries equal to batch IDs, and monotone CD vectors and LCE
// numbers. The first record anchors the audit (commonly genesis, batch 0).
func VerifyLog(ring *cryptoutil.KeyRing, clusters int, rec []LogRecord) error {
	if len(rec) == 0 {
		return ErrAuditEmpty
	}
	cluster := rec[0].Header.Cluster
	size := ring.ClusterSize(cluster)
	if size == 0 {
		return fmt.Errorf("%w: unknown cluster %d", ErrAuditCert, cluster)
	}
	threshold := (size-1)/3 + 1

	for i := range rec {
		h := &rec[i].Header
		if h.Cluster != cluster {
			return fmt.Errorf("%w: record %d from cluster %d", ErrAuditChain, i, h.Cluster)
		}
		if len(h.CD) != clusters {
			return fmt.Errorf("%w: record %d CD has %d entries, want %d", ErrAuditSegment, i, len(h.CD), clusters)
		}
		if h.CD[cluster] != h.ID {
			return fmt.Errorf("%w: record %d CD self entry %d != ID %d", ErrAuditSegment, i, h.CD[cluster], h.ID)
		}
		if h.LCE >= h.ID {
			return fmt.Errorf("%w: record %d LCE %d >= ID %d", ErrAuditSegment, i, h.LCE, h.ID)
		}
		d := h.Digest()
		if err := cryptoutil.VerifyCertificate(ring, rec[i].Cert, d[:], threshold); err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrAuditCert, i, err)
		}
		if i == 0 {
			continue
		}
		prev := &rec[i-1].Header
		if h.ID != prev.ID+1 {
			return fmt.Errorf("%w: record %d has ID %d after %d", ErrAuditChain, i, h.ID, prev.ID)
		}
		if h.PrevDigest != prev.Digest() {
			return fmt.Errorf("%w: record %d does not extend record %d", ErrAuditChain, i, i-1)
		}
		if h.LCE < prev.LCE {
			return fmt.Errorf("%w: LCE regressed %d -> %d at record %d", ErrAuditMonotone, prev.LCE, h.LCE, i)
		}
		for j := range h.CD {
			if h.CD[j] < prev.CD[j] {
				return fmt.Errorf("%w: CD[%d] regressed %d -> %d at record %d",
					ErrAuditMonotone, j, prev.CD[j], h.CD[j], i)
			}
		}
	}
	return nil
}
