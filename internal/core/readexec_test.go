package core

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestReadExecutorRunsTasks(t *testing.T) {
	p := newReadExecutor(2, 16)
	var ran atomic.Int64
	done := make(chan struct{}, 16)
	for i := 0; i < 10; i++ {
		ok := p.trySubmit(int64(i), func() {
			ran.Add(1)
			done <- struct{}{}
		})
		if !ok {
			t.Fatalf("submit %d refused with free queue", i)
		}
	}
	for i := 0; i < 10; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("task never ran")
		}
	}
	p.stop()
	if ran.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", ran.Load())
	}
	if m := p.minActive(); m != -1 {
		t.Fatalf("minActive after drain = %d, want -1", m)
	}
}

// TestReadExecutorNonBlockingWhenSaturated: trySubmit must refuse — not
// block — once the worker and queue are full, so the event loop can fall
// back to inline serving and consensus never waits on readers.
func TestReadExecutorNonBlockingWhenSaturated(t *testing.T) {
	p := newReadExecutor(1, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	p.trySubmit(7, func() { close(started); <-gate }) // occupies the worker
	<-started
	if !p.trySubmit(5, func() {}) {
		t.Fatal("queue slot submit refused")
	}
	refused := make(chan bool, 1)
	go func() { refused <- !p.trySubmit(3, func() {}) }()
	select {
	case r := <-refused:
		if !r {
			t.Fatal("submit to full pool accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trySubmit blocked on a full pool")
	}
	// The refused task's target must not stay pinned.
	if m := p.minActive(); m != 5 {
		t.Fatalf("minActive = %d, want 5 (refused target 3 unpinned)", m)
	}
	close(gate)
	p.stop()
}

// TestReadExecutorMinActiveTracksOldestSnapshot: pinned targets gate the
// store pruner; they must register at submit time and release on
// completion, with negative targets untracked.
func TestReadExecutorMinActiveTracksOldestSnapshot(t *testing.T) {
	p := newReadExecutor(1, 4)
	gate := make(chan struct{})
	started := make(chan struct{})
	p.trySubmit(9, func() { close(started); <-gate })
	<-started
	p.trySubmit(4, func() {})  // queued behind the blocked task
	p.trySubmit(-1, func() {}) // latest-state read: untracked
	if m := p.minActive(); m != 4 {
		t.Fatalf("minActive = %d, want 4", m)
	}
	close(gate)
	p.stop() // drains both tasks
	if m := p.minActive(); m != -1 {
		t.Fatalf("minActive after stop = %d, want -1", m)
	}
}
