package core

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"

	"transedge/internal/protocol"
	"transedge/internal/wal"
)

// Durability layer (DESIGN.md §8), active only when NodeConfig.DataDir is
// set. Two artifacts live under the data dir:
//
//	<datadir>/wal/         group-commit log of certified batches,
//	                       appended BEFORE delivery applies them
//	<datadir>/checkpoint/  the latest persisted stable checkpoint,
//	                       written atomically (temp + rename)
//
// Cold restart composes them: install the checkpoint (verified through
// the same certificate + Merkle chain as a peer state transfer — local
// disk is NOT trusted more than a byzantine peer), replay the WAL suffix
// through the state-transfer delivery path, then rejoin consensus at the
// recovered tip and view. Peer state transfer remains the fallback for
// whatever local disk lacks: the unsynced group-commit tail, and
// everything committed while the replica was down.

// checkpointFile is the checkpoint file name inside checkpointDir.
const checkpointFile = "checkpoint.bin"

func (n *Node) walDir() string        { return filepath.Join(n.cfg.DataDir, "wal") }
func (n *Node) checkpointDir() string { return filepath.Join(n.cfg.DataDir, "checkpoint") }

// openDurability recovers whatever the data dir holds and opens the WAL
// for appending. Called from Start before the event loop runs, so it may
// touch loop-confined state freely. Durability failures never stop a
// replica: a broken disk degrades it to the seed's in-memory behavior
// (peer transfer still recovers it) and counts a WALError.
func (n *Node) openDurability() {
	if n.cfg.DataDir == "" {
		return
	}
	recoveredView, hadCheckpoint := n.loadDurableCheckpoint()

	// Replay the WAL suffix while scanning the log open. Replay uses the
	// exact state-transfer path — chain check, f+1 certificate, then
	// onDeliver — so a corrupted or forged record cannot get further here
	// than it would coming from a byzantine peer. A record that fails to
	// decode, chain, or verify truncates the log at that point (the
	// crashed append it almost certainly is), together with everything
	// after it.
	n.replaying, n.walReplay = true, true
	replayed := int64(0)
	w, err := wal.Open(wal.Options{
		Dir:          n.walDir(),
		SyncEvery:    n.cfg.WALSyncEvery,
		SyncInterval: n.cfg.WALSyncInterval,
	}, func(id int64, payload []byte) bool {
		if id <= n.lastBatchID() {
			return true // at or below the checkpoint: already covered by it
		}
		cb, err := protocol.DecodeCertifiedBatch(payload)
		if err != nil {
			return false
		}
		if err := n.replayCertified(*cb); err != nil {
			return false
		}
		replayed++
		return true
	})
	n.replaying, n.walReplay = false, false
	if err != nil {
		n.Metrics.WALErrors++
	} else {
		n.wal = w
		n.walHandle.Store(w)
	}
	n.Metrics.WALReplayed += replayed
	if !hadCheckpoint && replayed == 0 {
		return // nothing recovered: a genuinely fresh start
	}

	// Rejoin consensus at the recovered tip, exactly like the end of a
	// peer state transfer, and at the view the checkpoint recorded (the
	// cluster can only have moved forward from there; if it did, the
	// recovering sync's StateResponse.View adoption closes the rest).
	n.rollbackSpec(0)
	tip := n.log.last()
	n.consensus.Reset(n.log.lastID(), tip.digest, tip.header, tip.cert)
	n.consensus.AdoptView(recoveredView)
	n.Metrics.ColdRestarts++
}

// loadDurableCheckpoint reads, verifies, and installs the persisted
// stable checkpoint. Any damage — short file, CRC mismatch, decode error,
// failed certificate or Merkle verification — makes recovery proceed
// without it (the WAL from genesis, or a peer, still applies).
func (n *Node) loadDurableCheckpoint() (view uint64, ok bool) {
	raw, err := os.ReadFile(filepath.Join(n.checkpointDir(), checkpointFile))
	if err != nil || len(raw) < 4 {
		return 0, false
	}
	if binary.BigEndian.Uint32(raw[:4]) != crc32.ChecksumIEEE(raw[4:]) {
		return 0, false
	}
	c, err := protocol.DecodeDurableCheckpoint(raw[4:])
	if err != nil || c.Cluster != n.cfg.Cluster || c.CheckpointID <= n.lastBatchID() {
		return 0, false
	}
	if err := n.installCheckpointParts(c.CheckpointID, c.Header, c.HeaderCert,
		c.Cert, c.Entries, c.Groups); err != nil {
		return 0, false
	}
	n.persistedChk = c.CheckpointID
	return c.View, true
}

// persistCheckpoint atomically writes a stable checkpoint to disk and
// truncates the WAL below it (the checkpoint supersedes that prefix).
// Write-temp-then-rename keeps a crash at any instant recoverable: the
// old checkpoint file survives until the new one is fully on disk.
func (n *Node) persistCheckpoint(cs *checkpointState) {
	if n.cfg.DataDir == "" || cs == nil || !cs.stable || cs.id <= n.persistedChk {
		return
	}
	c := &protocol.DurableCheckpoint{
		Cluster:      n.cfg.Cluster,
		CheckpointID: cs.id,
		View:         n.consensus.CurrentView(),
		Header:       cs.header,
		HeaderCert:   cs.headerCert,
		Cert:         cs.cert,
		Entries:      cs.entries,
		Groups:       cs.groups,
	}
	payload := protocol.EncodeDurableCheckpoint(c)
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], crc32.ChecksumIEEE(payload))
	copy(buf[4:], payload)
	if err := atomicWrite(n.checkpointDir(), checkpointFile, buf); err != nil {
		n.Metrics.WALErrors++
		return // WAL keeps the full history; recovery just replays more
	}
	n.persistedChk = cs.id
	n.Metrics.CheckpointsPersisted++
	if n.wal != nil {
		if err := n.wal.Truncate(cs.id + 1); err != nil {
			n.dropWAL()
		}
	}
}

// atomicWrite lands data at dir/name via a temp file, fsync, and rename,
// then fsyncs the directory so the rename itself is durable.
func atomicWrite(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// walAppend logs one certified batch ahead of its delivery. Failures
// degrade the replica to in-memory operation rather than halting it.
// Suppressed while the WAL itself is being replayed (the records are
// already on disk); peer state-transfer suffixes DO append — they are
// deliveries this replica would otherwise lose again on the next crash.
func (n *Node) walAppend(cb *protocol.CertifiedBatch) {
	if n.wal == nil || n.walReplay {
		return
	}
	if err := n.wal.Append(cb.Batch.ID, protocol.EncodeCertifiedBatch(cb)); err != nil {
		n.dropWAL()
		return
	}
	n.Metrics.WALAppended++
}

// walMaybeSync flushes an aged-out partial commit group from the tick.
func (n *Node) walMaybeSync() {
	if n.wal == nil {
		return
	}
	if err := n.wal.MaybeSync(); err != nil {
		n.dropWAL()
	}
}

// dropWAL abandons a failed log: close without flushing, count the error,
// keep serving. The replica re-acquires durability on its next restart.
func (n *Node) dropWAL() {
	n.Metrics.WALErrors++
	if n.wal != nil {
		n.wal.Close()
		n.wal = nil
		n.walHandle.Store(nil)
	}
}

// closeWAL is the graceful-shutdown close (final flush included).
func (n *Node) closeWAL() {
	if n.wal != nil {
		n.wal.Close()
		n.wal = nil
		n.walHandle.Store(nil)
	}
}

// WAL exposes the node's write-ahead log for crash-injection tests (nil
// without a DataDir, or after the log died). Only the Log's crash hooks
// and Crashed are safe to touch while the node runs; everything else is
// owned by the event loop.
func (n *Node) WAL() *wal.Log { return n.walHandle.Load() }
