package protocol

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"transedge/internal/merkle"
)

// proofTestTree builds a deterministic tree plus its key/value bindings.
func proofTestTree(n int, seed int64) (*merkle.Tree, [][]byte, map[string][]byte) {
	rng := rand.New(rand.NewSource(seed))
	tr := merkle.New()
	keys := make([][]byte, 0, n)
	vals := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("pk-%06d-%d", i, rng.Intn(100)))
		v := []byte(fmt.Sprintf("pv-%d", i))
		keys = append(keys, k)
		vals[string(k)] = v
		tr = tr.Insert(k, merkle.HashValue(v))
	}
	return tr, keys, vals
}

func TestMultiProofCodecRoundTrip(t *testing.T) {
	tr, keys, vals := proofTestTree(200, 11)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(16)
		query := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				query = append(query, []byte(fmt.Sprintf("gone-%d-%d", trial, i)))
			} else {
				query = append(query, keys[rng.Intn(len(keys))])
			}
		}
		mp, err := tr.ProveMulti(query)
		if err != nil {
			t.Fatal(err)
		}
		blob := EncodeMultiProof(&mp)
		back, err := DecodeMultiProof(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got := EncodeMultiProof(back); !bytes.Equal(got, blob) {
			t.Fatal("re-encode differs")
		}
		// The decoded proof must still verify the honest answers.
		answers := make([]merkle.KeyAnswer, 0, len(query))
		for _, k := range query {
			if v, ok := vals[string(k)]; ok {
				answers = append(answers, merkle.KeyAnswer{Key: k, Value: v, Found: true})
			} else {
				answers = append(answers, merkle.KeyAnswer{Key: k, Found: false})
			}
		}
		if err := merkle.VerifyMulti(tr.Root(), answers, *back); err != nil {
			t.Fatalf("decoded proof rejected: %v", err)
		}
		// Truncations must error, never panic.
		for cut := 0; cut < len(blob); cut += 1 + len(blob)/7 {
			if _, err := DecodeMultiProof(blob[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	}
}

func TestSingleProofCodecRoundTrip(t *testing.T) {
	tr, keys, _ := proofTestTree(64, 13)
	p, _, err := tr.Prove(keys[7])
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeProof(&p)
	back, err := DecodeProof(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeProof(back); !bytes.Equal(got, blob) {
		t.Fatal("proof re-encode differs")
	}
	ap, err := tr.ProveAbsent([]byte("definitely-not-there"))
	if err != nil {
		t.Fatal(err)
	}
	ablob := EncodeAbsenceProof(&ap)
	aback, err := DecodeAbsenceProof(ablob)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeAbsenceProof(aback); !bytes.Equal(got, ablob) {
		t.Fatal("absence re-encode differs")
	}
	if _, err := DecodeProof(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated proof accepted")
	}
	if _, err := DecodeAbsenceProof(ablob[:5]); err == nil {
		t.Fatal("truncated absence proof accepted")
	}
}

// TestMultiProofBytesProperty: the encoded multi-proof is strictly smaller
// than the sum of the N independent proof encodings it replaces — shared
// path levels are shipped once, and membership leaves ship no digests at
// all (the verifier recomputes them from the served answers).
func TestMultiProofBytesProperty(t *testing.T) {
	tr, keys, _ := proofTestTree(1000, 14)
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(32)
		seen := map[string]bool{}
		query := make([][]byte, 0, n)
		for len(query) < n {
			var k []byte
			if rng.Intn(5) == 0 {
				k = []byte(fmt.Sprintf("void-%d-%d", trial, len(query)))
			} else {
				k = keys[rng.Intn(len(keys))]
			}
			if !seen[string(k)] {
				seen[string(k)] = true
				query = append(query, k)
			}
		}
		mp, err := tr.ProveMulti(query)
		if err != nil {
			t.Fatal(err)
		}
		multiBytes := len(EncodeMultiProof(&mp))
		singleBytes := 0
		for _, k := range query {
			if p, _, err := tr.Prove(k); err == nil {
				singleBytes += len(EncodeProof(&p))
			} else {
				ap, err := tr.ProveAbsent(k)
				if err != nil {
					t.Fatal(err)
				}
				singleBytes += len(EncodeAbsenceProof(&ap))
			}
		}
		if multiBytes >= singleBytes {
			t.Fatalf("n=%d: multi-proof %dB not smaller than %dB of independent proofs", n, multiBytes, singleBytes)
		}
	}
}

func FuzzDecodeMultiProof(f *testing.F) {
	tr, keys, _ := proofTestTree(50, 16)
	for n := 1; n <= 16; n *= 4 {
		query := make([][]byte, 0, n+1)
		for i := 0; i < n; i++ {
			query = append(query, keys[i*3%len(keys)])
		}
		query = append(query, []byte("hole"))
		mp, err := tr.ProveMulti(query)
		if err != nil {
			f.Fatal(err)
		}
		blob := EncodeMultiProof(&mp)
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		flipped := append([]byte(nil), blob...)
		flipped[len(flipped)/3] ^= 0x20
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeMultiProof(data)
		if err == nil {
			if got := EncodeMultiProof(p); !bytes.Equal(got, data) {
				t.Fatal("accepted multi-proof encoding is not canonical")
			}
		}
	})
}

func FuzzDecodeProof(f *testing.F) {
	tr, keys, _ := proofTestTree(50, 17)
	p, _, err := tr.Prove(keys[0])
	if err != nil {
		f.Fatal(err)
	}
	blob := EncodeProof(&p)
	ap, err := tr.ProveAbsent([]byte("hole"))
	if err != nil {
		f.Fatal(err)
	}
	ablob := EncodeAbsenceProof(&ap)
	f.Add(blob)
	f.Add(ablob)
	f.Add(blob[:len(blob)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := DecodeProof(data); err == nil {
			if got := EncodeProof(p); !bytes.Equal(got, data) {
				t.Fatal("accepted proof encoding is not canonical")
			}
		}
		if ap, err := DecodeAbsenceProof(data); err == nil {
			if got := EncodeAbsenceProof(ap); !bytes.Equal(got, data) {
				t.Fatal("accepted absence encoding is not canonical")
			}
		}
	})
}
