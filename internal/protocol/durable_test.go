package protocol

import (
	"bytes"
	"testing"

	"transedge/internal/cryptoutil"
)

// testBatch builds a batch with every segment populated, so the codec
// tests cover all of the on-disk encoding's paths.
func testBatch() *Batch {
	b := &Batch{
		Cluster:    2,
		ID:         41,
		PrevDigest: Digest{1, 2, 3},
		Timestamp:  1234567890,
		CD:         CDVector{7, -1, 41},
		LCE:        5,
		MerkleRoot: Digest{9, 8, 7},
	}
	b.Local = append(b.Local, Transaction{
		ID:         MakeTxnID(3, 17),
		Reads:      []ReadEntry{{Key: "r1", Version: 4}, {Key: "r2", Version: 0}},
		Writes:     []WriteOp{{Key: "w1", Value: []byte("v1")}, {Key: "w2", Value: nil}},
		Partitions: []int32{2},
	})
	b.Prepared = append(b.Prepared, PrepareRecord{
		Txn: Transaction{
			ID:         MakeTxnID(4, 18),
			Reads:      []ReadEntry{{Key: "pr", Version: 9}},
			Writes:     []WriteOp{{Key: "pw", Value: []byte("pv")}},
			Partitions: []int32{0, 2},
		},
		CoordCluster: 0,
	})
	b.Committed = append(b.Committed, CommitRecord{
		Txn: Transaction{
			ID:         MakeTxnID(5, 19),
			Writes:     []WriteOp{{Key: "cw", Value: []byte("cv")}},
			Partitions: []int32{1, 2},
		},
		Decision:    DecisionCommit,
		ReportedCDs: []CDVector{{1, 2, 3}, {4, 5, 6}},
	})
	return b
}

// testCert builds a real f+1 certificate over msg, so codec round-trips
// can be checked with actual signature verification.
func testCert(t *testing.T, cluster int32, msg []byte) (cryptoutil.Certificate, *cryptoutil.KeyRing) {
	t.Helper()
	ring := cryptoutil.NewKeyRing()
	cert := cryptoutil.Certificate{Cluster: cluster}
	for r := int32(0); r < 3; r++ {
		id := cryptoutil.NodeID{Cluster: cluster, Replica: r}
		kp := cryptoutil.DeriveKeyPair(id, 7)
		ring.Add(id, kp.Public)
		cert.Signatures = append(cert.Signatures, cryptoutil.SignCertificate(kp, id, msg))
	}
	return cert, ring
}

func TestBatchCodecRoundTrip(t *testing.T) {
	orig := testBatch().Seal()
	buf := EncodeBatch(orig)
	got, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Digest equality is the property recovery depends on: the decoded
	// batch must reproduce the digest the certificate signs.
	if got.Digest() != orig.Digest() {
		t.Fatal("digest changed across the on-disk round trip")
	}
	if got.ID != orig.ID || got.Cluster != orig.Cluster || got.LCE != orig.LCE {
		t.Fatal("scalar fields changed across the round trip")
	}
	if len(got.Local) != 1 || len(got.Prepared) != 1 || len(got.Committed) != 1 {
		t.Fatal("segments changed across the round trip")
	}
	if got.Local[0].Writes[0].Key != "w1" || string(got.Local[0].Writes[0].Value) != "v1" {
		t.Fatal("local writes changed across the round trip")
	}
	if len(got.Committed[0].ReportedCDs) != 2 || got.Committed[0].ReportedCDs[1][2] != 6 {
		t.Fatal("reported CDs changed across the round trip")
	}
}

func TestCertifiedBatchRoundTripVerifies(t *testing.T) {
	b := testBatch().Seal()
	d := b.Digest()
	cert, ring := testCert(t, b.Cluster, d[:])
	buf := EncodeCertifiedBatch(&CertifiedBatch{Batch: b, Cert: cert})

	got, err := DecodeCertifiedBatch(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	gd := got.Batch.Digest()
	if gd != d {
		t.Fatal("digest changed across the round trip")
	}
	// The decoded certificate still verifies against the recomputed
	// digest — the exact check recovery performs on every WAL record.
	if err := cryptoutil.VerifyCertificate(ring, got.Cert, gd[:], 2); err != nil {
		t.Fatalf("certificate no longer verifies: %v", err)
	}
}

func TestDurableCheckpointRoundTrip(t *testing.T) {
	b := testBatch().Seal()
	header := b.Header()
	hd := header.Digest()
	headerCert, _ := testCert(t, b.Cluster, hd[:])
	cert, _ := testCert(t, b.Cluster, []byte("state-digest"))
	orig := &DurableCheckpoint{
		Cluster:      b.Cluster,
		CheckpointID: b.ID,
		View:         3,
		Header:       b.Header(),
		HeaderCert:   headerCert,
		Cert:         cert,
		Entries: []SnapshotEntry{
			{Key: "a", Value: []byte("1"), Writer: 10},
			{Key: "b", Value: nil, Writer: 12},
		},
		Groups: []CheckpointGroup{{
			PrepareBatch: 39,
			Recs: []PrepareRecord{{
				Txn:          Transaction{ID: MakeTxnID(9, 9), Partitions: []int32{0, 2}},
				CoordCluster: 0,
			}},
		}},
	}
	buf := EncodeDurableCheckpoint(orig)
	got, err := DecodeDurableCheckpoint(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Cluster != orig.Cluster || got.CheckpointID != orig.CheckpointID || got.View != orig.View {
		t.Fatal("scalar fields changed across the round trip")
	}
	if got.Header.Digest() != orig.Header.Digest() {
		t.Fatal("header digest changed across the round trip")
	}
	if len(got.Entries) != 2 || got.Entries[0].Key != "a" || got.Entries[1].Writer != 12 {
		t.Fatal("entries changed across the round trip")
	}
	if len(got.Groups) != 1 || got.Groups[0].PrepareBatch != 39 || len(got.Groups[0].Recs) != 1 {
		t.Fatal("groups changed across the round trip")
	}
	if len(got.Cert.Signatures) != 3 || !bytes.Equal(
		got.Cert.Signatures[0].Sig, orig.Cert.Signatures[0].Sig) {
		t.Fatal("certificate changed across the round trip")
	}
}

// TestDecodersRejectEveryTruncation: for each on-disk codec, every strict
// prefix of a valid encoding must fail with an error — never panic, never
// succeed with partial data.
func TestDecodersRejectEveryTruncation(t *testing.T) {
	b := testBatch().Seal()
	d := b.Digest()
	cert, _ := testCert(t, b.Cluster, d[:])
	chk := &DurableCheckpoint{Cluster: b.Cluster, CheckpointID: b.ID, Header: b.Header(),
		HeaderCert: cert, Cert: cert, Entries: []SnapshotEntry{{Key: "k", Value: []byte("v")}}}

	cases := []struct {
		name   string
		buf    []byte
		decode func([]byte) error
	}{
		{"batch", EncodeBatch(b), func(x []byte) error { _, err := DecodeBatch(x); return err }},
		{"certified", EncodeCertifiedBatch(&CertifiedBatch{Batch: b, Cert: cert}),
			func(x []byte) error { _, err := DecodeCertifiedBatch(x); return err }},
		{"checkpoint", EncodeDurableCheckpoint(chk),
			func(x []byte) error { _, err := DecodeDurableCheckpoint(x); return err }},
		{"certificate", EncodeCertificate(&cert),
			func(x []byte) error { _, err := DecodeCertificate(x); return err }},
	}
	for _, tc := range cases {
		for cut := 0; cut < len(tc.buf); cut++ {
			if err := tc.decode(tc.buf[:cut]); err == nil {
				t.Fatalf("%s: decoding a %d/%d-byte prefix succeeded", tc.name, cut, len(tc.buf))
			}
		}
		// Trailing garbage must be rejected too.
		if err := tc.decode(append(append([]byte(nil), tc.buf...), 0xff)); err == nil {
			t.Fatalf("%s: decoding with a trailing byte succeeded", tc.name)
		}
	}
}

func TestDecodeBatchRejectsUnknownVersion(t *testing.T) {
	buf := EncodeBatch(testBatch().Seal())
	buf[0] = 99 // future codec version
	if _, err := DecodeBatch(buf); err == nil {
		t.Fatal("unknown codec version accepted")
	}
}
