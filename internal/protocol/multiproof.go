package protocol

import (
	"fmt"

	"transedge/internal/merkle"
)

// Canonical codecs for the Merkle proof types the read-only protocol
// ships. The in-process transport passes proofs as Go values, so these
// encodings serve measurement (proof bytes per request are a first-class
// metric of the client-scale harness), durability-style tooling, and the
// fuzzers that pin the decoders' crash-safety.
//
// The multi-proof encoding is self-delimiting: the preorder structure
// determines exactly how many nodes follow, so no count prefix is needed
// and one key's multi-proof costs no more bytes than its single proof
// (one (bit, sibling) pair per level either way).

// Proof codec version tags.
const (
	proofCodecVersion      = 1
	multiProofCodecVersion = 1
)

// EncodeProof returns the canonical encoding of a membership proof.
func EncodeProof(p *merkle.Proof) []byte {
	e := enc{b: make([]byte, 0, 5+34*len(p.Steps))}
	e.u8(proofCodecVersion)
	e.u32(uint32(len(p.Steps)))
	for _, s := range p.Steps {
		e.u8(uint8(s.Bit >> 8))
		e.u8(uint8(s.Bit))
		e.digest(s.Sibling)
	}
	return e.b
}

// DecodeProof parses a canonical membership proof encoding.
func DecodeProof(b []byte) (*merkle.Proof, error) {
	d := dec{b: b}
	if v := d.u8(); d.err == nil && v != proofCodecVersion {
		return nil, fmt.Errorf("protocol: proof codec version %d unsupported", v)
	}
	n := d.u32()
	if d.err == nil && uint64(n)*34 > uint64(len(d.b)) {
		return nil, errDecShort
	}
	p := &merkle.Proof{}
	for i := uint32(0); i < n && d.err == nil; i++ {
		hi, lo := d.u8(), d.u8()
		p.Steps = append(p.Steps, merkle.ProofStep{
			Bit:     int16(hi)<<8 | int16(lo),
			Sibling: d.digest(),
		})
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeAbsenceProof returns the canonical encoding of an absence proof.
func EncodeAbsenceProof(p *merkle.AbsenceProof) []byte {
	e := enc{b: make([]byte, 0, 69+34*len(p.Steps))}
	e.u8(proofCodecVersion)
	e.u32(uint32(len(p.Steps)))
	for _, s := range p.Steps {
		e.u8(uint8(s.Bit >> 8))
		e.u8(uint8(s.Bit))
		e.digest(s.Sibling)
	}
	e.digest(p.LeafKeyHash)
	e.digest(p.LeafValHash)
	return e.b
}

// DecodeAbsenceProof parses a canonical absence proof encoding.
func DecodeAbsenceProof(b []byte) (*merkle.AbsenceProof, error) {
	d := dec{b: b}
	if v := d.u8(); d.err == nil && v != proofCodecVersion {
		return nil, fmt.Errorf("protocol: proof codec version %d unsupported", v)
	}
	n := d.u32()
	if d.err == nil && uint64(n)*34 > uint64(len(d.b)) {
		return nil, errDecShort
	}
	p := &merkle.AbsenceProof{}
	for i := uint32(0); i < n && d.err == nil; i++ {
		hi, lo := d.u8(), d.u8()
		p.Steps = append(p.Steps, merkle.ProofStep{
			Bit:     int16(hi)<<8 | int16(lo),
			Sibling: d.digest(),
		})
	}
	p.LeafKeyHash = d.digest()
	p.LeafValHash = d.digest()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeMultiProof returns the canonical encoding of a multi-proof: the
// version byte followed by the preorder node stream. Crit bits fit one
// byte (keys are 256-bit hashes), so an inner node with one pruned child —
// the common case, one per path level — costs 34 bytes, the same as a
// single ProofStep.
func EncodeMultiProof(p *merkle.MultiProof) []byte {
	e := enc{b: make([]byte, 0, 1+34*len(p.Nodes))}
	e.u8(multiProofCodecVersion)
	for _, nd := range p.Nodes {
		e.u8(nd.Kind)
		switch nd.Kind {
		case merkle.MultiInner:
			e.u8(uint8(nd.Bit))
		case merkle.MultiPrunedLeft, merkle.MultiPrunedRight:
			e.u8(uint8(nd.Bit))
			e.digest(nd.Sibling)
		case merkle.MultiLeafRef:
		case merkle.MultiLeafOther:
			e.digest(nd.KeyHash)
			e.digest(nd.ValHash)
		}
	}
	return e.b
}

// DecodeMultiProof parses a canonical multi-proof encoding. The stream is
// self-delimiting: decoding walks the preorder structure, enforcing the
// strict crit-bit ordering (which also bounds recursion depth to the
// 256-bit key length), and rejects trailing bytes. The empty proof (the
// empty tree's) encodes to just the version byte.
func DecodeMultiProof(b []byte) (*merkle.MultiProof, error) {
	d := dec{b: b}
	if v := d.u8(); d.err == nil && v != multiProofCodecVersion {
		return nil, fmt.Errorf("protocol: multi-proof codec version %d unsupported", v)
	}
	p := &merkle.MultiProof{}
	if d.err == nil && len(d.b) > 0 {
		decodeMultiSubtree(&d, p, 0)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeMultiSubtree consumes one subtree in preorder, appending its nodes
// to p. minBit enforces the strictly-increasing crit-bit invariant.
func decodeMultiSubtree(d *dec, p *merkle.MultiProof, minBit int16) {
	if d.err != nil {
		return
	}
	kind := d.u8()
	switch kind {
	case merkle.MultiLeafRef:
		p.Nodes = append(p.Nodes, merkle.MultiNode{Kind: kind})
	case merkle.MultiLeafOther:
		p.Nodes = append(p.Nodes, merkle.MultiNode{Kind: kind, KeyHash: d.digest(), ValHash: d.digest()})
	case merkle.MultiInner:
		bit := int16(d.u8())
		if d.err == nil && bit < minBit {
			d.err = fmt.Errorf("protocol: multi-proof crit bit %d out of order", bit)
			return
		}
		p.Nodes = append(p.Nodes, merkle.MultiNode{Kind: kind, Bit: bit})
		decodeMultiSubtree(d, p, bit+1)
		decodeMultiSubtree(d, p, bit+1)
	case merkle.MultiPrunedLeft, merkle.MultiPrunedRight:
		bit := int16(d.u8())
		if d.err == nil && bit < minBit {
			d.err = fmt.Errorf("protocol: multi-proof crit bit %d out of order", bit)
			return
		}
		p.Nodes = append(p.Nodes, merkle.MultiNode{Kind: kind, Bit: bit, Sibling: d.digest()})
		decodeMultiSubtree(d, p, bit+1)
	default:
		if d.err == nil {
			d.err = fmt.Errorf("protocol: unknown multi-proof node kind %d", kind)
		}
	}
}
