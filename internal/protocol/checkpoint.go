package protocol

import (
	"errors"
	"fmt"

	"transedge/internal/cryptoutil"
)

// Checkpointing and state transfer (PBFT-style stable checkpoints over
// the SMR log; DESIGN.md §6).
//
// Every CheckpointInterval batches each replica derives a checkpoint
// digest from its post-delivery state — the certified batch header (which
// commits to the Merkle root over all values), the writer batch of every
// live key, and the open prepare groups — signs it, and broadcasts a
// Checkpoint vote to its cluster. 2f+1 matching votes form a *stable
// checkpoint*: proof that a quorum holds this exact state, which lets
// every replica truncate log entries below it and lets a lagging or
// restarted replica install the state wholesale from a single untrusted
// peer (verifying everything against the checkpoint certificate).

// Checkpoint is one replica's signed checkpoint vote, broadcast within
// the cluster after delivering a checkpoint-interval batch. Sig is the
// replica's Ed25519 signature over StateDigest, so 2f+1 collected votes
// double as a relayable certificate.
type Checkpoint struct {
	Cluster     int32
	BatchID     int64
	StateDigest Digest
	Replica     int32
	Sig         []byte
}

// StateRequest asks a cluster peer for its latest stable checkpoint and
// the delivered log suffix above it. HaveBatch is the newest batch the
// requester already holds, so the responder can trim the suffix.
type StateRequest struct {
	From      cryptoutil.NodeID
	HaveBatch int64
}

// SnapshotEntry is one key's state in an exported store snapshot: the
// value visible at the checkpoint batch and the batch that wrote it (the
// writer feeds OCC validation after install, so it is covered by the
// snapshot digest; the value is authenticated separately through the
// checkpoint header's Merkle root).
type SnapshotEntry struct {
	Key    string
	Value  []byte
	Writer int64
}

// CheckpointGroup is one open prepare group at the checkpoint: the batch
// that opened it and its prepare records, in batch order. A joining
// replica rebuilds the prepared-footprint reservations and the group
// queue from these.
type CheckpointGroup struct {
	PrepareBatch int64
	Recs         []PrepareRecord
}

// StateResponse carries everything a replica needs to install a stable
// checkpoint and replay the delivered suffix:
//
//   - the checkpoint batch header with its f+1 consensus certificate
//     (authenticates the Merkle root, CD vector and LCE),
//   - the 2f+1 checkpoint certificate over the state digest
//     (authenticates the writers and open groups the header cannot),
//   - the full store snapshot at the checkpoint, and
//   - the certified batches delivered after it.
//
// An empty response (CheckpointID < 0) means the responder has no stable
// checkpoint yet; the requester retries after StateTransferTimeout.
type StateResponse struct {
	Cluster      int32
	CheckpointID int64
	// Tip is the responder's newest delivered batch. It distinguishes
	// "nothing newer than what you have" (Tip <= requester's tip) from
	// "newer history exists but is unservable right now" (bodies pruned
	// before the first stable checkpoint formed) — the requester keeps
	// retrying in the latter case instead of concluding it caught up.
	Tip        int64
	Header     BatchHeader
	HeaderCert cryptoutil.Certificate
	Cert       cryptoutil.Certificate // 2f+1 over the checkpoint state digest
	Entries    []SnapshotEntry        // sorted by key
	Groups     []CheckpointGroup      // ascending PrepareBatch
	Suffix     []CertifiedBatch       // delivered batches in (CheckpointID, tip]
	// View is the responder's current consensus view, so a replica that
	// recovers through state transfer rejoins at the view the cluster
	// actually runs in instead of view 0. Unauthenticated: a lying
	// responder can at worst cause a bounded liveness hiccup (DESIGN §7).
	View uint64
}

// SnapshotDigest hashes the (key, writer) pairs of a store snapshot.
// Entries must be sorted by key (the canonical export order); values are
// deliberately excluded — they are already committed to by the checkpoint
// header's Merkle root, so hashing them again at every checkpoint would
// re-hash the whole database for nothing.
func SnapshotDigest(entries []SnapshotEntry) Digest {
	h := cryptoutil.NewConcatHasher()
	h.Part([]byte("snapshot"))
	e := getEnc()
	for i := range entries {
		e.b = e.b[:0]
		e.str(entries[i].Key)
		e.i64(entries[i].Writer)
		h.Part(e.b)
	}
	putEnc(e)
	return h.Sum()
}

// GroupsDigest hashes the open prepare groups of a checkpoint, covering
// the full prepare-record content so a state-transfer source cannot feed
// a joiner forged reservations.
func GroupsDigest(groups []CheckpointGroup) Digest {
	h := cryptoutil.NewConcatHasher()
	h.Part([]byte("groups"))
	e := getEnc()
	for i := range groups {
		e.b = e.b[:0]
		e.i64(groups[i].PrepareBatch)
		e.u32(uint32(len(groups[i].Recs)))
		for j := range groups[i].Recs {
			e.prepareRecord(&groups[i].Recs[j])
		}
		h.Part(e.b)
	}
	putEnc(e)
	return h.Sum()
}

// CheckpointDigest derives the signed checkpoint state digest: the batch
// position, the header digest (committing to the Merkle root and
// metadata), and the digests of the snapshot writers and open groups.
func CheckpointDigest(cluster int32, batchID int64, headerDigest, snapshotDigest, groupsDigest Digest) Digest {
	e := enc{b: make([]byte, 0, 24+12+3*32)}
	e.b = append(e.b, []byte("transedge-checkpoint-v1")...)
	e.i32(cluster)
	e.i64(batchID)
	e.digest(headerDigest)
	e.digest(snapshotDigest)
	e.digest(groupsDigest)
	return cryptoutil.Hash(e.b)
}

// ---- Canonical encoding round-trips ----
//
// The in-process transport ships Go values, but checkpoint votes and
// state requests are exactly the messages a wire transport would need
// first (they cross the trust boundary during recovery), so they get
// canonical encoders AND decoders, property-tested to round-trip.

// dec is the reading counterpart of enc: big-endian integers,
// length-prefixed bytes, with sticky error state.
type dec struct {
	b   []byte
	err error
}

var errDecShort = errors.New("protocol: encoding truncated")

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = errDecShort
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func (d *dec) i32() int32 { return int32(d.u32()) }
func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(d.b)) {
		d.err = errDecShort
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *dec) str() string { return string(d.bytes()) }

func (d *dec) digest() Digest {
	var out Digest
	b := d.take(len(out))
	if b != nil {
		copy(out[:], b)
	}
	return out
}

func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("protocol: %d trailing bytes after decode", len(d.b))
	}
	return nil
}

// EncodeCheckpoint returns the canonical encoding of c.
func EncodeCheckpoint(c *Checkpoint) []byte {
	e := enc{b: make([]byte, 0, 4+8+32+4+4+len(c.Sig))}
	e.i32(c.Cluster)
	e.i64(c.BatchID)
	e.digest(c.StateDigest)
	e.i32(c.Replica)
	e.bytes(c.Sig)
	return e.b
}

// DecodeCheckpoint parses a canonical Checkpoint encoding.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	d := dec{b: b}
	c := &Checkpoint{
		Cluster:     d.i32(),
		BatchID:     d.i64(),
		StateDigest: d.digest(),
		Replica:     d.i32(),
		Sig:         d.bytes(),
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// EncodeStateRequest returns the canonical encoding of r.
func EncodeStateRequest(r *StateRequest) []byte {
	e := enc{b: make([]byte, 0, 16)}
	e.i32(r.From.Cluster)
	e.i32(r.From.Replica)
	e.i64(r.HaveBatch)
	return e.b
}

// DecodeStateRequest parses a canonical StateRequest encoding.
func DecodeStateRequest(b []byte) (*StateRequest, error) {
	d := dec{b: b}
	r := &StateRequest{}
	r.From.Cluster = d.i32()
	r.From.Replica = d.i32()
	r.HaveBatch = d.i64()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeSnapshotEntry returns the canonical encoding of one snapshot
// entry (key, value, writer).
func EncodeSnapshotEntry(s *SnapshotEntry) []byte {
	e := enc{b: make([]byte, 0, 16+len(s.Key)+len(s.Value))}
	e.str(s.Key)
	e.bytes(s.Value)
	e.i64(s.Writer)
	return e.b
}

// DecodeSnapshotEntry parses a canonical SnapshotEntry encoding.
func DecodeSnapshotEntry(b []byte) (*SnapshotEntry, error) {
	d := dec{b: b}
	s := &SnapshotEntry{Key: d.str(), Value: d.bytes(), Writer: d.i64()}
	if err := d.finish(); err != nil {
		return nil, err
	}
	if len(s.Value) == 0 {
		s.Value = nil
	}
	return s, nil
}

// EncodeCheckpointGroup returns the canonical encoding of one open
// prepare group.
func EncodeCheckpointGroup(g *CheckpointGroup) []byte {
	var e enc
	e.i64(g.PrepareBatch)
	e.u32(uint32(len(g.Recs)))
	for i := range g.Recs {
		e.prepareRecord(&g.Recs[i])
	}
	return e.b
}

// DecodeCheckpointGroup parses a canonical CheckpointGroup encoding.
func DecodeCheckpointGroup(b []byte) (*CheckpointGroup, error) {
	d := dec{b: b}
	g := &CheckpointGroup{PrepareBatch: d.i64()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		g.Recs = append(g.Recs, d.prepareRecord())
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// txn parses a canonical Transaction encoding (the decoder mirror of
// enc.txn).
func (d *dec) txn() Transaction {
	t := Transaction{ID: TxnID(d.u64())}
	nr := d.u32()
	for i := uint32(0); i < nr && d.err == nil; i++ {
		t.Reads = append(t.Reads, ReadEntry{Key: d.str(), Version: d.i64()})
	}
	nw := d.u32()
	for i := uint32(0); i < nw && d.err == nil; i++ {
		t.Writes = append(t.Writes, WriteOp{Key: d.str(), Value: d.bytes()})
	}
	np := d.u32()
	for i := uint32(0); i < np && d.err == nil; i++ {
		t.Partitions = append(t.Partitions, d.i32())
	}
	return t
}

// prepareRecord parses a canonical PrepareRecord encoding.
func (d *dec) prepareRecord() PrepareRecord {
	return PrepareRecord{Txn: d.txn(), CoordCluster: d.i32()}
}

// DecodeTransaction parses a canonical Transaction encoding (the inverse
// of EncodeTransaction).
func DecodeTransaction(b []byte) (*Transaction, error) {
	d := dec{b: b}
	t := d.txn()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &t, nil
}
