package protocol

import (
	"transedge/internal/cryptoutil"
	"transedge/internal/merkle"
)

// This file defines the transport payloads exchanged between clients,
// leaders, and clusters. Intra-cluster consensus messages live in
// internal/bft; everything cross-cluster or client-facing is here.

// ---- Client to cluster ----

// CommitRequest submits a finished transaction object for commitment
// (paper Sec. 3.2/3.3.1). The chosen cluster acts as 2PC coordinator if
// the transaction is distributed.
type CommitRequest struct {
	Txn     Transaction
	ReplyTo chan CommitReply
}

// CommitReply reports the terminal status of a submitted transaction.
type CommitReply struct {
	TxnID  TxnID
	Status TxnStatus
	// Reason carries a human-readable abort cause for diagnostics.
	Reason string
	// CommitBatch is the batch where the transaction committed at the
	// replying cluster (meaningful for StatusCommitted).
	CommitBatch int64
}

// ReadRequest reads one key outside the read-only snapshot protocol; the
// reply feeds a read-write transaction's read set. Served by any replica
// from committed state.
type ReadRequest struct {
	Key     string
	ReplyTo chan ReadReply
}

// ReadReply returns the committed value and its version (the writer
// batch), which the client records in its read set for OCC validation.
type ReadReply struct {
	Key     string
	Value   []byte
	Version int64
	Found   bool
}

// RORequest is the snapshot read-only transaction request (commit-rot,
// Sec. 4). Round one leaves AsOfLCE < 0; a second round asks a partition
// for the state whose LCE is at least the unsatisfied dependency.
type RORequest struct {
	Keys    []string
	AsOfLCE int64
	// MinBatch, when positive, is a session floor: the served snapshot
	// must be at least this batch (monotonic reads / read-your-writes).
	// The server parks the request until the floor commits locally; the
	// client has evidence the batch exists (its own commit reply or a
	// previously verified read), so an honest cluster always serves it.
	MinBatch int64
	ReplyTo  chan ROReply
}

// ROValue is one key's answer in a read-only reply: the value plus the
// Merkle membership proof against the batch's certified root, or a
// non-membership proof when the key does not exist in the snapshot.
type ROValue struct {
	Key     string
	Value   []byte
	Found   bool
	Proof   merkle.Proof
	Absence *merkle.AbsenceProof
}

// ROReply carries everything the client needs to verify the answer with
// no further coordination: data + proofs, the Merkle root with its f+1
// certificate, and the CD vector / LCE of the batch served.
type ROReply struct {
	Cluster int32
	BatchID int64
	Values  []ROValue
	// Multi, when set, co-proves every value (membership and absence) in
	// one pruned-subtree proof; the per-key Proof/Absence fields of
	// Values are then left empty. Nil restores the per-key proof path.
	Multi  *merkle.MultiProof
	Header BatchHeader
	Cert   cryptoutil.Certificate
	Err    string
}

// ---- Cluster to cluster (2PC over consensus, Sec. 3.3) ----

// CoordinatorPrepare is step 3 of Fig. 3: after the coordinator cluster
// writes the transaction into the prepared segment of its own log, its
// leader forwards the prepare to every participant leader with proof of
// SMR-log inclusion.
type CoordinatorPrepare struct {
	TxnID        TxnID
	CoordCluster int32
	Proof        PrepareProof
	// Forwarded marks a copy relayed by a follower to its current leader
	// after a view change; relays of relays are dropped to bound hops.
	Forwarded bool
}

// PreparedVote is step 5 of Fig. 3: a participant reports its 2PC vote
// together with proof that the prepare record was written to its SMR log.
// The proof's header carries the CD vector of the prepare batch — the
// piggybacked dependency report of Sec. 4.3.3(c) — and its ID is the
// prepare-batch number used in CD vectors.
type PreparedVote struct {
	TxnID       TxnID
	FromCluster int32
	Vote        Decision
	Proof       PrepareProof
	// Forwarded marks a follower-to-leader relay; see CoordinatorPrepare.
	Forwarded bool
}

// CommitDecision is step 7 of Fig. 3: the coordinator distributes the
// outcome along with the full set of prepared votes whose proofs justify
// it, so participants can validate the decision without trusting the
// coordinator's leader.
type CommitDecision struct {
	TxnID        TxnID
	CoordCluster int32
	Decision     Decision
	Votes        []PreparedVote
	// Forwarded marks a follower-to-leader relay; see CoordinatorPrepare.
	Forwarded bool
}
