package protocol

import (
	"bytes"
	"fmt"

	"transedge/internal/cryptoutil"
)

// View-change machinery (PBFT Sec. 4.4; DESIGN.md §7).
//
// When a replica's leader-progress timer fires it votes to move to a
// higher view. The vote carries the replica's *prepared frontier*: for
// every in-window slot above its certified tip, the proposal digest it
// validated together with the prepare signatures it collected. Any 2f+1
// votes form a NewView certificate from which every replica independently
// recomputes the frontier — the slots that MUST be re-proposed in the new
// view because some replica may already have delivered them.

// PrepareSig is one replica's prepare signature over
// PrepareSigDigest(cluster, view, id, digest), as carried inside a
// view-change vote.
type PrepareSig struct {
	Replica int32
	Sig     []byte
}

// PreparedEntry is one slot of a view-change vote's prepared frontier:
// the proposal the voter validated in some view, its digest, the batch
// body (so the new leader can re-propose without refetching), and every
// prepare signature the voter verified for (digest, view).
type PreparedEntry struct {
	ID       int64
	View     uint64
	Digest   Digest
	Batch    *Batch // body; not covered by the vote digest, nil after wire decode
	Prepares []PrepareSig
}

// ViewChange is a replica's signed vote to enter View. TipHeader/TipCert
// certify the voter's delivered tip (an f+1 consensus certificate), so a
// vote cannot understate committed history; Entries list the validated
// slots above the tip. Sig signs ViewChangeDigest(vc).
type ViewChange struct {
	Cluster  int32
	Replica  int32
	View     uint64
	TipHeader BatchHeader
	TipCert  cryptoutil.Certificate
	Entries  []PreparedEntry
	Sig      []byte
}

// NewView is the new leader's certificate for View: any 2f+1 verified
// view-change votes. Receivers recompute the re-proposal frontier from
// the votes themselves, so a byzantine new leader cannot smuggle slots in
// or out of it.
type NewView struct {
	Cluster int32
	View    uint64
	Votes   []*ViewChange
}

// PrepareSigDigest is the message a replica signs when sending a Prepare
// for (id, digest) in view: domain-separated from the commit certificate
// signature (which signs the bare batch digest), so a prepare signature
// can never be replayed as a certificate share or vice versa.
func PrepareSigDigest(cluster int32, view uint64, id int64, digest Digest) Digest {
	e := enc{b: make([]byte, 0, 21+4+8+8+32)}
	e.b = append(e.b, []byte("transedge-prepare-v1")...)
	e.i32(cluster)
	e.u64(view)
	e.i64(id)
	e.digest(digest)
	return cryptoutil.Hash(e.b)
}

// ViewChangeDigest is the message a view-change voter signs. It covers
// the vote position, the certified tip's header digest, and every
// frontier entry including its prepare signatures — but not the batch
// bodies (each body is authenticated by its entry digest) and not the
// tip certificate (verified separately; signatures over signatures add
// nothing).
func ViewChangeDigest(vc *ViewChange) Digest {
	h := cryptoutil.NewConcatHasher()
	h.Part([]byte("transedge-viewchange-v1"))
	tip := vc.TipHeader.Digest()
	e := getEnc()
	e.i32(vc.Cluster)
	e.i32(vc.Replica)
	e.u64(vc.View)
	e.digest(tip)
	e.u32(uint32(len(vc.Entries)))
	h.Part(e.b)
	for i := range vc.Entries {
		ent := &vc.Entries[i]
		e.b = e.b[:0]
		e.i64(ent.ID)
		e.u64(ent.View)
		e.digest(ent.Digest)
		e.u32(uint32(len(ent.Prepares)))
		for _, p := range ent.Prepares {
			e.i32(p.Replica)
			e.bytes(p.Sig)
		}
		h.Part(e.b)
	}
	putEnc(e)
	return h.Sum()
}

// headerTag is the domain tag leading every canonical BatchHeader
// encoding (see BatchHeader.Encode).
var headerTag = []byte("transedge-batch-v1")

// DecodeBatchHeader parses a canonical BatchHeader encoding (the inverse
// of BatchHeader.Encode).
func DecodeBatchHeader(b []byte) (*BatchHeader, error) {
	d := dec{b: b}
	if tag := d.take(len(headerTag)); tag == nil || !bytes.Equal(tag, headerTag) {
		return nil, fmt.Errorf("protocol: bad batch header tag")
	}
	h := &BatchHeader{
		Cluster:    d.i32(),
		ID:         d.i64(),
		PrevDigest: d.digest(),
		Timestamp:  d.i64(),
	}
	h.LocalDigest = d.digest()
	h.PreparedDigest = d.digest()
	h.CommittedDigest = d.digest()
	nc := d.u32()
	for i := uint32(0); i < nc && d.err == nil; i++ {
		h.CD = append(h.CD, d.i64())
	}
	h.LCE = d.i64()
	h.MerkleRoot = d.digest()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return h, nil
}

// cert appends the canonical encoding of a certificate.
func (e *enc) cert(c *cryptoutil.Certificate) {
	e.i32(c.Cluster)
	e.u32(uint32(len(c.Signatures)))
	for _, s := range c.Signatures {
		e.i32(s.Signer.Cluster)
		e.i32(s.Signer.Replica)
		e.bytes(s.Sig)
	}
}

// cert parses a canonical certificate encoding.
func (d *dec) cert() cryptoutil.Certificate {
	c := cryptoutil.Certificate{Cluster: d.i32()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		var s cryptoutil.Signature
		s.Signer.Cluster = d.i32()
		s.Signer.Replica = d.i32()
		s.Sig = d.bytes()
		c.Signatures = append(c.Signatures, s)
	}
	return c
}

// EncodeViewChange returns the canonical encoding of vc. Batch bodies are
// deliberately excluded — on a real wire the new leader refetches any
// missing body by digest; in-process transports ship the Go value with
// bodies attached. Decoding therefore leaves Entry.Batch nil.
func EncodeViewChange(vc *ViewChange) []byte {
	var e enc
	e.i32(vc.Cluster)
	e.i32(vc.Replica)
	e.u64(vc.View)
	e.bytes(vc.TipHeader.Encode())
	e.cert(&vc.TipCert)
	e.u32(uint32(len(vc.Entries)))
	for i := range vc.Entries {
		ent := &vc.Entries[i]
		e.i64(ent.ID)
		e.u64(ent.View)
		e.digest(ent.Digest)
		e.u32(uint32(len(ent.Prepares)))
		for _, p := range ent.Prepares {
			e.i32(p.Replica)
			e.bytes(p.Sig)
		}
	}
	e.bytes(vc.Sig)
	return e.b
}

// DecodeViewChange parses a canonical ViewChange encoding.
func DecodeViewChange(b []byte) (*ViewChange, error) {
	d := dec{b: b}
	vc := &ViewChange{
		Cluster: d.i32(),
		Replica: d.i32(),
		View:    d.u64(),
	}
	hb := d.bytes()
	if d.err == nil {
		h, err := DecodeBatchHeader(hb)
		if err != nil {
			return nil, err
		}
		vc.TipHeader = *h
	}
	vc.TipCert = d.cert()
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		ent := PreparedEntry{ID: d.i64(), View: d.u64(), Digest: d.digest()}
		np := d.u32()
		for j := uint32(0); j < np && d.err == nil; j++ {
			ent.Prepares = append(ent.Prepares, PrepareSig{Replica: d.i32(), Sig: d.bytes()})
		}
		vc.Entries = append(vc.Entries, ent)
	}
	vc.Sig = d.bytes()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return vc, nil
}

// EncodeNewView returns the canonical encoding of nv (votes nested as
// length-prefixed ViewChange encodings).
func EncodeNewView(nv *NewView) []byte {
	var e enc
	e.i32(nv.Cluster)
	e.u64(nv.View)
	e.u32(uint32(len(nv.Votes)))
	for _, v := range nv.Votes {
		e.bytes(EncodeViewChange(v))
	}
	return e.b
}

// DecodeNewView parses a canonical NewView encoding.
func DecodeNewView(b []byte) (*NewView, error) {
	d := dec{b: b}
	nv := &NewView{Cluster: d.i32(), View: d.u64()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		vb := d.bytes()
		if d.err != nil {
			break
		}
		v, err := DecodeViewChange(vb)
		if err != nil {
			return nil, err
		}
		nv.Votes = append(nv.Votes, v)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return nv, nil
}
