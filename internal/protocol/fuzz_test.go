package protocol

import (
	"testing"

	"transedge/internal/cryptoutil"
)

// fuzzSeeds returns valid encodings of every on-disk artifact, plus a few
// damaged variants, as the in-code seed corpus (static seeds live in
// testdata/fuzz/). The fuzzers assert the crash-safety property the WAL
// and checkpoint loaders rely on: arbitrary bytes — truncated, bit-flipped,
// or garbage — must produce an error, never a panic or a runaway
// allocation.
func fuzzSeeds() [][]byte {
	b := testBatch().Seal()
	d := b.Digest()
	ring := cryptoutil.NewKeyRing()
	cert := cryptoutil.Certificate{Cluster: b.Cluster}
	for r := int32(0); r < 3; r++ {
		id := cryptoutil.NodeID{Cluster: b.Cluster, Replica: r}
		kp := cryptoutil.DeriveKeyPair(id, 7)
		ring.Add(id, kp.Public)
		cert.Signatures = append(cert.Signatures, cryptoutil.SignCertificate(kp, id, d[:]))
	}
	chk := &DurableCheckpoint{
		Cluster: b.Cluster, CheckpointID: b.ID, View: 2, Header: b.Header(),
		HeaderCert: cert, Cert: cert,
		Entries: []SnapshotEntry{{Key: "k", Value: []byte("v"), Writer: 3}},
		Groups:  []CheckpointGroup{{PrepareBatch: 40}},
	}
	header := b.Header()
	seeds := [][]byte{
		EncodeBatch(b),
		EncodeCertifiedBatch(&CertifiedBatch{Batch: b, Cert: cert}),
		EncodeDurableCheckpoint(chk),
		EncodeCertificate(&cert),
		header.Encode(),
	}
	// Damaged variants: truncations and a bit flip of each.
	for _, s := range seeds[:5] {
		seeds = append(seeds, s[:len(s)/2])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/3] ^= 0x20
		seeds = append(seeds, flipped)
	}
	return seeds
}

func FuzzDecodeBatch(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err == nil {
			// A successful decode must re-encode to the identical bytes
			// (the encoding is canonical) and carry a stable digest.
			if got := EncodeBatch(b); string(got) != string(data) {
				t.Fatal("accepted encoding is not canonical")
			}
			_ = b.Digest()
		}
	})
}

func FuzzDecodeCertifiedBatch(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cb, err := DecodeCertifiedBatch(data)
		if err == nil {
			if got := EncodeCertifiedBatch(cb); string(got) != string(data) {
				t.Fatal("accepted encoding is not canonical")
			}
		}
	})
}

func FuzzDecodeDurableCheckpoint(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeDurableCheckpoint(data)
		if err == nil {
			if got := EncodeDurableCheckpoint(c); string(got) != string(data) {
				t.Fatal("accepted encoding is not canonical")
			}
		}
	})
}

func FuzzDecodeCertificate(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeCertificate(data)
	})
}

func FuzzDecodeBatchHeader(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeBatchHeader(data)
		if err == nil {
			_ = h.Digest()
		}
	})
}
