package protocol

import (
	"fmt"

	"transedge/internal/cryptoutil"
)

// On-disk record codecs for the durability layer (DESIGN.md §8). The WAL
// stores certified batches; the checkpoint file stores a DurableCheckpoint.
// Both reuse the canonical big-endian length-prefixed encoding every
// signed artifact already uses, so the bytes a replica persists are the
// bytes its peers would sign.
//
// The batch codec deliberately excludes the evidence maps
// (PrepareEvidence/CommitEvidence): they are not covered by the header
// digest — the f+1 certificate attests that a quorum verified them before
// voting — and recovery replays batches through the same certificate
// check as peer state transfer, which needs only the segments the header
// commits to. Re-persisting evidence would bloat every WAL record with
// proofs that can never be re-checked more strongly than the certificate
// already proves.

// batchCodecVersion tags the on-disk batch encoding.
const batchCodecVersion = 1

// durableCheckpointTag is the domain tag of the checkpoint file payload.
const durableCheckpointTag = "transedge-durable-checkpoint-v1"

// cd parses a canonical CDVector encoding (the decoder mirror of enc.cd).
func (d *dec) cd() CDVector {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(len(d.b)) {
		d.err = errDecShort
		return nil
	}
	v := make(CDVector, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		v = append(v, d.i64())
	}
	return v
}

// commitRecord parses a canonical CommitRecord encoding.
func (d *dec) commitRecord() CommitRecord {
	r := CommitRecord{Txn: d.txn(), Decision: Decision(d.u8())}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		r.ReportedCDs = append(r.ReportedCDs, d.cd())
	}
	return r
}

// EncodeCertificate returns the canonical encoding of c (the enc.cert
// helper from the view-change codecs, exposed for on-disk use).
func EncodeCertificate(c *cryptoutil.Certificate) []byte {
	var e enc
	e.cert(c)
	return e.b
}

// DecodeCertificate parses a canonical Certificate encoding.
func DecodeCertificate(b []byte) (*cryptoutil.Certificate, error) {
	d := dec{b: b}
	c := d.cert()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &c, nil
}

// batch appends the canonical on-disk encoding of b (segments and
// read-only section; no evidence, no memo).
func (e *enc) batch(b *Batch) {
	e.u8(batchCodecVersion)
	e.i32(b.Cluster)
	e.i64(b.ID)
	e.digest(b.PrevDigest)
	e.i64(b.Timestamp)
	e.u32(uint32(len(b.Local)))
	for i := range b.Local {
		e.txn(&b.Local[i])
	}
	e.u32(uint32(len(b.Prepared)))
	for i := range b.Prepared {
		e.prepareRecord(&b.Prepared[i])
	}
	e.u32(uint32(len(b.Committed)))
	for i := range b.Committed {
		e.commitRecord(&b.Committed[i])
	}
	e.cd(b.CD)
	e.i64(b.LCE)
	e.digest(b.MerkleRoot)
}

// batch parses the canonical on-disk Batch encoding. The result is
// sealed: its memoized digest is what recovery verifies the certificate
// against.
func (d *dec) batch() *Batch {
	if v := d.u8(); d.err == nil && v != batchCodecVersion {
		d.err = fmt.Errorf("protocol: batch codec version %d unsupported", v)
		return nil
	}
	b := &Batch{
		Cluster:    d.i32(),
		ID:         d.i64(),
		PrevDigest: d.digest(),
		Timestamp:  d.i64(),
	}
	nl := d.u32()
	for i := uint32(0); i < nl && d.err == nil; i++ {
		b.Local = append(b.Local, d.txn())
	}
	np := d.u32()
	for i := uint32(0); i < np && d.err == nil; i++ {
		b.Prepared = append(b.Prepared, d.prepareRecord())
	}
	nc := d.u32()
	for i := uint32(0); i < nc && d.err == nil; i++ {
		b.Committed = append(b.Committed, d.commitRecord())
	}
	b.CD = d.cd()
	b.LCE = d.i64()
	b.MerkleRoot = d.digest()
	return b
}

// EncodeBatch returns the canonical on-disk encoding of b.
func EncodeBatch(b *Batch) []byte {
	var e enc
	e.batch(b)
	return e.b
}

// DecodeBatch parses a canonical on-disk Batch encoding and seals the
// result.
func DecodeBatch(buf []byte) (*Batch, error) {
	d := dec{b: buf}
	b := d.batch()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return b.Seal(), nil
}

// EncodeCertifiedBatch returns the canonical WAL record payload for cb:
// the batch followed by its f+1 consensus certificate.
func EncodeCertifiedBatch(cb *CertifiedBatch) []byte {
	var e enc
	e.batch(cb.Batch)
	e.cert(&cb.Cert)
	return e.b
}

// DecodeCertifiedBatch parses a canonical CertifiedBatch encoding. The
// certificate is NOT verified here — recovery verifies it against the
// recomputed batch digest exactly like a state-transfer suffix.
func DecodeCertifiedBatch(buf []byte) (*CertifiedBatch, error) {
	d := dec{b: buf}
	b := d.batch()
	cert := d.cert()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return &CertifiedBatch{Batch: b.Seal(), Cert: cert}, nil
}

// DurableCheckpoint is the checkpoint-file payload: everything a replica
// needs to rebuild its state from disk and prove to itself (and, after
// install, to peers) that the rebuilt state is the certified one. It is
// deliberately the same material a StateResponse carries minus the
// suffix — the WAL is the suffix.
type DurableCheckpoint struct {
	Cluster      int32
	CheckpointID int64
	// View is the consensus view this replica was in when it persisted
	// the checkpoint; recovery rejoins at least there. Local-trust only
	// (a replica cannot forge its own disk against itself).
	View       uint64
	Header     BatchHeader
	HeaderCert cryptoutil.Certificate // f+1 over the header digest
	Cert       cryptoutil.Certificate // 2f+1 over the checkpoint state digest
	Entries    []SnapshotEntry        // sorted by key
	Groups     []CheckpointGroup      // ascending PrepareBatch
}

// EncodeDurableCheckpoint returns the canonical checkpoint-file payload.
func EncodeDurableCheckpoint(c *DurableCheckpoint) []byte {
	var e enc
	e.b = append(e.b, []byte(durableCheckpointTag)...)
	e.i32(c.Cluster)
	e.i64(c.CheckpointID)
	e.u64(c.View)
	e.bytes(c.Header.Encode())
	e.cert(&c.HeaderCert)
	e.cert(&c.Cert)
	e.u32(uint32(len(c.Entries)))
	for i := range c.Entries {
		s := &c.Entries[i]
		e.str(s.Key)
		e.bytes(s.Value)
		e.i64(s.Writer)
	}
	e.u32(uint32(len(c.Groups)))
	for i := range c.Groups {
		g := &c.Groups[i]
		e.i64(g.PrepareBatch)
		e.u32(uint32(len(g.Recs)))
		for j := range g.Recs {
			e.prepareRecord(&g.Recs[j])
		}
	}
	return e.b
}

// DecodeDurableCheckpoint parses a canonical checkpoint-file payload.
// Certificates and the Merkle rebuild are verified by the caller, exactly
// like a peer state transfer.
func DecodeDurableCheckpoint(buf []byte) (*DurableCheckpoint, error) {
	d := dec{b: buf}
	if tag := d.take(len(durableCheckpointTag)); d.err == nil && string(tag) != durableCheckpointTag {
		return nil, fmt.Errorf("protocol: bad durable checkpoint tag")
	}
	c := &DurableCheckpoint{
		Cluster:      d.i32(),
		CheckpointID: d.i64(),
		View:         d.u64(),
	}
	hb := d.bytes()
	if d.err == nil {
		h, err := DecodeBatchHeader(hb)
		if err != nil {
			return nil, err
		}
		c.Header = *h
	}
	c.HeaderCert = d.cert()
	c.Cert = d.cert()
	ne := d.u32()
	for i := uint32(0); i < ne && d.err == nil; i++ {
		c.Entries = append(c.Entries, SnapshotEntry{Key: d.str(), Value: d.bytes(), Writer: d.i64()})
	}
	ng := d.u32()
	for i := uint32(0); i < ng && d.err == nil; i++ {
		g := CheckpointGroup{PrepareBatch: d.i64()}
		nr := d.u32()
		for j := uint32(0); j < nr && d.err == nil; j++ {
			g.Recs = append(g.Recs, d.prepareRecord())
		}
		c.Groups = append(c.Groups, g)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return c, nil
}
