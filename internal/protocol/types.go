// Package protocol defines the domain types shared by every layer of the
// TransEdge reproduction: transactions, the four-segment batches of the
// SMR log (paper Fig. 2), Conflict-Dependency (CD) vectors, Last Committed
// Epoch (LCE) numbers, and the canonical binary encoding used for every
// artifact that is hashed or signed.
//
// Canonical encoding matters because batch certificates are f+1 replica
// signatures over the batch digest: every honest replica must serialize a
// batch to exactly the same bytes.
package protocol

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"transedge/internal/cryptoutil"
)

// Digest aliases the system-wide digest type.
type Digest = cryptoutil.Digest

// TxnID uniquely identifies a transaction across the system. Clients mint
// IDs as (client index << 32 | sequence number).
type TxnID uint64

// MakeTxnID builds a transaction ID from a client index and sequence.
func MakeTxnID(client uint32, seq uint32) TxnID {
	return TxnID(uint64(client)<<32 | uint64(seq))
}

func (id TxnID) String() string {
	return fmt.Sprintf("t%d.%d", uint64(id)>>32, uint64(id)&0xffffffff)
}

// WriteOp is a buffered write in a transaction's write set.
type WriteOp struct {
	Key   string
	Value []byte
}

// ReadEntry is one element of a transaction's read set: the key and the
// version observed (the ID of the batch that wrote the value, 0 for the
// initial data load). OCC validation (Def. 3.1 rule 1) checks the key has
// not been overwritten since.
type ReadEntry struct {
	Key     string
	Version int64
}

// Transaction is the client-constructed transaction object (paper Sec. 2,
// "Interface"): a read set with observed versions and a buffered write
// set. Partitions lists the clusters accessed, sorted ascending.
type Transaction struct {
	ID         TxnID
	Reads      []ReadEntry
	Writes     []WriteOp
	Partitions []int32
}

// IsLocal reports whether the transaction touches a single partition.
func (t *Transaction) IsLocal() bool { return len(t.Partitions) <= 1 }

// Partitioner maps keys to partitions by hashing, mirroring the paper's
// uniform key distribution across clusters (Sec. 5.1).
type Partitioner struct {
	N int32 // number of partitions
}

// Of returns the partition owning key.
func (p Partitioner) Of(key string) int32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int32(h.Sum32() % uint32(p.N))
}

// PartitionsOf computes the sorted set of partitions touched by the given
// read and write sets.
func (p Partitioner) PartitionsOf(reads []ReadEntry, writes []WriteOp) []int32 {
	seen := make(map[int32]bool)
	for _, r := range reads {
		seen[p.Of(r.Key)] = true
	}
	for _, w := range writes {
		seen[p.Of(w.Key)] = true
	}
	out := make([]int32, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadsFor returns the subset of t's read set owned by cluster.
func (t *Transaction) ReadsFor(p Partitioner, cluster int32) []ReadEntry {
	var out []ReadEntry
	for _, r := range t.Reads {
		if p.Of(r.Key) == cluster {
			out = append(out, r)
		}
	}
	return out
}

// WritesFor returns the subset of t's write set owned by cluster.
func (t *Transaction) WritesFor(p Partitioner, cluster int32) []WriteOp {
	var out []WriteOp
	for _, w := range t.Writes {
		if p.Of(w.Key) == cluster {
			out = append(out, w)
		}
	}
	return out
}

// Decision is the 2PC outcome for a transaction.
type Decision uint8

const (
	// DecisionPending marks a prepared transaction still waiting for its
	// coordinator's verdict.
	DecisionPending Decision = iota
	// DecisionCommit commits the transaction.
	DecisionCommit
	// DecisionAbort aborts it.
	DecisionAbort
)

func (d Decision) String() string {
	switch d {
	case DecisionPending:
		return "pending"
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// TxnStatus is the terminal status reported to clients.
type TxnStatus uint8

const (
	// StatusCommitted means the transaction is durably committed.
	StatusCommitted TxnStatus = iota + 1
	// StatusAborted means conflict detection rejected the transaction.
	StatusAborted
)

func (s TxnStatus) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// NoDependency is the CD vector entry meaning "no dependency on that
// partition yet" (the -1 entries in paper Fig. 3).
const NoDependency int64 = -1

// CDVector is the Conflict-Dependency vector attached to every batch: one
// entry per partition, holding the highest prepare-batch number at that
// partition the batch (transitively) depends on (paper Sec. 4.3).
type CDVector []int64

// NewCDVector returns a vector of n entries, all NoDependency.
func NewCDVector(n int) CDVector {
	v := make(CDVector, n)
	for i := range v {
		v[i] = NoDependency
	}
	return v
}

// Clone returns a copy of v.
func (v CDVector) Clone() CDVector {
	out := make(CDVector, len(v))
	copy(out, v)
	return out
}

// MaxInto sets v to the pairwise maximum of v and o (Algorithm 1's
// pairwise_max). Panics if lengths differ — all CD vectors in a system
// have exactly one entry per partition.
func (v CDVector) MaxInto(o CDVector) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("protocol: CD vector length mismatch %d vs %d", len(v), len(o)))
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// PrepareRecord is an entry of a batch's prepared segment: a distributed
// transaction that is 2PC-prepared at this partition but not yet decided.
type PrepareRecord struct {
	Txn          Transaction
	CoordCluster int32
}

// CommitRecord is an entry of a batch's committed segment: a distributed
// transaction with its 2PC decision and, for committed transactions, the
// CD vectors piggybacked on the prepared messages of every participant
// (Sec. 4.3.3c); Algorithm 1 folds these into the batch's CD vector.
type CommitRecord struct {
	Txn         Transaction
	Decision    Decision
	ReportedCDs []CDVector
}

// Batch is one entry of the per-cluster SMR log, with the four segments of
// paper Fig. 2. ID doubles as the batch timestamp within the log.
type Batch struct {
	Cluster    int32
	ID         int64
	PrevDigest Digest // chains the log; genesis uses the zero digest
	Timestamp  int64  // leader wall-clock (unix nanos) for freshness checks

	// Segment 1: local transactions, committed when the batch is written.
	Local []Transaction
	// Segment 2: distributed transactions prepared (2PC) in this batch.
	Prepared []PrepareRecord
	// Segment 3: distributed transactions whose 2PC decision is recorded
	// in this batch (the whole prepare group commits together).
	Committed []CommitRecord

	// Segment 4: the read-only segment.
	CD         CDVector
	LCE        int64
	MerkleRoot Digest

	// Evidence travels with the proposal so validating replicas can check
	// it before voting, but is NOT covered by the header digest: the vote
	// itself attests that a replica verified the evidence, and keeping it
	// out of the digest prevents recursive proof blow-up (a PrepareProof
	// embeds a prepared segment, which would otherwise embed proofs).
	//
	// PrepareEvidence maps a prepared transaction to the coordinator's
	// proof that the transaction is 2PC-prepared in the coordinator's SMR
	// log (absent when this cluster is the coordinator — the client
	// request originated here).
	PrepareEvidence map[TxnID]*PrepareProof
	// CommitEvidence maps a committed-segment transaction to the
	// prepared votes of every participant, justifying the decision.
	CommitEvidence map[TxnID][]PreparedVote

	// memo caches Header()/Digest() once the batch is sealed. A batch is
	// sealed by its leader after construction (Seal) and MUST NOT be
	// mutated afterwards — every consensus step from leader signing to
	// follower validation and delivery reads the same cached digest.
	// Fault-injection paths that need a mutated variant go through
	// MutableCopy (see DESIGN.md, "Digest memoization"). A nil memo (the
	// zero value) recomputes on every call.
	memo *batchMemo
}

// batchMemo holds the lazily-computed header and digest of a sealed
// batch. sync.Once makes the computation safe under the in-process
// transport, where every replica's event loop shares one *Batch.
type batchMemo struct {
	once   sync.Once
	header BatchHeader
	digest Digest
}

// Seal marks the batch immutable and enables Header()/Digest()
// memoization. Idempotent; returns b for chaining. Must be called by the
// goroutine that constructed the batch, before it is shared.
func (b *Batch) Seal() *Batch {
	if b.memo == nil {
		b.memo = &batchMemo{}
	}
	return b
}

// MutableCopy returns a shallow copy of b with memoization detached, for
// paths that must derive a mutated variant of a sealed batch (byzantine
// fault injection). The copy shares the segment slices with the
// original: callers mutating slice elements must copy those slices
// first, or they corrupt the sealed original behind its cached digest.
func (b *Batch) MutableCopy() *Batch {
	cp := *b
	cp.memo = nil
	return &cp
}
