package protocol

import (
	"reflect"
	"testing"

	"transedge/internal/cryptoutil"
)

func testTipHeader() BatchHeader {
	b := &Batch{
		Cluster:    2,
		ID:         17,
		PrevDigest: cryptoutil.Hash([]byte("prev")),
		Timestamp:  424242,
		CD:         CDVector{5, NoDependency, 9},
		LCE:        7,
		MerkleRoot: cryptoutil.Hash([]byte("root")),
	}
	return b.Header()
}

func TestBatchHeaderRoundTrip(t *testing.T) {
	h := testTipHeader()
	enc := h.Encode()
	got, err := DecodeBatchHeader(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(*got, h) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, h)
	}
	if got.Digest() != h.Digest() {
		t.Fatal("digest changed across round trip")
	}

	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := DecodeBatchHeader(bad); err == nil {
		t.Fatal("corrupted domain tag decoded without error")
	}
	if _, err := DecodeBatchHeader(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated header decoded without error")
	}
	if _, err := DecodeBatchHeader(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

func testViewChange() *ViewChange {
	body := (&Batch{Cluster: 2, ID: 18, PrevDigest: cryptoutil.Hash([]byte("tip")),
		Timestamp: 5, CD: CDVector{1, 2, 3}, LCE: -1}).Seal()
	return &ViewChange{
		Cluster:   2,
		Replica:   3,
		View:      9,
		TipHeader: testTipHeader(),
		TipCert: cryptoutil.Certificate{Cluster: 2, Signatures: []cryptoutil.Signature{
			{Signer: cryptoutil.NodeID{Cluster: 2, Replica: 0}, Sig: []byte("sig-a")},
			{Signer: cryptoutil.NodeID{Cluster: 2, Replica: 1}, Sig: []byte("sig-b")},
		}},
		Entries: []PreparedEntry{
			{ID: 18, View: 8, Digest: body.Digest(), Batch: body, Prepares: []PrepareSig{
				{Replica: 0, Sig: []byte("p0")},
				{Replica: 2, Sig: []byte("p2")},
				{Replica: 3, Sig: []byte("p3")},
			}},
			{ID: 19, View: 9, Digest: cryptoutil.Hash([]byte("d19")), Prepares: []PrepareSig{
				{Replica: 3, Sig: []byte("q3")},
			}},
		},
		Sig: []byte("vote-sig"),
	}
}

func TestViewChangeRoundTrip(t *testing.T) {
	vc := testViewChange()
	got, err := DecodeViewChange(EncodeViewChange(vc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Bodies are deliberately not wired: decode leaves Entry.Batch nil.
	if got.Entries[0].Batch != nil {
		t.Fatal("batch body survived the wire; encoding must exclude bodies")
	}
	want := *vc
	want.Entries = append([]PreparedEntry(nil), vc.Entries...)
	want.Entries[0].Batch = nil
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, want)
	}
	// The vote digest excludes bodies, so it is stable across the wire.
	if ViewChangeDigest(got) != ViewChangeDigest(vc) {
		t.Fatal("ViewChangeDigest changed across round trip")
	}

	enc := EncodeViewChange(vc)
	if _, err := DecodeViewChange(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated vote decoded without error")
	}
}

func TestNewViewRoundTrip(t *testing.T) {
	a := testViewChange()
	b := testViewChange()
	b.Replica = 1
	b.Entries = b.Entries[:1]
	nv := &NewView{Cluster: 2, View: 9, Votes: []*ViewChange{a, b}}
	got, err := DecodeNewView(EncodeNewView(nv))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Cluster != 2 || got.View != 9 || len(got.Votes) != 2 {
		t.Fatalf("round trip header mismatch: %+v", got)
	}
	if got.Votes[0].Replica != a.Replica || got.Votes[1].Replica != b.Replica {
		t.Fatal("vote order not preserved")
	}
	if ViewChangeDigest(got.Votes[0]) != ViewChangeDigest(a) ||
		ViewChangeDigest(got.Votes[1]) != ViewChangeDigest(b) {
		t.Fatal("nested vote digests changed across round trip")
	}
}

// TestPrepareSigDigestSeparation: the prepare-signature message is
// deterministic in its inputs and distinct across every coordinate —
// cluster, view, slot, digest — so a signature can never be replayed for
// a different slot or view.
func TestPrepareSigDigestSeparation(t *testing.T) {
	d := cryptoutil.Hash([]byte("batch"))
	base := PrepareSigDigest(1, 2, 3, d)
	if PrepareSigDigest(1, 2, 3, d) != base {
		t.Fatal("PrepareSigDigest not deterministic")
	}
	variants := []Digest{
		PrepareSigDigest(2, 2, 3, d),
		PrepareSigDigest(1, 3, 3, d),
		PrepareSigDigest(1, 2, 4, d),
		PrepareSigDigest(1, 2, 3, cryptoutil.Hash([]byte("other"))),
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d collides with base digest", i)
		}
	}
}
