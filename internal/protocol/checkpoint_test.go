package protocol

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"transedge/internal/cryptoutil"
)

// normTxn maps empty write values to nil: the decoder returns nil for
// zero-length fields, so round-trip comparisons normalize first.
func normTxn(t Transaction) Transaction {
	out := cloneTxn(t)
	for i := range out.Writes {
		if len(out.Writes[i].Value) == 0 {
			out.Writes[i].Value = nil
		}
	}
	if len(out.Reads) == 0 {
		out.Reads = nil
	}
	if len(out.Writes) == 0 {
		out.Writes = nil
	}
	if len(out.Partitions) == 0 {
		out.Partitions = nil
	}
	return out
}

func TestCheckpointEncodingRoundTrip(t *testing.T) {
	f := func(cluster int32, batchID int64, digest [32]byte, replica int32, sig []byte) bool {
		if len(sig) == 0 {
			sig = nil
		}
		in := &Checkpoint{
			Cluster: cluster, BatchID: batchID,
			StateDigest: Digest(digest), Replica: replica, Sig: sig,
		}
		out, err := DecodeCheckpoint(EncodeCheckpoint(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateRequestEncodingRoundTrip(t *testing.T) {
	f := func(cluster, replica int32, have int64) bool {
		in := &StateRequest{From: cryptoutil.NodeID{Cluster: cluster, Replica: replica}, HaveBatch: have}
		out, err := DecodeStateRequest(EncodeStateRequest(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEntryEncodingRoundTrip(t *testing.T) {
	f := func(key string, value []byte, writer int64) bool {
		if len(value) == 0 {
			value = nil
		}
		in := &SnapshotEntry{Key: key, Value: value, Writer: writer}
		out, err := DecodeSnapshotEntry(EncodeSnapshotEntry(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointGroupEncodingRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		in := &CheckpointGroup{PrepareBatch: r.Int63n(1000)}
		for j := r.Intn(4); j > 0; j-- {
			in.Recs = append(in.Recs, PrepareRecord{Txn: normTxn(randTxn(r)), CoordCluster: int32(r.Intn(5))})
		}
		out, err := DecodeCheckpointGroup(EncodeCheckpointGroup(in))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round %d: decoded %+v, want %+v", i, out, in)
		}
	}
}

func TestTransactionEncodingRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		in := normTxn(randTxn(r))
		out, err := DecodeTransaction(EncodeTransaction(&in))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !reflect.DeepEqual(&in, out) {
			t.Fatalf("round %d: decoded %+v, want %+v", i, out, in)
		}
	}
}

func TestDecodeRejectsTruncatedAndTrailing(t *testing.T) {
	c := &Checkpoint{Cluster: 1, BatchID: 64, Replica: 2, Sig: []byte("sig")}
	b := EncodeCheckpoint(c)
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeCheckpoint(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestSnapshotDigestDependsOnWritersAndOrder checks the digest covers
// exactly what it must: keys and writers (order-sensitive — entries are
// canonically sorted by key), not values (those are authenticated by the
// checkpoint header's Merkle root instead).
func TestSnapshotDigestDependsOnWritersAndOrder(t *testing.T) {
	a := []SnapshotEntry{{Key: "a", Value: []byte("1"), Writer: 3}, {Key: "b", Value: []byte("2"), Writer: 5}}
	base := SnapshotDigest(a)

	writerChanged := []SnapshotEntry{{Key: "a", Value: []byte("1"), Writer: 4}, {Key: "b", Value: []byte("2"), Writer: 5}}
	if SnapshotDigest(writerChanged) == base {
		t.Fatal("digest ignored a writer change")
	}
	reordered := []SnapshotEntry{a[1], a[0]}
	if SnapshotDigest(reordered) == base {
		t.Fatal("digest ignored entry order")
	}
	valueChanged := []SnapshotEntry{{Key: "a", Value: []byte("x"), Writer: 3}, {Key: "b", Value: []byte("2"), Writer: 5}}
	if SnapshotDigest(valueChanged) != base {
		t.Fatal("digest should not cover values (the Merkle root does)")
	}
}

func TestGroupsDigestCoversRecordContent(t *testing.T) {
	txn := Transaction{ID: 7, Writes: []WriteOp{{Key: "k", Value: []byte("v")}}, Partitions: []int32{0, 1}}
	g := []CheckpointGroup{{PrepareBatch: 9, Recs: []PrepareRecord{{Txn: txn, CoordCluster: 1}}}}
	base := GroupsDigest(g)

	tampered := []CheckpointGroup{{PrepareBatch: 9, Recs: []PrepareRecord{{Txn: txn, CoordCluster: 0}}}}
	if GroupsDigest(tampered) == base {
		t.Fatal("digest ignored coordinator change")
	}
	txn2 := txn
	txn2.Writes = []WriteOp{{Key: "k", Value: []byte("forged")}}
	tampered2 := []CheckpointGroup{{PrepareBatch: 9, Recs: []PrepareRecord{{Txn: txn2, CoordCluster: 1}}}}
	if GroupsDigest(tampered2) == base {
		t.Fatal("digest ignored write-set change")
	}
	if GroupsDigest([]CheckpointGroup{{PrepareBatch: 8, Recs: g[0].Recs}}) == base {
		t.Fatal("digest ignored prepare batch")
	}
}

func TestCheckpointDigestBindsAllParts(t *testing.T) {
	var h1, h2 Digest
	h2[0] = 1
	base := CheckpointDigest(0, 64, h1, h1, h1)
	if CheckpointDigest(1, 64, h1, h1, h1) == base ||
		CheckpointDigest(0, 65, h1, h1, h1) == base ||
		CheckpointDigest(0, 64, h2, h1, h1) == base ||
		CheckpointDigest(0, 64, h1, h2, h1) == base ||
		CheckpointDigest(0, 64, h1, h1, h2) == base {
		t.Fatal("checkpoint digest failed to bind a component")
	}
}
