package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"transedge/internal/cryptoutil"
)

// enc is an append-only canonical binary encoder. All integers are
// big-endian and all variable-length fields are length-prefixed, so two
// logically equal values always serialize to identical bytes.
type enc struct{ b []byte }

// encPool recycles encoder buffers across the section-digest hot path, so
// hashing a batch does not allocate one intermediate slice per record.
var encPool = sync.Pool{New: func() any { return &enc{b: make([]byte, 0, 1024)} }}

func getEnc() *enc {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	return e
}

func putEnc(e *enc) { encPool.Put(e) }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(v string)    { e.bytes([]byte(v)) }
func (e *enc) digest(d Digest) { e.b = append(e.b, d[:]...) }

// transactionSize returns the exact canonical encoding length of t, used
// to pre-size encoder buffers.
func transactionSize(t *Transaction) int {
	n := 8 + 4 + 4 + 4
	for _, r := range t.Reads {
		n += 4 + len(r.Key) + 8
	}
	for _, w := range t.Writes {
		n += 4 + len(w.Key) + 4 + len(w.Value)
	}
	n += 4 * len(t.Partitions)
	return n
}

// txn appends the canonical encoding of t.
func (e *enc) txn(t *Transaction) {
	e.u64(uint64(t.ID))
	e.u32(uint32(len(t.Reads)))
	for _, r := range t.Reads {
		e.str(r.Key)
		e.i64(r.Version)
	}
	e.u32(uint32(len(t.Writes)))
	for _, w := range t.Writes {
		e.str(w.Key)
		e.bytes(w.Value)
	}
	e.u32(uint32(len(t.Partitions)))
	for _, p := range t.Partitions {
		e.i32(p)
	}
}

// EncodeTransaction returns the canonical encoding of t.
func EncodeTransaction(t *Transaction) []byte {
	e := enc{b: make([]byte, 0, transactionSize(t))}
	e.txn(t)
	return e.b
}

// TransactionDigest hashes the canonical encoding of t.
func TransactionDigest(t *Transaction) Digest {
	return cryptoutil.Hash(EncodeTransaction(t))
}

// cd appends the canonical encoding of v.
func (e *enc) cd(v CDVector) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(x)
	}
}

// EncodeCDVector returns the canonical encoding of v.
func EncodeCDVector(v CDVector) []byte {
	e := enc{b: make([]byte, 0, 4+8*len(v))}
	e.cd(v)
	return e.b
}

// prepareRecord appends the canonical encoding of r.
func (e *enc) prepareRecord(r *PrepareRecord) {
	e.txn(&r.Txn)
	e.i32(r.CoordCluster)
}

// EncodePrepareRecord returns the canonical encoding of r.
func EncodePrepareRecord(r *PrepareRecord) []byte {
	e := enc{b: make([]byte, 0, transactionSize(&r.Txn)+4)}
	e.prepareRecord(r)
	return e.b
}

// commitRecord appends the canonical encoding of r.
func (e *enc) commitRecord(r *CommitRecord) {
	e.txn(&r.Txn)
	e.u8(uint8(r.Decision))
	e.u32(uint32(len(r.ReportedCDs)))
	for _, cd := range r.ReportedCDs {
		e.cd(cd)
	}
}

// EncodeCommitRecord returns the canonical encoding of r.
func EncodeCommitRecord(r *CommitRecord) []byte {
	var e enc
	e.commitRecord(r)
	return e.b
}

// Section digests: each batch segment hashes to one digest so that 2PC
// proofs can ship a single segment plus the header rather than the whole
// batch. Each record streams through one pooled encoder buffer into the
// hash with the same length framing as cryptoutil.HashConcat, so the
// digests are unchanged but hashing a segment allocates nothing per
// record.

// LocalSectionDigest hashes the local segment.
func LocalSectionDigest(txns []Transaction) Digest {
	h := cryptoutil.NewConcatHasher()
	h.Part([]byte("local"))
	e := getEnc()
	for i := range txns {
		e.b = e.b[:0]
		e.txn(&txns[i])
		h.Part(e.b)
	}
	putEnc(e)
	return h.Sum()
}

// PreparedSectionDigest hashes the prepared segment.
func PreparedSectionDigest(recs []PrepareRecord) Digest {
	h := cryptoutil.NewConcatHasher()
	h.Part([]byte("prepared"))
	e := getEnc()
	for i := range recs {
		e.b = e.b[:0]
		e.prepareRecord(&recs[i])
		h.Part(e.b)
	}
	putEnc(e)
	return h.Sum()
}

// CommittedSectionDigest hashes the committed segment.
func CommittedSectionDigest(recs []CommitRecord) Digest {
	h := cryptoutil.NewConcatHasher()
	h.Part([]byte("committed"))
	e := getEnc()
	for i := range recs {
		e.b = e.b[:0]
		e.commitRecord(&recs[i])
		h.Part(e.b)
	}
	putEnc(e)
	return h.Sum()
}

// BatchHeader is the fixed-size summary of a batch. The batch digest —
// the message replicas sign — is the hash of the header, and the header
// commits to every segment through the section digests, so a certificate
// over the header authenticates the entire batch content.
type BatchHeader struct {
	Cluster    int32
	ID         int64
	PrevDigest Digest
	Timestamp  int64

	LocalDigest     Digest
	PreparedDigest  Digest
	CommittedDigest Digest

	CD         CDVector
	LCE        int64
	MerkleRoot Digest
}

// Encode returns the canonical encoding of h.
func (h *BatchHeader) Encode() []byte {
	// Fixed-size fields plus the CD vector: domain tag (18) + cluster +
	// ID + timestamp + LCE (28) + five digests (160) + CD length prefix.
	e := enc{b: make([]byte, 0, 18+28+5*32+4+8*len(h.CD))}
	e.b = append(e.b, []byte("transedge-batch-v1")...)
	e.i32(h.Cluster)
	e.i64(h.ID)
	e.digest(h.PrevDigest)
	e.i64(h.Timestamp)
	e.digest(h.LocalDigest)
	e.digest(h.PreparedDigest)
	e.digest(h.CommittedDigest)
	e.cd(h.CD)
	e.i64(h.LCE)
	e.digest(h.MerkleRoot)
	return e.b
}

// Digest hashes the header encoding; this is the signed batch digest.
func (h *BatchHeader) Digest() Digest {
	return cryptoutil.Hash(h.Encode())
}

// digestMemoDisabled bypasses the sealed-batch memo so Header()/Digest()
// recompute on every call. A bench/test knob: the hotpath experiment
// flips it to record before/after rows.
var digestMemoDisabled atomic.Bool

// SetDigestMemo toggles sealed-batch digest memoization (on by default).
func SetDigestMemo(on bool) { digestMemoDisabled.Store(!on) }

// computeHeader derives the header of b, hashing all three segments.
func (b *Batch) computeHeader() BatchHeader {
	return BatchHeader{
		Cluster:         b.Cluster,
		ID:              b.ID,
		PrevDigest:      b.PrevDigest,
		Timestamp:       b.Timestamp,
		LocalDigest:     LocalSectionDigest(b.Local),
		PreparedDigest:  PreparedSectionDigest(b.Prepared),
		CommittedDigest: CommittedSectionDigest(b.Committed),
		CD:              b.CD.Clone(),
		LCE:             b.LCE,
		MerkleRoot:      b.MerkleRoot,
	}
}

// Header computes the header of b, including all section digests. Sealed
// batches compute it once and serve the cached copy thereafter — every
// consensus step (leader sign, follower pre-prepare check, validation,
// delivery) re-reads the header of the same immutable batch, and each
// fresh computation re-encodes all three segments. The cached header's
// CD vector is shared; callers treat headers as immutable snapshots.
func (b *Batch) Header() BatchHeader {
	if m := b.memo; m != nil && !digestMemoDisabled.Load() {
		m.once.Do(func() {
			m.header = b.computeHeader()
			m.digest = m.header.Digest()
		})
		return m.header
	}
	return b.computeHeader()
}

// Digest is the signed digest of the batch, memoized for sealed batches.
func (b *Batch) Digest() Digest {
	if m := b.memo; m != nil && !digestMemoDisabled.Load() {
		m.once.Do(func() {
			m.header = b.computeHeader()
			m.digest = m.header.Digest()
		})
		return m.digest
	}
	h := b.computeHeader()
	return h.Digest()
}

// CertifiedBatch pairs a batch with its f+1-signature certificate.
type CertifiedBatch struct {
	Batch *Batch
	Cert  cryptoutil.Certificate
}

// Proof errors.
var (
	ErrProofCert    = errors.New("protocol: batch certificate invalid")
	ErrProofSection = errors.New("protocol: section does not match header digest")
	ErrProofMissing = errors.New("protocol: transaction not present in proven section")
)

// PrepareProof proves that a transaction's prepare record is part of a
// certified batch of the sending cluster's SMR log: the batch header, the
// cluster's f+1 certificate over the header digest, and the full prepared
// segment (which the header commits to). This is the "proof that it is
// part of the SMR log" of Sec. 3.3.2/3.3.3; the header's CD vector doubles
// as the piggybacked dependency report of Sec. 4.3.3(c).
type PrepareProof struct {
	Header   BatchHeader
	Cert     cryptoutil.Certificate
	Prepared []PrepareRecord
}

// Verify checks the certificate (threshold signatures over the header
// digest) and that the prepared segment both matches the header and
// contains txnID. It returns the matching record.
func (p *PrepareProof) Verify(ring *cryptoutil.KeyRing, threshold int, txnID TxnID) (*PrepareRecord, error) {
	d := p.Header.Digest()
	if err := cryptoutil.VerifyCertificate(ring, p.Cert, d[:], threshold); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProofCert, err)
	}
	if PreparedSectionDigest(p.Prepared) != p.Header.PreparedDigest {
		return nil, ErrProofSection
	}
	for i := range p.Prepared {
		if p.Prepared[i].Txn.ID == txnID {
			return &p.Prepared[i], nil
		}
	}
	return nil, ErrProofMissing
}

// CommitProof proves that a commit record for a transaction is part of a
// certified batch (used when a coordinator distributes its decision,
// Sec. 3.3.4 step 7).
type CommitProof struct {
	Header    BatchHeader
	Cert      cryptoutil.Certificate
	Committed []CommitRecord
}

// Verify checks the certificate and segment binding and returns the commit
// record for txnID.
func (p *CommitProof) Verify(ring *cryptoutil.KeyRing, threshold int, txnID TxnID) (*CommitRecord, error) {
	d := p.Header.Digest()
	if err := cryptoutil.VerifyCertificate(ring, p.Cert, d[:], threshold); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProofCert, err)
	}
	if CommittedSectionDigest(p.Committed) != p.Header.CommittedDigest {
		return nil, ErrProofSection
	}
	for i := range p.Committed {
		if p.Committed[i].Txn.ID == txnID {
			return &p.Committed[i], nil
		}
	}
	return nil, ErrProofMissing
}
