package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"transedge/internal/cryptoutil"
)

// enc is an append-only canonical binary encoder. All integers are
// big-endian and all variable-length fields are length-prefixed, so two
// logically equal values always serialize to identical bytes.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(v string)    { e.bytes([]byte(v)) }
func (e *enc) digest(d Digest) { e.b = append(e.b, d[:]...) }

// EncodeTransaction returns the canonical encoding of t.
func EncodeTransaction(t *Transaction) []byte {
	var e enc
	e.u64(uint64(t.ID))
	e.u32(uint32(len(t.Reads)))
	for _, r := range t.Reads {
		e.str(r.Key)
		e.i64(r.Version)
	}
	e.u32(uint32(len(t.Writes)))
	for _, w := range t.Writes {
		e.str(w.Key)
		e.bytes(w.Value)
	}
	e.u32(uint32(len(t.Partitions)))
	for _, p := range t.Partitions {
		e.i32(p)
	}
	return e.b
}

// TransactionDigest hashes the canonical encoding of t.
func TransactionDigest(t *Transaction) Digest {
	return cryptoutil.Hash(EncodeTransaction(t))
}

// EncodeCDVector returns the canonical encoding of v.
func EncodeCDVector(v CDVector) []byte {
	var e enc
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(x)
	}
	return e.b
}

// EncodePrepareRecord returns the canonical encoding of r.
func EncodePrepareRecord(r *PrepareRecord) []byte {
	var e enc
	e.b = append(e.b, EncodeTransaction(&r.Txn)...)
	e.i32(r.CoordCluster)
	return e.b
}

// EncodeCommitRecord returns the canonical encoding of r.
func EncodeCommitRecord(r *CommitRecord) []byte {
	var e enc
	e.b = append(e.b, EncodeTransaction(&r.Txn)...)
	e.u8(uint8(r.Decision))
	e.u32(uint32(len(r.ReportedCDs)))
	for _, cd := range r.ReportedCDs {
		e.b = append(e.b, EncodeCDVector(cd)...)
	}
	return e.b
}

// Section digests: each batch segment hashes to one digest so that 2PC
// proofs can ship a single segment plus the header rather than the whole
// batch.

// LocalSectionDigest hashes the local segment.
func LocalSectionDigest(txns []Transaction) Digest {
	parts := make([][]byte, 0, len(txns)+1)
	parts = append(parts, []byte("local"))
	for i := range txns {
		parts = append(parts, EncodeTransaction(&txns[i]))
	}
	return cryptoutil.HashConcat(parts...)
}

// PreparedSectionDigest hashes the prepared segment.
func PreparedSectionDigest(recs []PrepareRecord) Digest {
	parts := make([][]byte, 0, len(recs)+1)
	parts = append(parts, []byte("prepared"))
	for i := range recs {
		parts = append(parts, EncodePrepareRecord(&recs[i]))
	}
	return cryptoutil.HashConcat(parts...)
}

// CommittedSectionDigest hashes the committed segment.
func CommittedSectionDigest(recs []CommitRecord) Digest {
	parts := make([][]byte, 0, len(recs)+1)
	parts = append(parts, []byte("committed"))
	for i := range recs {
		parts = append(parts, EncodeCommitRecord(&recs[i]))
	}
	return cryptoutil.HashConcat(parts...)
}

// BatchHeader is the fixed-size summary of a batch. The batch digest —
// the message replicas sign — is the hash of the header, and the header
// commits to every segment through the section digests, so a certificate
// over the header authenticates the entire batch content.
type BatchHeader struct {
	Cluster    int32
	ID         int64
	PrevDigest Digest
	Timestamp  int64

	LocalDigest     Digest
	PreparedDigest  Digest
	CommittedDigest Digest

	CD         CDVector
	LCE        int64
	MerkleRoot Digest
}

// Encode returns the canonical encoding of h.
func (h *BatchHeader) Encode() []byte {
	var e enc
	e.b = append(e.b, []byte("transedge-batch-v1")...)
	e.i32(h.Cluster)
	e.i64(h.ID)
	e.digest(h.PrevDigest)
	e.i64(h.Timestamp)
	e.digest(h.LocalDigest)
	e.digest(h.PreparedDigest)
	e.digest(h.CommittedDigest)
	e.b = append(e.b, EncodeCDVector(h.CD)...)
	e.i64(h.LCE)
	e.digest(h.MerkleRoot)
	return e.b
}

// Digest hashes the header encoding; this is the signed batch digest.
func (h *BatchHeader) Digest() Digest {
	return cryptoutil.Hash(h.Encode())
}

// Header computes the header of b, including all section digests.
func (b *Batch) Header() BatchHeader {
	return BatchHeader{
		Cluster:         b.Cluster,
		ID:              b.ID,
		PrevDigest:      b.PrevDigest,
		Timestamp:       b.Timestamp,
		LocalDigest:     LocalSectionDigest(b.Local),
		PreparedDigest:  PreparedSectionDigest(b.Prepared),
		CommittedDigest: CommittedSectionDigest(b.Committed),
		CD:              b.CD.Clone(),
		LCE:             b.LCE,
		MerkleRoot:      b.MerkleRoot,
	}
}

// Digest is the signed digest of the batch.
func (b *Batch) Digest() Digest {
	h := b.Header()
	return h.Digest()
}

// CertifiedBatch pairs a batch with its f+1-signature certificate.
type CertifiedBatch struct {
	Batch *Batch
	Cert  cryptoutil.Certificate
}

// Proof errors.
var (
	ErrProofCert    = errors.New("protocol: batch certificate invalid")
	ErrProofSection = errors.New("protocol: section does not match header digest")
	ErrProofMissing = errors.New("protocol: transaction not present in proven section")
)

// PrepareProof proves that a transaction's prepare record is part of a
// certified batch of the sending cluster's SMR log: the batch header, the
// cluster's f+1 certificate over the header digest, and the full prepared
// segment (which the header commits to). This is the "proof that it is
// part of the SMR log" of Sec. 3.3.2/3.3.3; the header's CD vector doubles
// as the piggybacked dependency report of Sec. 4.3.3(c).
type PrepareProof struct {
	Header   BatchHeader
	Cert     cryptoutil.Certificate
	Prepared []PrepareRecord
}

// Verify checks the certificate (threshold signatures over the header
// digest) and that the prepared segment both matches the header and
// contains txnID. It returns the matching record.
func (p *PrepareProof) Verify(ring *cryptoutil.KeyRing, threshold int, txnID TxnID) (*PrepareRecord, error) {
	d := p.Header.Digest()
	if err := cryptoutil.VerifyCertificate(ring, p.Cert, d[:], threshold); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProofCert, err)
	}
	if PreparedSectionDigest(p.Prepared) != p.Header.PreparedDigest {
		return nil, ErrProofSection
	}
	for i := range p.Prepared {
		if p.Prepared[i].Txn.ID == txnID {
			return &p.Prepared[i], nil
		}
	}
	return nil, ErrProofMissing
}

// CommitProof proves that a commit record for a transaction is part of a
// certified batch (used when a coordinator distributes its decision,
// Sec. 3.3.4 step 7).
type CommitProof struct {
	Header    BatchHeader
	Cert      cryptoutil.Certificate
	Committed []CommitRecord
}

// Verify checks the certificate and segment binding and returns the commit
// record for txnID.
func (p *CommitProof) Verify(ring *cryptoutil.KeyRing, threshold int, txnID TxnID) (*CommitRecord, error) {
	d := p.Header.Digest()
	if err := cryptoutil.VerifyCertificate(ring, p.Cert, d[:], threshold); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProofCert, err)
	}
	if CommittedSectionDigest(p.Committed) != p.Header.CommittedDigest {
		return nil, ErrProofSection
	}
	for i := range p.Committed {
		if p.Committed[i].Txn.ID == txnID {
			return &p.Committed[i], nil
		}
	}
	return nil, ErrProofMissing
}
