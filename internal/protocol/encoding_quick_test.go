package protocol

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Random generators for property tests. Canonical encoding is the
// foundation of every signature in the system, so it gets adversarial
// random coverage: equal values must encode equal, unequal values must
// (with overwhelming probability) digest differently.

func randKey(r *rand.Rand) string {
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randTxn(r *rand.Rand) Transaction {
	t := Transaction{ID: TxnID(r.Uint64())}
	for i := 0; i < r.Intn(4); i++ {
		t.Reads = append(t.Reads, ReadEntry{Key: randKey(r), Version: r.Int63n(100) - 1})
	}
	for i := 0; i < r.Intn(4); i++ {
		val := make([]byte, r.Intn(16))
		r.Read(val)
		t.Writes = append(t.Writes, WriteOp{Key: randKey(r), Value: val})
	}
	for i := 0; i < r.Intn(3); i++ {
		t.Partitions = append(t.Partitions, int32(r.Intn(5)))
	}
	return t
}

func cloneTxn(t Transaction) Transaction {
	out := t
	out.Reads = append([]ReadEntry(nil), t.Reads...)
	out.Writes = make([]WriteOp, len(t.Writes))
	for i, w := range t.Writes {
		out.Writes[i] = WriteOp{Key: w.Key, Value: append([]byte(nil), w.Value...)}
	}
	out.Partitions = append([]int32(nil), t.Partitions...)
	return out
}

func TestEncodeTransactionEqualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randTxn(r)
		b := cloneTxn(a)
		return bytes.Equal(EncodeTransaction(&a), EncodeTransaction(&b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTransactionInjectivityProperty(t *testing.T) {
	// Distinct random transactions should never share a digest.
	r := rand.New(rand.NewSource(99))
	seen := make(map[Digest]Transaction)
	for i := 0; i < 500; i++ {
		txn := randTxn(r)
		d := TransactionDigest(&txn)
		if prev, dup := seen[d]; dup && !reflect.DeepEqual(prev, txn) {
			t.Fatalf("digest collision between %+v and %+v", prev, txn)
		}
		seen[d] = txn
	}
}

func TestBatchHeaderEncodingUnambiguousProperty(t *testing.T) {
	// Two random batches with any differing field must digest
	// differently; identical batches must digest identically.
	r := rand.New(rand.NewSource(7))
	randBatch := func() *Batch {
		b := &Batch{
			Cluster:   int32(r.Intn(5)),
			ID:        r.Int63n(1000),
			Timestamp: r.Int63(),
			CD:        CDVector{r.Int63n(10) - 1, r.Int63n(10) - 1},
			LCE:       r.Int63n(10) - 1,
		}
		r.Read(b.PrevDigest[:])
		r.Read(b.MerkleRoot[:])
		for i := 0; i < r.Intn(3); i++ {
			b.Local = append(b.Local, randTxn(r))
		}
		for i := 0; i < r.Intn(2); i++ {
			b.Prepared = append(b.Prepared, PrepareRecord{Txn: randTxn(r), CoordCluster: int32(r.Intn(5))})
		}
		for i := 0; i < r.Intn(2); i++ {
			b.Committed = append(b.Committed, CommitRecord{
				Txn:      randTxn(r),
				Decision: Decision(1 + r.Intn(2)),
			})
		}
		return b
	}
	seen := make(map[Digest]bool)
	for i := 0; i < 300; i++ {
		b := randBatch()
		d1 := b.Digest()
		d2 := b.Digest()
		if d1 != d2 {
			t.Fatal("batch digest not deterministic")
		}
		if seen[d1] {
			t.Fatal("random batch digest collision")
		}
		seen[d1] = true
	}
}

func TestSectionDigestsIndependent(t *testing.T) {
	// The three segment digests use distinct domain tags: identical
	// transaction content in different segments must not produce equal
	// digests (no cross-segment substitution).
	r := rand.New(rand.NewSource(3))
	txn := randTxn(r)
	local := LocalSectionDigest([]Transaction{txn})
	prepared := PreparedSectionDigest([]PrepareRecord{{Txn: txn}})
	committed := CommittedSectionDigest([]CommitRecord{{Txn: txn, Decision: DecisionCommit}})
	if local == prepared || prepared == committed || local == committed {
		t.Fatal("segment digests are not domain-separated")
	}
	// Empty segments are distinct too.
	if LocalSectionDigest(nil) == PreparedSectionDigest(nil) {
		t.Fatal("empty segment digests collide")
	}
}
