package protocol

import (
	"bytes"
	"testing"
	"testing/quick"

	"transedge/internal/cryptoutil"
)

func sampleTxn(id TxnID) Transaction {
	return Transaction{
		ID:         id,
		Reads:      []ReadEntry{{Key: "x", Version: 3}, {Key: "y", Version: 0}},
		Writes:     []WriteOp{{Key: "x", Value: []byte("new-x")}},
		Partitions: []int32{0, 2},
	}
}

func TestMakeTxnID(t *testing.T) {
	id := MakeTxnID(7, 42)
	if uint64(id)>>32 != 7 || uint64(id)&0xffffffff != 42 {
		t.Fatalf("MakeTxnID packed wrong: %x", uint64(id))
	}
	if id.String() != "t7.42" {
		t.Fatalf("String = %q", id.String())
	}
}

func TestPartitionerStableAndInRange(t *testing.T) {
	p := Partitioner{N: 5}
	for _, k := range []string{"a", "b", "key-123", ""} {
		c := p.Of(k)
		if c < 0 || c >= 5 {
			t.Fatalf("Of(%q) = %d out of range", k, c)
		}
		if c != p.Of(k) {
			t.Fatalf("Of(%q) not deterministic", k)
		}
	}
}

func TestPartitionsOfSortedDeduped(t *testing.T) {
	p := Partitioner{N: 5}
	reads := []ReadEntry{{Key: "a"}, {Key: "b"}, {Key: "c"}, {Key: "d"}, {Key: "e"}, {Key: "f"}}
	parts := p.PartitionsOf(reads, []WriteOp{{Key: "a"}})
	for i := 1; i < len(parts); i++ {
		if parts[i] <= parts[i-1] {
			t.Fatalf("partitions not sorted/deduped: %v", parts)
		}
	}
}

func TestReadsWritesFor(t *testing.T) {
	p := Partitioner{N: 3}
	txn := Transaction{
		Reads:  []ReadEntry{{Key: "a"}, {Key: "b"}, {Key: "c"}},
		Writes: []WriteOp{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}},
	}
	totalReads, totalWrites := 0, 0
	for c := int32(0); c < 3; c++ {
		totalReads += len(txn.ReadsFor(p, c))
		totalWrites += len(txn.WritesFor(p, c))
	}
	if totalReads != 3 || totalWrites != 2 {
		t.Fatalf("partition split lost ops: reads %d writes %d", totalReads, totalWrites)
	}
}

func TestCDVectorNewAndClone(t *testing.T) {
	v := NewCDVector(3)
	for _, x := range v {
		if x != NoDependency {
			t.Fatalf("NewCDVector entry = %d, want %d", x, NoDependency)
		}
	}
	c := v.Clone()
	c[0] = 7
	if v[0] != NoDependency {
		t.Fatal("Clone shares storage")
	}
}

func TestCDVectorMaxInto(t *testing.T) {
	v := CDVector{2, -1, 5}
	v.MaxInto(CDVector{1, 3, 5})
	want := CDVector{2, 3, 5}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("MaxInto = %v, want %v", v, want)
		}
	}
}

func TestCDVectorMaxIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxInto with mismatched lengths did not panic")
		}
	}()
	v := CDVector{1}
	v.MaxInto(CDVector{1, 2})
}

func TestCDVectorMaxIntoProperty(t *testing.T) {
	// Result is an upper bound of both inputs and idempotent.
	f := func(a, b []int64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x := CDVector(a[:n]).Clone()
		y := CDVector(b[:n])
		x.MaxInto(y)
		for i := 0; i < n; i++ {
			if x[i] < a[i] || x[i] < y[i] {
				return false
			}
		}
		again := x.Clone()
		again.MaxInto(y)
		for i := 0; i < n; i++ {
			if again[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTransactionDeterministic(t *testing.T) {
	a := sampleTxn(MakeTxnID(1, 1))
	b := sampleTxn(MakeTxnID(1, 1))
	if !bytes.Equal(EncodeTransaction(&a), EncodeTransaction(&b)) {
		t.Fatal("equal transactions encode differently")
	}
	b.Reads[0].Version = 4
	if bytes.Equal(EncodeTransaction(&a), EncodeTransaction(&b)) {
		t.Fatal("different transactions encode identically")
	}
}

func TestTransactionDigestSensitivity(t *testing.T) {
	base := sampleTxn(MakeTxnID(1, 1))
	d := TransactionDigest(&base)

	mutations := []func(*Transaction){
		func(x *Transaction) { x.ID = MakeTxnID(1, 2) },
		func(x *Transaction) { x.Reads[0].Key = "z" },
		func(x *Transaction) { x.Writes[0].Value = []byte("other") },
		func(x *Transaction) { x.Partitions = []int32{0} },
		func(x *Transaction) { x.Reads = x.Reads[:1] },
	}
	for i, m := range mutations {
		x := sampleTxn(MakeTxnID(1, 1))
		x.Reads = append([]ReadEntry(nil), x.Reads...)
		x.Writes = append([]WriteOp(nil), x.Writes...)
		m(&x)
		if TransactionDigest(&x) == d {
			t.Fatalf("mutation %d did not change the digest", i)
		}
	}
}

func sampleBatch() *Batch {
	txn := sampleTxn(MakeTxnID(1, 1))
	return &Batch{
		Cluster:   0,
		ID:        2,
		Timestamp: 12345,
		Local:     []Transaction{sampleTxn(MakeTxnID(2, 1))},
		Prepared:  []PrepareRecord{{Txn: txn, CoordCluster: 0}},
		Committed: []CommitRecord{{
			Txn:         sampleTxn(MakeTxnID(3, 1)),
			Decision:    DecisionCommit,
			ReportedCDs: []CDVector{{2, 5}},
		}},
		CD:         CDVector{2, 5},
		LCE:        0,
		MerkleRoot: cryptoutil.Hash([]byte("root")),
	}
}

func TestBatchHeaderCommitsToSegments(t *testing.T) {
	b := sampleBatch()
	d := b.Digest()

	// Mutating any segment must change the batch digest.
	b2 := sampleBatch()
	b2.Local[0].ID = MakeTxnID(9, 9)
	if b2.Digest() == d {
		t.Fatal("local segment mutation invisible in digest")
	}
	b3 := sampleBatch()
	b3.Prepared[0].CoordCluster = 3
	if b3.Digest() == d {
		t.Fatal("prepared segment mutation invisible in digest")
	}
	b4 := sampleBatch()
	b4.Committed[0].Decision = DecisionAbort
	if b4.Digest() == d {
		t.Fatal("committed segment mutation invisible in digest")
	}
	b5 := sampleBatch()
	b5.CD[0] = 99
	if b5.Digest() == d {
		t.Fatal("CD vector mutation invisible in digest")
	}
	b6 := sampleBatch()
	b6.LCE = 1
	if b6.Digest() == d {
		t.Fatal("LCE mutation invisible in digest")
	}
	b7 := sampleBatch()
	b7.MerkleRoot = cryptoutil.Hash([]byte("other"))
	if b7.Digest() == d {
		t.Fatal("merkle root mutation invisible in digest")
	}
}

func TestBatchDigestDeterministic(t *testing.T) {
	if sampleBatch().Digest() != sampleBatch().Digest() {
		t.Fatal("batch digest not deterministic")
	}
}

func ringWithCluster(t *testing.T, cluster int32, n int) (*cryptoutil.KeyRing, []cryptoutil.KeyPair) {
	t.Helper()
	ring := cryptoutil.NewKeyRing()
	pairs := make([]cryptoutil.KeyPair, n)
	for r := 0; r < n; r++ {
		id := cryptoutil.NodeID{Cluster: cluster, Replica: int32(r)}
		pairs[r] = cryptoutil.DeriveKeyPair(id, 5)
		ring.Add(id, pairs[r].Public)
	}
	return ring, pairs
}

func certify(pairs []cryptoutil.KeyPair, cluster int32, msg []byte, k int) cryptoutil.Certificate {
	cert := cryptoutil.Certificate{Cluster: cluster}
	for r := 0; r < k; r++ {
		id := cryptoutil.NodeID{Cluster: cluster, Replica: int32(r)}
		cert.Signatures = append(cert.Signatures, cryptoutil.SignCertificate(pairs[r], id, msg))
	}
	return cert
}

func TestPrepareProofVerify(t *testing.T) {
	ring, pairs := ringWithCluster(t, 0, 4)
	b := sampleBatch()
	h := b.Header()
	d := h.Digest()
	proof := PrepareProof{Header: h, Cert: certify(pairs, 0, d[:], 2), Prepared: b.Prepared}

	rec, err := proof.Verify(ring, 2, b.Prepared[0].Txn.ID)
	if err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if rec.Txn.ID != b.Prepared[0].Txn.ID {
		t.Fatal("wrong record returned")
	}
}

func TestPrepareProofRejectsTamperedSegment(t *testing.T) {
	ring, pairs := ringWithCluster(t, 0, 4)
	b := sampleBatch()
	h := b.Header()
	d := h.Digest()
	tampered := append([]PrepareRecord(nil), b.Prepared...)
	tampered[0].Txn.Writes = []WriteOp{{Key: "x", Value: []byte("evil")}}
	proof := PrepareProof{Header: h, Cert: certify(pairs, 0, d[:], 2), Prepared: tampered}
	if _, err := proof.Verify(ring, 2, b.Prepared[0].Txn.ID); err == nil {
		t.Fatal("tampered prepared segment accepted")
	}
}

func TestPrepareProofRejectsMissingTxn(t *testing.T) {
	ring, pairs := ringWithCluster(t, 0, 4)
	b := sampleBatch()
	h := b.Header()
	d := h.Digest()
	proof := PrepareProof{Header: h, Cert: certify(pairs, 0, d[:], 2), Prepared: b.Prepared}
	if _, err := proof.Verify(ring, 2, MakeTxnID(99, 99)); err == nil {
		t.Fatal("proof accepted for absent transaction")
	}
}

func TestPrepareProofRejectsWeakCertificate(t *testing.T) {
	ring, pairs := ringWithCluster(t, 0, 4)
	b := sampleBatch()
	h := b.Header()
	d := h.Digest()
	proof := PrepareProof{Header: h, Cert: certify(pairs, 0, d[:], 1), Prepared: b.Prepared}
	if _, err := proof.Verify(ring, 2, b.Prepared[0].Txn.ID); err == nil {
		t.Fatal("sub-threshold certificate accepted")
	}
}

func TestCommitProofVerify(t *testing.T) {
	ring, pairs := ringWithCluster(t, 0, 4)
	b := sampleBatch()
	h := b.Header()
	d := h.Digest()
	proof := CommitProof{Header: h, Cert: certify(pairs, 0, d[:], 2), Committed: b.Committed}
	rec, err := proof.Verify(ring, 2, b.Committed[0].Txn.ID)
	if err != nil {
		t.Fatalf("valid commit proof rejected: %v", err)
	}
	if rec.Decision != DecisionCommit {
		t.Fatal("wrong decision in record")
	}

	// Flipping the decision inside the shipped segment must fail.
	bad := append([]CommitRecord(nil), b.Committed...)
	bad[0].Decision = DecisionAbort
	proof2 := CommitProof{Header: h, Cert: certify(pairs, 0, d[:], 2), Committed: bad}
	if _, err := proof2.Verify(ring, 2, b.Committed[0].Txn.ID); err == nil {
		t.Fatal("decision flip accepted")
	}
}

func TestDecisionAndStatusStrings(t *testing.T) {
	if DecisionCommit.String() != "commit" || DecisionAbort.String() != "abort" || DecisionPending.String() != "pending" {
		t.Fatal("Decision strings wrong")
	}
	if StatusCommitted.String() != "committed" || StatusAborted.String() != "aborted" {
		t.Fatal("TxnStatus strings wrong")
	}
	if Decision(99).String() == "" || TxnStatus(99).String() == "" {
		t.Fatal("unknown values must still format")
	}
}
