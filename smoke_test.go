package bench_test

import (
	"testing"

	"transedge/transedge"
)

// TestSmoke boots a two-cluster deployment through the public API,
// commits one local and one distributed read-write transaction, and
// verifies both through a snapshot read-only transaction. It runs in
// short mode so `go test -short .` exercises the full stack in well
// under a second.
func TestSmoke(t *testing.T) {
	sys, err := transedge.Start(transedge.Options{
		Clusters: 2,
		F:        1,
		Seed:     7,
		InitialData: map[string][]byte{
			"alice": []byte("100"), "bob": []byte("50"),
			"carol": []byte("30"), "dave": []byte("80"),
			"erin": []byte("10"), "frank": []byte("20"),
			"grace": []byte("60"), "heidi": []byte("90"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	// Find one key pair within a single partition (a local transaction)
	// and one spanning both (a distributed 2PC transaction), with all
	// four keys distinct.
	keys := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	var localA, localB, distA, distB string
	for _, a := range keys {
		for _, b := range keys {
			if a != b && sys.PartitionOf(a) == sys.PartitionOf(b) {
				localA, localB = a, b
				break
			}
		}
		if localA != "" {
			break
		}
	}
	for _, a := range keys {
		if a == localA || a == localB {
			continue
		}
		for _, b := range keys {
			if b == a || b == localA || b == localB {
				continue
			}
			if sys.PartitionOf(a) != sys.PartitionOf(b) {
				distA, distB = a, b
				break
			}
		}
		if distA != "" {
			break
		}
	}
	if localA == "" || distA == "" {
		t.Fatalf("seed keys do not cover both txn shapes: %v", keys)
	}

	c := sys.NewClient()

	localTxn := c.Begin()
	if _, err := localTxn.Read(localA); err != nil {
		t.Fatalf("local read %s: %v", localA, err)
	}
	localTxn.Write(localA, []byte("local-1"))
	localTxn.Write(localB, []byte("local-2"))
	if err := localTxn.Commit(); err != nil {
		t.Fatalf("local commit: %v", err)
	}

	distTxn := c.Begin()
	if _, err := distTxn.Read(distA); err != nil {
		t.Fatalf("distributed read %s: %v", distA, err)
	}
	if _, err := distTxn.Read(distB); err != nil {
		t.Fatalf("distributed read %s: %v", distB, err)
	}
	distTxn.Write(distA, []byte("dist-1"))
	distTxn.Write(distB, []byte("dist-2"))
	if err := distTxn.Commit(); err != nil {
		t.Fatalf("distributed commit: %v", err)
	}

	// A verified snapshot must observe both committed transactions.
	snap, err := c.ReadOnly([]string{localA, localB, distA, distB})
	if err != nil {
		t.Fatalf("read-only: %v", err)
	}
	want := map[string]string{localA: "local-1", localB: "local-2", distA: "dist-1", distB: "dist-2"}
	for k, v := range want {
		if got := string(snap.Values[k]); got != v {
			t.Errorf("snapshot %s = %q, want %q", k, got, v)
		}
	}
}
