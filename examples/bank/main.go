// Bank: concurrent cross-edge transfers with a consistent global audit.
//
// Accounts are spread over five edge partitions. Teller goroutines run
// random transfers (distributed read-write transactions), while an
// auditor continuously takes verified snapshot reads of the whole ledger
// and checks that the total balance never wavers — the snapshot
// consistency guarantee of the paper's read-only protocol, exercised
// under real concurrency.
//
//	go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"transedge/transedge"
)

const (
	accounts = 20
	initial  = 1000
	tellers  = 4
	runFor   = 2 * time.Second
)

func account(i int) string { return fmt.Sprintf("acct-%02d", i) }

func main() {
	data := make(map[string][]byte, accounts)
	keys := make([]string, accounts)
	for i := 0; i < accounts; i++ {
		keys[i] = account(i)
		data[keys[i]] = []byte(strconv.Itoa(initial))
	}
	sys, err := transedge.Start(transedge.Options{
		Clusters:      5,
		F:             1,
		Seed:          7,
		BatchInterval: time.Millisecond,
		InitialData:   data,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	fmt.Println("bank open:", sys)

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		commits  atomic.Int64
		aborts   atomic.Int64
		audits   atomic.Int64
		repaired atomic.Int64
	)

	// Tellers: random transfers between accounts on (usually) different
	// edge partitions.
	for w := 0; w < tellers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sys.NewClient()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				from, to := keys[rng.Intn(accounts)], keys[rng.Intn(accounts)]
				if from == to {
					continue
				}
				txn := c.Begin()
				fv, err := txn.Read(from)
				if err != nil {
					continue
				}
				tv, err := txn.Read(to)
				if err != nil {
					continue
				}
				fb, _ := strconv.Atoi(string(fv))
				tb, _ := strconv.Atoi(string(tv))
				amount := 1 + rng.Intn(20)
				if fb < amount {
					continue
				}
				txn.Write(from, []byte(strconv.Itoa(fb-amount)))
				txn.Write(to, []byte(strconv.Itoa(tb+amount)))
				switch err := txn.Commit(); {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, transedge.ErrAborted):
					aborts.Add(1) // OCC conflict; the teller just retries
				default:
					log.Fatal("teller:", err)
				}
			}
		}(w)
	}

	// Auditor: full-ledger verified snapshots; the invariant must hold on
	// every single read, no matter how the transfers interleave.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sys.NewClient()
		for !stop.Load() {
			snap, err := c.ReadOnly(keys)
			if err != nil {
				log.Fatal("auditor:", err)
			}
			total := 0
			for _, k := range keys {
				v, _ := strconv.Atoi(string(snap.Values[k]))
				total += v
			}
			if total != accounts*initial {
				log.Fatalf("AUDIT FAILED: ledger sums to %d, want %d", total, accounts*initial)
			}
			audits.Add(1)
			if snap.Rounds > 1 {
				repaired.Add(1)
			}
		}
	}()

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("transfers: %d committed, %d aborted (conflicts)\n", commits.Load(), aborts.Load())
	fmt.Printf("audits:    %d verified snapshots, all summing to %d\n", audits.Load(), accounts*initial)
	fmt.Printf("           %d snapshots needed a dependency-repair round\n", repaired.Load())
}
