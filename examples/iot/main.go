// IoT telemetry: regional edge ingestion with a consistent global
// dashboard — the Global-Edge Data Management scenario that motivates the
// paper.
//
// Sensor gateways write device readings to their region's edge partition
// (local transactions: cheap, no cross-region coordination). A region
// summary row is updated alongside each reading. The dashboard reads all
// region summaries with one verified snapshot read-only transaction —
// touching one untrusted node per region — and renders a consistent
// global view.
//
//	go run ./examples/iot
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"transedge/transedge"
)

const regions = 4

// regionKey returns a key pinned to a region's partition by probing the
// key space (keys are placed by hash; gateways want region locality, so
// they pick keys that land on their partition — a real deployment would
// use a locality-aware partitioner).
func regionKey(sys *transedge.System, region int32, name string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("r%d/%s/%d", region, name, i)
		if sys.PartitionOf(k) == region {
			return k
		}
	}
}

func main() {
	// Bootstrap: a probe system computes region-local key names, then the
	// real system preloads them.
	probe, err := transedge.Start(transedge.Options{Clusters: regions, F: 1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	summaryKeys := make([]string, regions)
	deviceKeys := make([][]string, regions)
	for r := int32(0); r < regions; r++ {
		summaryKeys[r] = regionKey(probe, r, "summary")
		for d := 0; d < 3; d++ {
			deviceKeys[r] = append(deviceKeys[r], regionKey(probe, r, fmt.Sprintf("device-%d", d)))
		}
	}
	probe.Stop()

	data := make(map[string][]byte)
	for r := 0; r < regions; r++ {
		data[summaryKeys[r]] = []byte("0")
		for _, k := range deviceKeys[r] {
			data[k] = []byte("0")
		}
	}
	sys, err := transedge.Start(transedge.Options{
		Clusters:      regions,
		F:             1,
		Seed:          3,
		BatchInterval: time.Millisecond,
		InitialData:   data,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	fmt.Println("edge fleet up:", sys)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var ingested atomic.Int64

	// Gateways: one per region, ingesting readings with local
	// transactions (reading + summary row live on the same partition, so
	// no cross-region commit is ever needed).
	for r := 0; r < regions; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := sys.NewClient()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				dev := deviceKeys[r][rng.Intn(len(deviceKeys[r]))]
				txn := c.Begin()
				sum, err := txn.Read(summaryKeys[r])
				if err != nil {
					continue
				}
				count, _ := strconv.Atoi(string(sum))
				txn.Write(dev, []byte(strconv.Itoa(rng.Intn(100))))
				txn.Write(summaryKeys[r], []byte(strconv.Itoa(count+1)))
				if err := txn.Commit(); err != nil {
					if errors.Is(err, transedge.ErrAborted) {
						continue
					}
					log.Fatal("gateway:", err)
				}
				ingested.Add(1)
			}
		}(r)
	}

	// Dashboard: global snapshot over every region summary, five times.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sys.NewClient()
		for i := 0; i < 5; i++ {
			time.Sleep(300 * time.Millisecond)
			snap, err := c.ReadOnly(summaryKeys)
			if err != nil {
				log.Fatal("dashboard:", err)
			}
			fmt.Printf("dashboard #%d (rounds=%d): ", i+1, snap.Rounds)
			for r := 0; r < regions; r++ {
				fmt.Printf("region%d=%s ", r, snap.Values[summaryKeys[r]])
			}
			fmt.Println()
		}
		stop.Store(true)
	}()

	wg.Wait()
	fmt.Printf("ingested %d readings across %d regions; dashboards verified against f+1 certificates\n",
		ingested.Load(), regions)
}
