// Byzantine: the fault fleet. Stages eight attacks against a TransEdge
// deployment and asserts the system survives every one of them with f
// faults.
//
// Read-only path (the paper's verified-snapshot guarantee):
//  1. leader serves forged values        -> client verification rejects
//  2. leader serves truncated proofs     -> client verification rejects
//  3. leader replays a stale snapshot    -> staleness bound rejects
//
// Consensus path (the PBFT view change, DESIGN.md §7):
//  4. crashed leader                     -> survivors elect a new leader
//  5. equivocating leader                -> deposed, honest quorum moves on
//  6. vote-withholding follower          -> cluster commits without it
//  7. forged checkpoint votes            -> rejected, checkpoints stabilize
//  8. asymmetric partition of the leader -> followers time out and fail over
//
// This example wires the deployment through the internal packages because
// fault injection is (deliberately) not part of the public API.
//
//	go run ./examples/byzantine
//
// With -datadir every staged deployment also runs the durability layer
// (WAL + disk checkpoints, each attack in its own subdirectory), so the
// fleet doubles as a check that fault handling and the durability path
// compose.
//
//	go run ./examples/byzantine -datadir /tmp/fleet
//
// With -engine every staged deployment runs the chosen storage backend,
// so the fleet also checks that fault handling composes with, e.g., the
// log-structured engine:
//
//	go run ./examples/byzantine -engine lsm
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"transedge/internal/bft"
	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/protocol"
	"transedge/internal/store"
	"transedge/internal/transport"

	_ "transedge/internal/store/lsm" // registers the "lsm" engine for -engine
)

// datadir, when set, turns on the durability layer for every staged
// deployment. Each build gets its own subdirectory: the attacks reuse
// one seed, and a shared dir would make attack N+1 cold-restart from
// attack N's WAL instead of starting fresh.
var (
	datadir  = flag.String("datadir", "", "enable durability; each attack uses its own subdir")
	engine   = flag.String("engine", "", "storage backend per replica (default: sharded); see internal/store engine registry")
	fleetSeq int
)

func fleetDataDir() string {
	if *datadir == "" {
		return ""
	}
	fleetSeq++
	return filepath.Join(*datadir, fmt.Sprintf("attack-%02d", fleetSeq))
}

func buildSystem(ro map[core.NodeID]core.ROBehavior) *core.System {
	data := map[string][]byte{}
	for i := 0; i < 40; i++ {
		data[fmt.Sprintf("key-%02d", i)] = []byte("genuine")
	}
	sys := core.NewSystem(core.SystemConfig{
		Clusters:      2,
		F:             1,
		Seed:          9,
		BatchInterval: time.Millisecond,
		InitialData:   data,
		ROByzantine:   ro,
		DataDir:       fleetDataDir(),
		Engine:        *engine,
	})
	sys.Start()
	return sys
}

// buildFaultSystem is the consensus-fleet variant: one cluster with
// leader failover enabled, so the view-change machinery (not the client)
// is what has to absorb the fault.
func buildFaultSystem(mut func(*core.SystemConfig)) *core.System {
	data := map[string][]byte{}
	for i := 0; i < 40; i++ {
		data[fmt.Sprintf("key-%02d", i)] = []byte("genuine")
	}
	cfg := core.SystemConfig{
		Clusters:           1,
		F:                  1,
		Seed:               9,
		BatchInterval:      time.Millisecond,
		CheckpointInterval: 8,
		ViewTimeout:        30 * time.Millisecond,
		InitialData:        data,
		DataDir:            fleetDataDir(),
		Engine:             *engine,
	}
	if mut != nil {
		mut(&cfg)
	}
	sys := core.NewSystem(cfg)
	sys.Start()
	return sys
}

func newClient(sys *core.System, staleness time.Duration) *client.Client {
	return client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 5 * time.Second,
		MaxStaleness: staleness,
	})
}

// faultClient uses a tight timeout so failed attempts rotate across
// replicas quickly — that contact rotation is what arms the survivors'
// leader-progress timers while the leader is dead or byzantine.
func faultClient(sys *core.System) *client.Client {
	return client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 2 * time.Second,
	})
}

func keysFor(sys *core.System) []string {
	var keys []string
	for i := 0; i < 40 && len(keys) < 4; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if sys.Part.Of(k) == 0 { // served by the malicious leader
			keys = append(keys, k)
		}
	}
	return keys
}

// commitSome pushes n sequential single-key writes through the cluster,
// failing the fleet if any one of them errors.
func commitSome(c *client.Client, keys []string, tag string, n int) {
	for i := 0; i < n; i++ {
		txn := c.Begin()
		txn.Write(keys[i%len(keys)], []byte(fmt.Sprintf("%s-%d", tag, i)))
		if err := txn.Commit(); err != nil {
			log.Fatalf("  FLEET FAILED: commit %s-%d: %v", tag, i, err)
		}
	}
}

// pokeUntilCommit retries single-key commits until one succeeds. Each
// failed attempt still does protocol work: it lands on some replica,
// which forwards toward the faulty leader and arms its leader-progress
// timer — exactly how real client traffic drives a view change.
func pokeUntilCommit(c *client.Client, keys []string, deadline time.Duration) time.Duration {
	start := time.Now()
	limit := start.Add(deadline)
	var lastErr error
	for i := 0; time.Now().Before(limit); i++ {
		txn := c.Begin()
		txn.Write(keys[i%len(keys)], []byte(fmt.Sprintf("poke-%d", i)))
		if lastErr = txn.Commit(); lastErr == nil {
			return time.Since(start)
		}
	}
	log.Fatalf("  FLEET FAILED: no commit before the deadline; last error: %v", lastErr)
	return 0
}

// requireNewView asserts every replica in rs moved past view 0.
func requireNewView(sys *core.System, rs ...int32) {
	for _, r := range rs {
		if v := sys.Node(core.NodeID{Cluster: 0, Replica: r}).CurrentView(); v == 0 {
			log.Fatalf("  FLEET FAILED: replica %d never left view 0", r)
		}
	}
}

func main() {
	flag.Parse()
	if *engine != "" {
		// Fail fast with the valid names instead of staging eight attacks
		// against a typo'd backend label.
		probe, err := store.NewEngine(*engine, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if c, ok := probe.(interface{ Close() }); ok {
			c.Close()
		}
	}
	evil := core.NodeID{Cluster: 0, Replica: 0} // the partition's leader

	fmt.Println("attack 1: leader serves forged values (proofs unchanged)")
	sys := buildSystem(map[core.NodeID]core.ROBehavior{evil: {CorruptValues: true}})
	_, err := newClient(sys, 0).ReadOnly(keysFor(sys))
	report(err, client.ErrVerification)
	sys.Stop()

	fmt.Println("attack 2: leader serves truncated Merkle proofs")
	sys = buildSystem(map[core.NodeID]core.ROBehavior{evil: {CorruptProofs: true}})
	_, err = newClient(sys, 0).ReadOnly(keysFor(sys))
	report(err, client.ErrVerification)
	sys.Stop()

	fmt.Println("attack 3: leader replays an old (but internally consistent) snapshot")
	sys = buildSystem(map[core.NodeID]core.ROBehavior{evil: {ServeStaleBatch: true}})
	time.Sleep(150 * time.Millisecond) // let the genesis snapshot age
	_, err = newClient(sys, 100*time.Millisecond).ReadOnly(keysFor(sys))
	report(err, client.ErrStale)
	fmt.Println("  (without a staleness bound this attack is undetectable — the")
	fmt.Println("   freshness limitation the paper concedes in Sec. 4.4.2)")
	if _, lax := newClient(sys, 0).ReadOnly(keysFor(sys)); lax == nil {
		fmt.Println("  unbounded client accepted the stale snapshot, as expected")
	}
	sys.Stop()

	crashedLeader()
	equivocatingLeader()
	withholdingFollower()
	forgedCheckpointVotes()
	asymmetricPartition()

	fmt.Println("all attacks detected or survived")
}

// attack 4: the leader process dies. The survivors' progress timers fire,
// 2f+1 view-change votes form a NewView, and replica 1 takes over.
func crashedLeader() {
	fmt.Println("attack 4: crashed leader (process killed mid-run)")
	sys := buildFaultSystem(nil)
	defer sys.Stop()
	c := faultClient(sys)
	keys := keysFor(sys)

	commitSome(c, keys, "pre", 5)
	sys.StopReplica(core.NodeID{Cluster: 0, Replica: 0})
	took := pokeUntilCommit(c, keys, 20*time.Second)
	if lead := sys.Leader(0); lead.Replica == 0 {
		log.Fatalf("  FLEET FAILED: cluster still routed to the dead leader %v", lead)
	}
	requireNewView(sys, 1, 2, 3)
	commitSome(c, keys, "post", 10)
	fmt.Printf("  survived: commits resumed %v after the kill, leader now %v\n",
		took.Round(time.Millisecond), sys.Leader(0))
}

// attack 5: the leader equivocates — a different batch to every follower.
// No prepare quorum can form on any one digest, progress stalls, and the
// honest replicas depose it.
func equivocatingLeader() {
	fmt.Println("attack 5: equivocating leader (conflicting proposals per follower)")
	sys := buildFaultSystem(func(cfg *core.SystemConfig) {
		cfg.Byzantine = map[core.NodeID]bft.Behavior{
			{Cluster: 0, Replica: 0}: {Equivocate: true},
		}
	})
	defer sys.Stop()
	c := faultClient(sys)
	keys := keysFor(sys)

	took := pokeUntilCommit(c, keys, 20*time.Second)
	requireNewView(sys, 1, 2, 3)
	commitSome(c, keys, "post", 10)
	fmt.Printf("  survived: equivocator deposed, commits flowed %v after first poke\n",
		took.Round(time.Millisecond))
}

// attack 6: f followers go mute and withhold every vote. The leader still
// reaches its 2f+1 quorum from the remaining replicas; nobody suspects
// anybody, and no spurious view change fires.
func withholdingFollower() {
	fmt.Println("attack 6: vote-withholding follower (f mute replicas)")
	sys := buildFaultSystem(func(cfg *core.SystemConfig) {
		// This scenario asserts NO failover happens, so the watchdog gets
		// headroom against race-detector scheduling stalls.
		cfg.ViewTimeout = 500 * time.Millisecond
		cfg.Byzantine = map[core.NodeID]bft.Behavior{
			{Cluster: 0, Replica: 3}: {Silent: true},
		}
	})
	defer sys.Stop()
	c := faultClient(sys)
	keys := keysFor(sys)

	commitSome(c, keys, "mute", 20)
	for r := int32(0); r < 3; r++ {
		if v := sys.Node(core.NodeID{Cluster: 0, Replica: r}).CurrentView(); v != 0 {
			log.Fatalf("  FLEET FAILED: spurious view change to %d on replica %d", v, r)
		}
	}
	fmt.Println("  survived: 20 commits with a mute follower, view unchanged")
}

// attack 7: an attacker spoofing replica 3 floods the cluster with forged
// checkpoint votes — divergent state digests, garbage signatures — at
// every upcoming checkpoint boundary. Honest replicas ignore digests that
// don't match their own derived state and verify every signature, so the
// forgeries can at worst displace replica 3's buffered vote; checkpoints
// stabilize from the honest quorum and a verified read still passes.
func forgedCheckpointVotes() {
	fmt.Println("attack 7: forged checkpoint votes (spoofed replica, bogus digests)")
	sys := buildFaultSystem(func(cfg *core.SystemConfig) {
		// Checkpoint hygiene, not failover, is under test here — keep the
		// watchdog from firing on race-detector stalls.
		cfg.ViewTimeout = 500 * time.Millisecond
	})
	defer sys.Stop()
	c := faultClient(sys)
	keys := keysFor(sys)

	forger := core.NodeID{Cluster: 0, Replica: 3}
	bogus := protocol.Digest{0xde, 0xad, 0xbe, 0xef}
	for id := int64(8); id <= 64; id += 8 {
		for r := int32(0); r < 3; r++ {
			sys.Net.Send(forger, core.NodeID{Cluster: 0, Replica: r}, &protocol.Checkpoint{
				Cluster: 0, BatchID: id, StateDigest: bogus,
				Replica: 3, Sig: []byte("not-a-signature"),
			})
		}
	}

	commitSome(c, keys, "chk", 40) // crosses several checkpoint boundaries
	deadline := time.Now().Add(10 * time.Second)
	for {
		stable := 0
		for r := int32(0); r < 4; r++ {
			if sys.Node(core.NodeID{Cluster: 0, Replica: r}).StableCheckpoint() > 0 {
				stable++
			}
		}
		if stable == 4 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("  FLEET FAILED: only %d/4 replicas stabilized a checkpoint", stable)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := newClient(sys, 0).ReadOnly(keys); err != nil {
		log.Fatalf("  FLEET FAILED: verified read after forged votes: %v", err)
	}
	fmt.Println("  survived: forgeries rejected, checkpoints stable on 4/4, reads verify")
}

// attack 8: an asymmetric partition — the leader still hears the cluster
// but none of its own messages get through. The nastiest failover shape:
// the leader believes it leads while the followers starve, time out, and
// vote it out without it.
func asymmetricPartition() {
	fmt.Println("attack 8: asymmetric partition (leader outbound silently dropped)")
	sys := buildFaultSystem(nil)
	defer sys.Stop()
	c := faultClient(sys)
	keys := keysFor(sys)

	commitSome(c, keys, "pre", 5)
	leader := core.NodeID{Cluster: 0, Replica: 0}
	sys.Net.SetFilter(transport.SilenceOutbound(leader, func(to core.NodeID) bool {
		return to.Cluster == 0 && to != leader
	}))
	took := pokeUntilCommit(c, keys, 20*time.Second)
	if lead := sys.Leader(0); lead.Replica == 0 {
		log.Fatalf("  FLEET FAILED: cluster still routed to the partitioned leader %v", lead)
	}
	requireNewView(sys, 1, 2, 3)
	commitSome(c, keys, "post", 10)
	fmt.Printf("  survived: partitioned leader voted out, commits resumed after %v\n",
		took.Round(time.Millisecond))
}

func report(err, want error) {
	if err == nil {
		log.Fatal("  ATTACK SUCCEEDED: client accepted a forged response")
	}
	if !errors.Is(err, want) {
		log.Fatalf("  unexpected error class: %v", err)
	}
	fmt.Printf("  detected and rejected: %v\n", err)
}
