// Byzantine: demonstrates that TransEdge clients catch malicious read
// servers. Three attacks are staged against the read-only path —
// corrupted values, truncated Merkle proofs, and stale-but-consistent
// snapshots — and the client's verification rejects each one.
//
// This example wires the deployment through the internal packages because
// fault injection is (deliberately) not part of the public API.
//
//	go run ./examples/byzantine
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
)

func buildSystem(ro map[core.NodeID]core.ROBehavior) *core.System {
	data := map[string][]byte{}
	for i := 0; i < 40; i++ {
		data[fmt.Sprintf("key-%02d", i)] = []byte("genuine")
	}
	sys := core.NewSystem(core.SystemConfig{
		Clusters:      2,
		F:             1,
		Seed:          9,
		BatchInterval: time.Millisecond,
		InitialData:   data,
		ROByzantine:   ro,
	})
	sys.Start()
	return sys
}

func newClient(sys *core.System, staleness time.Duration) *client.Client {
	return client.New(client.Config{
		ID: 1, Net: sys.Net, Ring: sys.Ring, Part: sys.Part,
		Clusters: sys.Cfg.Clusters, Timeout: 5 * time.Second,
		MaxStaleness: staleness,
	})
}

func keysFor(sys *core.System) []string {
	var keys []string
	for i := 0; i < 40 && len(keys) < 4; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if sys.Part.Of(k) == 0 { // served by the malicious leader
			keys = append(keys, k)
		}
	}
	return keys
}

func main() {
	evil := core.NodeID{Cluster: 0, Replica: 0} // the partition's leader

	fmt.Println("attack 1: leader serves forged values (proofs unchanged)")
	sys := buildSystem(map[core.NodeID]core.ROBehavior{evil: {CorruptValues: true}})
	_, err := newClient(sys, 0).ReadOnly(keysFor(sys))
	report(err, client.ErrVerification)
	sys.Stop()

	fmt.Println("attack 2: leader serves truncated Merkle proofs")
	sys = buildSystem(map[core.NodeID]core.ROBehavior{evil: {CorruptProofs: true}})
	_, err = newClient(sys, 0).ReadOnly(keysFor(sys))
	report(err, client.ErrVerification)
	sys.Stop()

	fmt.Println("attack 3: leader replays an old (but internally consistent) snapshot")
	sys = buildSystem(map[core.NodeID]core.ROBehavior{evil: {ServeStaleBatch: true}})
	time.Sleep(150 * time.Millisecond) // let the genesis snapshot age
	_, err = newClient(sys, 100*time.Millisecond).ReadOnly(keysFor(sys))
	report(err, client.ErrStale)
	fmt.Println("  (without a staleness bound this attack is undetectable — the")
	fmt.Println("   freshness limitation the paper concedes in Sec. 4.4.2)")
	if _, lax := newClient(sys, 0).ReadOnly(keysFor(sys)); lax == nil {
		fmt.Println("  unbounded client accepted the stale snapshot, as expected")
	}
	sys.Stop()

	fmt.Println("all attacks detected")
}

func report(err, want error) {
	if err == nil {
		log.Fatal("  ATTACK SUCCEEDED: client accepted a forged response")
	}
	if !errors.Is(err, want) {
		log.Fatalf("  unexpected error class: %v", err)
	}
	fmt.Printf("  detected and rejected: %v\n", err)
}
