// Quickstart: start a small TransEdge deployment, run a read-write
// transaction, and read a verified snapshot back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"transedge/transedge"
)

func main() {
	// Three partitions, each replicated on a 4-node byzantine cluster
	// (f=1), with a little initial data.
	sys, err := transedge.Start(transedge.Options{
		Clusters:      3,
		F:             1,
		Seed:          1,
		BatchInterval: time.Millisecond,
		InitialData: map[string][]byte{
			"alice": []byte("100"),
			"bob":   []byte("100"),
			"carol": []byte("100"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	fmt.Println("started:", sys)

	c := sys.NewClient()

	// A read-write transaction: moves 25 from alice to bob. The two keys
	// usually live on different partitions, so this is a full 2PC-over-
	// BFT distributed commit.
	txn := c.Begin()
	a, err := txn.Read("alice")
	if err != nil {
		log.Fatal(err)
	}
	b, err := txn.Read("bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: alice=%s bob=%s\n", a, b)
	txn.Write("alice", []byte("75"))
	txn.Write("bob", []byte("125"))
	if err := txn.Commit(); err != nil {
		log.Fatal("commit:", err)
	}
	fmt.Println("transfer committed")

	// A snapshot read-only transaction: one request per partition, each
	// answered by a single (untrusted) node, with Merkle proofs and an
	// f+1 certificate verified client-side. Retries until both
	// partitions show the transfer (participant commits land async).
	for {
		snap, err := c.ReadOnly([]string{"alice", "bob", "carol"})
		if err != nil {
			log.Fatal("read-only:", err)
		}
		if string(snap.Values["alice"]) == "75" && string(snap.Values["bob"]) == "125" {
			fmt.Printf("verified snapshot (rounds=%d): alice=%s bob=%s carol=%s\n",
				snap.Rounds,
				snap.Values["alice"], snap.Values["bob"], snap.Values["carol"])
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
}
