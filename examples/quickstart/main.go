// Quickstart: start a small TransEdge deployment, run a read-write
// transaction, and read a verified snapshot back.
//
//	go run ./examples/quickstart
//
// With -datadir the deployment also persists a write-ahead log and
// checkpoints there, and the program restarts the whole cluster from
// disk to show the committed transfer surviving a full shutdown:
//
//	go run ./examples/quickstart -datadir /tmp/transedge-quickstart
//
// With -engine the replicas run on a different storage backend, e.g.
// the log-structured engine:
//
//	go run ./examples/quickstart -engine lsm
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"transedge/transedge"

	_ "transedge/internal/store/lsm" // registers the "lsm" engine for -engine
)

func main() {
	datadir := flag.String("datadir", "", "persist WAL+checkpoints here and demo a cold restart")
	engine := flag.String("engine", "", "storage backend per replica (default: sharded); see internal/store engine registry")
	flag.Parse()

	// Three partitions, each replicated on a 4-node byzantine cluster
	// (f=1), with a little initial data.
	opts := transedge.Options{
		Clusters:      3,
		F:             1,
		Seed:          1,
		BatchInterval: time.Millisecond,
		DataDir:       *datadir,
		Engine:        *engine, // Start validates the name against the registry
		InitialData: map[string][]byte{
			"alice": []byte("100"),
			"bob":   []byte("100"),
			"carol": []byte("100"),
		},
	}
	sys, err := transedge.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	fmt.Println("started:", sys)

	c := sys.NewClient()

	// A read-write transaction: moves 25 from alice to bob. The two keys
	// usually live on different partitions, so this is a full 2PC-over-
	// BFT distributed commit.
	txn := c.Begin()
	a, err := txn.Read("alice")
	if err != nil {
		log.Fatal(err)
	}
	b, err := txn.Read("bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: alice=%s bob=%s\n", a, b)
	txn.Write("alice", []byte("75"))
	txn.Write("bob", []byte("125"))
	if err := txn.Commit(); err != nil {
		log.Fatal("commit:", err)
	}
	fmt.Println("transfer committed")

	// A snapshot read-only transaction: one request per partition, each
	// answered by a single (untrusted) node, with Merkle proofs and an
	// f+1 certificate verified client-side. Retries until both
	// partitions show the transfer (participant commits land async).
	waitTransfer(c)

	if *datadir == "" {
		return
	}

	// Durability: every certified batch above was fsynced to the WAL
	// before it was applied. Stop every replica and restart the cluster
	// from the data dir alone — the committed transfer must still be
	// there, recovered without any surviving peer to copy from.
	_, appended, _, _ := sys.DurabilityStats()
	fmt.Printf("\nstopping all replicas (%d batches in the WAL at %s)...\n", appended, *datadir)
	sys.Stop()

	sys2, err := transedge.Start(opts)
	if err != nil {
		log.Fatal("restart:", err)
	}
	defer sys2.Stop()
	waitTransfer(sys2.NewClient())
	cold, _, replayed, _ := sys2.DurabilityStats()
	fmt.Printf("cold restart: %d replicas recovered from disk, %d batches replayed from the WAL\n",
		cold, replayed)
}

// waitTransfer polls verified snapshots until both partitions show the
// committed transfer, then prints it.
func waitTransfer(c *transedge.Client) {
	for {
		snap, err := c.ReadOnly([]string{"alice", "bob", "carol"})
		if err != nil {
			log.Fatal("read-only:", err)
		}
		if string(snap.Values["alice"]) == "75" && string(snap.Values["bob"]) == "125" {
			fmt.Printf("verified snapshot (rounds=%d): alice=%s bob=%s carol=%s\n",
				snap.Rounds,
				snap.Values["alice"], snap.Values["bob"], snap.Values["carol"])
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}
