module transedge

go 1.24
