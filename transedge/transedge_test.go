package transedge_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"transedge/transedge"
)

func startSystem(t *testing.T, clusters int) *transedge.System {
	t.Helper()
	data := make(map[string][]byte)
	for i := 0; i < 60; i++ {
		data[fmt.Sprintf("k%02d", i)] = []byte("v0")
	}
	sys, err := transedge.Start(transedge.Options{
		Clusters:      clusters,
		F:             1,
		Seed:          1,
		BatchInterval: time.Millisecond,
		InitialData:   data,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

func TestStartValidatesOptions(t *testing.T) {
	if _, err := transedge.Start(transedge.Options{Clusters: 0, F: 1}); !errors.Is(err, transedge.ErrBadOptions) {
		t.Fatalf("Clusters=0: err = %v", err)
	}
	if _, err := transedge.Start(transedge.Options{Clusters: 1, F: 0}); !errors.Is(err, transedge.ErrBadOptions) {
		t.Fatalf("F=0: err = %v", err)
	}
}

// TestStartRejectsUnknownEngine pins the engine knob's edge: a typo'd
// backend name must fail Start with an error naming the valid engines,
// never fall back to the sharded default silently.
func TestStartRejectsUnknownEngine(t *testing.T) {
	_, err := transedge.Start(transedge.Options{Clusters: 1, F: 1, Engine: "rocksdb"})
	if !errors.Is(err, transedge.ErrBadOptions) {
		t.Fatalf("Engine=rocksdb: err = %v, want ErrBadOptions", err)
	}
	for _, want := range []string{"rocksdb", "sharded", "lsm"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestStartAcceptsEveryRegisteredEngine boots a small system on each
// registered backend and commits through it.
func TestStartAcceptsEveryRegisteredEngine(t *testing.T) {
	for _, engine := range []string{"", "sharded", "lsm"} {
		t.Run("engine="+engine, func(t *testing.T) {
			sys, err := transedge.Start(transedge.Options{
				Clusters:      1,
				F:             1,
				Seed:          1,
				Engine:        engine,
				BatchInterval: time.Millisecond,
				InitialData:   map[string][]byte{"k": []byte("v0")},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Stop()
			c := sys.NewClient()
			txn := c.Begin()
			if _, err := txn.Read("k"); err != nil {
				t.Fatal(err)
			}
			txn.Write("k", []byte("v1"))
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			snap, err := c.ReadOnly([]string{"k"})
			if err != nil {
				t.Fatal(err)
			}
			if string(snap.Values["k"]) != "v1" {
				t.Fatalf("snapshot k = %q, want v1", snap.Values["k"])
			}
		})
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := startSystem(t, 3)
	if sys.Clusters() != 3 {
		t.Fatalf("Clusters = %d", sys.Clusters())
	}
	if sys.Replicas() != 4 {
		t.Fatalf("Replicas = %d, want 4 (f=1)", sys.Replicas())
	}
	if p := sys.PartitionOf("k00"); p < 0 || p >= 3 {
		t.Fatalf("PartitionOf out of range: %d", p)
	}
	if sys.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	sys := startSystem(t, 2)
	c := sys.NewClient()

	txn := c.Begin()
	v, err := txn.Read("k01")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v0" {
		t.Fatalf("initial read %q", v)
	}
	txn.Write("k01", []byte("v1"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	snap, err := c.ReadOnly([]string{"k01", "k02"})
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.Values["k01"]) != "v1" {
		t.Fatalf("snapshot k01 = %q", snap.Values["k01"])
	}
	if snap.Rounds < 1 {
		t.Fatal("rounds not reported")
	}
}

func TestDistinctClientIdentities(t *testing.T) {
	sys := startSystem(t, 2)
	a, b := sys.NewClient(), sys.NewClient()
	ta, tb := a.Begin(), b.Begin()
	if ta.ID() == tb.ID() {
		t.Fatal("two clients minted the same transaction ID")
	}
}

func TestAbortSurfacesAsErrAborted(t *testing.T) {
	sys := startSystem(t, 2)
	c := sys.NewClient()
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Read("k03"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("k03"); err != nil {
		t.Fatal(err)
	}
	t1.Write("k03", []byte("a"))
	t2.Write("k03", []byte("b"))
	e1, e2 := t1.Commit(), t2.Commit()
	loser := e1
	if loser == nil {
		loser = e2
	}
	if !errors.Is(loser, transedge.ErrAborted) {
		t.Fatalf("loser err = %v, want ErrAborted", loser)
	}
}

// TestCheckpointOptionsThroughPublicAPI drives enough commits through a
// deployment with a tight CheckpointInterval that stable checkpoints
// form and truncate the log, and the system keeps serving verified
// reads — the public-API surface of the recovery subsystem.
func TestCheckpointOptionsThroughPublicAPI(t *testing.T) {
	data := make(map[string][]byte)
	for i := 0; i < 32; i++ {
		data[fmt.Sprintf("acct-%02d", i)] = []byte("0")
	}
	sys, err := transedge.Start(transedge.Options{
		Clusters:             1,
		F:                    1,
		Seed:                 3,
		CheckpointInterval:   4,
		StateTransferTimeout: 50 * time.Millisecond,
		InitialData:          data,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	c := sys.NewClient()
	for i := 0; i < 24; i++ {
		txn := c.Begin()
		txn.Write(fmt.Sprintf("acct-%02d", i%32), []byte(fmt.Sprintf("%d", i)))
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	snap, err := c.ReadOnly([]string{"acct-00", "acct-01"})
	if err != nil {
		t.Fatalf("read-only after checkpointing: %v", err)
	}
	if len(snap.Values) != 2 {
		t.Fatalf("snapshot returned %d values", len(snap.Values))
	}
}
