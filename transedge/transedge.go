// Package transedge is the public API of the TransEdge reproduction: a
// byzantine fault-tolerant, partitioned transactional store for edge
// environments with efficient verified snapshot read-only transactions
// (EDBT 2023, arXiv:2302.08019).
//
// A System hosts one cluster of 3f+1 replicas per data partition inside
// the current process, connected by a simulated wide-area network with
// configurable latencies. Clients issue:
//
//   - read-write transactions (optimistic concurrency, committed through
//     PBFT-style consensus within clusters and Two-Phase Commit across
//     them), and
//   - snapshot read-only transactions that contact a single —
//     possibly malicious — node per partition and verify everything:
//     Merkle membership proofs against an f+1-certified root, plus
//     cross-partition consistency via CD vectors and LCE numbers.
//
// Quickstart:
//
//	sys, err := transedge.Start(transedge.Options{
//		Clusters:    3,
//		F:           1,
//		InitialData: map[string][]byte{"alice": []byte("100")},
//	})
//	defer sys.Stop()
//
//	c := sys.NewClient()
//	txn := c.Begin()
//	v, _ := txn.Read("alice")
//	txn.Write("alice", []byte("90"))
//	if err := txn.Commit(); err != nil { ... }
//
//	snap, _ := c.ReadOnly([]string{"alice", "bob"})
package transedge

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"transedge/internal/client"
	"transedge/internal/core"
	"transedge/internal/store"
)

// Options configures a deployment.
type Options struct {
	// Clusters is the number of data partitions; each gets its own
	// cluster of replicas. Must be >= 1.
	Clusters int
	// F is the number of byzantine replicas tolerated per cluster; each
	// cluster runs 3F+1 replicas. Must be >= 1.
	F int
	// Seed makes node identities and client behavior reproducible.
	Seed uint64

	// BatchInterval is the leader's batch flush period (default 1ms).
	BatchInterval time.Duration
	// BatchMaxSize triggers an immediate batch at this many pending
	// transactions (default 2000).
	BatchMaxSize int
	// PipelineDepth is how many batches a cluster leader may keep in
	// flight between proposal and consensus delivery (default 4). Depth 1
	// restores the stop-and-wait pipeline, where consensus latency caps
	// commit throughput.
	PipelineDepth int
	// StoreShards is each replica's versioned-store shard count, rounded
	// up to a power of two (default 16). One shard restores a global
	// store lock; more shards let concurrent snapshot reads scale.
	StoreShards int
	// Engine selects each replica's storage backend by registry name:
	// "sharded" (the default in-memory MVCC store) or "lsm" (the
	// log-structured engine with memtable, immutable runs, and
	// background compaction). Unknown names fail Start with an error
	// listing the valid backends.
	Engine string
	// ReadExecutors sizes each replica's pool serving read-only
	// transactions off the consensus loop (default: GOMAXPROCS).
	ReadExecutors int
	// CheckpointInterval is how many batches apart replicas establish
	// stable checkpoints (PBFT-style 2f+1 checkpoint quorums). Stable
	// checkpoints bound each replica's in-memory log window and let a
	// crashed or lagging replica rejoin via state transfer. Default 64;
	// negative disables checkpointing (unbounded log, no recovery).
	CheckpointInterval int
	// StateTransferTimeout bounds how long a recovering replica waits
	// for a peer's state response before asking the next peer
	// (default 1s).
	StateTransferTimeout time.Duration
	// ViewTimeout bounds how long each replica waits for leader progress
	// on pending work before voting a PBFT view change, electing the next
	// replica (round-robin) as leader. Zero disables leader failover: a
	// crashed leader then stalls its cluster until restarted.
	ViewTimeout time.Duration
	// DataDir enables durability: each replica write-ahead-logs certified
	// batches and persists stable checkpoints under its own subdirectory,
	// and a restarted deployment (same Options, same DataDir) rebuilds
	// committed state from disk before falling back to peers. Empty (the
	// default) keeps everything in memory — a power cycle of 2f+1
	// replicas then loses the database.
	DataDir string
	// WALSyncEvery is the group-commit width: one fsync covers up to this
	// many committed batches (default 8; wal.SyncNever, -1, disables
	// fsync for benchmarking).
	WALSyncEvery int
	// WALSyncInterval bounds how long a partial commit group may stay
	// unsynced (default 2ms).
	WALSyncInterval time.Duration

	// IntraClusterLatency and InterClusterLatency shape the simulated
	// network (defaults: zero).
	IntraClusterLatency time.Duration
	InterClusterLatency time.Duration

	// FreshnessWindow, when positive, makes replicas reject batches whose
	// leader timestamp deviates further than this from their clocks,
	// bounding stale-snapshot attacks (paper Sec. 4.4.2).
	FreshnessWindow time.Duration

	// DisableMultiProofReads makes replicas answer verified reads with
	// one Merkle proof per key instead of a single compact multi-proof
	// over the whole key set (DESIGN.md §10). The default (false) sends
	// the multi-proof: shared path prefixes are proved once, so wide
	// reads ship fewer bytes and verify with fewer hashes. Both forms
	// carry the same guarantee; this knob exists for measurement.
	DisableMultiProofReads bool
	// DisableRootCache makes every client re-verify the f+1 batch
	// certificate on every read-only reply. The default (false) caches
	// the last verified certificate per cluster, so repeat reads at an
	// unchanged root skip the threshold-signature check entirely.
	DisableRootCache bool

	// InitialData is loaded as the certified genesis state, spread over
	// the partitions by key hash.
	InitialData map[string][]byte

	// ClientTimeout bounds every client RPC (default 10s).
	ClientTimeout time.Duration
	// MaxStaleness, when positive, makes clients reject read-only
	// snapshots older than this bound.
	MaxStaleness time.Duration
}

// System is a running deployment.
type System struct {
	sys      *core.System
	opts     Options
	clientID atomic.Uint32
}

// Validation errors.
var (
	ErrBadOptions = errors.New("transedge: invalid options")
)

// Start builds and launches a deployment.
func Start(opts Options) (*System, error) {
	if opts.Clusters < 1 {
		return nil, fmt.Errorf("%w: Clusters must be >= 1", ErrBadOptions)
	}
	if opts.F < 1 {
		return nil, fmt.Errorf("%w: F must be >= 1", ErrBadOptions)
	}
	if opts.Engine != "" {
		// Build-and-discard validates the name here, where it can be an
		// error, instead of panicking deep inside node construction.
		probe, err := store.NewEngine(opts.Engine, 1)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
		if c, ok := probe.(interface{ Close() }); ok {
			c.Close()
		}
	}
	sys := core.NewSystem(core.SystemConfig{
		Clusters:             opts.Clusters,
		F:                    opts.F,
		Seed:                 opts.Seed,
		BatchInterval:        opts.BatchInterval,
		BatchMaxSize:         opts.BatchMaxSize,
		PipelineDepth:        opts.PipelineDepth,
		StoreShards:          opts.StoreShards,
		Engine:               opts.Engine,
		ReadExecutors:        opts.ReadExecutors,
		CheckpointInterval:   opts.CheckpointInterval,
		StateTransferTimeout: opts.StateTransferTimeout,
		ViewTimeout:          opts.ViewTimeout,
		DataDir:              opts.DataDir,
		WALSyncEvery:         opts.WALSyncEvery,
		WALSyncInterval:      opts.WALSyncInterval,
		IntraLatency:         opts.IntraClusterLatency,
		InterLatency:         opts.InterClusterLatency,
		FreshnessWindow:      opts.FreshnessWindow,
		DisableMultiProofRO:  opts.DisableMultiProofReads,
		InitialData:          opts.InitialData,
	})
	sys.Start()
	return &System{sys: sys, opts: opts}, nil
}

// Stop shuts every replica and the network down.
func (s *System) Stop() { s.sys.Stop() }

// Replicas returns the number of replicas per cluster (3F+1).
func (s *System) Replicas() int { return s.sys.ReplicasPerCluster() }

// DurabilityStats summarizes the durability layer's activity summed over
// all replicas: cold restarts recovered from the local data dir, batches
// appended to and replayed from the WAL, and stable checkpoints written
// to disk. All zeros when DataDir is unset.
func (s *System) DurabilityStats() (coldRestarts, walAppended, walReplayed, checkpoints int64) {
	coldRestarts = s.sys.NodeMetrics(func(m *core.Metrics) int64 { return m.ColdRestarts })
	walAppended = s.sys.NodeMetrics(func(m *core.Metrics) int64 { return m.WALAppended })
	walReplayed = s.sys.NodeMetrics(func(m *core.Metrics) int64 { return m.WALReplayed })
	checkpoints = s.sys.NodeMetrics(func(m *core.Metrics) int64 { return m.CheckpointsPersisted })
	return
}

// Clusters returns the number of partitions.
func (s *System) Clusters() int { return s.sys.Cfg.Clusters }

// PartitionOf returns the partition that owns a key.
func (s *System) PartitionOf(key string) int32 { return s.sys.Part.Of(key) }

// String describes the deployment.
func (s *System) String() string { return s.sys.String() }

// Client issues transactions against a System. Clients are safe for
// sequential use; create one per goroutine.
type Client struct {
	*client.Client
}

// NewClient creates a client with a fresh identity.
func (s *System) NewClient() *Client {
	id := s.clientID.Add(1)
	return &Client{Client: client.New(client.Config{
		ID:               id,
		Net:              s.sys.Net,
		Ring:             s.sys.Ring,
		Part:             s.sys.Part,
		Clusters:         s.sys.Cfg.Clusters,
		Timeout:          s.opts.ClientTimeout,
		MaxStaleness:     s.opts.MaxStaleness,
		Seed:             int64(s.opts.Seed),
		DisableRootCache: s.opts.DisableRootCache,
	})}
}

// Txn is a read-write transaction handle.
type Txn = client.Txn

// Snapshot is a verified read-only transaction result.
type Snapshot = client.ROResult

// Session wraps a client with session guarantees: monotonic reads (no
// verified snapshot ever goes backwards) and read-your-writes (a session
// read observes every transaction the session committed, including
// distributed ones). Obtain one with Client.NewSession; see DESIGN.md §10
// for how the floors and the coordinator-closure mechanism work.
type Session = client.Session

// Errors surfaced by transactions, re-exported for callers.
var (
	// ErrAborted means conflict detection rejected the transaction;
	// retry with fresh reads.
	ErrAborted = client.ErrAborted
	// ErrTimeout means a request exceeded ClientTimeout.
	ErrTimeout = client.ErrTimeout
	// ErrVerification means a response failed cryptographic checks — a
	// byzantine node was caught.
	ErrVerification = client.ErrVerification
	// ErrStale means a snapshot was older than MaxStaleness.
	ErrStale = client.ErrStale
)
